(* Tests for the synthetic delay-space generator and its substrates. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Router_graph = Tivaware_topology.Router_graph
module Generator = Tivaware_topology.Generator
module Euclidean = Tivaware_topology.Euclidean
module Datasets = Tivaware_topology.Datasets

let checkf = Alcotest.check (Alcotest.float 1e-9)

let qcheck ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Router_graph                                                        *)

let test_graph_validation () =
  let g = Router_graph.create 3 in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Router_graph.add_edge: self-loop") (fun () ->
      Router_graph.add_edge g 1 1 5.);
  Alcotest.check_raises "non-positive weight"
    (Invalid_argument "Router_graph.add_edge: non-positive weight") (fun () ->
      Router_graph.add_edge g 0 1 0.)

let test_graph_neighbors () =
  let g = Router_graph.create 3 in
  Router_graph.add_edge g 0 1 2.;
  Router_graph.add_edge g 0 2 3.;
  Alcotest.(check int) "edges" 2 (Router_graph.edge_count g);
  Alcotest.(check int) "degree" 2 (List.length (Router_graph.neighbors g 0));
  Alcotest.(check int) "symmetric degree" 1 (List.length (Router_graph.neighbors g 1))

let test_graph_connected () =
  let g = Router_graph.create 3 in
  Router_graph.add_edge g 0 1 1.;
  Alcotest.(check bool) "disconnected" false (Router_graph.connected g);
  Router_graph.add_edge g 1 2 1.;
  Alcotest.(check bool) "connected" true (Router_graph.connected g)

let test_graph_shortest_paths () =
  let g = Router_graph.create 4 in
  Router_graph.add_edge g 0 1 1.;
  Router_graph.add_edge g 1 2 1.;
  Router_graph.add_edge g 2 3 1.;
  Router_graph.add_edge g 0 3 10.;
  let sp = Router_graph.shortest_paths g in
  checkf "multi-hop beats direct" 3. sp.(0).(3);
  checkf "self" 0. sp.(2).(2);
  checkf "symmetric" sp.(1).(3) sp.(3).(1)

let test_graph_parallel_edges () =
  let g = Router_graph.create 2 in
  Router_graph.add_edge g 0 1 10.;
  Router_graph.add_edge g 0 1 4.;
  let sp = Router_graph.shortest_paths g in
  checkf "cheapest parallel edge wins" 4. sp.(0).(1)

let prop_random_connected =
  qcheck "random_connected graphs are connected"
    QCheck2.Gen.(pair int (int_range 2 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g =
        Router_graph.random_connected rng ~n ~extra_edges:3 ~weight:(fun () ->
            1. +. Rng.float rng 10.)
      in
      Router_graph.connected g && Router_graph.edge_count g >= n - 1)

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

let small_params n = { Generator.default with Generator.nodes = n }

let test_generator_validation () =
  let bad fractions =
    {
      Generator.default with
      Generator.clusters =
        List.map
          (fun f -> { (List.hd Generator.default.Generator.clusters) with Generator.fraction = f })
          fractions;
    }
  in
  Alcotest.(check bool) "fractions must sum to 1" true
    (Result.is_error (Generator.validate (bad [ 0.5; 0.2 ])));
  Alcotest.(check bool) "default valid" true
    (Result.is_ok (Generator.validate Generator.default));
  Alcotest.(check bool) "tiny node count invalid" true
    (Result.is_error (Generator.validate (small_params 2)));
  Alcotest.(check bool) "bad jitter" true
    (Result.is_error (Generator.validate { Generator.default with Generator.jitter = 1.5 }))

let test_generator_shape () =
  let data = Generator.generate (Rng.create 1) (small_params 120) in
  Alcotest.(check int) "matrix size" 120 (Matrix.size data.Generator.matrix);
  Alcotest.(check int) "labels size" 120 (Array.length data.Generator.cluster_of);
  let labels = Array.to_list data.Generator.cluster_of in
  Alcotest.(check bool) "three clusters populated" true
    (List.mem 0 labels && List.mem 1 labels && List.mem 2 labels)

let test_generator_determinism () =
  let a = Generator.generate (Rng.create 5) (small_params 60) in
  let b = Generator.generate (Rng.create 5) (small_params 60) in
  let equal = ref true in
  for i = 0 to 59 do
    for j = i + 1 to 59 do
      let x = Matrix.get a.Generator.matrix i j
      and y = Matrix.get b.Generator.matrix i j in
      if not (x = y || (Float.is_nan x && Float.is_nan y)) then equal := false
    done
  done;
  Alcotest.(check bool) "same seed, same matrix" true !equal

let prop_base_is_metric =
  qcheck ~count:20 "base delays satisfy the triangle inequality"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let data = Generator.generate (Rng.create seed) (small_params 40) in
      let base = data.Generator.base in
      let ok = ref true in
      for i = 0 to 39 do
        for j = 0 to 39 do
          for k = 0 to 39 do
            if i <> j && j <> k && i <> k then begin
              let a = Matrix.get base i k
              and b = Matrix.get base i j
              and c = Matrix.get base j k in
              if a > b +. c +. 1e-6 then ok := false
            end
          done
        done
      done;
      !ok)

let prop_measured_vs_base =
  qcheck ~count:20 "measured delay bounded by inflation envelope"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p = small_params 40 in
      let data = Generator.generate (Rng.create seed) p in
      let ok = ref true in
      Matrix.iter_edges data.Generator.matrix (fun i j v ->
          let b = Matrix.get data.Generator.base i j in
          let lo = b *. (1. -. p.Generator.jitter) -. 1e-9 in
          let hi =
            b *. p.Generator.inflation_max *. (1. +. p.Generator.jitter) +. 1e-9
          in
          if v < lo || v > hi then ok := false);
      !ok)

let test_generator_missing_fraction () =
  let p = { (small_params 150) with Generator.missing_fraction = 0.1 } in
  let data = Generator.generate (Rng.create 3) p in
  let pairs = 150 * 149 / 2 in
  let present = Matrix.edge_count data.Generator.matrix in
  let missing = float_of_int (pairs - present) /. float_of_int pairs in
  Alcotest.(check bool) "missing fraction near 10%" true
    (missing > 0.06 && missing < 0.14)

let test_generator_has_tivs () =
  let data = Generator.generate (Rng.create 4) (small_params 100) in
  let census = Tivaware_tiv.Triangle.census data.Generator.matrix in
  Alcotest.(check bool) "violations exist" true
    (census.Tivaware_tiv.Triangle.fraction > 0.01);
  Alcotest.(check bool) "but not everywhere" true
    (census.Tivaware_tiv.Triangle.fraction < 0.6)

(* ------------------------------------------------------------------ *)
(* Euclidean                                                           *)

let prop_euclidean_metric =
  qcheck ~count:20 "euclidean generator is TIV-free"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let m = Euclidean.uniform_box (Rng.create seed) ~n:30 ~dim:3 ~side_ms:200. in
      let census = Tivaware_tiv.Triangle.census m in
      census.Tivaware_tiv.Triangle.violating = 0)

let prop_clustered_metric =
  qcheck ~count:20 "clustered euclidean generator is TIV-free"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let m =
        Euclidean.clustered (Rng.create seed) ~n:30
          ~centers:[ (Array.make 3 0., 10.); ([| 100.; 0.; 0. |], 10.) ]
      in
      let census = Tivaware_tiv.Triangle.census m in
      census.Tivaware_tiv.Triangle.violating = 0)

let test_euclidean_bounds () =
  let m = Euclidean.uniform_box (Rng.create 9) ~n:50 ~dim:2 ~side_ms:100. in
  Matrix.iter_edges m (fun _ _ v ->
      Alcotest.(check bool) "within diagonal bound" true (v <= 100. *. sqrt 2. +. 1e-9))

(* ------------------------------------------------------------------ *)
(* Synthesizer                                                         *)

module Synthesizer = Tivaware_topology.Synthesizer
module Stats = Tivaware_util.Stats

let source_world seed = Generator.generate (Rng.create seed) (small_params 150)

let test_synth_model_shape () =
  let data = source_world 20 in
  let model = Synthesizer.analyze data.Generator.matrix in
  Alcotest.(check int) "source size" 150 (Synthesizer.source_size model);
  let fractions = Synthesizer.cluster_fractions model in
  Alcotest.(check bool) "fractions sum to 1" true
    (abs_float (Array.fold_left ( +. ) 0. fractions -. 1.) < 1e-9);
  Alcotest.(check bool) "missing fraction sane" true
    (Synthesizer.missing_fraction model >= 0. && Synthesizer.missing_fraction model < 0.2)

let test_synth_size_and_labels () =
  let data = source_world 21 in
  let model = Synthesizer.analyze data.Generator.matrix in
  let m, labels = Synthesizer.synthesize_with_clusters (Rng.create 22) model ~size:220 in
  Alcotest.(check int) "matrix size" 220 (Matrix.size m);
  Alcotest.(check int) "labels size" 220 (Array.length labels);
  (* Cluster shares of the synthetic space track the source model. *)
  let fractions = Synthesizer.cluster_fractions model in
  let k = Array.length fractions - 1 in
  for c = 0 to k - 1 do
    let share =
      float_of_int (Array.fold_left (fun acc l -> if l = c then acc + 1 else acc) 0 labels)
      /. 220.
    in
    Alcotest.(check bool)
      (Printf.sprintf "cluster %d share %.2f ~ %.2f" c share fractions.(c))
      true
      (abs_float (share -. fractions.(c)) < 0.05)
  done

let test_synth_delay_distribution_matches () =
  let data = source_world 23 in
  let source = data.Generator.matrix in
  let model = Synthesizer.analyze source in
  let synth = Synthesizer.synthesize (Rng.create 24) model ~size:300 in
  let med m = Stats.median (Matrix.delays m) in
  let p90 m = Stats.percentile (Matrix.delays m) 90. in
  Alcotest.(check bool)
    (Printf.sprintf "median delay %.0f ~ %.0f" (med synth) (med source))
    true
    (abs_float (med synth -. med source) /. med source < 0.2);
  Alcotest.(check bool)
    (Printf.sprintf "p90 delay %.0f ~ %.0f" (p90 synth) (p90 source))
    true
    (abs_float (p90 synth -. p90 source) /. p90 source < 0.25)

let test_synth_preserves_tivs () =
  let data = source_world 25 in
  let model = Synthesizer.analyze data.Generator.matrix in
  let synth = Synthesizer.synthesize (Rng.create 26) model ~size:200 in
  let census = Tivaware_tiv.Triangle.census synth in
  Alcotest.(check bool)
    (Printf.sprintf "synthetic space has TIVs (%.1f%%)" (100. *. census.Tivaware_tiv.Triangle.fraction))
    true
    (census.Tivaware_tiv.Triangle.fraction > 0.02)

let test_synth_deterministic () =
  let data = source_world 27 in
  let model = Synthesizer.analyze data.Generator.matrix in
  let a = Synthesizer.synthesize (Rng.create 5) model ~size:100 in
  let b = Synthesizer.synthesize (Rng.create 5) model ~size:100 in
  let same = ref true in
  Matrix.iter_edges a (fun i j v -> if Matrix.get b i j <> v then same := false);
  Alcotest.(check bool) "same seed, same synthesis" true !same

(* ------------------------------------------------------------------ *)
(* Datasets                                                            *)

let test_dataset_sizes () =
  List.iter
    (fun preset ->
      let data = Datasets.generate ~size:80 ~seed:1 preset in
      Alcotest.(check int) "size override" 80 (Matrix.size data.Generator.matrix))
    Datasets.all

let test_dataset_names () =
  Alcotest.(check string) "ds2 name" "DS2-560-data" (Datasets.name Datasets.Ds2);
  Alcotest.(check string) "sized name" "p2psim-42-data"
    (Datasets.name ~size:42 Datasets.P2psim)

let test_dataset_determinism () =
  let a = Datasets.generate ~size:60 ~seed:7 Datasets.Meridian in
  let b = Datasets.generate ~size:60 ~seed:7 Datasets.Meridian in
  Alcotest.(check (float 0.)) "deterministic entry"
    (Matrix.get a.Generator.matrix 3 17)
    (Matrix.get b.Generator.matrix 3 17)

let test_dataset_independence () =
  (* Same master seed must still give distinct delay spaces per preset. *)
  let a = Datasets.generate ~size:60 ~seed:7 Datasets.Ds2 in
  let b = Datasets.generate ~size:60 ~seed:7 Datasets.P2psim in
  Alcotest.(check bool) "presets differ" true
    (Matrix.get a.Generator.matrix 0 1 <> Matrix.get b.Generator.matrix 0 1)

let test_dataset_severity_ordering () =
  (* The Meridian-like preset must have heavier TIVs than the p2psim-like
     preset, matching the paper's Figure 2 ordering. *)
  let sev preset =
    let data = Datasets.generate ~size:120 ~seed:3 preset in
    let s = Tivaware_tiv.Severity.all data.Generator.matrix in
    Tivaware_util.Stats.mean (Matrix.delays s)
  in
  Alcotest.(check bool) "meridian worse than p2psim" true
    (sev Datasets.Meridian > sev Datasets.P2psim)

let () =
  Alcotest.run "topology"
    [
      ( "router_graph",
        [
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "neighbors" `Quick test_graph_neighbors;
          Alcotest.test_case "connected" `Quick test_graph_connected;
          Alcotest.test_case "shortest paths" `Quick test_graph_shortest_paths;
          Alcotest.test_case "parallel edges" `Quick test_graph_parallel_edges;
          prop_random_connected;
        ] );
      ( "generator",
        [
          Alcotest.test_case "validation" `Quick test_generator_validation;
          Alcotest.test_case "shape" `Quick test_generator_shape;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          prop_base_is_metric;
          prop_measured_vs_base;
          Alcotest.test_case "missing fraction" `Quick test_generator_missing_fraction;
          Alcotest.test_case "produces TIVs" `Quick test_generator_has_tivs;
        ] );
      ( "euclidean",
        [
          prop_euclidean_metric;
          prop_clustered_metric;
          Alcotest.test_case "bounds" `Quick test_euclidean_bounds;
        ] );
      ( "synthesizer",
        [
          Alcotest.test_case "model shape" `Quick test_synth_model_shape;
          Alcotest.test_case "size and labels" `Quick test_synth_size_and_labels;
          Alcotest.test_case "delay distribution" `Quick test_synth_delay_distribution_matches;
          Alcotest.test_case "preserves TIVs" `Quick test_synth_preserves_tivs;
          Alcotest.test_case "deterministic" `Quick test_synth_deterministic;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "sizes" `Quick test_dataset_sizes;
          Alcotest.test_case "names" `Quick test_dataset_names;
          Alcotest.test_case "determinism" `Quick test_dataset_determinism;
          Alcotest.test_case "preset independence" `Quick test_dataset_independence;
          Alcotest.test_case "severity ordering" `Quick test_dataset_severity_ordering;
        ] );
    ]
