(* Tests for the TIV analysis library: severity metric, triangle census,
   cluster analysis, proximity, alert mechanism. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Clustering = Tivaware_delay_space.Clustering
module Euclidean = Tivaware_topology.Euclidean
module Severity = Tivaware_tiv.Severity
module Triangle = Tivaware_tiv.Triangle
module Proximity = Tivaware_tiv.Proximity
module Cluster_analysis = Tivaware_tiv.Cluster_analysis
module Alert = Tivaware_tiv.Alert
module Eval = Tivaware_tiv.Eval

let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkf_loose eps = Alcotest.check (Alcotest.float eps)

let qcheck ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* The paper's canonical TIV triangle: AB=5, BC=5, CA=100. *)
let paper_triangle () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 5.;
  Matrix.set m 1 2 5.;
  Matrix.set m 2 0 100.;
  m

let random_matrix seed n =
  let rng = Rng.create seed in
  Matrix.init n (fun _ _ -> Rng.uniform rng 1. 300.)

(* ------------------------------------------------------------------ *)
(* Severity                                                            *)

let test_severity_paper_triangle () =
  let m = paper_triangle () in
  (* Edge CA: one violating intermediate (B), ratio 100/10 = 10, |S|=3. *)
  let ca = Severity.edge m 2 0 in
  checkf_loose 1e-9 "CA severity" (10. /. 3.) ca.Severity.severity;
  Alcotest.(check int) "CA violations" 1 ca.Severity.violations;
  checkf "CA max ratio" 10. ca.Severity.max_ratio;
  checkf "CA mean ratio" 10. ca.Severity.mean_ratio;
  (* Edge AB: 5 < 5 + 100, no violation. *)
  let ab = Severity.edge m 0 1 in
  checkf "AB severity" 0. ab.Severity.severity;
  Alcotest.(check int) "AB violations" 0 ab.Severity.violations;
  checkf "AB max ratio" 1. ab.Severity.max_ratio

let test_severity_argument_order () =
  let m = random_matrix 99 15 in
  for i = 0 to 14 do
    for j = i + 1 to 14 do
      checkf "edge (i,j) = edge (j,i)"
        (Severity.edge m i j).Severity.severity
        (Severity.edge m j i).Severity.severity
    done
  done

let test_triangulation_ratios () =
  let m = paper_triangle () in
  (* Edge CA has one intermediate (B): ratio 100 / (5 + 5) = 10. *)
  Alcotest.(check (array (float 1e-9))) "CA ratios" [| 10. |]
    (Severity.triangulation_ratios m 2 0);
  (* Edge AB: ratio 5 / (100 + 5). *)
  Alcotest.(check (array (float 1e-9))) "AB ratios" [| 5. /. 105. |]
    (Severity.triangulation_ratios m 0 1)

let test_severity_consistent_with_ratios () =
  (* severity = sum of violating ratios / n, recomputed from the raw
     distribution. *)
  let m = random_matrix 98 20 in
  Matrix.iter_edges m (fun i j _ ->
      let ratios = Severity.triangulation_ratios m i j in
      let recomputed =
        Array.fold_left (fun acc r -> if r > 1. then acc +. r else acc) 0. ratios
        /. 20.
      in
      checkf_loose 1e-9 "definition matches" (Severity.edge_severity m i j)
        recomputed)

let test_severity_missing_edge () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 5.;
  Alcotest.check_raises "missing edge" (Invalid_argument "Severity.edge: missing edge")
    (fun () -> ignore (Severity.edge m 0 2))

let test_severity_all_matches_edge () =
  let m = random_matrix 11 20 in
  let all = Severity.all m in
  for i = 0 to 19 do
    for j = i + 1 to 19 do
      checkf_loose 1e-9 "all = edge" (Severity.edge m i j).Severity.severity
        (Matrix.get all i j)
    done
  done

let prop_severity_zero_on_metric =
  qcheck ~count:20 "metric spaces have zero severity everywhere"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let m = Euclidean.uniform_box (Rng.create seed) ~n:25 ~dim:3 ~side_ms:100. in
      let all = Severity.all m in
      let ok = ref true in
      Matrix.iter_edges all (fun _ _ s -> if s > 1e-9 then ok := false);
      !ok)

let prop_severity_nonnegative =
  qcheck ~count:20 "severity is non-negative and bounded by max ratio"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let m = random_matrix seed 15 in
      let ok = ref true in
      Matrix.iter_edges m (fun i j _ ->
          let e = Severity.edge m i j in
          if
            e.Severity.severity < 0.
            || e.Severity.severity > e.Severity.max_ratio
            || e.Severity.mean_ratio < 1. -. 1e-12
          then ok := false);
      !ok)

let test_severity_counts_consistency () =
  let m = random_matrix 13 25 in
  let sev, counts = Severity.all_with_counts m in
  (* Every counted edge has positive severity and vice versa. *)
  let counted = Hashtbl.create 64 in
  Array.iter (fun (i, j, c) ->
      Alcotest.(check bool) "count positive" true (c > 0);
      Hashtbl.replace counted (i, j) c) counts;
  Matrix.iter_edges sev (fun i j s ->
      Alcotest.(check bool) "severity>0 iff counted" (s > 0.)
        (Hashtbl.mem counted (i, j)))

let test_worst_edges () =
  let m = paper_triangle () in
  let sev = Severity.all m in
  let worst = Severity.worst_edges sev ~fraction:0.34 in
  Alcotest.(check int) "one edge kept" 1 (Array.length worst);
  Alcotest.(check (pair int int)) "CA is the worst" (0, 2) worst.(0);
  Alcotest.(check int) "fraction 0 keeps none" 0
    (Array.length (Severity.worst_edges sev ~fraction:0.));
  Alcotest.(check int) "fraction 1 keeps all" 3
    (Array.length (Severity.worst_edges sev ~fraction:1.))

let test_worst_edges_sorted () =
  let m = random_matrix 17 20 in
  let sev = Severity.all m in
  let worst = Severity.worst_edges sev ~fraction:0.5 in
  let values = Array.map (fun (i, j) -> Matrix.get sev i j) worst in
  for k = 0 to Array.length values - 2 do
    Alcotest.(check bool) "descending severity" true (values.(k) >= values.(k + 1))
  done

(* ------------------------------------------------------------------ *)
(* Triangle                                                            *)

let test_census_paper_triangle () =
  let c = Triangle.census (paper_triangle ()) in
  Alcotest.(check int) "one triangle" 1 c.Triangle.triangles;
  Alcotest.(check int) "violating" 1 c.Triangle.violating;
  checkf "fraction" 1. c.Triangle.fraction;
  checkf "worst ratio" 10. c.Triangle.worst_ratio

let test_census_metric () =
  let m = Euclidean.uniform_box (Rng.create 2) ~n:20 ~dim:3 ~side_ms:100. in
  let c = Triangle.census m in
  Alcotest.(check int) "no violations" 0 c.Triangle.violating;
  Alcotest.(check int) "all triangles counted" (20 * 19 * 18 / 6) c.Triangle.triangles

let test_census_missing_edges () =
  let m = Matrix.create 4 in
  Matrix.set m 0 1 1.;
  Matrix.set m 1 2 1.;
  (* only one complete triangle requires 3 edges; none are complete *)
  let c = Triangle.census m in
  Alcotest.(check int) "incomplete triangles skipped" 0 c.Triangle.triangles

let test_sampled_census_approximates () =
  let data =
    Tivaware_topology.Datasets.generate ~size:100 ~seed:5 Tivaware_topology.Datasets.Ds2
  in
  let m = data.Tivaware_topology.Generator.matrix in
  let exact = Triangle.census m in
  let sampled = Triangle.sampled_census (Rng.create 6) m ~samples:60_000 in
  checkf_loose 0.03 "sampled fraction near exact" exact.Triangle.fraction
    sampled.Triangle.fraction

let test_violation_ratios () =
  let ratios = Triangle.violation_ratios (Rng.create 7) (paper_triangle ()) ~samples:500 in
  Alcotest.(check bool) "found violations" true (Array.length ratios > 0);
  Array.iter
    (fun r -> Alcotest.(check bool) "ratio > 1" true (r > 1.))
    ratios

(* ------------------------------------------------------------------ *)
(* Cluster analysis                                                    *)

(* Two tight blobs with one artificially inflated cross edge. *)
let two_cluster_matrix () =
  let rng = Rng.create 21 in
  let m =
    Euclidean.clustered rng ~n:40
      ~centers:[ (Array.make 3 0., 3.); ([| 150.; 0.; 0. |], 3.) ]
  in
  (* Inflate one cross-cluster edge: multiply by 4. *)
  let found = ref None in
  (try
     Matrix.iter_edges m (fun i j v ->
         if v > 100. then begin
           found := Some (i, j, v);
           raise Exit
         end)
   with Exit -> ());
  (match !found with
  | Some (i, j, v) -> Matrix.set m i j (4. *. v)
  | None -> Alcotest.fail "no cross edge found");
  m

let test_cluster_analysis_cross_worse () =
  let m = two_cluster_matrix () in
  let assignment = Clustering.cluster ~k:2 ~radius_ms:50. m in
  let a = Cluster_analysis.analyze m assignment in
  Alcotest.(check bool) "cross severity exceeds within" true
    (a.Cluster_analysis.cross_mean_severity >= a.Cluster_analysis.within_mean_severity);
  Alcotest.(check bool) "cross violations exceed within" true
    (a.Cluster_analysis.cross_mean_violations >= a.Cluster_analysis.within_mean_violations)

let test_cluster_analysis_blocks () =
  let m = two_cluster_matrix () in
  let assignment = Clustering.cluster ~k:2 ~radius_ms:50. m in
  let a = Cluster_analysis.analyze m assignment in
  let total_edges =
    List.fold_left (fun acc b -> acc + b.Cluster_analysis.edges) 0 a.Cluster_analysis.blocks
  in
  Alcotest.(check int) "blocks partition all edges" (Matrix.edge_count m) total_edges

let test_shade_matrix_shape () =
  let m = two_cluster_matrix () in
  let assignment = Clustering.cluster ~k:2 ~radius_ms:50. m in
  let severity = Severity.all m in
  let shade = Cluster_analysis.shade_matrix ~severity assignment ~cells:5 in
  Alcotest.(check int) "rows" 5 (Array.length shade);
  Array.iter (fun row -> Alcotest.(check int) "cols" 5 (Array.length row)) shade;
  (* Symmetric by construction. *)
  for r = 0 to 4 do
    for c = 0 to 4 do
      checkf "shade symmetric" shade.(r).(c) shade.(c).(r)
    done
  done

(* ------------------------------------------------------------------ *)
(* Proximity                                                           *)

let test_proximity_shapes () =
  let m = random_matrix 31 40 in
  let severity = Severity.all m in
  let r = Proximity.analyze (Rng.create 32) m ~severity ~samples:200 in
  Alcotest.(check bool) "nearest diffs non-empty" true
    (Array.length r.Proximity.nearest_pair_diffs > 0);
  Alcotest.(check bool) "random diffs non-empty" true
    (Array.length r.Proximity.random_pair_diffs > 0);
  Array.iter
    (fun d -> Alcotest.(check bool) "diffs non-negative" true (d >= 0.))
    r.Proximity.nearest_pair_diffs

let test_proximity_constant_severity () =
  (* On a metric space all severities are 0, so all diffs are 0. *)
  let m = Euclidean.uniform_box (Rng.create 33) ~n:30 ~dim:3 ~side_ms:100. in
  let severity = Severity.all m in
  let r = Proximity.analyze (Rng.create 34) m ~severity ~samples:100 in
  Array.iter (fun d -> checkf "zero diff" 0. d) r.Proximity.nearest_pair_diffs;
  checkf_loose 1e-9 "gap zero" 0. (Proximity.similarity_gap r)

(* ------------------------------------------------------------------ *)
(* Alert + Eval                                                        *)

let test_alert_ratio_matrix () =
  let m = paper_triangle () in
  (* Predictor that halves every delay. *)
  let ratios = Alert.ratio_matrix ~measured:m ~predicted:(fun i j -> Matrix.get m i j /. 2.) in
  checkf "ratio 0.5 everywhere" 0.5 (Matrix.get ratios 0 1);
  checkf "ratio 0.5 on CA" 0.5 (Matrix.get ratios 2 0)

let test_alert_thresholding () =
  let m = paper_triangle () in
  let predicted i j =
    (* Shrink only the CA edge. *)
    if (i, j) = (0, 2) || (i, j) = (2, 0) then 10. else Matrix.get m i j
  in
  let ratios = Alert.ratio_matrix ~measured:m ~predicted in
  let alerted = Alert.alerted ~ratios ~threshold:0.5 in
  Alcotest.(check int) "only CA alerted" 1 (Array.length alerted);
  Alcotest.(check (pair int int)) "CA" (0, 2) alerted.(0);
  Alcotest.(check bool) "is_alert CA" true (Alert.is_alert ~ratios ~threshold:0.5 0 2);
  Alcotest.(check bool) "is_alert AB" false (Alert.is_alert ~ratios ~threshold:0.5 0 1)

let test_alert_pairs () =
  let m = paper_triangle () in
  let severity = Severity.all m in
  let ratios = Alert.ratio_matrix ~measured:m ~predicted:(fun _ _ -> 1.) in
  let pairs = Alert.ratio_severity_pairs ~ratios ~severity in
  Alcotest.(check int) "one pair per edge" 3 (Array.length pairs)

let test_eval_perfect_alerts () =
  (* Ratios inversely proportional to severity rank: thresholding then
     recovers the worst set exactly, giving accuracy = recall = 1. *)
  let m = random_matrix 41 20 in
  let severity = Severity.all m in
  (* Build "ratios" = 1 / (1 + severity): strictly decreasing in severity. *)
  let ratios = Matrix.map (fun i j _ -> 1. /. (1. +. Matrix.get severity i j)) m in
  let worst = Severity.worst_edges severity ~fraction:0.1 in
  match Array.to_list worst with
  | [] -> Alcotest.fail "expected a worst set"
  | _ ->
    (* Pick the threshold exactly at the boundary ratio of the worst set. *)
    let boundary =
      Array.fold_left
        (fun acc (i, j) -> Float.max acc (Matrix.get ratios i j))
        0. worst
    in
    (match
       Eval.evaluate ~ratios ~severity ~worst_fraction:0.1 ~thresholds:[ boundary ]
     with
    | [ p ] ->
      Alcotest.(check bool) "high accuracy" true (p.Eval.accuracy >= 0.99);
      Alcotest.(check bool) "full recall" true (p.Eval.recall >= 0.99)
    | _ -> Alcotest.fail "one point expected")

let test_eval_monotone_recall () =
  let m = random_matrix 43 25 in
  let severity = Severity.all m in
  let ratios = Alert.ratio_matrix ~measured:m ~predicted:(fun i j -> Matrix.get m i j *. 0.9) in
  let points =
    Eval.evaluate ~ratios ~severity ~worst_fraction:0.2
      ~thresholds:Eval.default_thresholds
  in
  let rec check_monotone = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "recall nondecreasing" true (b.Eval.recall >= a.Eval.recall -. 1e-9);
      Alcotest.(check bool) "alerts nondecreasing" true (b.Eval.alerts >= a.Eval.alerts);
      check_monotone rest
    | _ -> ()
  in
  check_monotone points

let test_eval_no_alerts_vacuous () =
  let m = random_matrix 44 10 in
  let severity = Severity.all m in
  let ratios = Alert.ratio_matrix ~measured:m ~predicted:(fun _ _ -> 1e9) in
  match Eval.evaluate ~ratios ~severity ~worst_fraction:0.1 ~thresholds:[ 0.1 ] with
  | [ p ] ->
    Alcotest.(check int) "no alerts" 0 p.Eval.alerts;
    checkf "vacuous accuracy" 1. p.Eval.accuracy;
    checkf "zero recall" 0. p.Eval.recall
  | _ -> Alcotest.fail "one point expected"

let () =
  Alcotest.run "tiv"
    [
      ( "severity",
        [
          Alcotest.test_case "paper triangle" `Quick test_severity_paper_triangle;
          Alcotest.test_case "argument order" `Quick test_severity_argument_order;
          Alcotest.test_case "triangulation ratios" `Quick test_triangulation_ratios;
          Alcotest.test_case "consistent with ratios" `Quick test_severity_consistent_with_ratios;
          Alcotest.test_case "missing edge" `Quick test_severity_missing_edge;
          Alcotest.test_case "all matches edge" `Quick test_severity_all_matches_edge;
          prop_severity_zero_on_metric;
          prop_severity_nonnegative;
          Alcotest.test_case "counts consistency" `Quick test_severity_counts_consistency;
          Alcotest.test_case "worst edges" `Quick test_worst_edges;
          Alcotest.test_case "worst edges sorted" `Quick test_worst_edges_sorted;
        ] );
      ( "triangle",
        [
          Alcotest.test_case "paper triangle census" `Quick test_census_paper_triangle;
          Alcotest.test_case "metric census" `Quick test_census_metric;
          Alcotest.test_case "missing edges skipped" `Quick test_census_missing_edges;
          Alcotest.test_case "sampled approximates exact" `Quick test_sampled_census_approximates;
          Alcotest.test_case "violation ratios" `Quick test_violation_ratios;
        ] );
      ( "cluster_analysis",
        [
          Alcotest.test_case "cross worse than within" `Quick test_cluster_analysis_cross_worse;
          Alcotest.test_case "blocks partition edges" `Quick test_cluster_analysis_blocks;
          Alcotest.test_case "shade matrix shape" `Quick test_shade_matrix_shape;
        ] );
      ( "proximity",
        [
          Alcotest.test_case "result shapes" `Quick test_proximity_shapes;
          Alcotest.test_case "constant severity" `Quick test_proximity_constant_severity;
        ] );
      ( "alert",
        [
          Alcotest.test_case "ratio matrix" `Quick test_alert_ratio_matrix;
          Alcotest.test_case "thresholding" `Quick test_alert_thresholding;
          Alcotest.test_case "ratio-severity pairs" `Quick test_alert_pairs;
        ] );
      ( "eval",
        [
          Alcotest.test_case "perfect alerts" `Quick test_eval_perfect_alerts;
          Alcotest.test_case "monotone recall" `Quick test_eval_monotone_recall;
          Alcotest.test_case "vacuous accuracy" `Quick test_eval_no_alerts_vacuous;
        ] );
    ]
