(* End-to-end integration tests: exercise the full pipeline the way the
   benchmark harness and examples do, asserting the paper's qualitative
   claims hold on a freshly generated world. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix
module Clustering = Tivaware_delay_space.Clustering
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Euclidean = Tivaware_topology.Euclidean
module Severity = Tivaware_tiv.Severity
module Alert = Tivaware_tiv.Alert
module Eval = Tivaware_tiv.Eval
module System = Tivaware_vivaldi.System
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors

(* One shared world for the whole integration suite. *)
let world = lazy (Datasets.generate ~size:160 ~seed:1234 Datasets.Ds2)
let matrix () = (Lazy.force world).Generator.matrix
let severity = lazy (Severity.all (matrix ()))

let vivaldi = lazy (Selectors.embed_vivaldi ~rounds:200 (Rng.create 55) (matrix ()))

let test_world_has_clusters_and_tivs () =
  let m = matrix () in
  let a = Clustering.cluster m in
  Alcotest.(check int) "three major clusters" 3 (Array.length a.Clustering.clusters);
  let sev = Lazy.force severity in
  let max_sev =
    Matrix.fold_edges sev ~init:0. ~f:(fun acc _ _ s -> Float.max acc s)
  in
  Alcotest.(check bool) "severe TIVs exist" true (max_sev > 0.5)

let test_embedding_shrinks_severe_edges () =
  (* Figure 19's core claim: severely violating edges get shrunk. *)
  let m = matrix () in
  let sev = Lazy.force severity in
  let system = Lazy.force vivaldi in
  let shrunk = ref [] and healthy = ref [] in
  Matrix.iter_edges m (fun i j _ ->
      let r = System.prediction_ratio system i j in
      if not (Float.is_nan r) then begin
        let s = Matrix.get sev i j in
        if r < 0.5 then shrunk := s :: !shrunk else healthy := s :: !healthy
      end);
  let mean l = Stats.mean (Array.of_list l) in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk edges more severe (%.3f vs %.3f)" (mean !shrunk)
       (mean !healthy))
    true
    (!shrunk <> [] && mean !shrunk > 2. *. mean !healthy)

let test_alert_quality_end_to_end () =
  let m = matrix () in
  let sev = Lazy.force severity in
  let system = Lazy.force vivaldi in
  let ratios =
    Alert.ratio_matrix ~measured:m ~predicted:(fun i j -> System.predicted system i j)
  in
  match Eval.evaluate ~ratios ~severity:sev ~worst_fraction:0.05 ~thresholds:[ 0.4 ] with
  | [ p ] ->
    Alcotest.(check bool)
      (Printf.sprintf "tight-threshold accuracy high (%.2f over %d alerts)"
         p.Eval.accuracy p.Eval.alerts)
      true
      (p.Eval.alerts = 0 || p.Eval.accuracy > 0.5)
  | _ -> Alcotest.fail "one point expected"

let test_dynamic_neighbor_vivaldi_improves_selection () =
  let m = matrix () in
  let system = System.create (Rng.create 56) m in
  System.run system ~rounds:100;
  let penalties () =
    (Experiment.run_predictor (Rng.create 57) m ~runs:3 ~candidate_count:30
       ~predict:(Selectors.vivaldi_predict system) ())
      .Experiment.penalties
  in
  let before = Stats.median (penalties ()) in
  Dynamic_neighbors.run system
    { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 6 };
  let after = Stats.median (penalties ()) in
  Alcotest.(check bool)
    (Printf.sprintf "median penalty improved (%.1f%% -> %.1f%%)" before after)
    true (after < before)

let test_meridian_worse_on_tiv_than_euclidean () =
  let m = matrix () in
  let n = Matrix.size m in
  let eucl = Euclidean.uniform_box (Rng.create 58) ~n ~dim:5 ~side_ms:250. in
  let run m =
    let cfg = Ring.unlimited_config n in
    let r =
      Experiment.run_meridian (Rng.create 59) m ~runs:3 ~meridian_count:(n / 5)
        ~termination:Query.Any_improvement
        ~build:(Selectors.meridian_build m cfg) ()
    in
    let p = r.Experiment.base.Experiment.penalties in
    let perfect = Array.fold_left (fun acc x -> if x <= 1e-9 then acc + 1 else acc) 0 p in
    float_of_int perfect /. float_of_int (Array.length p)
  in
  let frac_eucl = run eucl and frac_tiv = run m in
  Alcotest.(check bool)
    (Printf.sprintf "idealized Meridian: euclidean %.3f vs tiv %.3f" frac_eucl frac_tiv)
    true
    (frac_eucl > frac_tiv)

let test_tiv_aware_meridian_not_worse () =
  let m = matrix () in
  let cfg = Ring.default_config in
  let system = Lazy.force vivaldi in
  let predicted i j = System.predicted system i j in
  let run ?fallback build =
    let r =
      Experiment.run_meridian (Rng.create 60) m ~runs:3 ~meridian_count:80
        ?fallback ~build ()
    in
    ( Stats.mean r.Experiment.base.Experiment.penalties,
      r.Experiment.probes )
  in
  let mean_orig, probes_orig = run (Selectors.meridian_build m cfg) in
  let mean_aware, probes_aware =
    run
      ~fallback:(Selectors.meridian_fallback_tiv_aware m ~predicted ())
      (Selectors.meridian_build_tiv_aware m cfg ~predicted)
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean penalty not degraded (%.1f vs %.1f)" mean_orig mean_aware)
    true
    (mean_aware <= mean_orig *. 1.2 +. 5.);
  (* Dual placement + restarts must cost some extra probes, but only a
     modest fraction (the paper reports ~5-6%). *)
  let overhead =
    float_of_int (probes_aware - probes_orig) /. float_of_int probes_orig
  in
  Alcotest.(check bool)
    (Printf.sprintf "probe overhead modest (%.1f%%)" (100. *. overhead))
    true
    (overhead > -0.05 && overhead < 0.5)

let test_full_pipeline_determinism () =
  (* Same seeds, same penalties: the entire pipeline is reproducible. *)
  let run () =
    let data = Datasets.generate ~size:80 ~seed:99 Datasets.Ds2 in
    let m = data.Generator.matrix in
    let system = Selectors.embed_vivaldi ~rounds:50 (Rng.create 3) m in
    (Experiment.run_predictor (Rng.create 4) m ~runs:2 ~candidate_count:16
       ~predict:(Selectors.vivaldi_predict system) ())
      .Experiment.penalties
  in
  let a = run () and b = run () in
  Alcotest.(check (array (float 0.))) "identical penalty arrays" a b

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "world shape" `Quick test_world_has_clusters_and_tivs;
          Alcotest.test_case "embedding shrinks severe edges" `Quick
            test_embedding_shrinks_severe_edges;
          Alcotest.test_case "alert quality" `Quick test_alert_quality_end_to_end;
          Alcotest.test_case "dynamic neighbors improve selection" `Slow
            test_dynamic_neighbor_vivaldi_improves_selection;
          Alcotest.test_case "meridian euclidean vs tiv" `Slow
            test_meridian_worse_on_tiv_than_euclidean;
          Alcotest.test_case "tiv-aware meridian sane" `Slow test_tiv_aware_meridian_not_worse;
          Alcotest.test_case "determinism" `Quick test_full_pipeline_determinism;
        ] );
    ]
