(* Tests for the Vivaldi network coordinate system. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Vec = Tivaware_util.Vec
module Welford = Tivaware_util.Welford
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module System = Tivaware_vivaldi.System
module Trace = Tivaware_vivaldi.Trace
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors

let checkf_loose eps = Alcotest.check (Alcotest.float eps)

let euclidean_matrix seed n =
  Euclidean.uniform_box (Rng.create seed) ~n ~dim:3 ~side_ms:200.

let test_create_shape () =
  let m = euclidean_matrix 1 30 in
  let s = System.create (Rng.create 2) m in
  Alcotest.(check int) "size" 30 (System.size s);
  Alcotest.(check int) "coordinate dim" 5 (Vec.dim (System.coord s 0));
  Alcotest.(check int) "neighbor count clamped to n-1"
    (min System.default_config.System.neighbors_per_node 29)
    (Array.length (System.neighbors s 0));
  Alcotest.(check bool) "no self neighbor" false
    (Array.exists (( = ) 0) (System.neighbors s 0));
  Alcotest.(check (float 0.)) "initial error estimate" 1. (System.error_estimate s 0)

let test_neighbors_fewer_than_nodes () =
  (* 5 nodes but 32 requested: neighbor sets must hold the other 4. *)
  let m = euclidean_matrix 3 5 in
  let s = System.create (Rng.create 4) m in
  Alcotest.(check int) "clamped neighbor count" 4 (Array.length (System.neighbors s 0))

let test_two_node_convergence () =
  (* Two nodes at delay 50 must converge to predicted distance 50. *)
  let m = Matrix.create 2 in
  Matrix.set m 0 1 50.;
  let config = { System.default_config with System.neighbors_per_node = 1 } in
  let s = System.create ~config (Rng.create 5) m in
  System.run s ~rounds:500;
  checkf_loose 2. "converged distance" 50. (System.predicted s 0 1)

let test_euclidean_convergence () =
  (* A genuinely Euclidean delay space embeds with low error. *)
  let m = euclidean_matrix 6 40 in
  let s = System.create (Rng.create 7) m in
  System.run s ~rounds:400;
  let rel = System.relative_errors s in
  Alcotest.(check bool) "median relative error under 12%" true
    (Stats.median rel < 0.12)

let test_error_estimate_decreases () =
  let m = euclidean_matrix 8 30 in
  let s = System.create (Rng.create 9) m in
  System.run s ~rounds:300;
  let final_err =
    Stats.mean (Array.init 30 (fun i -> System.error_estimate s i))
  in
  Alcotest.(check bool) "confidence improved from 1.0" true (final_err < 0.5)

let test_observe_missing_noop () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 10.;
  (* edge 0-2 missing *)
  let config = { System.default_config with System.neighbors_per_node = 2 } in
  let s = System.create ~config (Rng.create 10) m in
  let before = System.coord s 0 in
  System.observe s 0 2;
  Alcotest.(check (array (float 0.))) "no movement on missing measurement" before
    (System.coord s 0)

let test_observe_moves_toward_target () =
  let m = Matrix.create 2 in
  Matrix.set m 0 1 100.;
  let config =
    { System.default_config with System.neighbors_per_node = 1;
      System.timestep = System.Constant 0.5 }
  in
  let s = System.create ~config (Rng.create 11) m in
  let err_before = abs_float (System.predicted s 0 1 -. 100.) in
  System.observe s 0 1;
  let err_after = abs_float (System.predicted s 0 1 -. 100.) in
  Alcotest.(check bool) "error shrank" true (err_after < err_before)

let test_set_neighbors_validation () =
  let m = euclidean_matrix 12 10 in
  let s = System.create (Rng.create 13) m in
  Alcotest.check_raises "self loop"
    (Invalid_argument "System.set_neighbors: self-loop") (fun () ->
      System.set_neighbors s 3 [| 3 |]);
  System.set_neighbors s 3 [| 1; 2 |];
  Alcotest.(check (array int)) "updated" [| 1; 2 |] (System.neighbors s 3)

let test_neighbor_edges_dedupe () =
  let m = euclidean_matrix 14 4 in
  let s = System.create (Rng.create 15) m in
  System.set_neighbors s 0 [| 1 |];
  System.set_neighbors s 1 [| 0 |];
  System.set_neighbors s 2 [| 0 |];
  System.set_neighbors s 3 [| 0 |];
  let edges = List.sort compare (System.neighbor_edges s) in
  Alcotest.(check (list (pair int int))) "deduplicated normalized edges"
    [ (0, 1); (0, 2); (0, 3) ] edges

let test_movement_tracking () =
  let m = euclidean_matrix 16 20 in
  let s = System.create (Rng.create 17) m in
  Alcotest.(check int) "no movement initially" 0 (Welford.count (System.movement s));
  System.run s ~rounds:3;
  Alcotest.(check bool) "movement recorded" true (Welford.count (System.movement s) > 0);
  System.reset_movement s;
  Alcotest.(check int) "reset" 0 (Welford.count (System.movement s))

let test_rounds_elapsed () =
  let m = euclidean_matrix 18 10 in
  let s = System.create (Rng.create 19) m in
  System.run s ~rounds:7;
  Alcotest.(check int) "rounds counted" 7 (System.rounds_elapsed s)

let test_prediction_ratio () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 10.;
  let config = { System.default_config with System.neighbors_per_node = 1 } in
  let s = System.create ~config (Rng.create 20) m in
  let r = System.prediction_ratio s 0 1 in
  checkf_loose 1e-9 "ratio = predicted/measured" (System.predicted s 0 1 /. 10.) r;
  Alcotest.(check bool) "missing edge ratio is nan" true
    (Float.is_nan (System.prediction_ratio s 0 2))

(* ------------------------------------------------------------------ *)
(* Height vectors                                                      *)

let test_height_config_convergence () =
  (* Heights model access links: a star topology (hub + leaves all far
     from each other but equally near the hub) embeds better with
     heights than plain 2-D coordinates. *)
  let n = 12 in
  let m =
    Matrix.init n (fun i j ->
        if i = 0 || j = 0 then 50. (* leaf <-> hub *)
        else 100. (* leaf <-> leaf via hub *))
  in
  let run height =
    let config =
      { System.default_config with System.dim = 2; height; neighbors_per_node = n - 1 }
    in
    let s = System.create ~config (Rng.create 40) m in
    System.run s ~rounds:400;
    Stats.median (System.relative_errors s)
  in
  let err_flat = run false and err_height = run true in
  Alcotest.(check bool)
    (Printf.sprintf "heights help on star topology (%.3f vs %.3f)" err_height err_flat)
    true
    (err_height < err_flat +. 0.02)

let test_height_nonnegative () =
  let m = euclidean_matrix 41 20 in
  let config = { System.default_config with System.height = true } in
  let s = System.create ~config (Rng.create 42) m in
  System.run s ~rounds:100;
  for i = 0 to 19 do
    let c = System.coord s i in
    Alcotest.(check bool) "height slot stays positive" true
      (c.(System.default_config.System.dim) > 0.)
  done

let test_height_distance_definition () =
  let m = euclidean_matrix 43 10 in
  let config = { System.default_config with System.dim = 3; height = true } in
  let s = System.create ~config (Rng.create 44) m in
  let ci = System.coord s 0 and cj = System.coord s 1 in
  let eu = ref 0. in
  for d = 0 to 2 do
    let diff = ci.(d) -. cj.(d) in
    eu := !eu +. (diff *. diff)
  done;
  checkf_loose 1e-9 "predicted = euclid + h_i + h_j"
    (sqrt !eu +. ci.(3) +. cj.(3))
    (System.predicted s 0 1)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_error_traces_shape () =
  let m = euclidean_matrix 21 10 in
  let s = System.create (Rng.create 22) m in
  let traces = Trace.error_traces s ~edges:[ (0, 1); (2, 3) ] ~rounds:25 in
  Alcotest.(check int) "one trace per edge" 2 (List.length traces);
  List.iter
    (fun t -> Alcotest.(check int) "trace length" 25 (Array.length t.Trace.errors))
    traces

let test_oscillation_shape () =
  let m = euclidean_matrix 23 15 in
  let s = System.create (Rng.create 24) m in
  System.run s ~rounds:50;
  let osc = Trace.oscillation s ~rounds:20 in
  Alcotest.(check int) "one range per edge" (Matrix.edge_count m)
    (Array.length osc.Trace.ranges);
  Array.iter
    (fun r -> Alcotest.(check bool) "ranges non-negative" true (r >= 0.))
    osc.Trace.ranges

let test_oscillation_small_on_converged_euclidean () =
  let m = euclidean_matrix 25 25 in
  let s = System.create (Rng.create 26) m in
  System.run s ~rounds:500;
  let osc = Trace.oscillation s ~rounds:50 in
  Alcotest.(check bool) "median oscillation modest on metric data" true
    (Stats.median osc.Trace.ranges < 40.)

let test_steady_state_stats () =
  let m = euclidean_matrix 27 20 in
  let s = System.create (Rng.create 28) m in
  System.run s ~rounds:100;
  let st = Trace.steady_state_stats s ~rounds:10 in
  Alcotest.(check bool) "median <= p90 (error)" true
    (st.Trace.median_abs_error <= st.Trace.p90_abs_error);
  Alcotest.(check bool) "median <= p90 (movement)" true
    (st.Trace.median_movement <= st.Trace.p90_movement);
  Alcotest.(check bool) "all non-negative" true
    (st.Trace.median_abs_error >= 0. && st.Trace.median_movement >= 0.)

(* ------------------------------------------------------------------ *)
(* Protocol (event-driven)                                             *)

module Protocol = Tivaware_vivaldi.Protocol
module Sim = Tivaware_eventsim.Sim

let test_protocol_probe_accounting () =
  let m = euclidean_matrix 50 20 in
  let s = System.create (Rng.create 51) m in
  let sim = Sim.create () in
  let stats = Protocol.run sim s ~duration:10. in
  (* ~20 nodes x ~10 probes each. *)
  Alcotest.(check bool)
    (Printf.sprintf "sent %d probes" stats.Protocol.probes_sent)
    true
    (stats.Protocol.probes_sent > 100 && stats.Protocol.probes_sent < 300);
  Alcotest.(check bool) "nearly all completed" true
    (stats.Protocol.probes_completed >= stats.Protocol.probes_sent - 25);
  Alcotest.(check bool) "clock at deadline" true (Sim.now sim >= 10.)

let test_protocol_converges () =
  let m = euclidean_matrix 52 30 in
  let s = System.create (Rng.create 53) m in
  let sim = Sim.create () in
  ignore (Protocol.run sim s ~duration:400.);
  let rel = System.relative_errors s in
  Alcotest.(check bool)
    (Printf.sprintf "median rel error %.3f" (Stats.median rel))
    true
    (Stats.median rel < 0.15)

let test_protocol_churn_accounting () =
  let m = euclidean_matrix 56 25 in
  let s = System.create (Rng.create 57) m in
  let sim = Sim.create () in
  let churn = { Protocol.mean_uptime = 20.; mean_downtime = 5. } in
  let stats = Protocol.run_with_churn ~churn sim s ~duration:100. in
  Alcotest.(check bool) "failures happened" true (stats.Protocol.failures > 0);
  Alcotest.(check bool) "rejoins happened" true (stats.Protocol.rejoins > 0);
  Alcotest.(check bool) "some probes lost to churn" true
    (stats.Protocol.probes_lost > 0);
  Alcotest.(check bool) "accounting bounded" true
    (stats.Protocol.base.Protocol.probes_completed
     + stats.Protocol.probes_lost
    <= stats.Protocol.base.Protocol.probes_sent);
  (* Expected alive fraction 20/25 = 0.8. *)
  Alcotest.(check (float 1e-9)) "alive hint" 0.8 (Protocol.alive_fraction_hint churn)

let test_protocol_churn_still_useful () =
  (* Even with churn, coordinates of surviving nodes should be usable
     (errors bounded), demonstrating Vivaldi's self-healing. *)
  let m = euclidean_matrix 58 30 in
  let s = System.create (Rng.create 59) m in
  let sim = Sim.create () in
  let churn = { Protocol.mean_uptime = 120.; mean_downtime = 10. } in
  ignore (Protocol.run_with_churn ~churn sim s ~duration:400.);
  let rel = System.relative_errors s in
  Alcotest.(check bool)
    (Printf.sprintf "median rel error %.3f under churn" (Stats.median rel))
    true
    (Stats.median rel < 0.35)

let test_protocol_reset_node () =
  let m = euclidean_matrix 60 10 in
  let s = System.create (Rng.create 61) m in
  System.run s ~rounds:200;
  let before = System.error_estimate s 3 in
  Alcotest.(check bool) "converged confidence" true (before < 0.9);
  System.reset_node s 3;
  Alcotest.(check (float 0.)) "error reset" 1. (System.error_estimate s 3);
  Alcotest.(check bool) "coordinate re-randomized near origin" true
    (Tivaware_util.Vec.norm (System.coord s 3) < 3.)

let test_protocol_resumable () =
  let m = euclidean_matrix 54 15 in
  let s = System.create (Rng.create 55) m in
  let sim = Sim.create () in
  let a = Protocol.run sim s ~duration:5. in
  let t1 = Sim.now sim in
  let b = Protocol.run sim s ~duration:5. in
  Alcotest.(check bool) "clock advanced again" true (Sim.now sim >= t1 +. 5. -. 1e-9);
  Alcotest.(check bool) "both phases probed" true
    (a.Protocol.probes_sent > 0 && b.Protocol.probes_sent > 0)

(* ------------------------------------------------------------------ *)
(* Dynamic neighbors                                                   *)

let tiv_matrix seed n =
  (Tivaware_topology.Datasets.generate ~size:n ~seed Tivaware_topology.Datasets.Ds2)
    .Tivaware_topology.Generator.matrix

let test_refresh_preserves_count () =
  let m = tiv_matrix 29 60 in
  let s = System.create (Rng.create 30) m in
  System.run s ~rounds:50;
  let before = Array.length (System.neighbors s 0) in
  Dynamic_neighbors.refresh_neighbors s;
  Alcotest.(check int) "count preserved" before (Array.length (System.neighbors s 0));
  Alcotest.(check bool) "no self neighbor" false
    (Array.exists (( = ) 0) (System.neighbors s 0))

let test_refresh_drops_shrunk () =
  (* The refresh must keep the highest-prediction-ratio candidates. *)
  let m = tiv_matrix 31 60 in
  let s = System.create (Rng.create 32) m in
  System.run s ~rounds:100;
  Dynamic_neighbors.refresh_neighbors s;
  (* After refresh, a node's kept neighbors should not include edges with
     dramatically smaller ratio than the median of its candidates. *)
  let ratios =
    Array.to_list (System.neighbors s 5)
    |> List.filter_map (fun j ->
           let r = System.prediction_ratio s 5 j in
           if Float.is_nan r then None else Some r)
  in
  let sorted = List.sort compare ratios in
  (match sorted with
  | least :: _ ->
    Alcotest.(check bool) "kept neighbors not badly shrunk" true (least > 0.2)
  | [] -> Alcotest.fail "no measurable neighbors")

let test_run_schedule () =
  let m = tiv_matrix 33 50 in
  let s = System.create (Rng.create 34) m in
  let iterations = ref [] in
  Dynamic_neighbors.run
    ~on_iteration:(fun k _ -> iterations := k :: !iterations)
    s
    { Dynamic_neighbors.rounds_per_iteration = 10; iterations = 4 };
  Alcotest.(check (list int)) "callbacks in order" [ 1; 2; 3; 4 ] (List.rev !iterations);
  Alcotest.(check int) "rounds accumulated" 40 (System.rounds_elapsed s)

let test_dynamic_reduces_neighbor_severity () =
  let m = tiv_matrix 35 80 in
  let severity = Tivaware_tiv.Severity.all m in
  let mean_neighbor_severity s =
    let vals = ref [] in
    List.iter
      (fun (i, j) ->
        if Matrix.known severity i j then vals := Matrix.get severity i j :: !vals)
      (System.neighbor_edges s);
    Stats.mean (Array.of_list !vals)
  in
  let s = System.create (Rng.create 36) m in
  System.run s ~rounds:100;
  let before = mean_neighbor_severity s in
  Dynamic_neighbors.run s { Dynamic_neighbors.rounds_per_iteration = 60; iterations = 5 };
  let after = mean_neighbor_severity s in
  Alcotest.(check bool)
    (Printf.sprintf "severity reduced (%.4f -> %.4f)" before after)
    true (after < before)

let () =
  Alcotest.run "vivaldi"
    [
      ( "system",
        [
          Alcotest.test_case "create shape" `Quick test_create_shape;
          Alcotest.test_case "clamped neighbors" `Quick test_neighbors_fewer_than_nodes;
          Alcotest.test_case "two-node convergence" `Quick test_two_node_convergence;
          Alcotest.test_case "euclidean convergence" `Quick test_euclidean_convergence;
          Alcotest.test_case "error estimate decreases" `Quick test_error_estimate_decreases;
          Alcotest.test_case "missing measurement noop" `Quick test_observe_missing_noop;
          Alcotest.test_case "observe moves toward target" `Quick test_observe_moves_toward_target;
          Alcotest.test_case "set_neighbors validation" `Quick test_set_neighbors_validation;
          Alcotest.test_case "neighbor_edges dedupe" `Quick test_neighbor_edges_dedupe;
          Alcotest.test_case "movement tracking" `Quick test_movement_tracking;
          Alcotest.test_case "rounds elapsed" `Quick test_rounds_elapsed;
          Alcotest.test_case "prediction ratio" `Quick test_prediction_ratio;
        ] );
      ( "height",
        [
          Alcotest.test_case "star topology benefit" `Slow test_height_config_convergence;
          Alcotest.test_case "non-negative heights" `Quick test_height_nonnegative;
          Alcotest.test_case "distance definition" `Quick test_height_distance_definition;
        ] );
      ( "trace",
        [
          Alcotest.test_case "error traces shape" `Quick test_error_traces_shape;
          Alcotest.test_case "oscillation shape" `Quick test_oscillation_shape;
          Alcotest.test_case "oscillation small on euclidean" `Quick
            test_oscillation_small_on_converged_euclidean;
          Alcotest.test_case "steady state stats" `Quick test_steady_state_stats;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "probe accounting" `Quick test_protocol_probe_accounting;
          Alcotest.test_case "converges" `Quick test_protocol_converges;
          Alcotest.test_case "churn accounting" `Quick test_protocol_churn_accounting;
          Alcotest.test_case "useful under churn" `Quick test_protocol_churn_still_useful;
          Alcotest.test_case "reset node" `Quick test_protocol_reset_node;
          Alcotest.test_case "resumable" `Quick test_protocol_resumable;
        ] );
      ( "dynamic_neighbors",
        [
          Alcotest.test_case "refresh preserves count" `Quick test_refresh_preserves_count;
          Alcotest.test_case "refresh drops shrunk edges" `Quick test_refresh_drops_shrunk;
          Alcotest.test_case "run schedule" `Quick test_run_schedule;
          Alcotest.test_case "reduces neighbor severity" `Quick
            test_dynamic_reduces_neighbor_severity;
        ] );
    ]
