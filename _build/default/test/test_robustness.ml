(* Robustness and failure-injection tests: degenerate inputs, heavy
   missing data, tiny worlds — the situations a library meets when fed
   real measurement files rather than friendly synthetic ones. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix
module Clustering = Tivaware_delay_space.Clustering
module Shortest_path = Tivaware_delay_space.Shortest_path
module Repair = Tivaware_delay_space.Repair
module Properties = Tivaware_delay_space.Properties
module Euclidean = Tivaware_topology.Euclidean
module Severity = Tivaware_tiv.Severity
module Triangle = Tivaware_tiv.Triangle
module Alert = Tivaware_tiv.Alert
module System = Tivaware_vivaldi.System
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Query = Tivaware_meridian.Query
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors

(* ------------------------------------------------------------------ *)
(* Tiny and degenerate matrices                                        *)

let test_two_node_world () =
  let m = Matrix.create 2 in
  Matrix.set m 0 1 10.;
  (* Severity on a 2-node world is trivially zero (no intermediates). *)
  Alcotest.(check (float 1e-9)) "no intermediates, no severity" 0.
    (Severity.edge_severity m 0 1);
  let census = Triangle.census m in
  Alcotest.(check int) "no triangles" 0 census.Triangle.triangles;
  (* Vivaldi still converges. *)
  let config = { System.default_config with System.neighbors_per_node = 1 } in
  let s = System.create ~config (Rng.create 1) m in
  System.run s ~rounds:300;
  Alcotest.(check bool) "embedding works" true
    (abs_float (System.predicted s 0 1 -. 10.) < 2.)

let test_empty_matrix_analyses () =
  let m = Matrix.create 5 in
  (* All entries missing. *)
  Alcotest.(check int) "no edges" 0 (Matrix.edge_count m);
  Alcotest.(check int) "no triangles" 0 (Triangle.census m).Triangle.triangles;
  Alcotest.(check bool) "properties raise on empty" true
    (match Properties.analyze m with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let sp = Shortest_path.all_pairs m in
  Alcotest.(check int) "shortest paths all missing" 0 (Matrix.edge_count sp)

let test_uniform_delay_world () =
  (* Every pair at exactly 50ms: a metric space, heavily degenerate. *)
  let m = Matrix.init 20 (fun _ _ -> 50.) in
  let census = Triangle.census m in
  Alcotest.(check int) "no violations" 0 census.Triangle.violating;
  let sev = Severity.all m in
  Matrix.iter_edges sev (fun _ _ s ->
      Alcotest.(check (float 1e-9)) "zero severity" 0. s);
  let a = Clustering.cluster ~k:3 ~radius_ms:60. m in
  (* Everything lands in one ball. *)
  Alcotest.(check int) "one real cluster" 20
    (Array.length a.Clustering.clusters.(0))

let test_disconnected_components () =
  (* Two islands with no cross measurements. *)
  let m = Matrix.create 8 in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      Matrix.set m i j 10.
    done
  done;
  for i = 4 to 7 do
    for j = i + 1 to 7 do
      Matrix.set m i j 10.
    done
  done;
  let d = Shortest_path.single_source m 0 in
  Alcotest.(check bool) "cross-island unreachable" true (d.(5) = infinity);
  let filled = Repair.fill_missing_shortest_path m in
  Alcotest.(check bool) "cross-island stays missing after repair" true
    (Matrix.is_missing filled 0 5);
  (* Degree filter separates the components cleanly. *)
  let kept, mapping = Repair.drop_low_degree m ~min_degree:3 in
  Alcotest.(check int) "both islands survive" 8 (Matrix.size kept);
  Alcotest.(check int) "mapping complete" 8 (Array.length mapping)

(* ------------------------------------------------------------------ *)
(* Heavy missing data                                                  *)

let sparse_matrix seed n missing =
  let rng = Rng.create seed in
  Matrix.init n (fun _ _ ->
      if Rng.bernoulli rng missing then nan else Rng.uniform rng 5. 300.)

let test_sparse_severity_defined () =
  let m = sparse_matrix 2 40 0.6 in
  let sev = Severity.all m in
  Matrix.iter_edges sev (fun _ _ s ->
      Alcotest.(check bool) "severity finite and non-negative" true
        (Float.is_finite s && s >= 0.))

let test_sparse_vivaldi_survives () =
  let m = sparse_matrix 3 50 0.5 in
  let s = System.create (Rng.create 4) m in
  System.run s ~rounds:100;
  (* Coordinates must stay finite despite constant missing probes. *)
  for i = 0 to 49 do
    Array.iter
      (fun x -> Alcotest.(check bool) "finite coordinate" true (Float.is_finite x))
      (System.coord s i)
  done

let test_sparse_experiment_counts_failures () =
  let m = sparse_matrix 5 60 0.7 in
  let r =
    Experiment.run_predictor (Rng.create 6) m ~runs:2 ~candidate_count:10
      ~predict:(fun i j -> Matrix.get m i j) ()
  in
  Alcotest.(check int) "accounting adds up" 100
    (Array.length r.Experiment.penalties + r.Experiment.failures)

let test_sparse_meridian_queries () =
  let m = sparse_matrix 7 60 0.4 in
  let r =
    Experiment.run_meridian (Rng.create 8) m ~runs:2 ~meridian_count:30
      ~build:(Selectors.meridian_build m Ring.default_config) ()
  in
  Alcotest.(check bool) "some queries succeed" true (r.Experiment.queries > 0);
  Array.iter
    (fun p -> Alcotest.(check bool) "penalties finite" true (Float.is_finite p))
    r.Experiment.base.Experiment.penalties

(* ------------------------------------------------------------------ *)
(* Hostile delay values                                                *)

let test_extreme_delay_scales () =
  (* Microsecond-ish and multi-second delays in one matrix. *)
  let m = Matrix.create 4 in
  Matrix.set m 0 1 0.001;
  Matrix.set m 1 2 8000.;
  Matrix.set m 0 2 8000.;
  Matrix.set m 0 3 1.;
  Matrix.set m 1 3 1.;
  Matrix.set m 2 3 7999.5;
  let sev = Severity.all m in
  Matrix.iter_edges sev (fun _ _ s ->
      Alcotest.(check bool) "severity finite across scales" true (Float.is_finite s));
  let s = System.create ~config:{ System.default_config with System.neighbors_per_node = 3 }
      (Rng.create 9) m in
  System.run s ~rounds:200;
  for i = 0 to 3 do
    Array.iter
      (fun x -> Alcotest.(check bool) "coords finite" true (Float.is_finite x))
      (System.coord s i)
  done

let test_alert_zero_delay_edges () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 0.;
  Matrix.set m 0 2 10.;
  Matrix.set m 1 2 10.;
  let ratios = Alert.ratio_matrix ~measured:m ~predicted:(fun _ _ -> 5.) in
  (* The zero-delay edge is dropped rather than producing infinity. *)
  Alcotest.(check bool) "zero-delay edge excluded" true (Matrix.is_missing ratios 0 1);
  Alcotest.(check (float 1e-9)) "normal edge ratio" 0.5 (Matrix.get ratios 0 2)

let test_overlay_on_disconnected () =
  (* Meridian nodes that cannot measure the target: queries must fail
     gracefully via Invalid_argument, not loop. *)
  let m = Matrix.create 6 in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      Matrix.set m i j 10.
    done
  done;
  (* nodes 4,5 isolated *)
  let overlay =
    Overlay.build (Rng.create 10) m Ring.default_config ~meridian_nodes:[| 0; 1; 2 |]
  in
  Alcotest.(check bool) "unmeasurable target rejected" true
    (match Query.closest overlay m ~start:0 ~target:4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Determinism under identical seeds, variation under different ones   *)

let test_seed_isolation () =
  let run seed =
    let data =
      Tivaware_topology.Datasets.generate ~size:60 ~seed
        Tivaware_topology.Datasets.Ds2
    in
    Stats.mean (Matrix.delays data.Tivaware_topology.Generator.matrix)
  in
  Alcotest.(check (float 0.)) "same seed" (run 1) (run 1);
  Alcotest.(check bool) "different seeds differ" true (run 1 <> run 2)

let () =
  Alcotest.run "robustness"
    [
      ( "degenerate",
        [
          Alcotest.test_case "two-node world" `Quick test_two_node_world;
          Alcotest.test_case "empty matrix" `Quick test_empty_matrix_analyses;
          Alcotest.test_case "uniform delays" `Quick test_uniform_delay_world;
          Alcotest.test_case "disconnected components" `Quick test_disconnected_components;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "severity defined" `Quick test_sparse_severity_defined;
          Alcotest.test_case "vivaldi survives" `Quick test_sparse_vivaldi_survives;
          Alcotest.test_case "experiment accounting" `Quick test_sparse_experiment_counts_failures;
          Alcotest.test_case "meridian queries" `Quick test_sparse_meridian_queries;
        ] );
      ( "hostile",
        [
          Alcotest.test_case "extreme delay scales" `Quick test_extreme_delay_scales;
          Alcotest.test_case "zero-delay alert edges" `Quick test_alert_zero_delay_edges;
          Alcotest.test_case "disconnected overlay" `Quick test_overlay_on_disconnected;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seed isolation" `Quick test_seed_isolation ] );
    ]
