(* Tests for the IDES and LAT strawman embeddings. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Vec = Tivaware_util.Vec
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module System = Tivaware_vivaldi.System
module Ides = Tivaware_embedding.Ides
module Lat = Tivaware_embedding.Lat
module Error = Tivaware_embedding.Error

let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkf_loose eps = Alcotest.check (Alcotest.float eps)

(* A perfectly factorizable "delay" matrix: D(i,j) = x_i . y_j with
   symmetric structure.  IDES must fit this with tiny error. *)
let factorizable_matrix seed n dim =
  let rng = Rng.create seed in
  let vecs =
    Array.init n (fun _ -> Array.init dim (fun _ -> Rng.uniform rng 0.5 3.))
  in
  Matrix.init n (fun i j -> Vec.dot vecs.(i) vecs.(j))

let test_ides_fits_factorizable () =
  let m = factorizable_matrix 1 40 4 in
  let config = { Ides.default_config with Ides.dim = 4; landmarks = 12; iterations = 4000 } in
  let ides = Ides.fit ~config (Rng.create 2) m in
  Alcotest.(check bool)
    (Printf.sprintf "landmark rmse small (%.3f)" (Ides.landmark_rmse ides))
    true
    (Ides.landmark_rmse ides < 0.5);
  let err = Error.evaluate m ~predicted:(Ides.predicted ides) in
  Alcotest.(check bool)
    (Printf.sprintf "median relative error small (%.3f)" err.Error.median_rel)
    true (err.Error.median_rel < 0.1)

let test_ides_euclidean_reasonable () =
  let m = Euclidean.uniform_box (Rng.create 3) ~n:60 ~dim:3 ~side_ms:200. in
  let ides = Ides.fit (Rng.create 4) m in
  let err = Error.evaluate m ~predicted:(Ides.predicted ides) in
  Alcotest.(check bool)
    (Printf.sprintf "usable accuracy (%.3f)" err.Error.median_rel)
    true (err.Error.median_rel < 0.5)

let test_ides_nonnegative_output () =
  let m = Euclidean.uniform_box (Rng.create 5) ~n:40 ~dim:3 ~side_ms:100. in
  let ides = Ides.fit (Rng.create 6) m in
  for i = 0 to 39 do
    for j = 0 to 39 do
      Alcotest.(check bool) "predictions floored at 0" true (Ides.predicted ides i j >= 0.)
    done
  done

let test_ides_nmf_variant () =
  let m = factorizable_matrix 7 30 3 in
  let config =
    { Ides.default_config with Ides.dim = 3; landmarks = 10; nonnegative = true;
      iterations = 4000 }
  in
  let ides = Ides.fit ~config (Rng.create 8) m in
  let err = Error.evaluate m ~predicted:(Ides.predicted ides) in
  Alcotest.(check bool)
    (Printf.sprintf "nmf fits non-negative data (%.3f)" err.Error.median_rel)
    true (err.Error.median_rel < 0.2)

let test_ides_too_few_nodes () =
  let m = Matrix.init 5 (fun _ _ -> 10.) in
  Alcotest.check_raises "fewer nodes than landmarks"
    (Invalid_argument "Ides.fit: fewer nodes than landmarks") (fun () ->
      ignore (Ides.fit (Rng.create 9) m))

let test_ides_landmarks_exposed () =
  let m = Euclidean.uniform_box (Rng.create 10) ~n:30 ~dim:2 ~side_ms:100. in
  let config = { Ides.default_config with Ides.landmarks = 8 } in
  let ides = Ides.fit ~config (Rng.create 11) m in
  let l = Ides.landmarks ides in
  Alcotest.(check int) "landmark count" 8 (Array.length l);
  Array.iter
    (fun id -> Alcotest.(check bool) "valid landmark id" true (id >= 0 && id < 30))
    l

(* ------------------------------------------------------------------ *)
(* GNP                                                                 *)

module Gnp = Tivaware_embedding.Gnp

let test_gnp_euclidean_accuracy () =
  (* GNP must embed a genuinely Euclidean space with low error. *)
  let m = Euclidean.uniform_box (Rng.create 20) ~n:50 ~dim:3 ~side_ms:200. in
  let config = { Gnp.default_config with Gnp.dim = 3; landmarks = 10 } in
  let gnp = Gnp.fit ~config (Rng.create 21) m in
  let err = Error.evaluate m ~predicted:(Gnp.predicted gnp) in
  Alcotest.(check bool)
    (Printf.sprintf "median relative error small (%.3f)" err.Error.median_rel)
    true (err.Error.median_rel < 0.15)

let test_gnp_landmark_error_exposed () =
  let m = Euclidean.uniform_box (Rng.create 22) ~n:40 ~dim:3 ~side_ms:150. in
  let config = { Gnp.default_config with Gnp.dim = 3; landmarks = 8 } in
  let gnp = Gnp.fit ~config (Rng.create 23) m in
  Alcotest.(check bool) "landmark objective small on metric data" true
    (Gnp.landmark_error gnp < 0.05);
  Alcotest.(check int) "landmarks" 8 (Array.length (Gnp.landmarks gnp))

let test_gnp_too_few_nodes () =
  let m = Matrix.init 5 (fun _ _ -> 10.) in
  Alcotest.check_raises "fewer nodes than landmarks"
    (Invalid_argument "Gnp.fit: fewer nodes than landmarks") (fun () ->
      ignore (Gnp.fit (Rng.create 24) m))

let test_gnp_coord_dim () =
  let m = Euclidean.uniform_box (Rng.create 25) ~n:30 ~dim:2 ~side_ms:100. in
  let config = { Gnp.default_config with Gnp.dim = 4; landmarks = 8 } in
  let gnp = Gnp.fit ~config (Rng.create 26) m in
  Alcotest.(check int) "coordinate dimension" 4 (Vec.dim (Gnp.coord gnp 0))

let test_gnp_symmetric_predictions () =
  let m = Euclidean.uniform_box (Rng.create 27) ~n:25 ~dim:2 ~side_ms:100. in
  let config = { Gnp.default_config with Gnp.landmarks = 8; restarts = 1 } in
  let gnp = Gnp.fit ~config (Rng.create 28) m in
  for i = 0 to 24 do
    for j = 0 to 24 do
      checkf "symmetric" (Gnp.predicted gnp i j) (Gnp.predicted gnp j i)
    done
  done

(* ------------------------------------------------------------------ *)
(* Virtual landmarks                                                   *)

module Virtual_landmarks = Tivaware_embedding.Virtual_landmarks

let test_vl_euclidean_accuracy () =
  let m = Euclidean.uniform_box (Rng.create 30) ~n:80 ~dim:3 ~side_ms:200. in
  let config =
    { Virtual_landmarks.default_config with Virtual_landmarks.dim = 3 }
  in
  let vl = Virtual_landmarks.fit ~config (Rng.create 31) m in
  let err = Error.evaluate m ~predicted:(Virtual_landmarks.predicted vl) in
  Alcotest.(check bool)
    (Printf.sprintf "median relative error reasonable (%.3f)" err.Error.median_rel)
    true (err.Error.median_rel < 0.25)

let test_vl_explained_variance () =
  (* Points on a 2-D plane in delay space: two components capture
     (almost) everything. *)
  let m = Euclidean.uniform_box (Rng.create 32) ~n:60 ~dim:2 ~side_ms:150. in
  let config =
    { Virtual_landmarks.default_config with Virtual_landmarks.dim = 4 }
  in
  let vl = Virtual_landmarks.fit ~config (Rng.create 33) m in
  Alcotest.(check bool)
    (Printf.sprintf "variance captured (%.3f)" (Virtual_landmarks.explained_variance vl))
    true
    (Virtual_landmarks.explained_variance vl > 0.9)

let test_vl_scale_positive () =
  let m = Euclidean.uniform_box (Rng.create 34) ~n:50 ~dim:3 ~side_ms:100. in
  let vl = Virtual_landmarks.fit (Rng.create 35) m in
  Alcotest.(check bool) "scale positive" true (Virtual_landmarks.scale vl > 0.);
  Alcotest.(check int) "landmark count" 20
    (Array.length (Virtual_landmarks.landmarks vl))

let test_vl_too_few_nodes () =
  let m = Matrix.init 5 (fun _ _ -> 10.) in
  Alcotest.check_raises "fewer nodes than landmarks"
    (Invalid_argument "Virtual_landmarks.fit: fewer nodes than landmarks")
    (fun () -> ignore (Virtual_landmarks.fit (Rng.create 36) m))

let test_vl_handles_missing () =
  let rng = Rng.create 37 in
  let m =
    Matrix.init 40 (fun _ _ ->
        if Rng.bernoulli rng 0.15 then nan else Rng.uniform rng 10. 200.)
  in
  let config =
    { Virtual_landmarks.default_config with Virtual_landmarks.landmarks = 10 }
  in
  let vl = Virtual_landmarks.fit ~config (Rng.create 38) m in
  for i = 0 to 39 do
    for j = 0 to 39 do
      Alcotest.(check bool) "finite predictions despite holes" true
        (Float.is_finite (Virtual_landmarks.predicted vl i j))
    done
  done

(* ------------------------------------------------------------------ *)
(* LAT                                                                 *)

let test_lat_formula () =
  (* Hand-check the adjustment on a 3-node system with full sampling. *)
  let m = Matrix.create 3 in
  Matrix.set m 0 1 10.;
  Matrix.set m 0 2 20.;
  Matrix.set m 1 2 30.;
  let config = { System.default_config with System.neighbors_per_node = 2 } in
  let system = System.create ~config (Rng.create 12) m in
  let lat = Lat.fit ~sample_size:2 (Rng.create 13) system in
  (* e_0 = [ (10 - pred(0,1)) + (20 - pred(0,2)) ] / (2 * 2). *)
  let expected =
    ((10. -. System.predicted system 0 1) +. (20. -. System.predicted system 0 2)) /. 4.
  in
  checkf_loose 1e-9 "adjustment matches definition" expected (Lat.adjustment lat 0)

let test_lat_predicted_floor () =
  let m = Matrix.create 2 in
  Matrix.set m 0 1 0.5;
  let config = { System.default_config with System.neighbors_per_node = 1 } in
  let system = System.create ~config (Rng.create 14) m in
  let lat = Lat.fit (Rng.create 15) system in
  Alcotest.(check bool) "non-negative prediction" true (Lat.predicted lat 0 1 >= 0.)

let test_lat_improves_or_matches_aggregate () =
  (* LAT corrects systematic per-node bias, so on a TIV-heavy space its
     aggregate error should not be dramatically worse than raw Vivaldi. *)
  let data =
    Tivaware_topology.Datasets.generate ~size:100 ~seed:16 Tivaware_topology.Datasets.Ds2
  in
  let m = data.Tivaware_topology.Generator.matrix in
  let system = System.create (Rng.create 17) m in
  System.run system ~rounds:200;
  let lat = Lat.fit (Rng.create 18) system in
  let vivaldi_err = Error.evaluate m ~predicted:(fun i j -> System.predicted system i j) in
  let lat_err = Error.evaluate m ~predicted:(Lat.predicted lat) in
  Alcotest.(check bool)
    (Printf.sprintf "LAT median %.2f vs Vivaldi %.2f" lat_err.Error.median_abs
       vivaldi_err.Error.median_abs)
    true
    (lat_err.Error.median_abs < vivaldi_err.Error.median_abs *. 1.5)

(* ------------------------------------------------------------------ *)
(* Error                                                               *)

let test_error_perfect_predictor () =
  let m = Matrix.init 10 (fun i j -> float_of_int (i + j + 1)) in
  let e = Error.evaluate m ~predicted:(fun i j -> Matrix.get m i j) in
  checkf "median abs" 0. e.Error.median_abs;
  checkf "p90 rel" 0. e.Error.p90_rel;
  Alcotest.(check int) "all edges" 45 e.Error.edges

let test_error_constant_offset () =
  let m = Matrix.init 10 (fun _ _ -> 100.) in
  let e = Error.evaluate m ~predicted:(fun _ _ -> 110.) in
  checkf "median abs = offset" 10. e.Error.median_abs;
  checkf_loose 1e-9 "median rel" 0.1 e.Error.median_rel

let test_error_skips_zero_delays () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 0.;
  Matrix.set m 0 2 50.;
  let e = Error.evaluate m ~predicted:(fun _ _ -> 50.) in
  Alcotest.(check int) "zero-delay edge skipped" 1 e.Error.edges

let () =
  Alcotest.run "embedding"
    [
      ( "ides",
        [
          Alcotest.test_case "fits factorizable matrix" `Slow test_ides_fits_factorizable;
          Alcotest.test_case "euclidean accuracy" `Quick test_ides_euclidean_reasonable;
          Alcotest.test_case "non-negative output" `Quick test_ides_nonnegative_output;
          Alcotest.test_case "nmf variant" `Slow test_ides_nmf_variant;
          Alcotest.test_case "too few nodes" `Quick test_ides_too_few_nodes;
          Alcotest.test_case "landmarks exposed" `Quick test_ides_landmarks_exposed;
        ] );
      ( "gnp",
        [
          Alcotest.test_case "euclidean accuracy" `Slow test_gnp_euclidean_accuracy;
          Alcotest.test_case "landmark error" `Quick test_gnp_landmark_error_exposed;
          Alcotest.test_case "too few nodes" `Quick test_gnp_too_few_nodes;
          Alcotest.test_case "coordinate dimension" `Quick test_gnp_coord_dim;
          Alcotest.test_case "symmetric predictions" `Quick test_gnp_symmetric_predictions;
        ] );
      ( "virtual_landmarks",
        [
          Alcotest.test_case "euclidean accuracy" `Quick test_vl_euclidean_accuracy;
          Alcotest.test_case "explained variance" `Quick test_vl_explained_variance;
          Alcotest.test_case "scale and landmarks" `Quick test_vl_scale_positive;
          Alcotest.test_case "too few nodes" `Quick test_vl_too_few_nodes;
          Alcotest.test_case "handles missing" `Quick test_vl_handles_missing;
        ] );
      ( "lat",
        [
          Alcotest.test_case "adjustment formula" `Quick test_lat_formula;
          Alcotest.test_case "prediction floor" `Quick test_lat_predicted_floor;
          Alcotest.test_case "aggregate accuracy sane" `Quick test_lat_improves_or_matches_aggregate;
        ] );
      ( "error",
        [
          Alcotest.test_case "perfect predictor" `Quick test_error_perfect_predictor;
          Alcotest.test_case "constant offset" `Quick test_error_constant_offset;
          Alcotest.test_case "skips zero delays" `Quick test_error_skips_zero_delays;
        ] );
    ]
