(* Tests for Meridian: rings, overlay, recursive query, misplacement
   census, TIV-aware extensions. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Query = Tivaware_meridian.Query
module Misplacement = Tivaware_meridian.Misplacement
module Tiv_aware = Tivaware_meridian.Tiv_aware

let checkf = Alcotest.check (Alcotest.float 1e-9)

let qcheck ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)

let cfg = Ring.default_config

let test_ring_of_boundaries () =
  Alcotest.(check int) "below alpha" 1 (Ring.ring_of cfg 0.5);
  Alcotest.(check int) "at alpha" 1 (Ring.ring_of cfg 1.);
  Alcotest.(check int) "at alpha*s" 1 (Ring.ring_of cfg 2.);
  Alcotest.(check int) "just above alpha*s" 2 (Ring.ring_of cfg 2.01);
  Alcotest.(check int) "at 4" 2 (Ring.ring_of cfg 4.);
  Alcotest.(check int) "at 1024" 10 (Ring.ring_of cfg 1024.);
  Alcotest.(check int) "beyond outermost boundary" 11 (Ring.ring_of cfg 5000.)

let test_ring_radii () =
  checkf "ring 1 inner" 0. (Ring.inner_radius cfg 1);
  checkf "ring 2 inner" 2. (Ring.inner_radius cfg 2);
  checkf "ring 2 outer" 4. (Ring.outer_radius cfg 2);
  Alcotest.(check bool) "outermost outer infinite" true
    (Ring.outer_radius cfg cfg.Ring.rings = infinity)

let test_unlimited_config () =
  let u = Ring.unlimited_config 500 in
  Alcotest.(check int) "capacity holds all" 500 u.Ring.k;
  Alcotest.(check int) "no secondaries needed" 0 u.Ring.l

let prop_ring_of_consistent_with_radii =
  qcheck "ring_of lands within the ring's radii"
    QCheck2.Gen.(float_range 0.01 10_000.)
    (fun d ->
      let i = Ring.ring_of cfg d in
      (* The innermost ring also absorbs delays <= alpha; the outermost
         absorbs everything beyond its inner radius. *)
      d <= Ring.outer_radius cfg i
      && (i = 1 || d > Ring.inner_radius cfg i))

(* ------------------------------------------------------------------ *)
(* Overlay                                                             *)

let euclidean_matrix seed n =
  Euclidean.uniform_box (Rng.create seed) ~n ~dim:3 ~side_ms:300.

let build_overlay ?edge_filter ?placement seed m count =
  let rng = Rng.create seed in
  let nodes = Rng.sample_indices rng ~n:(Matrix.size m) ~k:count in
  (Overlay.build ?edge_filter ?placement rng m cfg ~meridian_nodes:nodes, nodes)

let test_overlay_membership () =
  let m = euclidean_matrix 1 60 in
  let overlay, nodes = build_overlay 2 m 30 in
  Alcotest.(check int) "meridian nodes" 30 (Array.length (Overlay.meridian_nodes overlay));
  Array.iter
    (fun id -> Alcotest.(check bool) "is_meridian" true (Overlay.is_meridian overlay id))
    nodes;
  let non_member = Array.to_list (Rng.permutation (Rng.create 3) 60)
                   |> List.find (fun i -> not (Overlay.is_meridian overlay i)) in
  Alcotest.(check bool) "non-member" false (Overlay.is_meridian overlay non_member)

let test_overlay_ring_placement () =
  let m = euclidean_matrix 4 50 in
  let overlay, nodes = build_overlay 5 m 25 in
  Array.iter
    (fun node ->
      for i = 1 to cfg.Ring.rings do
        List.iter
          (fun mem ->
            Alcotest.(check int) "member in its measured-delay ring" i
              (Ring.ring_of cfg mem.Overlay.delay))
          (Overlay.ring_members overlay node i)
      done)
    nodes

let test_overlay_capacity () =
  let m = euclidean_matrix 6 80 in
  let overlay, nodes = build_overlay 7 m 60 in
  Array.iter
    (fun node ->
      Array.iter
        (fun pop ->
          Alcotest.(check bool) "ring within capacity" true
            (pop <= cfg.Ring.k + cfg.Ring.l))
        (Overlay.ring_population overlay node))
    nodes

let test_overlay_edge_filter () =
  let m = euclidean_matrix 8 40 in
  let overlay, nodes = build_overlay 9 m 20 in
  let banned_peer = nodes.(1) and observer = nodes.(0) in
  let edge_filter a b = not ((a = observer && b = banned_peer) || (a = banned_peer && b = observer)) in
  let overlay_f, _ =
    let rng = Rng.create 9 in
    let nodes = Rng.sample_indices rng ~n:(Matrix.size m) ~k:20 in
    (Overlay.build ~edge_filter rng m cfg ~meridian_nodes:nodes, nodes)
  in
  ignore overlay;
  let members = Overlay.all_members overlay_f observer in
  Alcotest.(check bool) "banned peer filtered out" false
    (List.exists (fun mem -> mem.Overlay.id = banned_peer) members)

let test_overlay_placement_hook () =
  let m = euclidean_matrix 10 30 in
  let placement _ _ delay = [ (7, delay) ] in
  let overlay, nodes = build_overlay ~placement 11 m 15 in
  Array.iter
    (fun node ->
      for i = 1 to cfg.Ring.rings do
        if i <> 7 then
          Alcotest.(check int) "only ring 7 populated" 0
            (List.length (Overlay.ring_members overlay node i))
      done)
    nodes

let test_overlay_diverse_selection () =
  (* With a tiny ring capacity, Diverse selection must produce rings
     whose members are at least as spread out (min pairwise delay) as
     First_come's, and respect the same capacity. *)
  let m = euclidean_matrix 70 60 in
  let small = { cfg with Ring.k = 4 } in
  let rng1 = Rng.create 71 and rng2 = Rng.create 71 in
  let nodes = Rng.sample_indices (Rng.create 72) ~n:60 ~k:30 in
  let first = Overlay.build ~selection:Overlay.First_come rng1 m small ~meridian_nodes:nodes in
  let diverse = Overlay.build ~selection:Overlay.Diverse rng2 m small ~meridian_nodes:nodes in
  let min_pairwise overlay node i =
    let members = Overlay.ring_members overlay node i in
    let ids = List.map (fun mem -> mem.Overlay.id) members in
    let rec scan acc = function
      | [] -> acc
      | id :: rest ->
        scan
          (List.fold_left
             (fun acc o ->
               let d = Matrix.get m id o in
               if Float.is_nan d then acc else Float.min acc d)
             acc rest)
          rest
    in
    if List.length ids < 2 then None else Some (scan infinity ids)
  in
  let improvements = ref 0 and comparisons = ref 0 in
  Array.iter
    (fun node ->
      for i = 1 to small.Ring.rings do
        Alcotest.(check bool) "capacity respected" true
          (List.length (Overlay.ring_members diverse node i)
          <= small.Ring.k + small.Ring.l);
        match (min_pairwise first node i, min_pairwise diverse node i) with
        | Some a, Some b ->
          incr comparisons;
          if b >= a then incr improvements
        | _ -> ()
      done)
    nodes;
  Alcotest.(check bool)
    (Printf.sprintf "diversity no worse in most rings (%d/%d)" !improvements
       !comparisons)
    true
    (!comparisons = 0 || float_of_int !improvements /. float_of_int !comparisons > 0.7)

let test_overlay_full_membership () =
  let m = euclidean_matrix 12 40 in
  let u = Ring.unlimited_config 40 in
  let rng = Rng.create 13 in
  let nodes = Rng.sample_indices rng ~n:40 ~k:20 in
  let overlay = Overlay.build rng m u ~meridian_nodes:nodes in
  Array.iter
    (fun node ->
      Alcotest.(check int) "every other participant is a member" 19
        (List.length (Overlay.all_members overlay node)))
    nodes

let test_overlay_non_member_query () =
  let m = euclidean_matrix 14 20 in
  let overlay, _ = build_overlay 15 m 10 in
  Alcotest.(check bool) "ring_members of outsider raises" true
    (match Overlay.ring_members overlay 1000 1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Query                                                               *)

let test_query_finds_good_neighbor_on_metric () =
  let m = euclidean_matrix 16 80 in
  let u = Ring.unlimited_config 80 in
  let rng = Rng.create 17 in
  let nodes = Rng.sample_indices rng ~n:80 ~k:30 in
  let overlay = Overlay.build rng m u ~meridian_nodes:nodes in
  let misses = ref 0 and total = ref 0 in
  for target = 0 to 79 do
    if not (Overlay.is_meridian overlay target) then begin
      let start = nodes.(Rng.int rng 30) in
      if Matrix.known m start target then begin
        incr total;
        let outcome =
          Query.closest ~termination:Query.Any_improvement overlay m ~start ~target
        in
        match Query.optimal overlay m ~target with
        | Some (_, opt) ->
          if outcome.Query.chosen_delay > opt +. 1e-9 then incr misses
        | None -> ()
      end
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "misses %d/%d on metric space" !misses !total)
    true
    (float_of_int !misses /. float_of_int !total < 0.05)

let test_query_validation () =
  let m = euclidean_matrix 18 20 in
  let overlay, nodes = build_overlay 19 m 10 in
  let outsider =
    Array.to_list (Rng.permutation (Rng.create 20) 20)
    |> List.find (fun i -> not (Overlay.is_meridian overlay i))
  in
  Alcotest.(check bool) "non-meridian start rejected" true
    (match Query.closest overlay m ~start:outsider ~target:nodes.(0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_query_outcome_fields () =
  let m = euclidean_matrix 21 40 in
  let overlay, nodes = build_overlay 22 m 20 in
  let target =
    Array.to_list (Rng.permutation (Rng.create 23) 40)
    |> List.find (fun i -> not (Overlay.is_meridian overlay i))
  in
  let outcome = Query.closest overlay m ~start:nodes.(0) ~target in
  Alcotest.(check bool) "probes counted" true (outcome.Query.probes > 0);
  Alcotest.(check int) "no restarts without fallback" 0 outcome.Query.restarts;
  (match outcome.Query.path with
  | first :: _ -> Alcotest.(check int) "path starts at start" nodes.(0) first
  | [] -> Alcotest.fail "empty path");
  Alcotest.(check int) "hops = path length - 1"
    (List.length outcome.Query.path - 1) outcome.Query.hops;
  Alcotest.(check bool) "chosen is meridian" true
    (Overlay.is_meridian overlay outcome.Query.chosen)

let test_query_fallback_invoked () =
  (* Force termination, then check the fallback hook fires and its
     members are probed. *)
  let m = euclidean_matrix 24 40 in
  let overlay, nodes = build_overlay 25 m 20 in
  let target =
    Array.to_list (Rng.permutation (Rng.create 26) 40)
    |> List.find (fun i -> not (Overlay.is_meridian overlay i))
  in
  let invoked = ref 0 in
  let fallback ~current ~target:_ ~measured:_ =
    incr invoked;
    (* Return everything: guarantees at least one extra probe if any
       member exists. *)
    Overlay.all_members overlay current
  in
  let outcome = Query.closest ~fallback overlay m ~start:nodes.(0) ~target in
  Alcotest.(check bool) "fallback invoked" true (!invoked > 0);
  Alcotest.(check bool) "restarts recorded" true (outcome.Query.restarts > 0)

let test_query_optimal_brute_force () =
  let m = euclidean_matrix 27 30 in
  let overlay, nodes = build_overlay 28 m 15 in
  let target =
    Array.to_list (Rng.permutation (Rng.create 29) 30)
    |> List.find (fun i -> not (Overlay.is_meridian overlay i))
  in
  match Query.optimal overlay m ~target with
  | None -> Alcotest.fail "expected an optimum"
  | Some (best, d) ->
    Array.iter
      (fun node ->
        if Matrix.known m node target then
          Alcotest.(check bool) "optimal is minimal" true (Matrix.get m node target >= d -. 1e-12))
      nodes;
    Alcotest.(check bool) "best is meridian" true (Overlay.is_meridian overlay best)

let prop_query_invariants =
  qcheck ~count:30 "query never returns worse than its start; probes bounded"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let m = euclidean_matrix seed 40 in
      let overlay, nodes = build_overlay (seed + 1) m 20 in
      let rng = Rng.create (seed + 2) in
      let target = Rng.int rng 40 in
      let start = nodes.(Rng.int rng 20) in
      if Overlay.is_meridian overlay target || not (Matrix.known m start target)
      then true
      else begin
        let o = Query.closest overlay m ~start ~target in
        o.Query.chosen_delay <= Matrix.get m start target +. 1e-9
        && o.Query.probes >= o.Query.hops + 1
        && List.length o.Query.path = o.Query.hops + 1
      end)

let test_figure12_worked_example () =
  (* The paper's Figure 12 with its exact delays: A-T=12, T-N=1, A-N=25,
     A-B=11, B-T=2, B-N=4.  Plain Meridian from A must return B (2ms)
     even though N (1ms) exists; the TIV-aware restart must find N. *)
  let a = 0 and b = 1 and n = 2 and t = 3 in
  let m = Matrix.create 4 in
  Matrix.set m a t 12.;
  Matrix.set m t n 1.;
  Matrix.set m a n 25.;
  Matrix.set m a b 11.;
  Matrix.set m b t 2.;
  Matrix.set m b n 4.;
  let overlay =
    Overlay.build (Rng.create 12) m cfg ~meridian_nodes:[| a; b; n |]
  in
  let plain = Query.closest overlay m ~start:a ~target:t in
  Alcotest.(check int) "plain Meridian returns B" b plain.Query.chosen;
  Alcotest.(check (float 1e-9)) "at 2ms" 2. plain.Query.chosen_delay;
  Alcotest.(check (list int)) "path A -> B" [ a; b ] plain.Query.path;
  (* An embedding reflecting the short alternative paths: dual ring
     placement files N into B's rings at its predicted 3ms, which lands
     in the query window at B, so N finally gets probed. *)
  let predicted i j =
    let key = (min i j, max i j) in
    if key = (a, n) then 13.
    else if key = (b, n) then 3.
    else Matrix.get m i j
  in
  let aware_overlay =
    Overlay.build
      ~placement:(Tiv_aware.placement cfg ~predicted ~measured:m ())
      (Rng.create 12) m cfg ~meridian_nodes:[| a; b; n |]
  in
  let fallback = Tiv_aware.fallback aware_overlay ~predicted ~measured:m () in
  let aware = Query.closest ~fallback aware_overlay m ~start:a ~target:t in
  Alcotest.(check int) "TIV-aware finds N" n aware.Query.chosen;
  Alcotest.(check (float 1e-9)) "at 1ms" 1. aware.Query.chosen_delay

(* ------------------------------------------------------------------ *)
(* Gossip membership                                                   *)

module Gossip = Tivaware_meridian.Gossip
module Sim_g = Tivaware_eventsim.Sim

let test_gossip_converges () =
  let m = euclidean_matrix 80 60 in
  let rng = Rng.create 81 in
  let nodes = Rng.sample_indices rng ~n:60 ~k:30 in
  let sim = Sim_g.create () in
  let g = Gossip.run sim rng m ~meridian_nodes:nodes ~duration:60. in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.2f after 60s" (Gossip.coverage g))
    true
    (Gossip.coverage g > 0.9);
  Alcotest.(check bool) "messages flowed" true (Gossip.messages_sent g > 100)

let test_gossip_views_valid () =
  let m = euclidean_matrix 82 40 in
  let rng = Rng.create 83 in
  let nodes = Rng.sample_indices rng ~n:40 ~k:20 in
  let node_set = Array.to_list nodes in
  let sim = Sim_g.create () in
  let g = Gossip.run sim rng m ~meridian_nodes:nodes ~duration:20. in
  Array.iter
    (fun node ->
      Array.iter
        (fun peer ->
          Alcotest.(check bool) "never self" true (peer <> node);
          Alcotest.(check bool) "only participants" true (List.mem peer node_set))
        (Gossip.known g node))
    nodes

let test_gossip_overlay_quality () =
  (* An overlay built only from gossiped views should answer queries
     nearly as well as one built with global knowledge. *)
  let m = euclidean_matrix 84 80 in
  let rng = Rng.create 85 in
  let nodes = Rng.sample_indices rng ~n:80 ~k:40 in
  let sim = Sim_g.create () in
  let g = Gossip.run sim rng m ~meridian_nodes:nodes ~duration:120. in
  let overlay =
    Overlay.build ~candidates:(Gossip.candidates_hook g) (Rng.create 86) m cfg
      ~meridian_nodes:nodes
  in
  let misses = ref 0 and total = ref 0 in
  Array.to_list (Rng.permutation (Rng.create 87) 80)
  |> List.iter (fun target ->
         if not (Overlay.is_meridian overlay target) then begin
           let start = nodes.(Rng.int rng 40) in
           if Matrix.known m start target then begin
             incr total;
             let outcome =
               Query.closest ~termination:Query.Any_improvement overlay m ~start
                 ~target
             in
             match Query.optimal overlay m ~target with
             | Some (_, opt) when outcome.Query.chosen_delay > opt *. 1.2 +. 1. ->
               incr misses
             | _ -> ()
           end
         end);
  Alcotest.(check bool)
    (Printf.sprintf "gossip overlay misses %d/%d" !misses !total)
    true
    (float_of_int !misses /. float_of_int (max 1 !total) < 0.2)

(* ------------------------------------------------------------------ *)
(* Multi-target queries                                                *)

let test_multi_validation () =
  let m = euclidean_matrix 60 30 in
  let overlay, nodes = build_overlay 61 m 15 in
  Alcotest.(check bool) "empty targets rejected" true
    (match Query.closest_multi overlay m ~start:nodes.(0) ~targets:[] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_multi_single_target_agrees () =
  (* With one target, the multi query solves the same problem as the
     single-target query; their chosen delays must agree closely. *)
  let m = euclidean_matrix 62 60 in
  let overlay, nodes = build_overlay 63 m 30 in
  let target =
    Array.to_list (Rng.permutation (Rng.create 64) 60)
    |> List.find (fun i -> not (Overlay.is_meridian overlay i))
  in
  let single = Query.closest overlay m ~start:nodes.(0) ~target in
  let multi = Query.closest_multi overlay m ~start:nodes.(0) ~targets:[ target ] in
  Alcotest.(check int) "same answer" single.Query.chosen multi.Query.chosen;
  Alcotest.(check (float 1e-9)) "same delay" single.Query.chosen_delay
    multi.Query.chosen_delay

let test_multi_leader_quality () =
  (* On a metric space with generous settings the elected leader's
     max-norm should be close to the brute-force optimum. *)
  let m = euclidean_matrix 65 80 in
  let u = Ring.unlimited_config 80 in
  let rng = Rng.create 66 in
  let nodes = Rng.sample_indices rng ~n:80 ~k:30 in
  let overlay = Overlay.build rng m u ~meridian_nodes:nodes in
  let non_members =
    Array.to_list (Rng.permutation (Rng.create 67) 80)
    |> List.filter (fun i -> not (Overlay.is_meridian overlay i))
  in
  let targets = [ List.nth non_members 0; List.nth non_members 1; List.nth non_members 2 ] in
  let outcome =
    Query.closest_multi ~termination:Query.Any_improvement overlay m
      ~start:nodes.(0) ~targets
  in
  match Query.optimal_multi overlay m ~targets with
  | None -> Alcotest.fail "expected an optimum"
  | Some (_, opt) ->
    Alcotest.(check bool)
      (Printf.sprintf "leader within 25%% of optimum (%.1f vs %.1f)"
         outcome.Query.chosen_delay opt)
      true
      (outcome.Query.chosen_delay <= opt *. 1.25 +. 1e-9)

let test_multi_probe_accounting () =
  let m = euclidean_matrix 68 40 in
  let overlay, nodes = build_overlay 69 m 20 in
  let non_members =
    Array.to_list (Rng.permutation (Rng.create 70) 40)
    |> List.filter (fun i -> not (Overlay.is_meridian overlay i))
  in
  let targets = [ List.nth non_members 0; List.nth non_members 1 ] in
  let outcome = Query.closest_multi overlay m ~start:nodes.(0) ~targets in
  (* Each measured node costs one probe per target. *)
  Alcotest.(check bool) "probes are a multiple of target count" true
    (outcome.Query.probes mod 2 = 0);
  Alcotest.(check bool) "at least the start probed" true (outcome.Query.probes >= 2)

(* ------------------------------------------------------------------ *)
(* Online (eventsim-driven)                                            *)

module Online = Tivaware_meridian.Online
module Sim = Tivaware_eventsim.Sim

let online_setup seed =
  let m = euclidean_matrix seed 50 in
  let overlay, nodes = build_overlay (seed + 1) m 25 in
  let client =
    Array.to_list (Rng.permutation (Rng.create (seed + 2)) 50)
    |> List.find (fun i -> not (Overlay.is_meridian overlay i))
  in
  let target =
    Array.to_list (Rng.permutation (Rng.create (seed + 3)) 50)
    |> List.find (fun i -> i <> client && not (Overlay.is_meridian overlay i))
  in
  (m, overlay, nodes, client, target)

let test_online_matches_offline () =
  (* The online replay must reach the same answer with the same number
     of probes and hops as the instantaneous query. *)
  for seed = 100 to 109 do
    let m, overlay, nodes, client, target = online_setup seed in
    let start = nodes.(0) in
    if Matrix.known m client start && Matrix.known m start target then begin
      let offline = Query.closest overlay m ~start ~target in
      let sim = Sim.create () in
      let online = Online.closest sim overlay m ~client ~start ~target in
      Alcotest.(check int) "same chosen node" offline.Query.chosen
        online.Online.query.Query.chosen;
      Alcotest.(check int) "same hops" offline.Query.hops
        online.Online.query.Query.hops;
      Alcotest.(check int) "same probes" offline.Query.probes
        online.Online.query.Query.probes
    end
  done

let test_online_latency_positive () =
  let m, overlay, nodes, client, target = online_setup 120 in
  let start = nodes.(0) in
  let sim = Sim.create () in
  let outcome = Online.closest sim overlay m ~client ~start ~target in
  Alcotest.(check bool) "latency strictly positive" true (outcome.Online.latency > 0.);
  (* At minimum the request reaches the start node and the start node
     probes the target. *)
  let floor = (Matrix.get m client start /. 2.) +. Matrix.get m start target in
  Alcotest.(check bool)
    (Printf.sprintf "latency %.1f >= floor %.1f" outcome.Online.latency floor)
    true
    (outcome.Online.latency >= floor -. 1e-9)

let test_online_clock_accumulates () =
  let m, overlay, nodes, client, target = online_setup 130 in
  let sim = Sim.create () in
  let o1 = Online.closest sim overlay m ~client ~start:nodes.(0) ~target in
  let t1 = Sim.now sim in
  let o2 = Online.closest sim overlay m ~client ~start:nodes.(1) ~target in
  ignore o1;
  ignore o2;
  Alcotest.(check bool) "clock advanced across queries" true (Sim.now sim > t1)

let test_online_validation () =
  let m, overlay, nodes, client, target = online_setup 140 in
  ignore nodes;
  let sim = Sim.create () in
  Alcotest.(check bool) "non-meridian start rejected" true
    (match Online.closest sim overlay m ~client ~start:client ~target with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Misplacement                                                        *)

let prop_no_misplacement_on_metric =
  qcheck ~count:10 "metric spaces cause no ring misplacement"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let m = Euclidean.uniform_box (Rng.create seed) ~n:20 ~dim:3 ~side_ms:200. in
      let samples = Misplacement.census m ~beta:0.5 in
      Array.for_all (fun s -> s.Misplacement.misplaced = 0) samples)

let test_misplacement_paper_triangle () =
  (* AB=5, BC=5, CA=100 plus a 4th node to have intermediates: the
     classic example misplaces B wrt the CA edge. *)
  let m = Matrix.create 3 in
  Matrix.set m 0 1 5.;
  Matrix.set m 1 2 5.;
  Matrix.set m 2 0 100.;
  let samples = Misplacement.census m ~beta:0.5 in
  (* Pair (0,2): d=100, nodes within 50 of node 2 = {1} (d=5);
     d(0,1)=5 is outside [50,150] -> misplaced. *)
  let found =
    Array.exists
      (fun s -> s.Misplacement.dij = 100. && s.Misplacement.misplaced = 1)
      samples
  in
  Alcotest.(check bool) "TIV edge causes misplacement" true found

let test_misplacement_binning () =
  let data =
    Tivaware_topology.Datasets.generate ~size:80 ~seed:30 Tivaware_topology.Datasets.Ds2
  in
  let series =
    Misplacement.misplaced_fraction_by_delay data.Tivaware_topology.Generator.matrix
      ~beta:0.5 ~bin_width:100.
  in
  Alcotest.(check bool) "series non-empty" true (series <> []);
  List.iter
    (fun (_, frac) ->
      Alcotest.(check bool) "fractions in [0,1]" true (frac >= 0. && frac <= 1.))
    series;
  let xs = List.map fst series in
  Alcotest.(check bool) "sorted bins" true (List.sort compare xs = xs)

(* ------------------------------------------------------------------ *)
(* Tiv_aware                                                           *)

let entry_list = Alcotest.(list (pair int (float 1e-9)))

let test_tiv_aware_placement_dual () =
  let m = Matrix.create 4 in
  Matrix.set m 0 1 100.;
  (* Prediction says this edge is really 10ms: ratio 0.1 < ts. *)
  let predicted _ _ = 10. in
  let place = Tiv_aware.placement cfg ~predicted ~measured:m () in
  let rings = place 0 1 100. in
  Alcotest.check entry_list "dual placement"
    [ (Ring.ring_of cfg 100., 100.); (Ring.ring_of cfg 10., 10.) ]
    rings

let test_tiv_aware_placement_safe_band () =
  let m = Matrix.create 4 in
  Matrix.set m 0 1 100.;
  let predicted _ _ = 100. in
  let place = Tiv_aware.placement cfg ~predicted ~measured:m () in
  Alcotest.check entry_list "single placement in safe band"
    [ (Ring.ring_of cfg 100., 100.) ]
    (place 0 1 100.)

let test_tiv_aware_placement_same_ring_collapses () =
  let m = Matrix.create 4 in
  Matrix.set m 0 1 100.;
  (* Shrunk, but prediction lands in the same ring -> one entry. *)
  let predicted _ _ = 70. in
  let place = Tiv_aware.placement cfg ~predicted ~measured:m ~ts:0.8 () in
  Alcotest.check entry_list "same ring collapses"
    [ (Ring.ring_of cfg 100., 100.) ]
    (place 0 1 100.)

let test_dual_placement_reaches_queries () =
  (* A member whose measured delay is TIV-inflated far outside the
     acceptance window must still be probed when its predicted delay
     falls inside, thanks to the dual ring entry. *)
  let m = Matrix.create 3 in
  (* start(0) - target(2): 40ms; member(1) measured 400ms from start but
     "really" ~30ms per the embedding; member-target = 5ms. *)
  Matrix.set m 0 2 40.;
  Matrix.set m 0 1 400.;
  Matrix.set m 1 2 5.;
  let nodes = [| 0; 1 |] in
  let run placement =
    let overlay =
      Overlay.build ?placement (Rng.create 1) m cfg ~meridian_nodes:nodes
    in
    Query.closest overlay m ~start:0 ~target:2
  in
  let plain = run None in
  Alcotest.(check int) "plain Meridian misses the member" 0 plain.Query.chosen;
  let predicted a b = if (min a b, max a b) = (0, 1) then 30. else Matrix.get m a b in
  let aware =
    run (Some (Tivaware_meridian.Tiv_aware.placement cfg ~predicted ~measured:m ()))
  in
  Alcotest.(check int) "dual placement exposes the member" 1 aware.Query.chosen

let test_tiv_aware_fallback_behaviour () =
  let m = euclidean_matrix 31 30 in
  let overlay, nodes = build_overlay 32 m 15 in
  let target =
    Array.to_list (Rng.permutation (Rng.create 33) 30)
    |> List.find (fun i -> not (Overlay.is_meridian overlay i))
  in
  let node = nodes.(0) in
  let measured = Matrix.get m node target in
  (* Ratio fine -> no extra members. *)
  let fb_ok = Tiv_aware.fallback overlay ~predicted:(fun _ _ -> measured) ~measured:m () in
  Alcotest.(check int) "no restart when ratio healthy" 0
    (List.length (fb_ok ~current:node ~target ~measured));
  (* Shrunk prediction -> members around the predicted delay. *)
  let fb_shrunk =
    Tiv_aware.fallback overlay ~predicted:(fun _ _ -> measured /. 10.) ~measured:m ()
  in
  let extra = fb_shrunk ~current:node ~target ~measured in
  let beta = cfg.Ring.beta in
  List.iter
    (fun mem ->
      let dp = measured /. 10. in
      Alcotest.(check bool) "members in predicted window" true
        (mem.Overlay.delay >= (1. -. beta) *. dp && mem.Overlay.delay <= (1. +. beta) *. dp))
    extra

let () =
  Alcotest.run "meridian"
    [
      ( "ring",
        [
          Alcotest.test_case "ring_of boundaries" `Quick test_ring_of_boundaries;
          Alcotest.test_case "radii" `Quick test_ring_radii;
          Alcotest.test_case "unlimited config" `Quick test_unlimited_config;
          prop_ring_of_consistent_with_radii;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "membership" `Quick test_overlay_membership;
          Alcotest.test_case "ring placement" `Quick test_overlay_ring_placement;
          Alcotest.test_case "capacity" `Quick test_overlay_capacity;
          Alcotest.test_case "edge filter" `Quick test_overlay_edge_filter;
          Alcotest.test_case "placement hook" `Quick test_overlay_placement_hook;
          Alcotest.test_case "diverse selection" `Quick test_overlay_diverse_selection;
          Alcotest.test_case "full membership" `Quick test_overlay_full_membership;
          Alcotest.test_case "outsider rejected" `Quick test_overlay_non_member_query;
        ] );
      ( "query",
        [
          Alcotest.test_case "near-perfect on metric" `Quick test_query_finds_good_neighbor_on_metric;
          Alcotest.test_case "validation" `Quick test_query_validation;
          Alcotest.test_case "outcome fields" `Quick test_query_outcome_fields;
          Alcotest.test_case "fallback invoked" `Quick test_query_fallback_invoked;
          Alcotest.test_case "optimal brute force" `Quick test_query_optimal_brute_force;
          Alcotest.test_case "figure 12 worked example" `Quick test_figure12_worked_example;
          prop_query_invariants;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "converges" `Quick test_gossip_converges;
          Alcotest.test_case "views valid" `Quick test_gossip_views_valid;
          Alcotest.test_case "overlay quality" `Quick test_gossip_overlay_quality;
        ] );
      ( "multi",
        [
          Alcotest.test_case "validation" `Quick test_multi_validation;
          Alcotest.test_case "single target agrees" `Quick test_multi_single_target_agrees;
          Alcotest.test_case "leader quality" `Quick test_multi_leader_quality;
          Alcotest.test_case "probe accounting" `Quick test_multi_probe_accounting;
        ] );
      ( "online",
        [
          Alcotest.test_case "matches offline query" `Quick test_online_matches_offline;
          Alcotest.test_case "latency positive" `Quick test_online_latency_positive;
          Alcotest.test_case "clock accumulates" `Quick test_online_clock_accumulates;
          Alcotest.test_case "validation" `Quick test_online_validation;
        ] );
      ( "misplacement",
        [
          prop_no_misplacement_on_metric;
          Alcotest.test_case "paper triangle" `Quick test_misplacement_paper_triangle;
          Alcotest.test_case "binning" `Quick test_misplacement_binning;
        ] );
      ( "tiv_aware",
        [
          Alcotest.test_case "dual placement" `Quick test_tiv_aware_placement_dual;
          Alcotest.test_case "safe band single" `Quick test_tiv_aware_placement_safe_band;
          Alcotest.test_case "same ring collapses" `Quick test_tiv_aware_placement_same_ring_collapses;
          Alcotest.test_case "dual placement reaches queries" `Quick
            test_dual_placement_reaches_queries;
          Alcotest.test_case "fallback behaviour" `Quick test_tiv_aware_fallback_behaviour;
        ] );
    ]
