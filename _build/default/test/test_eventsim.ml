(* Tests for the discrete-event simulation engine. *)

module Sim = Tivaware_eventsim.Sim

let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule_at sim 3. (fun () -> log := 3 :: !log);
  Sim.schedule_at sim 1. (fun () -> log := 1 :: !log);
  Sim.schedule_at sim 2. (fun () -> log := 2 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  checkf "clock at last event" 3. (Sim.now sim)

let test_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule_at sim 1. (fun () -> log := "a" :: !log);
  Sim.schedule_at sim 1. (fun () -> log := "b" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "fifo among equal times" [ "a"; "b" ]
    (List.rev !log)

let test_schedule_after () =
  let sim = Sim.create () in
  let fired_at = ref (-1.) in
  Sim.schedule_at sim 5. (fun () ->
      Sim.schedule_after sim 2.5 (fun () -> fired_at := Sim.now sim));
  Sim.run sim;
  checkf "relative scheduling" 7.5 !fired_at

let test_past_raises () =
  let sim = Sim.create () in
  Sim.schedule_at sim 10. (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument "Sim.schedule_at: time 5 is before now 10")
        (fun () -> Sim.schedule_at sim 5. (fun () -> ())));
  Sim.run sim

let test_negative_delay_raises () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule_after: negative delay") (fun () ->
      Sim.schedule_after sim (-1.) (fun () -> ()))

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Sim.schedule_at sim t (fun () -> fired := t :: !fired))
    [ 1.; 2.; 8.; 9. ];
  Sim.run ~until:5. sim;
  Alcotest.(check (list (float 0.))) "only early events" [ 1.; 2. ]
    (List.rev !fired);
  checkf "clock advanced to limit" 5. (Sim.now sim);
  Alcotest.(check int) "late events pending" 2 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "drained" 0 (Sim.pending sim)

let test_run_until_boundary () =
  (* An event scheduled exactly at the limit executes. *)
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule_at sim 5. (fun () -> fired := true);
  Sim.run ~until:5. sim;
  Alcotest.(check bool) "boundary event fires" true !fired

let test_step () =
  let sim = Sim.create () in
  Alcotest.(check bool) "empty step" false (Sim.step sim);
  Sim.schedule_at sim 1. (fun () -> ());
  Alcotest.(check bool) "one step" true (Sim.step sim);
  Alcotest.(check bool) "drained" false (Sim.step sim)

let test_reset () =
  let sim = Sim.create () in
  Sim.schedule_at sim 4. (fun () -> ());
  ignore (Sim.step sim);
  Sim.reset sim;
  checkf "clock rewound" 0. (Sim.now sim);
  Alcotest.(check int) "queue empty" 0 (Sim.pending sim)

let test_cascading () =
  (* A chain of events, each scheduling the next: models a query hopping
     through an overlay. *)
  let sim = Sim.create () in
  let hops = ref 0 in
  let rec hop () =
    incr hops;
    if !hops < 10 then Sim.schedule_after sim 1.5 hop
  in
  Sim.schedule_at sim 0. hop;
  Sim.run sim;
  Alcotest.(check int) "all hops" 10 !hops;
  checkf "clock = 9 hops * 1.5" 13.5 (Sim.now sim)

let test_interleaved_processes () =
  (* Two periodic processes with different periods interleave correctly. *)
  let sim = Sim.create () in
  let log = ref [] in
  let rec proc name period stop () =
    log := (name, Sim.now sim) :: !log;
    if Sim.now sim +. period <= stop then
      Sim.schedule_after sim period (proc name period stop)
  in
  Sim.schedule_at sim 0. (proc "fast" 1. 3.);
  Sim.schedule_at sim 0. (proc "slow" 2. 4.);
  Sim.run sim;
  let names = List.map fst (List.rev !log) in
  (* t=0: fast, slow; t=1: fast; t=2: slow (scheduled at t=0, so earlier
     seq) then fast; t=3: fast; t=4: slow. *)
  Alcotest.(check (list string)) "interleaving"
    [ "fast"; "slow"; "fast"; "slow"; "fast"; "fast"; "slow" ]
    names

let () =
  Alcotest.run "eventsim"
    [
      ( "sim",
        [
          Alcotest.test_case "time order" `Quick test_time_order;
          Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
          Alcotest.test_case "schedule_after" `Quick test_schedule_after;
          Alcotest.test_case "past raises" `Quick test_past_raises;
          Alcotest.test_case "negative delay raises" `Quick test_negative_delay_raises;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "run until boundary" `Quick test_run_until_boundary;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "cascading events" `Quick test_cascading;
          Alcotest.test_case "interleaved processes" `Quick test_interleaved_processes;
        ] );
    ]
