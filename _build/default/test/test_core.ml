(* Tests for the neighbor-selection experiment framework. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Penalty = Tivaware_core.Penalty
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors
module System = Tivaware_vivaldi.System

let checkf = Alcotest.check (Alcotest.float 1e-9)

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Penalty                                                             *)

let test_penalty_formula () =
  checkf "zero when optimal" 0. (Penalty.percentage ~selected:10. ~optimal:10.);
  checkf "100% when double" 100. (Penalty.percentage ~selected:20. ~optimal:10.);
  checkf "negative impossible in practice but formula holds" (-50.)
    (Penalty.percentage ~selected:5. ~optimal:10.)

let test_penalty_validation () =
  Alcotest.check_raises "non-positive optimal"
    (Invalid_argument "Penalty.percentage: optimal must be > 0") (fun () ->
      ignore (Penalty.percentage ~selected:1. ~optimal:0.))

let test_penalty_summary () =
  let s = Penalty.summarize [| 0.; 0.; 100. |] in
  Alcotest.(check bool) "mentions count" true (contains_substring s "n=3");
  Alcotest.(check string) "empty" "no samples" (Penalty.summarize [||])

(* ------------------------------------------------------------------ *)
(* Experiment: predictor                                               *)

let euclidean_matrix seed n =
  Euclidean.uniform_box (Rng.create seed) ~n ~dim:3 ~side_ms:300.

let test_oracle_predictor_is_perfect () =
  let m = euclidean_matrix 1 60 in
  let r =
    Experiment.run_predictor (Rng.create 2) m ~runs:3 ~candidate_count:15
      ~predict:(fun i j -> Matrix.get m i j) ()
  in
  Alcotest.(check bool) "has samples" true (Array.length r.Experiment.penalties > 0);
  Array.iter (fun p -> checkf "zero penalty" 0. p) r.Experiment.penalties

let test_anti_oracle_is_poor () =
  let m = euclidean_matrix 3 60 in
  let r =
    Experiment.run_predictor (Rng.create 4) m ~runs:2 ~candidate_count:15
      ~predict:(fun i j -> -.Matrix.get m i j) ()
  in
  let mean = Tivaware_util.Stats.mean r.Experiment.penalties in
  Alcotest.(check bool) "anti-oracle penalized" true (mean > 50.)

let test_abstaining_predictor_fails () =
  let m = euclidean_matrix 5 30 in
  let r =
    Experiment.run_predictor (Rng.create 6) m ~runs:1 ~candidate_count:5
      ~predict:(fun _ _ -> nan) ()
  in
  Alcotest.(check int) "no penalties" 0 (Array.length r.Experiment.penalties);
  Alcotest.(check int) "all clients failed" 25 r.Experiment.failures

let test_experiment_sample_counts () =
  let m = euclidean_matrix 7 50 in
  let r =
    Experiment.run_predictor (Rng.create 8) m ~runs:4 ~candidate_count:10
      ~predict:(fun i j -> Matrix.get m i j) ()
  in
  Alcotest.(check int) "penalties+failures = runs * clients" (4 * 40)
    (Array.length r.Experiment.penalties + r.Experiment.failures)

(* ------------------------------------------------------------------ *)
(* Experiment: meridian                                                *)

let test_meridian_experiment_counts () =
  let m = euclidean_matrix 9 60 in
  let cfg = Ring.default_config in
  let r =
    Experiment.run_meridian (Rng.create 10) m ~runs:2 ~meridian_count:30
      ~build:(Selectors.meridian_build m cfg) ()
  in
  Alcotest.(check int) "queries = clients per run x runs (minus failures)" 60
    (r.Experiment.queries + r.Experiment.base.Experiment.failures);
  Alcotest.(check bool) "probes counted" true (r.Experiment.probes > 0);
  Alcotest.(check bool) "hops non-negative" true (r.Experiment.hops_mean >= 0.)

let test_meridian_metric_accuracy () =
  let m = euclidean_matrix 11 80 in
  let cfg = Ring.unlimited_config 80 in
  let r =
    Experiment.run_meridian (Rng.create 12) m ~runs:2 ~meridian_count:30
      ~termination:Tivaware_meridian.Query.Any_improvement
      ~build:(Selectors.meridian_build m cfg) ()
  in
  let perfect =
    Array.fold_left
      (fun acc p -> if p <= 1e-9 then acc + 1 else acc)
      0 r.Experiment.base.Experiment.penalties
  in
  let frac =
    float_of_int perfect /. float_of_int (Array.length r.Experiment.base.Experiment.penalties)
  in
  Alcotest.(check bool)
    (Printf.sprintf "nearly always optimal on metric space (%.2f)" frac)
    true (frac > 0.9)

(* ------------------------------------------------------------------ *)
(* Selectors                                                           *)

let test_banned_set_normalization () =
  let banned = Selectors.banned_set [| (3, 1); (2, 5) |] in
  Alcotest.(check bool) "normalized hit" true (banned (1, 3));
  Alcotest.(check bool) "reverse hit" true (banned (3, 1));
  Alcotest.(check bool) "other edge" false (banned (1, 2))

let test_filtered_vivaldi_avoids_banned () =
  let data = Datasets.generate ~size:60 ~seed:13 Datasets.Ds2 in
  let m = data.Generator.matrix in
  (* Ban all edges of node 0: its neighbor set must avoid... every edge,
     so ban only edges to nodes < 30 and check they are avoided. *)
  let banned (i, j) = (i = 0 && j < 30) || (j = 0 && i < 30) in
  let system = Selectors.embed_vivaldi_filtered ~rounds:5 ~banned (Rng.create 14) m in
  Array.iter
    (fun j -> Alcotest.(check bool) "banned edge not probed" true (j >= 30))
    (System.neighbors system 0)

let test_meridian_build_filtered () =
  let m = euclidean_matrix 15 40 in
  let cfg = Ring.default_config in
  let rng = Rng.create 16 in
  let nodes = Rng.sample_indices rng ~n:40 ~k:20 in
  let a = nodes.(0) and b = nodes.(1) in
  let banned (i, j) = (i = min a b) && (j = max a b) in
  let overlay = Selectors.meridian_build_filtered m cfg ~banned rng nodes in
  let members = Overlay.all_members overlay a in
  Alcotest.(check bool) "banned edge excluded from rings" false
    (List.exists (fun mem -> mem.Overlay.id = b) members)

let test_meridian_build_tiv_aware_dual_entries () =
  (* With a predictor that shrinks everything, dual placement should
     place some members in two rings, increasing total population. *)
  let data = Datasets.generate ~size:80 ~seed:17 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let cfg = Ring.default_config in
  let rng1 = Rng.create 18 and rng2 = Rng.create 18 in
  let nodes = Rng.sample_indices (Rng.create 19) ~n:80 ~k:40 in
  let plain = Overlay.build rng1 m cfg ~meridian_nodes:nodes in
  let aware =
    Selectors.meridian_build_tiv_aware m cfg
      ~predicted:(fun i j ->
        let d = Matrix.get m i j in
        if Float.is_nan d then nan else d /. 4.)
      rng2 nodes
  in
  let total o =
    Array.fold_left
      (fun acc node -> acc + Array.fold_left ( + ) 0 (Overlay.ring_population o node))
      0 nodes
  in
  Alcotest.(check bool) "dual placement adds entries" true (total aware > total plain)

let () =
  Alcotest.run "core"
    [
      ( "penalty",
        [
          Alcotest.test_case "formula" `Quick test_penalty_formula;
          Alcotest.test_case "validation" `Quick test_penalty_validation;
          Alcotest.test_case "summary" `Quick test_penalty_summary;
        ] );
      ( "experiment_predictor",
        [
          Alcotest.test_case "oracle is perfect" `Quick test_oracle_predictor_is_perfect;
          Alcotest.test_case "anti-oracle is poor" `Quick test_anti_oracle_is_poor;
          Alcotest.test_case "abstaining predictor" `Quick test_abstaining_predictor_fails;
          Alcotest.test_case "sample counts" `Quick test_experiment_sample_counts;
        ] );
      ( "experiment_meridian",
        [
          Alcotest.test_case "counts" `Quick test_meridian_experiment_counts;
          Alcotest.test_case "metric accuracy" `Quick test_meridian_metric_accuracy;
        ] );
      ( "selectors",
        [
          Alcotest.test_case "banned set" `Quick test_banned_set_normalization;
          Alcotest.test_case "filtered vivaldi" `Quick test_filtered_vivaldi_avoids_banned;
          Alcotest.test_case "filtered meridian" `Quick test_meridian_build_filtered;
          Alcotest.test_case "tiv-aware dual entries" `Quick test_meridian_build_tiv_aware_dual_entries;
        ] );
    ]
