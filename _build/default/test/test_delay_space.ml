(* Tests for tivaware.delay_space: matrices, I/O, clustering, shortest
   paths. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Io = Tivaware_delay_space.Io
module Clustering = Tivaware_delay_space.Clustering
module Shortest_path = Tivaware_delay_space.Shortest_path
module Properties = Tivaware_delay_space.Properties
module Euclidean = Tivaware_topology.Euclidean

let checkf = Alcotest.check (Alcotest.float 1e-9)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Random symmetric matrix with missing entries, for property tests. *)
let random_matrix seed n missing =
  let rng = Rng.create seed in
  Matrix.init n (fun _ _ ->
      if Rng.bernoulli rng missing then nan else Rng.uniform rng 1. 500.)

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)

let test_matrix_symmetry () =
  let m = Matrix.create 4 in
  Matrix.set m 1 3 42.;
  checkf "get (1,3)" 42. (Matrix.get m 1 3);
  checkf "get (3,1)" 42. (Matrix.get m 3 1);
  Matrix.set m 3 1 7.;
  checkf "set symmetric" 7. (Matrix.get m 1 3)

let test_matrix_diagonal () =
  let m = Matrix.create 3 in
  checkf "diagonal zero" 0. (Matrix.get m 2 2);
  Alcotest.check_raises "set diagonal" (Invalid_argument "Matrix.set: diagonal entry")
    (fun () -> Matrix.set m 1 1 5.)

let test_matrix_missing () =
  let m = Matrix.create 3 in
  Alcotest.(check bool) "initially missing" true (Matrix.is_missing m 0 1);
  Alcotest.(check bool) "diagonal not missing" false (Matrix.is_missing m 1 1);
  Alcotest.(check bool) "not known" false (Matrix.known m 0 1);
  Matrix.set m 0 1 5.;
  Alcotest.(check bool) "known after set" true (Matrix.known m 0 1)

let test_matrix_init_and_edges () =
  let m = Matrix.init 4 (fun i j -> float_of_int ((10 * i) + j)) in
  Alcotest.(check int) "edge count" 6 (Matrix.edge_count m);
  let edges = Matrix.edges m in
  Alcotest.(check int) "edges array" 6 (Array.length edges);
  let i, j, v = edges.(0) in
  Alcotest.(check int) "first i" 0 i;
  Alcotest.(check int) "first j" 1 j;
  checkf "first v" 1. v;
  Alcotest.(check bool) "complete" true (Matrix.complete m)

let test_matrix_iter_order () =
  let m = Matrix.init 3 (fun i j -> float_of_int (i + j)) in
  let visited = ref [] in
  Matrix.iter_edges m (fun i j _ -> visited := (i, j) :: !visited);
  Alcotest.(check (list (pair int int))) "row-major, i<j"
    [ (0, 1); (0, 2); (1, 2) ] (List.rev !visited)

let test_matrix_neighbors () =
  let m = Matrix.create 4 in
  Matrix.set m 0 2 5.;
  Matrix.set m 0 3 1.;
  Alcotest.(check (list (pair int (float 0.)))) "neighbors ascending"
    [ (2, 5.); (3, 1.) ] (Matrix.neighbors m 0);
  Alcotest.(check (option (pair int (float 0.)))) "nearest" (Some (3, 1.))
    (Matrix.nearest_neighbor m 0);
  Alcotest.(check (option (pair int (float 0.)))) "isolated node" None
    (Matrix.nearest_neighbor m 1)

let test_matrix_row () =
  let m = Matrix.init 3 (fun i j -> float_of_int (i + j)) in
  let r = Matrix.row m 1 in
  checkf "row self" 0. r.(1);
  checkf "row peer" 1. r.(0);
  checkf "row peer 2" 3. r.(2)

let test_matrix_copy_independent () =
  let m = Matrix.init 3 (fun _ _ -> 1.) in
  let c = Matrix.copy m in
  Matrix.set c 0 1 99.;
  checkf "original untouched" 1. (Matrix.get m 0 1)

let test_matrix_map () =
  let m = Matrix.init 3 (fun _ _ -> 2.) in
  let doubled = Matrix.map (fun _ _ v -> 2. *. v) m in
  checkf "mapped" 4. (Matrix.get doubled 0 2)

let prop_matrix_get_symmetric =
  qcheck "get symmetric for random fill"
    QCheck2.Gen.(pair int (int_range 2 30))
    (fun (seed, n) ->
      let m = random_matrix seed n 0.2 in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let a = Matrix.get m i j and b = Matrix.get m j i in
          if not (a = b || (Float.is_nan a && Float.is_nan b)) then ok := false
        done
      done;
      !ok)

let prop_matrix_delays_count =
  qcheck "delays length = edge_count"
    QCheck2.Gen.(pair int (int_range 2 30))
    (fun (seed, n) ->
      let m = random_matrix seed n 0.3 in
      Array.length (Matrix.delays m) = Matrix.edge_count m)

(* ------------------------------------------------------------------ *)
(* Io                                                                  *)

let temp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tivaware_test_%d_%d.dm" (Unix.getpid ()) !counter)

let test_io_roundtrip () =
  let m = random_matrix 5 12 0.15 in
  let path = temp_path () in
  Io.save m path;
  let m' = Io.load path in
  Sys.remove path;
  Alcotest.(check int) "size" (Matrix.size m) (Matrix.size m');
  let ok = ref true in
  for i = 0 to Matrix.size m - 1 do
    for j = i + 1 to Matrix.size m - 1 do
      let a = Matrix.get m i j and b = Matrix.get m' i j in
      if not (a = b || (Float.is_nan a && Float.is_nan b)) then ok := false
    done
  done;
  Alcotest.(check bool) "exact roundtrip" true !ok

let test_io_bad_header () =
  let path = temp_path () in
  Out_channel.with_open_text path (fun oc -> output_string oc "garbage\n");
  Alcotest.(check bool) "load fails" true
    (match Io.load path with
    | exception Failure _ -> true
    | _ -> false);
  Sys.remove path

let test_io_bad_entry () =
  let path = temp_path () in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "tivaware-delay-matrix v1 3\n0 9 1.5\n");
  Alcotest.(check bool) "out-of-range index fails" true
    (match Io.load path with
    | exception Failure _ -> true
    | _ -> false);
  Sys.remove path

let test_io_square_import () =
  let path = temp_path () in
  Out_channel.with_open_text path (fun oc ->
      (* Asymmetric, with a timeout (-1) and a zero entry. *)
      output_string oc "0 10 30\n12 0 -1\n28\t0\t0\n");
  let m = Io.load_square path in
  Sys.remove path;
  Alcotest.(check int) "size" 3 (Matrix.size m);
  Alcotest.(check (float 1e-9)) "mean reconciliation" 11. (Matrix.get m 0 1);
  Alcotest.(check (float 1e-9)) "tab-separated parsed" 29. (Matrix.get m 0 2);
  (* 1-2 had -1 one way and 0 the other: both invalid -> missing. *)
  Alcotest.(check bool) "invalid entries missing" true (Matrix.is_missing m 1 2)

let test_io_square_symmetrize_modes () =
  let rows = [| [| 0.; 10. |]; [| 30.; 0. |] |] in
  Alcotest.(check (float 1e-9)) "min" 10.
    (Matrix.get (Io.of_square ~symmetrize:`Min rows) 0 1);
  Alcotest.(check (float 1e-9)) "max" 30.
    (Matrix.get (Io.of_square ~symmetrize:`Max rows) 0 1);
  Alcotest.(check (float 1e-9)) "mean" 20.
    (Matrix.get (Io.of_square ~symmetrize:`Mean rows) 0 1)

let test_io_square_one_sided () =
  (* A one-sided measurement is kept as-is. *)
  let rows = [| [| 0.; nan |]; [| 25.; 0. |] |] in
  Alcotest.(check (float 1e-9)) "one-sided kept" 25.
    (Matrix.get (Io.of_square rows) 0 1)

let test_io_square_ragged () =
  let path = temp_path () in
  Out_channel.with_open_text path (fun oc -> output_string oc "0 1\n2\n");
  Alcotest.(check bool) "ragged rejected" true
    (match Io.load_square path with
    | exception Failure _ -> true
    | _ -> false);
  Sys.remove path

let prop_io_roundtrip =
  qcheck ~count:30 "io roundtrip for arbitrary matrices"
    QCheck2.Gen.(pair int (int_range 2 20))
    (fun (seed, n) ->
      let m = random_matrix seed n 0.25 in
      let path = temp_path () in
      Io.save m path;
      let m' = Io.load path in
      Sys.remove path;
      let ok = ref (Matrix.size m = Matrix.size m') in
      Matrix.iter_edges m (fun i j v -> if Matrix.get m' i j <> v then ok := false);
      !ok && Matrix.edge_count m = Matrix.edge_count m')

(* ------------------------------------------------------------------ *)
(* Clustering                                                          *)

(* Three well-separated blobs: clustering must recover them. *)
let blob_matrix () =
  let rng = Rng.create 77 in
  Euclidean.clustered rng ~n:90
    ~centers:
      [
        (Array.make 3 0., 5.);
        ([| 200.; 0.; 0. |], 5.);
        ([| 0.; 200.; 0. |], 5.);
      ]

let test_clustering_recovers_blobs () =
  let m = blob_matrix () in
  let a = Clustering.cluster ~k:3 ~radius_ms:60. m in
  Alcotest.(check int) "three clusters" 3 (Array.length a.Clustering.clusters);
  let total =
    Array.fold_left (fun acc c -> acc + Array.length c) 0 a.Clustering.clusters
  in
  Alcotest.(check bool) "nearly all classified" true (total >= 85);
  (* Members of one blob never share a cluster with another blob: check
     pairwise delays within a cluster are small. *)
  Array.iter
    (fun members ->
      Array.iter
        (fun i ->
          Array.iter
            (fun j ->
              if i <> j then
                Alcotest.(check bool) "intra-cluster delay small" true
                  (Matrix.get m i j < 120.))
            members)
        members)
    a.Clustering.clusters

let test_clustering_label_consistency () =
  let m = blob_matrix () in
  let a = Clustering.cluster ~k:3 ~radius_ms:60. m in
  Array.iteri
    (fun c members ->
      Array.iter
        (fun i -> Alcotest.(check int) "label matches membership" c a.Clustering.label.(i))
        members)
    a.Clustering.clusters;
  Array.iter
    (fun i -> Alcotest.(check int) "noise label" (-1) a.Clustering.label.(i))
    a.Clustering.noise

let test_clustering_sizes_descending () =
  let m = blob_matrix () in
  let a = Clustering.cluster ~k:3 ~radius_ms:60. m in
  let sizes = Array.map Array.length a.Clustering.clusters in
  for c = 0 to Array.length sizes - 2 do
    Alcotest.(check bool) "descending sizes" true (sizes.(c) >= sizes.(c + 1))
  done

let test_clustering_reorder_permutation () =
  let m = blob_matrix () in
  let a = Clustering.cluster ~k:3 ~radius_ms:60. m in
  let order = Clustering.reorder a in
  let seen = Array.make (Matrix.size m) false in
  Array.iter (fun i -> seen.(i) <- true) order;
  Alcotest.(check bool) "reorder is a permutation" true (Array.for_all Fun.id seen)

let test_same_cluster () =
  let m = blob_matrix () in
  let a = Clustering.cluster ~k:3 ~radius_ms:60. m in
  let c0 = a.Clustering.clusters.(0) in
  Alcotest.(check bool) "same cluster" true (Clustering.same_cluster a c0.(0) c0.(1));
  (match a.Clustering.noise with
  | [||] -> ()
  | noise ->
    Alcotest.(check bool) "noise never same" false
      (Clustering.same_cluster a noise.(0) noise.(0)))

(* ------------------------------------------------------------------ *)
(* Shortest paths                                                      *)

let test_sp_known_graph () =
  (* 0 -1- 1 -1- 2 with a direct 0-2 edge of 5: shortest 0->2 is 2. *)
  let m = Matrix.create 3 in
  Matrix.set m 0 1 1.;
  Matrix.set m 1 2 1.;
  Matrix.set m 0 2 5.;
  let d = Shortest_path.single_source m 0 in
  checkf "direct beaten" 2. d.(2);
  checkf "one hop" 1. d.(1);
  let sp = Shortest_path.all_pairs m in
  checkf "all_pairs agrees" 2. (Matrix.get sp 0 2)

let test_sp_unreachable () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 1.;
  (* node 2 is isolated *)
  let d = Shortest_path.single_source m 0 in
  Alcotest.(check bool) "unreachable infinity" true (d.(2) = infinity)

let prop_sp_never_longer =
  qcheck ~count:30 "shortest path <= measured delay"
    QCheck2.Gen.(pair int (int_range 3 25))
    (fun (seed, n) ->
      let m = random_matrix seed n 0.1 in
      let sp = Shortest_path.all_pairs m in
      let ok = ref true in
      Matrix.iter_edges m (fun i j v ->
          if Matrix.get sp i j > v +. 1e-9 then ok := false);
      !ok)

let prop_sp_metric =
  qcheck ~count:30 "shortest-path closure satisfies the triangle inequality"
    QCheck2.Gen.(pair int (int_range 3 20))
    (fun (seed, n) ->
      let m = random_matrix seed n 0. in
      let sp = Shortest_path.all_pairs m in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if i <> j && j <> k && i <> k then begin
              let dij = Matrix.get sp i j
              and djk = Matrix.get sp j k
              and dik = Matrix.get sp i k in
              if dik > dij +. djk +. 1e-6 then ok := false
            end
          done
        done
      done;
      !ok)

let test_inflation_entries () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 1.;
  Matrix.set m 1 2 1.;
  Matrix.set m 0 2 5.;
  let inf = Shortest_path.inflation m in
  Alcotest.(check int) "one entry per edge" 3 (Array.length inf);
  let _, _, measured, shortest =
    Array.to_list inf
    |> List.find (fun (i, j, _, _) -> i = 0 && j = 2)
  in
  checkf "measured" 5. measured;
  checkf "shortest" 2. shortest

(* ------------------------------------------------------------------ *)
(* Repair                                                              *)

module Repair = Tivaware_delay_space.Repair

let test_repair_fill_shortest_path () =
  let m = Matrix.create 4 in
  Matrix.set m 0 1 10.;
  Matrix.set m 1 2 10.;
  Matrix.set m 2 3 10.;
  (* 0-2, 0-3, 1-3 missing *)
  let filled = Repair.fill_missing_shortest_path m in
  checkf "0-2 filled with path" 20. (Matrix.get filled 0 2);
  checkf "0-3 filled with path" 30. (Matrix.get filled 0 3);
  checkf "present entries untouched" 10. (Matrix.get filled 0 1);
  Alcotest.(check int) "no missing left" 0 (Repair.missing_count filled)

let test_repair_fill_unreachable_stays_missing () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 5.;
  (* node 2 isolated *)
  let filled = Repair.fill_missing_shortest_path m in
  Alcotest.(check bool) "isolated pair still missing" true
    (Matrix.is_missing filled 0 2)

let prop_repair_fill_never_creates_new_violations =
  qcheck ~count:20 "shortest-path fill adds no violation on filled edges"
    QCheck2.Gen.(pair int (int_range 4 15))
    (fun (seed, n) ->
      let m = random_matrix seed n 0.3 in
      let filled = Repair.fill_missing_shortest_path m in
      (* A filled edge equals the shortest path, hence cannot exceed any
         two-leg alternative by more than float noise: all its
         triangulation ratios stay at ~1. *)
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Matrix.is_missing m i j && Matrix.known filled i j then begin
            let e = Tivaware_tiv.Severity.edge filled i j in
            if e.Tivaware_tiv.Severity.max_ratio > 1. +. 1e-9 then ok := false
          end
        done
      done;
      !ok)

let test_repair_fill_constant () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 5.;
  let filled = Repair.fill_missing_constant m ~value:42. in
  checkf "filled" 42. (Matrix.get filled 1 2);
  checkf "kept" 5. (Matrix.get filled 0 1)

let test_repair_clamp () =
  let m = Matrix.init 10 (fun i j -> if i = 0 && j = 1 then 1000. else 10.) in
  let clamped = Repair.clamp_outliers m ~percentile:90. in
  Alcotest.(check bool) "outlier capped" true (Matrix.get clamped 0 1 <= 10. +. 1e-9);
  Alcotest.check_raises "bad percentile"
    (Invalid_argument "Repair.clamp_outliers: percentile must be in (0, 100]")
    (fun () -> ignore (Repair.clamp_outliers m ~percentile:0.))

let test_repair_drop_low_degree () =
  (* Chain 0-1-2 plus isolated 3: min_degree 2 kills 3, then 0 and 2
     (degree 1), then 1. *)
  let m = Matrix.create 4 in
  Matrix.set m 0 1 1.;
  Matrix.set m 1 2 1.;
  let out, mapping = Repair.drop_low_degree m ~min_degree:2 in
  Alcotest.(check int) "everything cascades away" 0 (Matrix.size out);
  Alcotest.(check int) "empty mapping" 0 (Array.length mapping);
  (* A triangle survives min_degree 2. *)
  let t = Matrix.create 4 in
  Matrix.set t 0 1 1.;
  Matrix.set t 1 3 1.;
  Matrix.set t 0 3 1.;
  let out, mapping = Repair.drop_low_degree t ~min_degree:2 in
  Alcotest.(check int) "triangle survives" 3 (Matrix.size out);
  Alcotest.(check (array int)) "mapping to original ids" [| 0; 1; 3 |] mapping;
  checkf "delays remapped" 1. (Matrix.get out 0 2)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let test_properties () =
  let m = Matrix.create 4 in
  Matrix.set m 0 1 10.;
  Matrix.set m 2 3 30.;
  let p = Properties.analyze m in
  Alcotest.(check int) "nodes" 4 p.Properties.nodes;
  Alcotest.(check int) "edges" 2 p.Properties.edges;
  checkf "missing fraction" (4. /. 6.) p.Properties.missing_fraction;
  checkf "mean delay" 20. p.Properties.delay.Tivaware_util.Stats.mean

let () =
  Alcotest.run "delay_space"
    [
      ( "matrix",
        [
          Alcotest.test_case "symmetry" `Quick test_matrix_symmetry;
          Alcotest.test_case "diagonal" `Quick test_matrix_diagonal;
          Alcotest.test_case "missing entries" `Quick test_matrix_missing;
          Alcotest.test_case "init and edges" `Quick test_matrix_init_and_edges;
          Alcotest.test_case "iteration order" `Quick test_matrix_iter_order;
          Alcotest.test_case "neighbors" `Quick test_matrix_neighbors;
          Alcotest.test_case "row" `Quick test_matrix_row;
          Alcotest.test_case "copy independent" `Quick test_matrix_copy_independent;
          Alcotest.test_case "map" `Quick test_matrix_map;
          prop_matrix_get_symmetric;
          prop_matrix_delays_count;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "bad header" `Quick test_io_bad_header;
          Alcotest.test_case "bad entry" `Quick test_io_bad_entry;
          Alcotest.test_case "square import" `Quick test_io_square_import;
          Alcotest.test_case "symmetrize modes" `Quick test_io_square_symmetrize_modes;
          Alcotest.test_case "one-sided measurements" `Quick test_io_square_one_sided;
          Alcotest.test_case "ragged rejected" `Quick test_io_square_ragged;
          prop_io_roundtrip;
        ] );
      ( "clustering",
        [
          Alcotest.test_case "recovers blobs" `Quick test_clustering_recovers_blobs;
          Alcotest.test_case "label consistency" `Quick test_clustering_label_consistency;
          Alcotest.test_case "sizes descending" `Quick test_clustering_sizes_descending;
          Alcotest.test_case "reorder permutation" `Quick test_clustering_reorder_permutation;
          Alcotest.test_case "same_cluster" `Quick test_same_cluster;
        ] );
      ( "shortest_path",
        [
          Alcotest.test_case "known graph" `Quick test_sp_known_graph;
          Alcotest.test_case "unreachable" `Quick test_sp_unreachable;
          prop_sp_never_longer;
          prop_sp_metric;
          Alcotest.test_case "inflation" `Quick test_inflation_entries;
        ] );
      ( "repair",
        [
          Alcotest.test_case "fill shortest path" `Quick test_repair_fill_shortest_path;
          Alcotest.test_case "unreachable stays missing" `Quick
            test_repair_fill_unreachable_stays_missing;
          prop_repair_fill_never_creates_new_violations;
          Alcotest.test_case "fill constant" `Quick test_repair_fill_constant;
          Alcotest.test_case "clamp outliers" `Quick test_repair_clamp;
          Alcotest.test_case "drop low degree" `Quick test_repair_drop_low_degree;
        ] );
      ("properties", [ Alcotest.test_case "analyze" `Quick test_properties ]);
    ]
