test/test_delay_space.ml: Alcotest Array Filename Float Fun List Out_channel Printf QCheck2 QCheck_alcotest Sys Tivaware_delay_space Tivaware_tiv Tivaware_topology Tivaware_util Unix
