test/test_delay_space.mli:
