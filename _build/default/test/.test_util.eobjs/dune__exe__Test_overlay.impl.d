test/test_overlay.ml: Alcotest Array Float List Option Printf QCheck2 QCheck_alcotest Tivaware_delay_space Tivaware_overlay Tivaware_topology Tivaware_util
