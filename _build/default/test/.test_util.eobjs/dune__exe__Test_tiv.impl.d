test/test_tiv.ml: Alcotest Array Float Hashtbl List QCheck2 QCheck_alcotest Tivaware_delay_space Tivaware_tiv Tivaware_topology Tivaware_util
