test/test_meridian.mli:
