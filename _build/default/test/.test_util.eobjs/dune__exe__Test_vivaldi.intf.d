test/test_vivaldi.mli:
