test/test_eventsim.ml: Alcotest List Tivaware_eventsim
