test/test_dht.ml: Alcotest Array Float Fun Hashtbl List Printf QCheck2 QCheck_alcotest Tivaware_delay_space Tivaware_dht Tivaware_topology Tivaware_util
