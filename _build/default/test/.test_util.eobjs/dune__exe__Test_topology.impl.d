test/test_topology.ml: Alcotest Array Float List Printf QCheck2 QCheck_alcotest Result Tivaware_delay_space Tivaware_tiv Tivaware_topology Tivaware_util
