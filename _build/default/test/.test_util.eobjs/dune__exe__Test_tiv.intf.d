test/test_tiv.mli:
