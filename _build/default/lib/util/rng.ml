type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: xor-shift-multiply mix of the advanced state. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* 62 random bits fit OCaml's native int; modulo bias is negligible
     for the small bounds used in simulations (<< 2^32). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  assert (bound > 0.);
  (* 53 random mantissa bits mapped to [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits /. 9007199254740992. *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1. < p

let gauss t ~mean ~stddev =
  (* Box–Muller; one deviate per call keeps the state trajectory simple. *)
  let u1 = 1. -. float t 1. (* avoid log 0 *)
  and u2 = float t 1. in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let exponential t ~rate =
  assert (rate > 0.);
  let u = 1. -. float t 1. in
  -.log u /. rate

let pareto t ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let u = 1. -. float t 1. in
  scale /. (u ** (1. /. shape))

let lognormal t ~mu ~sigma = exp (gauss t ~mean:mu ~stddev:sigma)

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample_indices t ~n ~k =
  assert (k <= n);
  if k * 3 >= n then begin
    (* Dense: shuffle a full index array and truncate. *)
    let a = permutation t n in
    Array.sub a 0 k
  end else begin
    (* Sparse: rejection sampling into a hash table. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
