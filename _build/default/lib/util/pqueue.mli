(** Mutable binary min-heap keyed by float priorities.

    Used by Dijkstra shortest paths and by the discrete-event simulator's
    pending-event queue.  Ties are broken by insertion order so event
    processing is deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q priority v] inserts [v]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element; earliest-inserted
    wins ties. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
