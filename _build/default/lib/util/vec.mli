(** Small dense float vectors for coordinate embeddings.

    Vectors are plain [float array]s; all operations allocate fresh
    results unless the name says otherwise.  Dimensions must agree; this
    is enforced with assertions. *)

type t = float array

val zero : int -> t
val copy : t -> t
val dim : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val add_inplace : t -> t -> unit
(** [add_inplace dst src] accumulates [src] into [dst]. *)

val dot : t -> t -> float
val norm : t -> float
val dist : t -> t -> float
(** Euclidean distance. *)

val unit_direction : t -> t -> t option
(** [unit_direction a b] is the unit vector pointing from [b] toward [a],
    or [None] when the two points coincide. *)

val random_unit : Rng.t -> int -> t
(** Uniformly random direction (isotropic via Gaussian components). *)

val pp : Format.formatter -> t -> unit
