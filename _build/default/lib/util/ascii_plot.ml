let plot ?(width = 64) ?(height = 16) ?(x_label = "x") ?(y_label = "y") series =
  let points = List.concat_map snd series in
  match points with
  | [] -> "(empty plot)\n"
  | (x0, y0) :: _ ->
    let fold f init = List.fold_left (fun acc (x, y) -> f acc x y) init points in
    let x_min = fold (fun acc x _ -> Float.min acc x) x0 in
    let x_max = fold (fun acc x _ -> Float.max acc x) x0 in
    let y_min = fold (fun acc _ y -> Float.min acc y) y0 in
    let y_max = fold (fun acc _ y -> Float.max acc y) y0 in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let y_span = if y_max > y_min then y_max -. y_min else 1. in
    let canvas = Array.make_matrix height width ' ' in
    let place marker (x, y) =
      let col =
        int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
      in
      let row =
        height - 1
        - int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1))
      in
      if row >= 0 && row < height && col >= 0 && col < width then
        canvas.(row).(col) <- marker
    in
    List.iter (fun (marker, pts) -> List.iter (place marker) pts) series;
    let buf = Buffer.create (height * (width + 8)) in
    Buffer.add_string buf
      (Printf.sprintf "%s: [%.3g, %.3g]  %s: [%.3g, %.3g]\n" x_label x_min x_max
         y_label y_min y_max);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.contents buf
