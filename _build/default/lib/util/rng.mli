(** Deterministic pseudo-random number generation.

    All randomized components of the library draw from this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): fast,
    well-distributed, and splittable, which lets independent subsystems
    derive independent streams from one master seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined by [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). Requires [bound > 0]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform on [lo, hi). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gauss : t -> mean:float -> stddev:float -> float
(** Normal deviate (Box–Muller). *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1. /. rate]). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto deviate: [scale] is the minimum value, [shape] the tail index.
    Smaller shape gives a heavier tail. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal deviate: [exp (gauss mu sigma)]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_indices : t -> n:int -> k:int -> int array
(** [sample_indices t ~n ~k] is [k] distinct indices drawn uniformly from
    [0, n).  Requires [k <= n].  The result is in random order. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)
