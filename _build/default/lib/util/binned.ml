type row = {
  x_lo : float;
  x_mid : float;
  count : int;
  p10 : float;
  p50 : float;
  p90 : float;
  mean : float;
}

type t = row list

let make ~width ?x_max obs =
  assert (width > 0.);
  let bins : (int, float list ref) Hashtbl.t = Hashtbl.create 64 in
  let keep x =
    x >= 0. && match x_max with None -> true | Some m -> x < m
  in
  Seq.iter
    (fun (x, y) ->
      if keep x then begin
        let k = int_of_float (x /. width) in
        match Hashtbl.find_opt bins k with
        | Some l -> l := y :: !l
        | None -> Hashtbl.add bins k (ref [ y ])
      end)
    obs;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) bins [] in
  let keys = List.sort compare keys in
  let summarize_bin k =
    let ys = Array.of_list !(Hashtbl.find bins k) in
    let sorted = Stats.sorted_copy ys in
    {
      x_lo = float_of_int k *. width;
      x_mid = (float_of_int k +. 0.5) *. width;
      count = Array.length ys;
      p10 = Stats.percentile_sorted sorted 10.;
      p50 = Stats.percentile_sorted sorted 50.;
      p90 = Stats.percentile_sorted sorted 90.;
      mean = Stats.mean ys;
    }
  in
  List.map summarize_bin keys

let pp ppf t =
  Format.fprintf ppf "%10s %8s %12s %12s %12s@." "x_mid" "count" "p10" "p50" "p90";
  List.iter
    (fun r ->
      Format.fprintf ppf "%10.1f %8d %12.4f %12.4f %12.4f@." r.x_mid r.count
        r.p10 r.p50 r.p90)
    t
