lib/util/binned.mli: Format Seq
