lib/util/linalg.mli:
