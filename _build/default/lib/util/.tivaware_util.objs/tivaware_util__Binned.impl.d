lib/util/binned.ml: Array Format Hashtbl List Seq Stats
