lib/util/linalg.ml: Array List Vec
