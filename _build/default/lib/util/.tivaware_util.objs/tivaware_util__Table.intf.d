lib/util/table.mli:
