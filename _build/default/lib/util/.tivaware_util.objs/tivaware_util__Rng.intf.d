lib/util/rng.mli:
