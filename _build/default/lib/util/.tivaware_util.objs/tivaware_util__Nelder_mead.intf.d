lib/util/nelder_mead.mli:
