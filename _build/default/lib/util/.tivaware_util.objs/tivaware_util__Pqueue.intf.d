lib/util/pqueue.mli:
