lib/util/welford.mli:
