lib/util/vec.mli: Format Rng
