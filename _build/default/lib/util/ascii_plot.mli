(** Minimal ASCII scatter/line plots.

    Not a plotting library — just enough to eyeball a CDF or a trend in
    terminal output next to the numeric tables. *)

val plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (char * (float * float) list) list ->
  string
(** [plot series] renders each named series (marker character, points) on
    a shared canvas with auto-scaled axes.  Later series overwrite
    earlier ones where they collide.  Returns the rendered block. *)
