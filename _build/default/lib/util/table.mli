(** Aligned plain-text tables for experiment output.

    The benchmark harness prints every reproduced figure as a table of
    series; this module handles column sizing and alignment. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> t
(** [add_float_row t label xs] appends a row whose first cell is [label];
    returns [t] for chaining.  Default format is [%.4g]. *)

val to_string : t -> string
val print : t -> unit
(** Prints to stdout followed by a newline. *)
