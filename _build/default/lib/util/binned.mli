(** Fixed-width binning of (x, y) observations.

    Several of the paper's figures (4–8, 11, 19) are error-bar plots:
    x-values are grouped into fixed-width bins and the 10th, 50th and
    90th percentile of the y-values in each bin are plotted.  This module
    produces exactly that series. *)

type row = {
  x_lo : float;  (** inclusive lower edge of the bin *)
  x_mid : float; (** bin center, the plotted x *)
  count : int;
  p10 : float;
  p50 : float;
  p90 : float;
  mean : float;
}

type t = row list

val make : width:float -> ?x_max:float -> (float * float) Seq.t -> t
(** [make ~width obs] groups observations by [floor (x /. width)] and
    summarizes each non-empty bin, in increasing x order.  Observations
    with [x < 0.] or, when [x_max] is given, [x >= x_max], are dropped. *)

val pp : Format.formatter -> t -> unit
(** Aligned rows: x_mid count p10 p50 p90. *)
