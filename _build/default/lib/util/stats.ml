let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile_sorted xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile_sorted: empty array";
  if p <= 0. then xs.(0)
  else if p >= 100. then xs.(n - 1)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))
  end

let percentile xs p = percentile_sorted (sorted_copy xs) p

let median xs = percentile xs 50.

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p10 : float;
  p50 : float;
  p90 : float;
  max : float;
}

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty array";
  let sorted = sorted_copy xs in
  let n = Array.length sorted in
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    p10 = percentile_sorted sorted 10.;
    p50 = percentile_sorted sorted 50.;
    p90 = percentile_sorted sorted 90.;
    max = sorted.(n - 1);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p10=%.3f p50=%.3f p90=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p10 s.p50 s.p90 s.max
