type t = { sorted : float array }

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Cdf.of_samples: empty array";
  { sorted = Stats.sorted_copy xs }

let count t = Array.length t.sorted

let eval t x =
  (* Binary search for the number of samples <= x. *)
  let a = t.sorted in
  let n = Array.length a in
  let rec loop lo hi =
    (* invariant: a.(i) <= x for i < lo; a.(i) > x for i >= hi *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then loop (mid + 1) hi else loop lo mid
    end
  in
  float_of_int (loop 0 n) /. float_of_int n

let quantile t q =
  let a = t.sorted in
  let n = Array.length a in
  let q = Float.max 0. (Float.min 1. q) in
  let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
  a.(max 0 (min (n - 1) idx))

let points ?(max_points = 50) t =
  let a = t.sorted in
  let n = Array.length a in
  let k = min max_points n in
  List.init k (fun i ->
      let idx = (i + 1) * n / k - 1 in
      (a.(idx), float_of_int (idx + 1) /. float_of_int n))

let mean_of t = Stats.mean t.sorted

let pp_series ?max_points ppf t =
  List.iter
    (fun (v, f) -> Format.fprintf ppf "%12.4f  %6.4f@." v f)
    (points ?max_points t)
