(** Disjoint-set forest with path compression and union by rank.

    Used by the topology generator to guarantee backbone connectivity. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merges the two sets; returns [false] when already merged. *)

val same : t -> int -> int -> bool

val count_sets : t -> int
