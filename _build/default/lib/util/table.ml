type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let default_fmt x = Printf.sprintf "%.4g" x

let add_float_row t ?(fmt = default_fmt) label xs =
  add_row t (label :: List.map fmt xs);
  t

let to_string t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell)
      row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  let render_row row =
    let cells = row @ List.init (ncols - List.length row) (fun _ -> "") in
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (Printf.sprintf "%*s" widths.(i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  render_row t.header;
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    (Array.to_list widths);
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let print t = print_string (to_string t)
