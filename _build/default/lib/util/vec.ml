type t = float array

let zero d = Array.make d 0.
let copy = Array.copy
let dim = Array.length

let add a b =
  assert (dim a = dim b);
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  assert (dim a = dim b);
  Array.mapi (fun i x -> x -. b.(i)) a

let scale k a = Array.map (fun x -> k *. x) a

let add_inplace dst src =
  assert (dim dst = dim src);
  for i = 0 to dim dst - 1 do
    dst.(i) <- dst.(i) +. src.(i)
  done

let dot a b =
  assert (dim a = dim b);
  let acc = ref 0. in
  for i = 0 to dim a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm a = sqrt (dot a a)

let dist a b =
  assert (dim a = dim b);
  let acc = ref 0. in
  for i = 0 to dim a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let unit_direction a b =
  let d = sub a b in
  let n = norm d in
  if n < 1e-12 then None else Some (scale (1. /. n) d)

let random_unit rng d =
  let v = Array.init d (fun _ -> Rng.gauss rng ~mean:0. ~stddev:1.) in
  let n = norm v in
  if n < 1e-12 then begin
    let v = zero d in
    v.(0) <- 1.;
    v
  end
  else scale (1. /. n) v

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf x -> Format.fprintf ppf "%.3f" x))
    (Array.to_list v)
