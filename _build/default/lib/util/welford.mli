(** Streaming mean/variance accumulator (Welford's algorithm).

    Numerically stable single-pass statistics for long simulation traces
    where keeping every sample would be wasteful. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
(** [min]/[max] raise [Invalid_argument] when no samples were added. *)

val merge : t -> t -> t
(** Combines two accumulators as if all samples were seen by one. *)
