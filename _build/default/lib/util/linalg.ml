exception Singular

let tolerance = 1e-10

let solve a b =
  let n = Array.length a in
  assert (n = Array.length b);
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  (* Forward elimination with partial pivoting. *)
  for col = 0 to n - 1 do
    let pivot_row = ref col in
    for row = col + 1 to n - 1 do
      if abs_float m.(row).(col) > abs_float m.(!pivot_row).(col) then
        pivot_row := row
    done;
    if abs_float m.(!pivot_row).(col) < tolerance then raise Singular;
    if !pivot_row <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot_row);
      m.(!pivot_row) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!pivot_row);
      x.(!pivot_row) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if factor <> 0. then begin
        for k = col to n - 1 do
          m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  (* Back substitution. *)
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let transpose a =
  let m = Array.length a in
  if m = 0 then [||]
  else begin
    let n = Array.length a.(0) in
    Array.init n (fun j -> Array.init m (fun i -> a.(i).(j)))
  end

let mat_vec a v =
  Array.map
    (fun row ->
      let acc = ref 0. in
      Array.iteri (fun j x -> acc := !acc +. (x *. v.(j))) row;
      !acc)
    a

let mat_mul a b =
  let bt = transpose b in
  Array.map (fun row -> Array.map (fun col -> Vec.dot row col) bt) a

let lstsq a b =
  let m = Array.length a in
  assert (m = Array.length b);
  if m = 0 then raise Singular;
  let n = Array.length a.(0) in
  let at = transpose a in
  let ata = mat_mul at a in
  (* Ridge term keeps near-collinear landmark systems solvable. *)
  for i = 0 to n - 1 do
    ata.(i).(i) <- ata.(i).(i) +. 1e-8
  done;
  let atb = mat_vec at b in
  solve ata atb

let frobenius a =
  let acc = ref 0. in
  Array.iter (fun row -> Array.iter (fun x -> acc := !acc +. (x *. x)) row) a;
  sqrt !acc

let symmetric_top_eigenpairs ?(iterations = 200) c ~k =
  let n = Array.length c in
  assert (n > 0 && Array.length c.(0) = n);
  (* Work on a copy: deflation mutates the matrix. *)
  let c = Array.map Array.copy c in
  let normalize v =
    let norm = sqrt (Vec.dot v v) in
    if norm < 1e-12 then None
    else begin
      for i = 0 to n - 1 do
        v.(i) <- v.(i) /. norm
      done;
      Some v
    end
  in
  (* Deterministic, direction-rich start vector. *)
  let start j = Array.init n (fun i -> 1. /. float_of_int (1 + ((i + j) mod n))) in
  let out = ref [] in
  (try
     for j = 0 to k - 1 do
       let v = ref (start j) in
       (match normalize !v with Some u -> v := u | None -> raise Exit);
       for _ = 1 to iterations do
         let w = mat_vec c !v in
         match normalize w with
         | Some u -> v := u
         | None -> raise Exit
       done;
       let cv = mat_vec c !v in
       let lambda = Vec.dot !v cv in
       if abs_float lambda < 1e-10 then raise Exit;
       out := (lambda, Array.copy !v) :: !out;
       (* Deflate: c <- c - lambda v vT. *)
       for a = 0 to n - 1 do
         for b = 0 to n - 1 do
           c.(a).(b) <- c.(a).(b) -. (lambda *. !v.(a) *. !v.(b))
         done
       done
     done
   with Exit -> ());
  List.rev !out
