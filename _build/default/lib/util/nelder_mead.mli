(** Derivative-free minimization (Nelder–Mead downhill simplex).

    Used by the GNP network-coordinate baseline, which fits landmark and
    host coordinates by minimizing a sum of squared relative errors — a
    non-smooth objective for which Nelder–Mead is the classic choice
    (and the method the original GNP paper used). *)

type options = {
  max_iterations : int;  (** default 500 *)
  tolerance : float;  (** stop when the simplex spread falls below this *)
  initial_step : float;  (** initial simplex edge length *)
}

val default_options : options

val minimize :
  ?options:options -> f:(float array -> float) -> float array -> float array * float
(** [minimize ~f x0] returns [(x_best, f x_best)] starting from [x0].
    [f] must be defined everywhere (return [infinity] to reject a
    region).  The input [x0] is not mutated. *)
