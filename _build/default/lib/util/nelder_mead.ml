type options = {
  max_iterations : int;
  tolerance : float;
  initial_step : float;
}

let default_options = { max_iterations = 500; tolerance = 1e-8; initial_step = 1. }

(* Standard coefficients: reflection 1, expansion 2, contraction 0.5,
   shrink 0.5. *)
let alpha = 1.0
let gamma = 2.0
let rho = 0.5
let sigma = 0.5

let minimize ?(options = default_options) ~f x0 =
  let n = Array.length x0 in
  assert (n > 0);
  (* Initial simplex: x0 plus one vertex per dimension offset by the
     initial step. *)
  let simplex =
    Array.init (n + 1) (fun k ->
        let v = Array.copy x0 in
        if k > 0 then v.(k - 1) <- v.(k - 1) +. options.initial_step;
        v)
  in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    idx
  in
  let centroid excluding =
    let c = Array.make n 0. in
    Array.iteri
      (fun k v ->
        if k <> excluding then
          for d = 0 to n - 1 do
            c.(d) <- c.(d) +. v.(d)
          done)
      simplex;
    Array.map (fun x -> x /. float_of_int n) c
  in
  let combine a wa b wb = Array.init n (fun d -> (wa *. a.(d)) +. (wb *. b.(d))) in
  let iter = ref 0 in
  let spread idx =
    values.(idx.(n)) -. values.(idx.(0))
  in
  let continue_ = ref true in
  while !continue_ && !iter < options.max_iterations do
    incr iter;
    let idx = order () in
    if abs_float (spread idx) <= options.tolerance then continue_ := false
    else begin
      let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
      let c = centroid worst in
      (* Reflection. *)
      let xr = combine c (1. +. alpha) simplex.(worst) (-.alpha) in
      let fr = f xr in
      if fr < values.(best) then begin
        (* Expansion. *)
        let xe = combine c (1. +. gamma) simplex.(worst) (-.gamma) in
        let fe = f xe in
        if fe < fr then begin
          simplex.(worst) <- xe;
          values.(worst) <- fe
        end
        else begin
          simplex.(worst) <- xr;
          values.(worst) <- fr
        end
      end
      else if fr < values.(second_worst) then begin
        simplex.(worst) <- xr;
        values.(worst) <- fr
      end
      else begin
        (* Contraction (outside if the reflected point improved on the
           worst, inside otherwise). *)
        let base = if fr < values.(worst) then xr else simplex.(worst) in
        let xc = combine c (1. -. rho) base rho in
        let fc = f xc in
        if fc < Float.min fr values.(worst) then begin
          simplex.(worst) <- xc;
          values.(worst) <- fc
        end
        else begin
          (* Shrink toward the best vertex. *)
          let b = simplex.(best) in
          Array.iteri
            (fun k v ->
              if k <> best then begin
                simplex.(k) <- combine b (1. -. sigma) v sigma;
                values.(k) <- f simplex.(k)
              end)
            (Array.copy simplex)
        end
      end
    end
  done;
  let idx = order () in
  (Array.copy simplex.(idx.(0)), values.(idx.(0)))
