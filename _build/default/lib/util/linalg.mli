(** Small dense linear algebra.

    Just enough machinery for the IDES matrix-factorization baseline:
    Gaussian elimination with partial pivoting and linear least squares
    via the normal equations.  Matrices are row-major [float array array]
    and all functions work on copies. *)

exception Singular
(** Raised when a system has no unique solution (pivot below tolerance). *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a x = b] for square [a].  Raises {!Singular}. *)

val lstsq : float array array -> float array -> float array
(** [lstsq a b] minimizes [||a x - b||_2] for an [m x n] matrix with
    [m >= n], solving the normal equations [aᵀa x = aᵀ b] with a small
    ridge term for stability.  Raises {!Singular} if the system is
    degenerate even after regularization. *)

val mat_vec : float array array -> float array -> float array

val mat_mul : float array array -> float array array -> float array array

val transpose : float array array -> float array array

val frobenius : float array array -> float
(** Frobenius norm. *)

val symmetric_top_eigenpairs :
  ?iterations:int -> float array array -> k:int -> (float * float array) list
(** [symmetric_top_eigenpairs c ~k] returns up to [k]
    (eigenvalue, unit eigenvector) pairs of the symmetric matrix [c] in
    decreasing eigenvalue order, by power iteration with deflation
    ([iterations] per pair, default 200).  Intended for covariance
    matrices (PSD); stops early when the residual spectrum vanishes. *)
