(** Descriptive statistics over float samples.

    Functions either take an already-sorted array ([*_sorted] variants,
    O(1) or O(log n)) or sort a private copy themselves. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : float array -> float

val sorted_copy : float array -> float array

val percentile_sorted : float array -> float -> float
(** [percentile_sorted xs p] with [p] in [0, 100] and [xs] sorted
    ascending, using linear interpolation between order statistics.
    Raises [Invalid_argument] on the empty array. *)

val percentile : float array -> float -> float
(** As {!percentile_sorted} but sorts a copy first. *)

val median : float array -> float

val min_max : float array -> float * float
(** Raises [Invalid_argument] on the empty array. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p10 : float;
  p50 : float;
  p90 : float;
  max : float;
}

val summarize : float array -> summary
(** Full summary; raises [Invalid_argument] on the empty array. *)

val pp_summary : Format.formatter -> summary -> unit
