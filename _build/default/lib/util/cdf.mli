(** Empirical cumulative distribution functions.

    The paper reports most results as CDF curves; this module builds an
    empirical CDF from samples and exposes it both as a queryable function
    and as a printable series of (value, cumulative-fraction) points. *)

type t

val of_samples : float array -> t
(** Builds the empirical CDF of the samples.  Raises [Invalid_argument]
    on the empty array. *)

val count : t -> int

val eval : t -> float -> float
(** [eval t x] is the fraction of samples [<= x], in [0, 1]. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1]: smallest sample value [v] with
    [eval t v >= q]. *)

val points : ?max_points:int -> t -> (float * float) list
(** [(value, fraction)] pairs tracing the curve, downsampled evenly to at
    most [max_points] (default 50) so figures stay printable. *)

val mean_of : t -> float

val pp_series : ?max_points:int -> Format.formatter -> t -> unit
(** Prints the curve as aligned "value fraction" rows. *)
