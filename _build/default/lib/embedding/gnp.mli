(** GNP: Global Network Positioning (Ng & Zhang, INFOCOM 2002).

    The original landmark-based network coordinate system, included both
    as a second embedding substrate for the TIV alert mechanism and as a
    baseline against Vivaldi.  A fixed set of landmarks first position
    themselves by minimizing the sum of squared relative errors over
    landmark-to-landmark delays; each ordinary host then solves the same
    problem against its measured delays to the landmarks.  Both
    minimizations use Nelder–Mead, as in the GNP paper. *)

type config = {
  dim : int;  (** coordinate dimension (default 5) *)
  landmarks : int;  (** default 15 *)
  restarts : int;  (** Nelder–Mead restarts per fit, best kept *)
}

val default_config : config

type t

val fit :
  ?config:config -> Tivaware_util.Rng.t -> Tivaware_delay_space.Matrix.t -> t
(** Raises [Invalid_argument] when there are fewer nodes than
    landmarks. *)

val predicted : t -> int -> int -> float
(** Euclidean distance between fitted coordinates. *)

val coord : t -> int -> Tivaware_util.Vec.t
val landmarks : t -> int array

val landmark_error : t -> float
(** Final value of the landmark objective (mean squared relative
    error), a fitting-quality diagnostic. *)
