(** IDES: Internet Distance Estimation Service (Mao & Saul, IMC 2004),
    the matrix-factorization strawman of Section 4.2.

    IDES drops the metric-space constraint entirely: every node gets an
    {e outgoing} and an {e incoming} vector, and the delay from [i] to
    [j] is estimated by the inner product [out_i . in_j].  Because inner
    products need not satisfy the triangle inequality, IDES can in
    principle represent TIVs.

    Implementation: [landmarks] nodes are chosen at random; their
    pairwise delay matrix is factorized as [D ≈ X Yᵀ] by gradient
    descent (optionally with a non-negativity projection, the NMF
    variant).  Every other node then derives its vectors by linear least
    squares against its measured delays to the landmarks — exactly the
    two-phase architecture of the IDES paper. *)

type config = {
  dim : int;  (** vector dimensionality (default 10) *)
  landmarks : int;  (** default 20 *)
  iterations : int;  (** gradient steps for the landmark factorization *)
  learning_rate : float;
  nonnegative : bool;  (** project factors to [>= 0] (NMF variant) *)
}

val default_config : config

type t

val fit :
  ?config:config -> Tivaware_util.Rng.t -> Tivaware_delay_space.Matrix.t -> t
(** Raises [Invalid_argument] when the matrix has fewer nodes than
    [landmarks]. *)

val predicted : t -> int -> int -> float
(** Symmetrized estimate [(out_i . in_j + out_j . in_i) / 2], floored at
    0. *)

val landmark_rmse : t -> float
(** Root-mean-square reconstruction error over the landmark matrix —
    a fitting-quality diagnostic. *)

val landmarks : t -> int array
