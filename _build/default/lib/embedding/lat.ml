module Rng = Tivaware_util.Rng
module Vec = Tivaware_util.Vec
module Matrix = Tivaware_delay_space.Matrix
module System = Tivaware_vivaldi.System

type t = {
  coords : Vec.t array;
  adjustments : float array;
}

let fit ?(sample_size = 32) rng system =
  let n = System.size system in
  let m = System.matrix system in
  let coords = Array.init n (fun i -> System.coord system i) in
  let adjustments =
    Array.init n (fun x ->
        let k = min sample_size (n - 1) in
        let sample = Rng.sample_indices rng ~n:(n - 1) ~k in
        let acc = ref 0. and count = ref 0 in
        Array.iter
          (fun p ->
            let y = if p >= x then p + 1 else p in
            let d = Matrix.get m x y in
            if not (Float.is_nan d) then begin
              acc := !acc +. (d -. Vec.dist coords.(x) coords.(y));
              incr count
            end)
          sample;
        if !count = 0 then 0. else !acc /. (2. *. float_of_int !count))
  in
  { coords; adjustments }

let adjustment t i = t.adjustments.(i)

let predicted t i j =
  Float.max 0.
    (Vec.dist t.coords.(i) t.coords.(j) +. t.adjustments.(i) +. t.adjustments.(j))
