(** LAT: localized adjustment terms over Euclidean coordinates (Lee,
    Zhang, Sahu & Saha, SIGMETRICS 2006), the second strawman of
    Section 4.2.

    Each node [x] keeps its Vivaldi coordinate [c_x] plus a scalar
    adjustment [e_x]; the predicted delay becomes

    [d̂(x, y) = ||c_x - c_y|| + e_x + e_y]

    where [e_x] is half the average signed residual of [x]'s
    measurements to a random sample [S]:

    [e_x = Σ_{y ∈ S} (d(x,y) - ||c_x - c_y||) / (2 |S|)].

    Adjustments can be negative; the predicted delay is floored at 0. *)

type t

val fit :
  ?sample_size:int ->
  Tivaware_util.Rng.t ->
  Tivaware_vivaldi.System.t ->
  t
(** Computes adjustments from each node's measured delays to
    [sample_size] (default 32) random nodes, using the system's current
    coordinates. *)

val adjustment : t -> int -> float

val predicted : t -> int -> int -> float
