module Rng = Tivaware_util.Rng
module Vec = Tivaware_util.Vec
module Linalg = Tivaware_util.Linalg
module Matrix = Tivaware_delay_space.Matrix

type config = {
  dim : int;
  landmarks : int;
  iterations : int;
  learning_rate : float;
  nonnegative : bool;
}

let default_config =
  { dim = 10; landmarks = 20; iterations = 2000; learning_rate = 1e-4; nonnegative = false }

type t = {
  out_vecs : Vec.t array;
  in_vecs : Vec.t array;
  landmark_ids : int array;
  landmark_rmse : float;
}

(* Gradient descent on ||D - X Yᵀ||² over the landmark matrix.  The
   learning rate is normalized by the delay scale so the same config
   works for spaces measured in tens or hundreds of milliseconds. *)
let factorize rng config d =
  let l = Array.length d in
  let dim = config.dim in
  let scale =
    let acc = ref 0. and count = ref 0 in
    Array.iter
      (Array.iter (fun v ->
           if not (Float.is_nan v) then begin
             acc := !acc +. v;
             incr count
           end))
      d;
    if !count = 0 then 1. else Float.max 1. (!acc /. float_of_int !count)
  in
  let init () =
    Array.init l (fun _ ->
        Array.init dim (fun _ -> Rng.uniform rng 0.1 1.0 *. sqrt (scale /. float_of_int dim)))
  in
  let x = init () and y = init () in
  let rate = config.learning_rate in
  for _ = 1 to config.iterations do
    for i = 0 to l - 1 do
      for j = 0 to l - 1 do
        let dij = d.(i).(j) in
        if i <> j && not (Float.is_nan dij) then begin
          let err = Vec.dot x.(i) y.(j) -. dij in
          let g = rate *. err in
          for k = 0 to dim - 1 do
            let xi = x.(i).(k) and yj = y.(j).(k) in
            x.(i).(k) <- xi -. (g *. yj);
            y.(j).(k) <- yj -. (g *. xi);
            if config.nonnegative then begin
              if x.(i).(k) < 0. then x.(i).(k) <- 0.;
              if y.(j).(k) < 0. then y.(j).(k) <- 0.
            end
          done
        end
      done
    done
  done;
  let rmse =
    let acc = ref 0. and count = ref 0 in
    for i = 0 to l - 1 do
      for j = 0 to l - 1 do
        if i <> j && not (Float.is_nan d.(i).(j)) then begin
          let e = Vec.dot x.(i) y.(j) -. d.(i).(j) in
          acc := !acc +. (e *. e);
          incr count
        end
      done
    done;
    if !count = 0 then 0. else sqrt (!acc /. float_of_int !count)
  in
  (x, y, rmse)

(* Ordinary host vectors by least squares against landmark delays, as in
   the IDES paper: out_h from min ||Y out_h - d(h, .)||, in_h from X. *)
let fit_host config factors_x factors_y delays =
  let rows = ref [] and outs = ref [] in
  Array.iteri
    (fun k d ->
      if not (Float.is_nan d) then begin
        rows := k :: !rows;
        outs := d :: !outs
      end)
    delays;
  let rows = Array.of_list (List.rev !rows) in
  let b = Array.of_list (List.rev !outs) in
  if Array.length rows < config.dim then None
  else begin
    let a_y = Array.map (fun k -> factors_y.(k)) rows in
    let a_x = Array.map (fun k -> factors_x.(k)) rows in
    match (Linalg.lstsq a_y b, Linalg.lstsq a_x b) with
    | out_v, in_v ->
      let clamp v = if config.nonnegative then Array.map (Float.max 0.) v else v in
      Some (clamp out_v, clamp in_v)
    | exception Linalg.Singular -> None
  end

let fit ?(config = default_config) rng m =
  let n = Matrix.size m in
  if n < config.landmarks then
    invalid_arg "Ides.fit: fewer nodes than landmarks";
  let landmark_ids = Rng.sample_indices rng ~n ~k:config.landmarks in
  let l = config.landmarks in
  let d =
    Array.init l (fun a ->
        Array.init l (fun b ->
            if a = b then 0. else Matrix.get m landmark_ids.(a) landmark_ids.(b)))
  in
  let x, y, landmark_rmse = factorize rng config d in
  let out_vecs = Array.make n (Vec.zero config.dim) in
  let in_vecs = Array.make n (Vec.zero config.dim) in
  (* Landmarks keep their factor rows. *)
  Array.iteri
    (fun k id ->
      out_vecs.(id) <- x.(k);
      in_vecs.(id) <- y.(k))
    landmark_ids;
  let landmark_set = Hashtbl.create l in
  Array.iter (fun id -> Hashtbl.replace landmark_set id ()) landmark_ids;
  for h = 0 to n - 1 do
    if not (Hashtbl.mem landmark_set h) then begin
      let delays = Array.map (fun id -> Matrix.get m h id) landmark_ids in
      match fit_host config x y delays with
      | Some (out_v, in_v) ->
        out_vecs.(h) <- out_v;
        in_vecs.(h) <- in_v
      | None -> ()
    end
  done;
  { out_vecs; in_vecs; landmark_ids; landmark_rmse }

let predicted t i j =
  let a = Vec.dot t.out_vecs.(i) t.in_vecs.(j)
  and b = Vec.dot t.out_vecs.(j) t.in_vecs.(i) in
  Float.max 0. ((a +. b) /. 2.)

let landmark_rmse t = t.landmark_rmse
let landmarks t = Array.copy t.landmark_ids
