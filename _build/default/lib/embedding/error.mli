(** Aggregate prediction-error metrics for any delay predictor.

    Used to compare embedding quality across Vivaldi, IDES and LAT — the
    paper's point being that better aggregate accuracy does {e not}
    imply better neighbor selection. *)

type t = {
  median_abs : float;  (** median |predicted - measured|, ms *)
  p90_abs : float;
  median_rel : float;  (** median |predicted - measured| / measured *)
  p90_rel : float;
  edges : int;
}

val evaluate :
  Tivaware_delay_space.Matrix.t -> predicted:(int -> int -> float) -> t
(** Over all present edges with measured delay > 0. *)

val pp : Format.formatter -> t -> unit
