lib/embedding/ides.ml: Array Float Hashtbl List Tivaware_delay_space Tivaware_util
