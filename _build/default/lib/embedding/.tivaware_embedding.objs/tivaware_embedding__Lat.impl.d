lib/embedding/lat.ml: Array Float Tivaware_delay_space Tivaware_util Tivaware_vivaldi
