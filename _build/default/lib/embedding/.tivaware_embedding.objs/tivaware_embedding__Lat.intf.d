lib/embedding/lat.mli: Tivaware_util Tivaware_vivaldi
