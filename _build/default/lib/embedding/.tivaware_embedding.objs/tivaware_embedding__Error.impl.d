lib/embedding/error.ml: Array Format Tivaware_delay_space Tivaware_util
