lib/embedding/gnp.mli: Tivaware_delay_space Tivaware_util
