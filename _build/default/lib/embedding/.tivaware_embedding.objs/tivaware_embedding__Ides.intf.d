lib/embedding/ides.mli: Tivaware_delay_space Tivaware_util
