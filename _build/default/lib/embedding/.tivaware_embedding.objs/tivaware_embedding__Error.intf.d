lib/embedding/error.mli: Format Tivaware_delay_space
