lib/embedding/virtual_landmarks.ml: Array Float List Tivaware_delay_space Tivaware_util
