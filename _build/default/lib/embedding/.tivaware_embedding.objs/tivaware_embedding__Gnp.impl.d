lib/embedding/gnp.ml: Array Float Hashtbl Tivaware_delay_space Tivaware_util
