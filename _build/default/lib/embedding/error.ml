module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix

type t = {
  median_abs : float;
  p90_abs : float;
  median_rel : float;
  p90_rel : float;
  edges : int;
}

let evaluate m ~predicted =
  let abs_errs = ref [] and rel_errs = ref [] in
  Matrix.iter_edges m (fun i j d ->
      if d > 1e-9 then begin
        let e = abs_float (predicted i j -. d) in
        abs_errs := e :: !abs_errs;
        rel_errs := (e /. d) :: !rel_errs
      end);
  let abs_errs = Array.of_list !abs_errs in
  let rel_errs = Array.of_list !rel_errs in
  {
    median_abs = Stats.median abs_errs;
    p90_abs = Stats.percentile abs_errs 90.;
    median_rel = Stats.median rel_errs;
    p90_rel = Stats.percentile rel_errs 90.;
    edges = Array.length abs_errs;
  }

let pp ppf t =
  Format.fprintf ppf
    "edges=%d abs: p50=%.2fms p90=%.2fms  rel: p50=%.3f p90=%.3f" t.edges
    t.median_abs t.p90_abs t.median_rel t.p90_rel
