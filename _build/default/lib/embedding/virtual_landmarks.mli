(** Virtual landmarks / PCA coordinates (Tang & Crovella, IMC 2003) —
    a third network-coordinate baseline (and alert substrate).

    Each node is first given its {e Lipschitz vector}: the vector of
    measured delays to [landmarks] landmark nodes.  Principal component
    analysis of these vectors yields a low-dimensional projection — the
    "virtual landmarks" — and the delay between two nodes is estimated
    as the scaled Euclidean distance between their projected
    coordinates, with the scale fitted by least squares against a
    sample of measured delays.

    Unlike Vivaldi this method is landmark-based and one-shot (no
    iteration), and unlike GNP it needs no non-linear optimization —
    useful as a cheap embedding to feed the TIV alert mechanism. *)

type config = {
  dim : int;  (** projected dimension (default 5) *)
  landmarks : int;  (** default 20 *)
  scale_sample : int;  (** measured pairs used to fit the scale (default 2000) *)
}

val default_config : config

type t

val fit :
  ?config:config -> Tivaware_util.Rng.t -> Tivaware_delay_space.Matrix.t -> t
(** Raises [Invalid_argument] when there are fewer nodes than
    landmarks.  Nodes missing a landmark measurement get the landmark's
    mean delay imputed. *)

val predicted : t -> int -> int -> float
val coord : t -> int -> Tivaware_util.Vec.t
val landmarks : t -> int array
val scale : t -> float
(** The fitted ms-per-unit scale factor. *)

val explained_variance : t -> float
(** Fraction of Lipschitz-vector variance captured by the kept
    components — a quality diagnostic. *)
