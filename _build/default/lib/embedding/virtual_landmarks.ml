module Rng = Tivaware_util.Rng
module Vec = Tivaware_util.Vec
module Linalg = Tivaware_util.Linalg
module Matrix = Tivaware_delay_space.Matrix

type config = {
  dim : int;
  landmarks : int;
  scale_sample : int;
}

let default_config = { dim = 5; landmarks = 20; scale_sample = 2000 }

type t = {
  coords : Vec.t array;
  landmark_ids : int array;
  scale : float;
  explained_variance : float;
}

let fit ?(config = default_config) rng m =
  let n = Matrix.size m in
  if n < config.landmarks then
    invalid_arg "Virtual_landmarks.fit: fewer nodes than landmarks";
  let l = config.landmarks in
  let landmark_ids = Rng.sample_indices rng ~n ~k:l in
  (* Lipschitz vectors, with per-landmark mean imputation for missing
     measurements. *)
  let raw =
    Array.init n (fun node ->
        Array.map (fun lm -> if node = lm then 0. else Matrix.get m node lm) landmark_ids)
  in
  let landmark_mean =
    Array.init l (fun k ->
        let acc = ref 0. and count = ref 0 in
        Array.iter
          (fun v ->
            if not (Float.is_nan v.(k)) then begin
              acc := !acc +. v.(k);
              incr count
            end)
          raw;
        if !count = 0 then 0. else !acc /. float_of_int !count)
  in
  let lipschitz =
    Array.map
      (Array.mapi (fun k v -> if Float.is_nan v then landmark_mean.(k) else v))
      raw
  in
  (* PCA: covariance of mean-centered vectors, top-dim eigenvectors. *)
  let mean =
    Array.init l (fun k ->
        Array.fold_left (fun acc v -> acc +. v.(k)) 0. lipschitz /. float_of_int n)
  in
  let centered = Array.map (fun v -> Array.mapi (fun k x -> x -. mean.(k)) v) lipschitz in
  let cov =
    Array.init l (fun a ->
        Array.init l (fun b ->
            let acc = ref 0. in
            Array.iter (fun v -> acc := !acc +. (v.(a) *. v.(b))) centered;
            !acc /. float_of_int n))
  in
  let total_variance = Array.to_list cov |> List.mapi (fun i row -> row.(i)) |> List.fold_left ( +. ) 0. in
  let eigenpairs = Linalg.symmetric_top_eigenpairs cov ~k:config.dim in
  let components = Array.of_list (List.map snd eigenpairs) in
  let captured = List.fold_left (fun acc (lambda, _) -> acc +. lambda) 0. eigenpairs in
  let project v = Array.map (fun comp -> Vec.dot v comp) components in
  let coords = Array.map project centered in
  (* Fit the ms-per-unit scale on sampled measured pairs:
     alpha = sum(d * e) / sum(e^2). *)
  let num = ref 0. and den = ref 0. in
  let samples = max 1 config.scale_sample in
  for _ = 1 to samples do
    let i = Rng.int rng n and j = Rng.int rng n in
    if i <> j && Matrix.known m i j then begin
      let e = Vec.dist coords.(i) coords.(j) in
      let d = Matrix.get m i j in
      num := !num +. (d *. e);
      den := !den +. (e *. e)
    end
  done;
  let scale = if !den < 1e-12 then 1. else !num /. !den in
  {
    coords;
    landmark_ids;
    scale;
    explained_variance =
      (if total_variance < 1e-12 then 1. else captured /. total_variance);
  }

let predicted t i j = t.scale *. Vec.dist t.coords.(i) t.coords.(j)
let coord t i = Vec.copy t.coords.(i)
let landmarks t = Array.copy t.landmark_ids
let scale t = t.scale
let explained_variance t = t.explained_variance
