module Rng = Tivaware_util.Rng
module Vec = Tivaware_util.Vec
module Nelder_mead = Tivaware_util.Nelder_mead
module Matrix = Tivaware_delay_space.Matrix

type config = {
  dim : int;
  landmarks : int;
  restarts : int;
}

let default_config = { dim = 5; landmarks = 15; restarts = 3 }

type t = {
  coords : Vec.t array;
  landmark_ids : int array;
  landmark_error : float;
}

(* Squared relative error, the GNP objective: robust to the delay
   scale and forgiving on long edges. *)
let sq_rel_error predicted measured =
  if measured <= 0. then 0.
  else begin
    let e = (predicted -. measured) /. measured in
    e *. e
  end

(* Objective over all landmark pairs; [x] packs L coordinates of
   dimension [dim]. *)
let landmark_objective d l dim x =
  let coord k = Array.sub x (k * dim) dim in
  let coords = Array.init l coord in
  let acc = ref 0. and count = ref 0 in
  for a = 0 to l - 1 do
    for b = a + 1 to l - 1 do
      let m = d.(a).(b) in
      if not (Float.is_nan m) then begin
        acc := !acc +. sq_rel_error (Vec.dist coords.(a) coords.(b)) m;
        incr count
      end
    done
  done;
  if !count = 0 then 0. else !acc /. float_of_int !count

(* Objective for one host against the fitted landmark coordinates. *)
let host_objective landmark_coords delays x =
  let acc = ref 0. and count = ref 0 in
  Array.iteri
    (fun k m ->
      if not (Float.is_nan m) then begin
        acc := !acc +. sq_rel_error (Vec.dist x landmark_coords.(k)) m;
        incr count
      end)
    delays;
  if !count = 0 then infinity else !acc /. float_of_int !count

let best_of_restarts rng restarts ~init_scale ~dim_total ~f =
  let best = ref None in
  for _ = 1 to restarts do
    let x0 = Array.init dim_total (fun _ -> Rng.uniform rng 0. init_scale) in
    let options =
      { Nelder_mead.default_options with
        Nelder_mead.max_iterations = 200 * dim_total;
        initial_step = init_scale /. 4. }
    in
    let x, v = Nelder_mead.minimize ~options ~f x0 in
    match !best with
    | Some (_, bv) when bv <= v -> ()
    | _ -> best := Some (x, v)
  done;
  match !best with Some r -> r | None -> assert false

let fit ?(config = default_config) rng m =
  let n = Matrix.size m in
  if n < config.landmarks then invalid_arg "Gnp.fit: fewer nodes than landmarks";
  let l = config.landmarks and dim = config.dim in
  let landmark_ids = Rng.sample_indices rng ~n ~k:l in
  let d =
    Array.init l (fun a ->
        Array.init l (fun b ->
            if a = b then 0. else Matrix.get m landmark_ids.(a) landmark_ids.(b)))
  in
  (* Scale the initial simplex to the delay magnitude. *)
  let scale =
    let acc = ref 0. and count = ref 0 in
    Array.iter
      (Array.iter (fun v ->
           if (not (Float.is_nan v)) && v > 0. then begin
             acc := !acc +. v;
             incr count
           end))
      d;
    if !count = 0 then 100. else !acc /. float_of_int !count
  in
  let x, landmark_error =
    best_of_restarts rng config.restarts ~init_scale:scale ~dim_total:(l * dim)
      ~f:(landmark_objective d l dim)
  in
  let landmark_coords = Array.init l (fun k -> Array.sub x (k * dim) dim) in
  let coords = Array.make n (Vec.zero dim) in
  Array.iteri (fun k id -> coords.(id) <- landmark_coords.(k)) landmark_ids;
  let landmark_set = Hashtbl.create l in
  Array.iter (fun id -> Hashtbl.replace landmark_set id ()) landmark_ids;
  for h = 0 to n - 1 do
    if not (Hashtbl.mem landmark_set h) then begin
      let delays = Array.map (fun id -> Matrix.get m h id) landmark_ids in
      let x, _ =
        best_of_restarts rng config.restarts ~init_scale:scale ~dim_total:dim
          ~f:(host_objective landmark_coords delays)
      in
      coords.(h) <- x
    end
  done;
  { coords; landmark_ids; landmark_error }

let predicted t i j = Vec.dist t.coords.(i) t.coords.(j)
let coord t i = Vec.copy t.coords.(i)
let landmarks t = Array.copy t.landmark_ids
let landmark_error t = t.landmark_error
