lib/eventsim/sim.ml: Printf Tivaware_util
