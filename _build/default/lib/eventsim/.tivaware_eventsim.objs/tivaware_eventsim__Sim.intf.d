lib/eventsim/sim.mli:
