(** Shortest paths over the complete delay graph.

    The paper's Figure 8 compares each edge's measured delay with the
    length of the shortest alternative path through other nodes; a large
    gap is exactly what makes an edge cause severe TIVs.  Missing matrix
    entries are treated as absent edges. *)

val single_source : Matrix.t -> int -> float array
(** [single_source m src] is the array of shortest-path distances from
    [src] to every node (dense Dijkstra, O(n²)); unreachable nodes get
    [infinity]. *)

val all_pairs : Matrix.t -> Matrix.t
(** Shortest-path closure of the delay graph: entry [(i, j)] is the
    length of the shortest path between [i] and [j] (which is [<=] the
    measured delay when the measurement exists). *)

val inflation : Matrix.t -> (int * int * float * float) array
(** For every present edge, [(i, j, measured, shortest)].  The ratio
    [measured /. shortest] is the routing inflation of the edge;
    [> 1] means a shorter alternative path exists, i.e. the edge causes
    TIVs. *)
