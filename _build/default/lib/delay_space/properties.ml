module Stats = Tivaware_util.Stats

type t = {
  nodes : int;
  edges : int;
  missing_fraction : float;
  delay : Stats.summary;
}

let analyze m =
  let n = Matrix.size m in
  let delays = Matrix.delays m in
  let edges = Array.length delays in
  let pairs = n * (n - 1) / 2 in
  {
    nodes = n;
    edges;
    missing_fraction =
      (if pairs = 0 then 0.
       else float_of_int (pairs - edges) /. float_of_int pairs);
    delay = Stats.summarize delays;
  }

let pp ppf t =
  Format.fprintf ppf "nodes=%d edges=%d missing=%.2f%% delay: %a" t.nodes
    t.edges (100. *. t.missing_fraction) Stats.pp_summary t.delay
