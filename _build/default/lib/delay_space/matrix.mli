(** Symmetric delay matrices.

    The fundamental object of the paper: an [n x n] matrix of round-trip
    delays in milliseconds.  Storage is a flat upper-triangular float
    array; missing measurements are represented by [nan] and skipped by
    every analysis.  The diagonal is implicitly zero. *)

type t

val create : int -> t
(** [create n] is an [n x n] matrix with all off-diagonal entries
    missing. *)

val size : t -> int

val init : int -> (int -> int -> float) -> t
(** [init n f] fills entry [(i, j)], [i < j], with [f i j].  [f] may
    return [nan] for a missing measurement. *)

val get : t -> int -> int -> float
(** [get t i j] is the delay between [i] and [j]; [0.] when [i = j];
    [nan] when missing.  Symmetric by construction. *)

val set : t -> int -> int -> float -> unit
(** Sets both [(i, j)] and [(j, i)].  Raises [Invalid_argument] on the
    diagonal. *)

val is_missing : t -> int -> int -> bool

val known : t -> int -> int -> bool
(** [known t i j] is [i <> j && not (is_missing t i j)]. *)

val copy : t -> t

val map : (int -> int -> float -> float) -> t -> t
(** Applies to present entries only. *)

val iter_edges : t -> (int -> int -> float -> unit) -> unit
(** Iterates present entries with [i < j]. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a

val edge_count : t -> int
(** Number of present (unordered) edges. *)

val edges : t -> (int * int * float) array
(** Present edges with [i < j], in row-major order. *)

val delays : t -> float array
(** All present delays, one per unordered edge. *)

val neighbors : t -> int -> (int * float) list
(** Present edges incident to a node, ascending by peer index. *)

val nearest_neighbor : t -> int -> (int * float) option
(** Peer with the minimum known delay, if any measurement exists. *)

val row : t -> int -> float array
(** [row t i] is the dense row [i] ([nan] where missing, 0 at [i]). *)

val complete : t -> bool
(** [true] when every off-diagonal entry is present. *)
