type t = { n : int; cells : float array }

(* Upper-triangular storage: entry (i, j) with i < j lives at
   [i * n - i * (i + 1) / 2 + (j - i - 1)]. *)
let index t i j =
  let i, j = if i < j then (i, j) else (j, i) in
  (i * t.n) - (i * (i + 1) / 2) + (j - i - 1)

let create n =
  assert (n >= 0);
  { n; cells = Array.make (n * (n - 1) / 2) nan }

let size t = t.n

let get t i j =
  assert (i >= 0 && i < t.n && j >= 0 && j < t.n);
  if i = j then 0. else t.cells.(index t i j)

let set t i j v =
  assert (i >= 0 && i < t.n && j >= 0 && j < t.n);
  if i = j then invalid_arg "Matrix.set: diagonal entry";
  t.cells.(index t i j) <- v

let init n f =
  let t = create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      t.cells.(index t i j) <- f i j
    done
  done;
  t

let is_missing t i j = i <> j && Float.is_nan (get t i j)
let known t i j = i <> j && not (Float.is_nan (get t i j))

let copy t = { n = t.n; cells = Array.copy t.cells }

let iter_edges t f =
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      let v = t.cells.(index t i j) in
      if not (Float.is_nan v) then f i j v
    done
  done

let map f t =
  let out = copy t in
  iter_edges t (fun i j v -> set out i j (f i j v));
  out

let fold_edges t ~init ~f =
  let acc = ref init in
  iter_edges t (fun i j v -> acc := f !acc i j v);
  !acc

let edge_count t = fold_edges t ~init:0 ~f:(fun acc _ _ _ -> acc + 1)

let edges t =
  let out = ref [] in
  iter_edges t (fun i j v -> out := (i, j, v) :: !out);
  Array.of_list (List.rev !out)

let delays t =
  let out = ref [] in
  iter_edges t (fun _ _ v -> out := v :: !out);
  Array.of_list (List.rev !out)

let neighbors t i =
  let out = ref [] in
  for j = t.n - 1 downto 0 do
    if known t i j then out := (j, get t i j) :: !out
  done;
  !out

let nearest_neighbor t i =
  let best = ref None in
  for j = 0 to t.n - 1 do
    if known t i j then begin
      let d = get t i j in
      match !best with
      | Some (_, bd) when bd <= d -> ()
      | _ -> best := Some (j, d)
    end
  done;
  !best

let row t i = Array.init t.n (fun j -> get t i j)

let complete t = Array.for_all (fun v -> not (Float.is_nan v)) t.cells
