type assignment = {
  clusters : int array array;
  noise : int array;
  label : int array;
}

(* Number of unassigned nodes within [radius] of [center]. *)
let ball_size m assigned radius center =
  let n = Matrix.size m in
  let count = ref 0 in
  for j = 0 to n - 1 do
    if (not assigned.(j)) && j <> center then begin
      let d = Matrix.get m center j in
      if (not (Float.is_nan d)) && d <= radius then incr count
    end
  done;
  !count

let extract_ball m assigned radius center =
  let n = Matrix.size m in
  let members = ref [ center ] in
  assigned.(center) <- true;
  for j = 0 to n - 1 do
    if (not assigned.(j)) && j <> center then begin
      let d = Matrix.get m center j in
      if (not (Float.is_nan d)) && d <= radius then begin
        assigned.(j) <- true;
        members := j :: !members
      end
    end
  done;
  Array.of_list !members

(* The medoid minimizes the sum of known delays to other members. *)
let medoid m members =
  let cost c =
    Array.fold_left
      (fun acc j ->
        if j = c then acc
        else begin
          let d = Matrix.get m c j in
          if Float.is_nan d then acc +. 1e6 else acc +. d
        end)
      0. members
  in
  let best = ref members.(0) and best_cost = ref (cost members.(0)) in
  Array.iter
    (fun c ->
      let k = cost c in
      if k < !best_cost then begin
        best := c;
        best_cost := k
      end)
    members;
  !best

let cluster ?(k = 3) ?(radius_ms = 50.) m =
  let n = Matrix.size m in
  let assigned = Array.make n false in
  let seeds = ref [] in
  (* Greedy ball extraction to find k seed clusters. *)
  for _ = 1 to k do
    let best = ref (-1) and best_size = ref (-1) in
    for i = 0 to n - 1 do
      if not assigned.(i) then begin
        let s = ball_size m assigned radius_ms i in
        if s > !best_size then begin
          best := i;
          best_size := s
        end
      end
    done;
    if !best >= 0 then begin
      let members = extract_ball m assigned radius_ms !best in
      seeds := members :: !seeds
    end
  done;
  let seeds = List.rev !seeds in
  (* Medoid refinement: reassign every node to the nearest medoid if it
     is within the radius; otherwise it is noise. *)
  let medoids = List.map (medoid m) seeds in
  let medoids = Array.of_list medoids in
  let label = Array.make n (-1) in
  for i = 0 to n - 1 do
    let best = ref (-1) and best_d = ref infinity in
    Array.iteri
      (fun c med ->
        let d = if i = med then 0. else Matrix.get m i med in
        if (not (Float.is_nan d)) && d < !best_d then begin
          best := c;
          best_d := d
        end)
      medoids;
    if !best >= 0 && !best_d <= radius_ms then label.(i) <- !best
  done;
  (* Collect members; sort clusters by decreasing size and relabel. *)
  let k_actual = Array.length medoids in
  let buckets = Array.make k_actual [] in
  let noise = ref [] in
  for i = n - 1 downto 0 do
    if label.(i) >= 0 then buckets.(label.(i)) <- i :: buckets.(label.(i))
    else noise := i :: !noise
  done;
  let order = Array.init k_actual (fun c -> c) in
  Array.sort
    (fun a b -> compare (List.length buckets.(b)) (List.length buckets.(a)))
    order;
  let clusters = Array.map (fun c -> Array.of_list buckets.(c)) order in
  let final_label = Array.make n (-1) in
  Array.iteri
    (fun new_c members -> Array.iter (fun i -> final_label.(i) <- new_c) members)
    clusters;
  { clusters; noise = Array.of_list !noise; label = final_label }

let reorder a =
  let out = ref [] in
  Array.iter (fun i -> out := i :: !out) a.noise;
  for c = Array.length a.clusters - 1 downto 0 do
    Array.iter (fun i -> out := i :: !out) a.clusters.(c)
  done;
  Array.of_list !out

let same_cluster a i j = a.label.(i) >= 0 && a.label.(i) = a.label.(j)

let pp ppf a =
  Format.fprintf ppf "clusters:";
  Array.iteri
    (fun c members -> Format.fprintf ppf " #%d=%d" c (Array.length members))
    a.clusters;
  Format.fprintf ppf " noise=%d" (Array.length a.noise)
