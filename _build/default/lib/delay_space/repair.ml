module Stats = Tivaware_util.Stats

let missing_count m =
  let n = Matrix.size m in
  (n * (n - 1) / 2) - Matrix.edge_count m

let fill_missing_shortest_path m =
  if missing_count m = 0 then Matrix.copy m
  else begin
    let sp = Shortest_path.all_pairs m in
    let n = Matrix.size m in
    let out = Matrix.copy m in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Matrix.is_missing out i j && Matrix.known sp i j then
          Matrix.set out i j (Matrix.get sp i j)
      done
    done;
    out
  end

let fill_missing_constant m ~value =
  let n = Matrix.size m in
  let out = Matrix.copy m in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Matrix.is_missing out i j then Matrix.set out i j value
    done
  done;
  out

let clamp_outliers m ~percentile =
  if percentile <= 0. || percentile > 100. then
    invalid_arg "Repair.clamp_outliers: percentile must be in (0, 100]";
  let delays = Matrix.delays m in
  if Array.length delays = 0 then Matrix.copy m
  else begin
    let cap = Stats.percentile delays percentile in
    Matrix.map (fun _ _ v -> Float.min v cap) m
  end

let drop_low_degree m ~min_degree =
  let n = Matrix.size m in
  let alive = Array.make n true in
  let degree = Array.make n 0 in
  Matrix.iter_edges m (fun i j _ ->
      degree.(i) <- degree.(i) + 1;
      degree.(j) <- degree.(j) + 1);
  (* Iterate: removing a node lowers its peers' degrees. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if alive.(i) && degree.(i) < min_degree then begin
        alive.(i) <- false;
        changed := true;
        List.iter
          (fun (j, _) -> if alive.(j) then degree.(j) <- degree.(j) - 1)
          (Matrix.neighbors m i)
      end
    done
  done;
  let keep = ref [] in
  for i = n - 1 downto 0 do
    if alive.(i) then keep := i :: !keep
  done;
  let mapping = Array.of_list !keep in
  let out =
    Matrix.init (Array.length mapping) (fun a b ->
        Matrix.get m mapping.(a) mapping.(b))
  in
  (out, mapping)
