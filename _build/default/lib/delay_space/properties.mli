(** Basic descriptive properties of a delay space. *)

type t = {
  nodes : int;
  edges : int;
  missing_fraction : float;  (** fraction of off-diagonal pairs missing *)
  delay : Tivaware_util.Stats.summary;
}

val analyze : Matrix.t -> t
(** Raises [Invalid_argument] when the matrix has no present edge. *)

val pp : Format.formatter -> t -> unit
