(* Dense Dijkstra: the delay graph is (nearly) complete, so the O(n^2)
   scan-for-minimum variant beats a heap-based implementation. *)
let single_source m src =
  let n = Matrix.size m in
  let dist = Array.make n infinity in
  let done_ = Array.make n false in
  dist.(src) <- 0.;
  let exception Finished in
  (try
     for _ = 0 to n - 1 do
       let u = ref (-1) and best = ref infinity in
       for i = 0 to n - 1 do
         if (not done_.(i)) && dist.(i) < !best then begin
           u := i;
           best := dist.(i)
         end
       done;
       if !u < 0 then raise Finished;
       let u = !u in
       done_.(u) <- true;
       for v = 0 to n - 1 do
         if not done_.(v) then begin
           let w = Matrix.get m u v in
           if (not (Float.is_nan w)) && dist.(u) +. w < dist.(v) then
             dist.(v) <- dist.(u) +. w
         end
       done
     done
   with Finished -> ());
  dist

let all_pairs m =
  let n = Matrix.size m in
  let out = Matrix.create n in
  for src = 0 to n - 1 do
    let dist = single_source m src in
    for j = src + 1 to n - 1 do
      if dist.(j) < infinity then Matrix.set out src j dist.(j)
    done
  done;
  out

let inflation m =
  let sp = all_pairs m in
  let out = ref [] in
  Matrix.iter_edges m (fun i j measured ->
      let shortest = Matrix.get sp i j in
      out := (i, j, measured, shortest) :: !out);
  Array.of_list (List.rev !out)
