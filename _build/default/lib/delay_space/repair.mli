(** Cleaning utilities for measured delay matrices.

    Real measurement data sets arrive with holes (failed probes) and
    pathological values (probe timeouts recorded as huge delays, queuing
    spikes).  These helpers implement the standard cleanups used by the
    delay-space literature without hiding TIVs: filling a missing entry
    with a shortest-path estimate is conservative with respect to the
    triangle inequality (it can never {e create} a violation on the
    filled edge). *)

val fill_missing_shortest_path : Matrix.t -> Matrix.t
(** Fills each missing entry with the shortest-path distance through
    measured edges; entries with no path at all stay missing. *)

val fill_missing_constant : Matrix.t -> value:float -> Matrix.t
(** Fills each missing entry with [value] (e.g. the median delay). *)

val clamp_outliers : Matrix.t -> percentile:float -> Matrix.t
(** Caps every delay at the given percentile of all present delays
    (e.g. 99.9 to remove timeout artifacts).  Raises
    [Invalid_argument] for percentiles outside (0, 100]. *)

val drop_low_degree : Matrix.t -> min_degree:int -> Matrix.t * int array
(** Iteratively removes nodes with fewer than [min_degree] measured
    edges, then compacts indices.  Returns the compacted matrix and the
    mapping [new_index -> old_index]. *)

val missing_count : Matrix.t -> int
