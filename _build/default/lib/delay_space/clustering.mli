(** Major-cluster classification of a delay space.

    Following the methodology of Zhang et al. (IMC 2006, the DS² paper)
    used in Section 2.2: nodes are classified into a small number of
    major clusters (continents in measured data) plus a noise cluster.

    The algorithm is greedy ball extraction followed by medoid
    refinement: repeatedly pick the unassigned node whose delay-ball of
    radius [radius_ms] contains the most unassigned nodes, make that
    ball a cluster, and finally reassign every node to the cluster with
    the nearest medoid if within [radius_ms]; unassigned nodes form the
    noise cluster. *)

type assignment = {
  clusters : int array array;
      (** [clusters.(c)] lists member nodes of cluster [c], largest
          cluster first.  The noise cluster is not included here. *)
  noise : int array;
  label : int array;
      (** [label.(i)] is the cluster index of node [i], or [-1] for
          noise. *)
}

val cluster : ?k:int -> ?radius_ms:float -> Matrix.t -> assignment
(** [cluster m] extracts [k] (default 3) major clusters with ball radius
    [radius_ms] (default 50 ms, roughly intra-continental). *)

val reorder : assignment -> int array
(** Node permutation that groups members of the same cluster
    contiguously — largest cluster first, then smaller clusters, then
    noise — as used to render Figure 3. *)

val same_cluster : assignment -> int -> int -> bool
(** [true] when both nodes carry the same non-noise label. *)

val pp : Format.formatter -> assignment -> unit
