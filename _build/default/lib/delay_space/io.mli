(** Plain-text persistence for delay matrices.

    Format: a header line ["tivaware-delay-matrix v1 <n>"] followed by
    one line per present edge: ["<i> <j> <delay_ms>"] with [i < j].
    Missing entries are simply absent.  The format round-trips exactly
    (delays are printed with full precision) and is easy to produce from
    external measurement data sets. *)

val save : Matrix.t -> string -> unit
(** [save m path] writes [m] to [path]. *)

val load : string -> Matrix.t
(** Raises [Failure] with a descriptive message on malformed input. *)

val to_channel : Matrix.t -> out_channel -> unit
val of_channel : in_channel -> Matrix.t

val load_square : ?symmetrize:[ `Min | `Max | `Mean ] -> string -> Matrix.t
(** Imports the whitespace-separated full-square-matrix format used by
    published data sets (e.g. the p2psim King matrix): [n] rows of [n]
    delay values.  Non-positive and non-numeric entries become missing.
    Asymmetric inputs are reconciled per [symmetrize] (default [`Mean]).
    Raises [Failure] on ragged input. *)

val of_square : ?symmetrize:[ `Min | `Max | `Mean ] -> float array array -> Matrix.t
(** Same reconciliation, from an in-memory square matrix ([nan] =
    missing).  Raises [Invalid_argument] on a non-square input. *)
