let magic = "tivaware-delay-matrix"
let version = "v1"

let to_channel m oc =
  Printf.fprintf oc "%s %s %d\n" magic version (Matrix.size m);
  Matrix.iter_edges m (fun i j v -> Printf.fprintf oc "%d %d %h\n" i j v)

let of_channel ic =
  let fail line msg = failwith (Printf.sprintf "Io.load: line %d: %s" line msg) in
  let header =
    match In_channel.input_line ic with
    | Some l -> l
    | None -> fail 1 "empty file"
  in
  let n =
    match String.split_on_char ' ' (String.trim header) with
    | [ m; v; n ] when m = magic && v = version -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> n
      | _ -> fail 1 "bad node count")
    | _ -> fail 1 "bad header"
  in
  let matrix = Matrix.create n in
  let rec loop lineno =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      let line = String.trim line in
      if line <> "" then begin
        match String.split_on_char ' ' line with
        | [ i; j; v ] -> (
          match (int_of_string_opt i, int_of_string_opt j, float_of_string_opt v) with
          | Some i, Some j, Some v when i >= 0 && j >= 0 && i < n && j < n && i <> j ->
            Matrix.set matrix i j v
          | _ -> fail lineno "bad edge entry")
        | _ -> fail lineno "bad edge entry"
      end;
      loop (lineno + 1)
  in
  loop 2;
  matrix

let save m path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel m oc)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

let reconcile symmetrize a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> nan
  | true, false -> b
  | false, true -> a
  | false, false -> (
    match symmetrize with
    | `Min -> Float.min a b
    | `Max -> Float.max a b
    | `Mean -> (a +. b) /. 2.)

let of_square ?(symmetrize = `Mean) rows =
  let n = Array.length rows in
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Io.of_square: matrix is not square")
    rows;
  Matrix.init n (fun i j -> reconcile symmetrize rows.(i).(j) rows.(j).(i))

let load_square ?symmetrize path =
  let parse_cell s =
    match float_of_string_opt s with
    | Some v when v > 0. && Float.is_finite v -> v
    | _ -> nan
  in
  let rows =
    In_channel.with_open_text path (fun ic ->
        let out = ref [] in
        let rec loop () =
          match In_channel.input_line ic with
          | None -> ()
          | Some line ->
            let cells =
              String.split_on_char ' ' (String.trim line)
              |> List.concat_map (String.split_on_char '\t')
              |> List.filter (fun s -> s <> "")
            in
            if cells <> [] then
              out := Array.of_list (List.map parse_cell cells) :: !out;
            loop ()
        in
        loop ();
        Array.of_list (List.rev !out))
  in
  let n = Array.length rows in
  Array.iteri
    (fun k row ->
      if Array.length row <> n then
        failwith
          (Printf.sprintf "Io.load_square: row %d has %d cells, expected %d" k
             (Array.length row) n))
    rows;
  of_square ?symmetrize rows
