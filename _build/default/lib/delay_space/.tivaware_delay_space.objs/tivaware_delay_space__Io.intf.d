lib/delay_space/io.mli: Matrix
