lib/delay_space/clustering.ml: Array Float Format List Matrix
