lib/delay_space/properties.ml: Array Format Matrix Tivaware_util
