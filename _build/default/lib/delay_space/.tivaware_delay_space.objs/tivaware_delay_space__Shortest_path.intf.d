lib/delay_space/shortest_path.mli: Matrix
