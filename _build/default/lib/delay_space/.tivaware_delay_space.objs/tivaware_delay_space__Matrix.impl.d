lib/delay_space/matrix.ml: Array Float List
