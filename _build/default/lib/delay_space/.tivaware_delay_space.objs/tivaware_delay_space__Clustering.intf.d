lib/delay_space/clustering.mli: Format Matrix
