lib/delay_space/properties.mli: Format Matrix Tivaware_util
