lib/delay_space/repair.mli: Matrix
