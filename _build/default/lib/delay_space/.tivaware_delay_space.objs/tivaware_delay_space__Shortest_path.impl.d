lib/delay_space/shortest_path.ml: Array Float List Matrix
