lib/delay_space/matrix.mli:
