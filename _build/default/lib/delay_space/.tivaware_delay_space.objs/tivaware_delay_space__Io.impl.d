lib/delay_space/io.ml: Array Float Fun In_channel List Matrix Printf String
