lib/delay_space/repair.ml: Array Float List Matrix Shortest_path Tivaware_util
