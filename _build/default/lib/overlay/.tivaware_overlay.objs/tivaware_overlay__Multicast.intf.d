lib/overlay/multicast.mli: Tivaware_delay_space Tivaware_util
