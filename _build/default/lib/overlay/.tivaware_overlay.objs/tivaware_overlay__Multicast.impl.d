lib/overlay/multicast.ml: Array Float List Tivaware_delay_space Tivaware_util
