(** Meridian ring geometry (Wong, Slivkins & Sirer, SIGCOMM 2005).

    Each Meridian node organizes its members into concentric,
    non-overlapping rings with exponentially increasing radii: ring [i]
    ([1]-based) spans [(alpha * s^(i-1), alpha * s^i]]; everything
    beyond the outermost finite ring falls into ring [rings] (the last
    ring's outer radius is effectively infinite). *)

type config = {
  alpha : float;  (** innermost ring outer radius, ms (paper: 1) *)
  s : float;  (** multiplicative radius factor (paper: 2) *)
  rings : int;  (** number of rings (paper: 11) *)
  k : int;  (** max primary members per ring (paper: 16) *)
  l : int;  (** secondary slots per ring, used only when TIV-aware dual
                placement overflows a ring (paper: 4) *)
  beta : float;  (** query acceptance threshold (paper: 0.5) *)
}

val default_config : config
(** alpha=1, s=2, rings=11, k=16, l=4, beta=0.5. *)

val unlimited_config : int -> config
(** [unlimited_config n]: capacity large enough that all [n] members fit
    in any ring — the "use all other Meridian nodes as ring members"
    idealized setting of Section 3.2.2. *)

val ring_of : config -> float -> int
(** [ring_of cfg delay] is the 1-based ring index for a member at
    [delay] ms; delays [<= alpha] map to ring 1, delays beyond the
    outermost boundary map to ring [rings]. *)

val inner_radius : config -> int -> float
(** Inner radius of ring [i] (0 for ring 1). *)

val outer_radius : config -> int -> float
(** Outer radius of ring [i]; [infinity] for the outermost ring. *)
