lib/meridian/gossip.mli: Tivaware_delay_space Tivaware_eventsim Tivaware_util
