lib/meridian/online.ml: Float Hashtbl List Overlay Query Ring Tivaware_delay_space Tivaware_eventsim
