lib/meridian/query.ml: Array Float Hashtbl List Overlay Ring Tivaware_delay_space
