lib/meridian/overlay.ml: Array Float Hashtbl List Ring Tivaware_delay_space Tivaware_util
