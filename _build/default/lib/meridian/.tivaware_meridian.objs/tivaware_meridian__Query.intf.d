lib/meridian/query.mli: Overlay Tivaware_delay_space
