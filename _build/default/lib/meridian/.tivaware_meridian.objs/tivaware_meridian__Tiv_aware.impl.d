lib/meridian/tiv_aware.ml: Float List Overlay Query Ring Tivaware_delay_space
