lib/meridian/tiv_aware.mli: Overlay Query Ring Tivaware_delay_space
