lib/meridian/ring.mli:
