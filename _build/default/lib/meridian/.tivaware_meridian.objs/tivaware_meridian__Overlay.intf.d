lib/meridian/overlay.mli: Ring Tivaware_delay_space Tivaware_util
