lib/meridian/misplacement.mli: Tivaware_delay_space
