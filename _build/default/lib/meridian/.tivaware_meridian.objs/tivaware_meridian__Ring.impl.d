lib/meridian/ring.ml:
