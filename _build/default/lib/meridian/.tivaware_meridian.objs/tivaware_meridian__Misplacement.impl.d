lib/meridian/misplacement.ml: Array Float Hashtbl List Tivaware_delay_space
