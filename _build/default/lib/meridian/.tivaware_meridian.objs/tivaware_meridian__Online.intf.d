lib/meridian/online.mli: Overlay Query Tivaware_delay_space Tivaware_eventsim
