lib/meridian/gossip.ml: Array Float Hashtbl List Tivaware_delay_space Tivaware_eventsim Tivaware_util
