module Matrix = Tivaware_delay_space.Matrix

let default_ts = 0.6
let default_tl = 2.0

let ratio predicted measured a b =
  let d = Matrix.get measured a b in
  if Float.is_nan d || d < 1e-9 then nan else predicted a b /. d

let placement cfg ~predicted ~measured ?(ts = default_ts) ?(tl = default_tl) () =
  fun node peer delay ->
    let measured_entry = (Ring.ring_of cfg delay, delay) in
    let r = ratio predicted measured node peer in
    if Float.is_nan r || (r >= ts && r <= tl) then [ measured_entry ]
    else begin
      let p = predicted node peer in
      let predicted_ring = Ring.ring_of cfg p in
      if predicted_ring = fst measured_entry then [ measured_entry ]
      else [ measured_entry; (predicted_ring, p) ]
    end

let fallback overlay ~predicted ~measured ?(ts = default_ts) () :
    Query.fallback =
 fun ~current ~target ~measured:d ->
  ignore d;
  let r = ratio predicted measured current target in
  if Float.is_nan r || r >= ts then []
  else begin
    (* The measured edge to the target looks TIV-inflated: re-select
       ring members around the predicted delay instead. *)
    let beta = (Overlay.config overlay).Ring.beta in
    let dp = predicted current target in
    let lo = (1. -. beta) *. dp and hi = (1. +. beta) *. dp in
    List.filter
      (fun m -> m.Overlay.delay >= lo && m.Overlay.delay <= hi)
      (Overlay.all_members overlay current)
  end
