(** Online Meridian queries over the discrete-event simulator.

    {!Query.closest} evaluates a query instantaneously; this module
    replays the same recursive protocol as timed message exchanges on a
    {!Tivaware_eventsim.Sim.t}, yielding wall-clock (virtual time) query
    latency in addition to probe counts:

    - the client's request reaches the start node after half its RTT to
      it (we only have RTTs, so one-way = RTT / 2);
    - at each hop the current node probes the target (one RTT), then
      fans out to its eligible ring members in parallel; each member
      costs (RTT to member) + (member's probe RTT to target) before its
      report is back;
    - the hop completes when the slowest eligible member reports
      (Meridian waits for all acceptable members);
    - forwarding to the next node costs half the RTT between them, and
      the final answer returns to the client after half the client-to-
      chosen RTT.

    The recursion, acceptance window, termination rule and answer are
    identical to {!Query.closest} — property tests assert this — so the
    module adds {e timing}, not different semantics. *)

type outcome = {
  query : Query.outcome;  (** the logical result (same as offline) *)
  latency : float;  (** virtual ms from client send to answer received *)
}

val closest :
  ?termination:Query.termination ->
  Tivaware_eventsim.Sim.t ->
  Overlay.t ->
  Tivaware_delay_space.Matrix.t ->
  client:int ->
  start:int ->
  target:int ->
  outcome
(** Runs the simulator until the query completes.  The simulator's
    clock keeps advancing across calls, so one [Sim.t] can serve many
    sequential queries.  Raises like {!Query.closest}; additionally the
    client must have a measured delay to the start node. *)
