(** Ring-membership misplacement census (Figure 13).

    For every ordered pair (Ni, Nj) with measured delay [dij], consider
    the nodes within [beta * dij] of Nj — nodes that, if the triangle
    inequality held, would have delay to Ni within
    [[(1-beta) dij, (1+beta) dij]] and hence land in the same or a very
    close ring.  The census counts the fraction that fall outside this
    window: those are ring-placement errors waiting to happen. *)

type sample = {
  dij : float;
  near_nj : int;  (** nodes within [beta * dij] of Nj *)
  misplaced : int;  (** of those, outside the window around dij at Ni *)
}

val census :
  Tivaware_delay_space.Matrix.t -> beta:float -> sample array
(** One sample per ordered measured pair with [near_nj > 0]. *)

val misplaced_fraction_by_delay :
  Tivaware_delay_space.Matrix.t ->
  beta:float ->
  bin_width:float ->
  (float * float) list
(** [(bin_center, mean misplaced fraction)] series — the Figure 13
    curve for one [beta]. *)
