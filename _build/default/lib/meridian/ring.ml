type config = {
  alpha : float;
  s : float;
  rings : int;
  k : int;
  l : int;
  beta : float;
}

let default_config = { alpha = 1.; s = 2.; rings = 11; k = 16; l = 4; beta = 0.5 }

let unlimited_config n =
  { default_config with k = max 1 n; l = 0 }

let ring_of cfg delay =
  assert (cfg.alpha > 0. && cfg.s > 1. && cfg.rings >= 1);
  if delay <= cfg.alpha then 1
  else begin
    (* Smallest i with delay <= alpha * s^i. *)
    let i = int_of_float (ceil (log (delay /. cfg.alpha) /. log cfg.s)) in
    min cfg.rings (max 1 i)
  end

let inner_radius cfg i =
  assert (i >= 1 && i <= cfg.rings);
  if i = 1 then 0. else cfg.alpha *. (cfg.s ** float_of_int (i - 1))

let outer_radius cfg i =
  assert (i >= 1 && i <= cfg.rings);
  if i = cfg.rings then infinity else cfg.alpha *. (cfg.s ** float_of_int i)
