module Matrix = Tivaware_delay_space.Matrix

type sample = {
  dij : float;
  near_nj : int;
  misplaced : int;
}

let census m ~beta =
  let n = Matrix.size m in
  let rows = Array.init n (fun i -> Matrix.row m i) in
  let out = ref [] in
  for i = 0 to n - 1 do
    let ri = rows.(i) in
    for j = 0 to n - 1 do
      if j <> i then begin
        let dij = ri.(j) in
        if not (Float.is_nan dij) then begin
          let rj = rows.(j) in
          let lo = (1. -. beta) *. dij and hi = (1. +. beta) *. dij in
          let near = ref 0 and mis = ref 0 in
          for k = 0 to n - 1 do
            if k <> i && k <> j then begin
              let djk = rj.(k) in
              if (not (Float.is_nan djk)) && djk <= beta *. dij then begin
                let dik = ri.(k) in
                if not (Float.is_nan dik) then begin
                  incr near;
                  if dik < lo || dik > hi then incr mis
                end
              end
            end
          done;
          if !near > 0 then out := { dij; near_nj = !near; misplaced = !mis } :: !out
        end
      end
    done
  done;
  Array.of_list !out

let misplaced_fraction_by_delay m ~beta ~bin_width =
  let samples = census m ~beta in
  let sums = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      let bin = int_of_float (s.dij /. bin_width) in
      let frac = float_of_int s.misplaced /. float_of_int s.near_nj in
      match Hashtbl.find_opt sums bin with
      | Some (acc, count) -> Hashtbl.replace sums bin (acc +. frac, count + 1)
      | None -> Hashtbl.add sums bin (frac, 1))
    samples;
  Hashtbl.fold
    (fun bin (acc, count) l ->
      (((float_of_int bin +. 0.5) *. bin_width, acc /. float_of_int count)) :: l)
    sums []
  |> List.sort compare
