(** Gossip-based membership discovery for the Meridian overlay.

    Real Meridian nodes learn about each other through an anti-entropy
    gossip protocol rather than a global directory.  This module runs
    that protocol on the event simulator: every participant starts
    knowing a few random {e seeds}, and periodically sends a gossip
    message — a sample of the node identifiers it knows — to one random
    known peer; the message arrives half an RTT later and the recipient
    merges the sample into its own view.

    The resulting per-node membership views plug into
    {!Overlay.build}'s [?candidates] hook, giving an overlay built only
    from what each node actually discovered. *)

type config = {
  seeds : int;  (** initial contacts per node (default 3) *)
  period : float;  (** seconds between a node's gossip messages (default 1) *)
  fanout : int;  (** node ids carried per message (default 8) *)
}

val default_config : config

type t

val run :
  ?config:config ->
  Tivaware_eventsim.Sim.t ->
  Tivaware_util.Rng.t ->
  Tivaware_delay_space.Matrix.t ->
  meridian_nodes:int array ->
  duration:float ->
  t
(** Runs the protocol for [duration] virtual seconds.  Gossip to a peer
    with no measured delay is silently dropped (unreachable peer). *)

val known : t -> int -> int array
(** Participants discovered by a node (never includes itself). *)

val candidates_hook : t -> int -> int array
(** Shaped for {!Overlay.build}'s [?candidates]. *)

val coverage : t -> float
(** Mean fraction of the other participants each node knows — 1.0 means
    full membership knowledge. *)

val messages_sent : t -> int
