module Rng = Tivaware_util.Rng
module Sim = Tivaware_eventsim.Sim
module Matrix = Tivaware_delay_space.Matrix

type config = {
  seeds : int;
  period : float;
  fanout : int;
}

let default_config = { seeds = 3; period = 1.; fanout = 8 }

type t = {
  meridian_nodes : int array;
  views : (int, unit) Hashtbl.t array;  (* indexed by participant slot *)
  slot_of : (int, int) Hashtbl.t;
  mutable messages : int;
}

let known t node =
  match Hashtbl.find_opt t.slot_of node with
  | None -> invalid_arg "Gossip.known: not a participant"
  | Some s ->
    let out = Hashtbl.fold (fun id () acc -> id :: acc) t.views.(s) [] in
    Array.of_list (List.sort compare out)

let candidates_hook t node = known t node

let coverage t =
  let count = Array.length t.meridian_nodes in
  if count <= 1 then 1.
  else begin
    let acc = ref 0. in
    Array.iter
      (fun views ->
        acc := !acc +. (float_of_int (Hashtbl.length views) /. float_of_int (count - 1)))
      t.views;
    !acc /. float_of_int count
  end

let messages_sent t = t.messages

let run ?(config = default_config) sim rng matrix ~meridian_nodes ~duration =
  assert (config.seeds >= 1 && config.period > 0. && config.fanout >= 1);
  let count = Array.length meridian_nodes in
  assert (count >= 2);
  let slot_of = Hashtbl.create count in
  Array.iteri (fun s id -> Hashtbl.replace slot_of id s) meridian_nodes;
  let views = Array.init count (fun _ -> Hashtbl.create 16) in
  let t = { meridian_nodes; views; slot_of; messages = 0 } in
  (* Bootstrap: a few random seed contacts per node. *)
  Array.iteri
    (fun s node ->
      let want = min config.seeds (count - 1) in
      let picked = ref 0 and attempts = ref 0 in
      while !picked < want && !attempts < 50 * want do
        incr attempts;
        let peer = meridian_nodes.(Rng.int rng count) in
        if peer <> node && not (Hashtbl.mem views.(s) peer) then begin
          Hashtbl.replace views.(s) peer ();
          incr picked
        end
      done)
    meridian_nodes;
  let deadline = Sim.now sim +. duration in
  let sample_view s self =
    (* Up to fanout known ids plus the sender itself. *)
    let ids = Hashtbl.fold (fun id () acc -> id :: acc) views.(s) [] in
    let ids = Array.of_list ids in
    Rng.shuffle rng ids;
    let take = min config.fanout (Array.length ids) in
    self :: Array.to_list (Array.sub ids 0 take)
  in
  let rec gossip_loop s node () =
    if Sim.now sim < deadline then begin
      let ids = Hashtbl.fold (fun id () acc -> id :: acc) views.(s) [] in
      (match ids with
      | [] -> ()
      | _ ->
        let peers = Array.of_list ids in
        let peer = Rng.choice rng peers in
        let rtt = Matrix.get matrix node peer in
        if not (Float.is_nan rtt) then begin
          t.messages <- t.messages + 1;
          let payload = sample_view s node in
          Sim.schedule_after sim (rtt /. 2000.) (fun () ->
              match Hashtbl.find_opt slot_of peer with
              | None -> ()
              | Some ps ->
                List.iter
                  (fun id ->
                    if id <> peer && Hashtbl.mem slot_of id then
                      Hashtbl.replace views.(ps) id ())
                  payload)
        end);
      Sim.schedule_after sim
        (config.period *. Rng.uniform rng 0.9 1.1)
        (gossip_loop s node)
    end
  in
  Array.iteri
    (fun s node ->
      Sim.schedule_after sim (Rng.float rng config.period) (gossip_loop s node))
    meridian_nodes;
  Sim.run ~until:deadline sim;
  t
