module Rng = Tivaware_util.Rng
module Vec = Tivaware_util.Vec
module Matrix = Tivaware_delay_space.Matrix

let of_points points =
  let n = Array.length points in
  Matrix.init n (fun i j -> Vec.dist points.(i) points.(j))

let uniform_box rng ~n ~dim ~side_ms =
  assert (n > 0 && dim > 0 && side_ms > 0.);
  let points =
    Array.init n (fun _ -> Array.init dim (fun _ -> Rng.float rng side_ms))
  in
  of_points points

let clustered rng ~n ~centers =
  assert (n > 0 && centers <> []);
  let centers = Array.of_list centers in
  let points =
    Array.init n (fun _ ->
        let center, stddev = Rng.choice rng centers in
        Array.map (fun c -> Rng.gauss rng ~mean:c ~stddev) center)
  in
  of_points points
