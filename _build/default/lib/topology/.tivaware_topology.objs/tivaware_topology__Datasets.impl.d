lib/topology/datasets.ml: Generator List Printf Tivaware_util
