lib/topology/euclidean.mli: Tivaware_delay_space Tivaware_util
