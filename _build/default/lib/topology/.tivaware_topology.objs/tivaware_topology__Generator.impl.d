lib/topology/generator.ml: Array Float Fun List Router_graph Tivaware_delay_space Tivaware_util
