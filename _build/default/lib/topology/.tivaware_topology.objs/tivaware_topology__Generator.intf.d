lib/topology/generator.mli: Tivaware_delay_space Tivaware_util
