lib/topology/synthesizer.mli: Tivaware_delay_space Tivaware_util
