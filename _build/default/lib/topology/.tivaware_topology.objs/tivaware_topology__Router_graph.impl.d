lib/topology/router_graph.ml: Array List Tivaware_util
