lib/topology/euclidean.ml: Array Tivaware_delay_space Tivaware_util
