lib/topology/datasets.mli: Generator
