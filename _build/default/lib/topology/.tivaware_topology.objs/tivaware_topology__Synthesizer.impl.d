lib/topology/synthesizer.ml: Array Fun Printf Tivaware_delay_space Tivaware_util
