lib/topology/router_graph.mli: Tivaware_util
