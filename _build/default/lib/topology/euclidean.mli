(** TIV-free control delay spaces.

    Section 3.2.2 of the paper uses an "artificial Euclidean matrix" to
    show that Meridian is near-perfect when the triangle inequality
    holds.  These generators produce delay matrices that satisfy the
    triangle inequality exactly (up to floating-point noise). *)

val uniform_box :
  Tivaware_util.Rng.t -> n:int -> dim:int -> side_ms:float ->
  Tivaware_delay_space.Matrix.t
(** [n] points uniform in a [dim]-dimensional cube of side [side_ms];
    delays are pairwise Euclidean distances. *)

val clustered :
  Tivaware_util.Rng.t -> n:int -> centers:(float array * float) list ->
  Tivaware_delay_space.Matrix.t
(** Gaussian blobs: each node picks a random [(center, stddev)] and is
    placed with isotropic Gaussian spread.  Mimics the clustered look of
    Internet delay spaces while remaining metric. *)
