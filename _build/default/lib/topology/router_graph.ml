module Rng = Tivaware_util.Rng
module Pqueue = Tivaware_util.Pqueue

type t = { n : int; adj : (int * float) list array; mutable edges : int }

let create n = { n; adj = Array.make n []; edges = 0 }

let size t = t.n

let add_edge t a b w =
  if a = b then invalid_arg "Router_graph.add_edge: self-loop";
  if w <= 0. then invalid_arg "Router_graph.add_edge: non-positive weight";
  assert (a >= 0 && a < t.n && b >= 0 && b < t.n);
  t.adj.(a) <- (b, w) :: t.adj.(a);
  t.adj.(b) <- (a, w) :: t.adj.(b);
  t.edges <- t.edges + 1

let edge_count t = t.edges

let neighbors t i = t.adj.(i)

let single_source t src =
  let dist = Array.make t.n infinity in
  let queue = Pqueue.create () in
  dist.(src) <- 0.;
  Pqueue.push queue 0. src;
  let rec drain () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (d, u) ->
      if d <= dist.(u) then
        List.iter
          (fun (v, w) ->
            let nd = d +. w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              Pqueue.push queue nd v
            end)
          t.adj.(u);
      drain ()
  in
  drain ();
  dist

let connected t =
  if t.n = 0 then true
  else begin
    let dist = single_source t 0 in
    Array.for_all (fun d -> d < infinity) dist
  end

let shortest_paths t = Array.init t.n (fun src -> single_source t src)

let random_connected rng ~n ~extra_edges ~weight =
  let g = create n in
  if n > 1 then begin
    (* Random spanning tree: connect each node to a random earlier node
       of a random permutation, which yields unbiased-enough trees for a
       synthetic backbone. *)
    let order = Rng.permutation rng n in
    for k = 1 to n - 1 do
      let parent = order.(Rng.int rng k) in
      add_edge g order.(k) parent (weight ())
    done;
    let added = ref 0 and attempts = ref 0 in
    while !added < extra_edges && !attempts < 50 * (extra_edges + 1) do
      incr attempts;
      let a = Rng.int rng n and b = Rng.int rng n in
      if a <> b && not (List.exists (fun (v, _) -> v = b) g.adj.(a)) then begin
        add_edge g a b (weight ());
        incr added
      end
    done
  end;
  g
