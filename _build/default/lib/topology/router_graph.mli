(** Sparse weighted router backbone graphs.

    The delay-space generator models the Internet core as a small
    weighted graph of routers; end-to-end base delays are shortest paths
    over this graph plus access-link delays.  Edge weights are round-trip
    milliseconds. *)

type t

val create : int -> t
(** [create n] is an edgeless graph on routers [0 .. n-1]. *)

val size : t -> int

val add_edge : t -> int -> int -> float -> unit
(** Adds an undirected edge; parallel edges are allowed (shortest paths
    use the cheapest).  Raises [Invalid_argument] on self-loops or
    non-positive weights. *)

val edge_count : t -> int

val neighbors : t -> int -> (int * float) list

val connected : t -> bool

val shortest_paths : t -> float array array
(** All-pairs shortest path lengths (Dijkstra from each router;
    [infinity] when disconnected). *)

val random_connected :
  Tivaware_util.Rng.t -> n:int -> extra_edges:int -> weight:(unit -> float) -> t
(** Random connected graph: a random spanning tree plus [extra_edges]
    additional random edges, each weighted by [weight ()]. *)
