module Rng = Tivaware_util.Rng

type preset = Ds2 | Meridian | P2psim | Planetlab

let all = [ Ds2; Meridian; P2psim; Planetlab ]

let default_size = function
  | Ds2 -> 560
  | Meridian -> 350
  | P2psim -> 245
  | Planetlab -> 229

let base_name = function
  | Ds2 -> "DS2"
  | Meridian -> "Meridian"
  | P2psim -> "p2psim"
  | Planetlab -> "PlanetLab"

let scale_cluster spec routers =
  { spec with Generator.routers }

let params ?size preset =
  let nodes = match size with Some s -> s | None -> default_size preset in
  let d = Generator.default in
  let p =
    match preset with
    | Ds2 -> { d with Generator.nodes }
    | Meridian ->
      {
        d with
        Generator.nodes;
        inflate_prob_intra = 0.12;
        inflate_prob_inter = 0.30;
        inflation_shape = 1.0;
        inflation_scale = 0.5;
        inflation_max = 25.;
        noise_fraction = 0.06;
      }
    | P2psim ->
      {
        d with
        Generator.nodes;
        inflate_prob_intra = 0.04;
        inflate_prob_inter = 0.10;
        inflation_shape = 2.2;
        inflation_scale = 0.2;
        inflation_max = 4.;
        noise_fraction = 0.04;
      }
    | Planetlab ->
      {
        d with
        Generator.nodes;
        clusters =
          List.map (fun c -> scale_cluster c 6) d.Generator.clusters;
        inflate_prob_intra = 0.10;
        inflate_prob_inter = 0.20;
        inflation_shape = 1.2;
        inflation_scale = 0.4;
        inflation_max = 16.;
        noise_fraction = 0.03;
        missing_fraction = 0.02;
      }
  in
  p

let name ?size preset =
  let n = match size with Some s -> s | None -> default_size preset in
  Printf.sprintf "%s-%d-data" (base_name preset) n

let generate ?size ~seed preset =
  let p = params ?size preset in
  (* Distinct sub-seed per preset so the four spaces are independent even
     under a shared master seed. *)
  let sub =
    match preset with Ds2 -> 1 | Meridian -> 2 | P2psim -> 3 | Planetlab -> 4
  in
  let rng = Rng.create ((seed * 1000003) + sub) in
  Generator.generate rng p
