(** Dataset presets mirroring the four measured data sets of the paper.

    Each preset is a {!Generator.params} tuned so the resulting delay
    space matches the corresponding data set's qualitative TIV profile
    (Figure 2 ordering of severity tails, Figures 4–7 severity-vs-delay
    shapes):

    - {b DS²} (4000 nodes in the paper): three major clusters, moderate
      heavy tail, severities up to ~10;
    - {b Meridian} (2500): most severe violations (tail up to ~20) —
      aggressive inflation;
    - {b p2psim} (1740): mildest violations (tail up to ~3);
    - {b PlanetLab} (229): small, academically well-connected, but with
      a noticeable severe tail (~14).

    [size] rescales node count; the paper-scale default is expensive
    (severity analysis is O(n³)), so experiments default to a few
    hundred nodes.  Pass [size] explicitly for paper-scale runs. *)

type preset = Ds2 | Meridian | P2psim | Planetlab

val name : ?size:int -> preset -> string
(** Label used in figure output: ["DS2-560-data"] style; [size] defaults
    to {!default_size}. *)

val base_name : preset -> string
(** Bare data-set name: ["DS2"], ["Meridian"], ... *)

val params : ?size:int -> preset -> Generator.params

val generate : ?size:int -> seed:int -> preset -> Generator.t
(** Generates the preset's delay space deterministically from [seed]. *)

val all : preset list
(** [Ds2; Meridian; P2psim; Planetlab] — the Figure 2/9 ensemble. *)

val default_size : preset -> int
(** Scaled-down default node counts keeping the paper's relative sizes:
    DS² 560, Meridian 350, p2psim 245, PlanetLab 229. *)
