module Rng = Tivaware_util.Rng

type schedule = {
  rounds_per_iteration : int;
  iterations : int;
}

let default_schedule = { rounds_per_iteration = 100; iterations = 10 }

(* Rank candidates by prediction ratio and keep the [keep] largest:
   small ratios are shrunk edges, the likely severe-TIV ones. *)
let select_best system node candidates keep =
  let scored =
    List.filter_map
      (fun j ->
        let r = System.prediction_ratio system node j in
        (* Unmeasured candidates are unusable as probing neighbors. *)
        if Float.is_nan r then None else Some (j, r))
      candidates
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (j, _) :: rest -> j :: take (k - 1) rest
  in
  Array.of_list (take keep sorted)

let refresh_neighbors system =
  let n = System.size system in
  let rng = System.rng system in
  for i = 0 to n - 1 do
    let current = System.neighbors system i in
    let want = Array.length current in
    if want > 0 && n > want + 1 then begin
      (* Sample a fresh batch of candidates, excluding self; duplicates
         with the current set collapse naturally via the seen table. *)
      let seen = Hashtbl.create (4 * want) in
      Array.iter (fun j -> Hashtbl.replace seen j ()) current;
      let fresh = ref [] and fresh_count = ref 0 and attempts = ref 0 in
      while !fresh_count < want && !attempts < 20 * want do
        incr attempts;
        let j = Rng.int rng n in
        if j <> i && not (Hashtbl.mem seen j) then begin
          Hashtbl.replace seen j ();
          fresh := j :: !fresh;
          incr fresh_count
        end
      done;
      let pool = Array.to_list current @ !fresh in
      let best = select_best system i pool want in
      if Array.length best = want then System.set_neighbors system i best
    end
  done

let run ?(on_iteration = fun _ _ -> ()) system schedule =
  for k = 1 to schedule.iterations do
    System.run system ~rounds:schedule.rounds_per_iteration;
    refresh_neighbors system;
    on_iteration k system
  done
