lib/vivaldi/protocol.ml: Array Float System Tivaware_delay_space Tivaware_eventsim Tivaware_util
