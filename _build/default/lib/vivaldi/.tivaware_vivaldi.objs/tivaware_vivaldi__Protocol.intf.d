lib/vivaldi/protocol.mli: System Tivaware_eventsim
