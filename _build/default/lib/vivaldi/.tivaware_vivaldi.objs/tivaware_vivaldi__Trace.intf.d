lib/vivaldi/trace.mli: System
