lib/vivaldi/dynamic_neighbors.mli: System
