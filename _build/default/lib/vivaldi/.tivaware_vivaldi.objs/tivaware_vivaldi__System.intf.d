lib/vivaldi/system.mli: Tivaware_delay_space Tivaware_util
