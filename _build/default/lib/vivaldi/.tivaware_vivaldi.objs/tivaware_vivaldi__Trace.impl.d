lib/vivaldi/trace.ml: Array List System Tivaware_delay_space Tivaware_util
