lib/vivaldi/dynamic_neighbors.ml: Array Float Hashtbl List System Tivaware_util
