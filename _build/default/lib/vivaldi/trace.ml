module Vec = Tivaware_util.Vec
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix

type error_trace = {
  edge : int * int;
  errors : float array;
}

let error_traces system ~edges ~rounds =
  let m = System.matrix system in
  let traces = Array.make_matrix (List.length edges) rounds 0. in
  for r = 0 to rounds - 1 do
    System.round system;
    List.iteri
      (fun k (i, j) ->
        traces.(k).(r) <- System.predicted system i j -. Matrix.get m i j)
      edges
  done;
  List.mapi (fun k edge -> { edge; errors = traces.(k) }) edges

type oscillation = {
  delays : float array;
  ranges : float array;
}

let oscillation ?(sample_every = 1) system ~rounds =
  assert (sample_every >= 1);
  let m = System.matrix system in
  let edges = Matrix.edges m in
  let k = Array.length edges in
  let mins = Array.make k infinity and maxs = Array.make k neg_infinity in
  let sample () =
    Array.iteri
      (fun idx (i, j, _) ->
        let p = System.predicted system i j in
        if p < mins.(idx) then mins.(idx) <- p;
        if p > maxs.(idx) then maxs.(idx) <- p)
      edges
  in
  for r = 1 to rounds do
    System.round system;
    if r mod sample_every = 0 then sample ()
  done;
  {
    delays = Array.map (fun (_, _, d) -> d) edges;
    ranges = Array.mapi (fun idx _ -> maxs.(idx) -. mins.(idx)) edges;
  }

type steady_state_stats = {
  median_abs_error : float;
  p90_abs_error : float;
  median_movement : float;
  p90_movement : float;
}

let steady_state_stats system ~rounds =
  let n = System.size system in
  let movements = ref [] in
  for _ = 1 to rounds do
    let before = Array.init n (fun i -> System.coord system i) in
    System.round system;
    for i = 0 to n - 1 do
      movements := Vec.dist before.(i) (System.coord system i) :: !movements
    done
  done;
  let movements = Array.of_list !movements in
  let abs_errors = System.absolute_errors system in
  {
    median_abs_error = Stats.median abs_errors;
    p90_abs_error = Stats.percentile abs_errors 90.;
    median_movement = Stats.median movements;
    p90_movement = Stats.percentile movements 90.;
  }
