(** Instrumented Vivaldi runs: error traces and oscillation analysis
    (Figures 10 and 11, plus the in-text error/movement statistics).

    These helpers advance a {!System.t} while recording per-round
    observables.  A "round" corresponds to one second of simulation time
    in the paper's terms (each node probes one neighbor per round). *)

type error_trace = {
  edge : int * int;
  errors : float array;  (** predicted - measured per round (signed) *)
}

val error_traces :
  System.t -> edges:(int * int) list -> rounds:int -> error_trace list
(** Runs [rounds] rounds, sampling the signed prediction error of each
    listed edge after every round (Figure 10). *)

type oscillation = {
  delays : float array;  (** measured delay per tracked edge *)
  ranges : float array;  (** max - min predicted distance per edge *)
}

val oscillation :
  ?sample_every:int -> System.t -> rounds:int -> oscillation
(** Runs [rounds] more rounds, tracking the min and max predicted
    distance of {e every} present edge (sampled every [sample_every]
    rounds, default 1).  [ranges.(k)] is the oscillation range of the
    edge with measured delay [delays.(k)] (Figure 11). *)

type steady_state_stats = {
  median_abs_error : float;
  p90_abs_error : float;
  median_movement : float;  (** ms per update step *)
  p90_movement : float;
}

val steady_state_stats : System.t -> rounds:int -> steady_state_stats
(** Runs [rounds] more rounds, recording every node's per-round
    displacement, then reports the error and movement-speed statistics
    quoted in Section 3.2.1. *)
