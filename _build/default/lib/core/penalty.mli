(** Percentage penalty — the paper's neighbor-selection quality metric.

    [penalty = (delay_to_selected - delay_to_optimal) * 100
               / delay_to_optimal]

    where delays are measured, the optimal neighbor is the candidate
    with the smallest measured delay to the client, and the selected
    neighbor is whatever the mechanism under test picked. *)

val percentage : selected:float -> optimal:float -> float
(** Raises [Invalid_argument] when [optimal <= 0]. *)

val summarize : float array -> string
(** Human-readable digest: median / p90 / mean, plus the fraction of
    perfect selections (penalty 0). *)
