module Stats = Tivaware_util.Stats

let percentage ~selected ~optimal =
  if optimal <= 0. then invalid_arg "Penalty.percentage: optimal must be > 0";
  (selected -. optimal) *. 100. /. optimal

let summarize penalties =
  if Array.length penalties = 0 then "no samples"
  else begin
    let perfect =
      Array.fold_left (fun acc p -> if p <= 1e-9 then acc + 1 else acc) 0 penalties
    in
    Printf.sprintf "n=%d median=%.1f%% p90=%.1f%% mean=%.1f%% perfect=%.1f%%"
      (Array.length penalties)
      (Stats.median penalties)
      (Stats.percentile penalties 90.)
      (Stats.mean penalties)
      (100. *. float_of_int perfect /. float_of_int (Array.length penalties))
  end
