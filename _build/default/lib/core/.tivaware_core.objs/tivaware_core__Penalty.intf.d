lib/core/penalty.mli:
