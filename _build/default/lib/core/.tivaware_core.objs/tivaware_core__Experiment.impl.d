lib/core/experiment.ml: Array Float Option Penalty Tivaware_delay_space Tivaware_meridian Tivaware_util
