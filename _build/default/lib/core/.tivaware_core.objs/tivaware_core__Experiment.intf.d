lib/core/experiment.mli: Tivaware_delay_space Tivaware_meridian Tivaware_util
