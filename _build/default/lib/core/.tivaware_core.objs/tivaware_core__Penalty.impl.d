lib/core/penalty.ml: Array Printf Tivaware_util
