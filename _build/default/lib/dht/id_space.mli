(** Circular 61-bit identifier space for the Chord-like overlay.

    Identifiers live in [0, 2^61); all arithmetic wraps.  61 bits keeps
    every value a non-negative OCaml [int] on 64-bit platforms. *)

val bits : int
(** 61. *)

val modulus : int
(** [2^bits]. *)

val of_node : int -> int
(** Deterministic pseudo-random identifier for a node index (SplitMix64
    finalizer), uniform over the space. *)

val distance_cw : int -> int -> int
(** Clockwise distance from [a] to [b]: the amount to add to [a]
    (mod [modulus]) to reach [b]. *)

val between_cw : int -> int -> int -> bool
(** [between_cw a x b]: is [x] strictly inside the clockwise arc from
    [a] to [b]?  (Chord's "x in (a, b)" test.) *)

val add : int -> int -> int
(** Addition modulo [modulus]. *)

val power_offset : int -> int
(** [power_offset k] is [2^k] for [k < bits]. *)
