let bits = 61
let modulus = 1 lsl bits
let mask = modulus - 1

(* SplitMix64 finalizer over the node index; masked to 61 bits. *)
let of_node index =
  let z = Int64.add (Int64.of_int index) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z (Int64.of_int mask))

let distance_cw a b = (b - a) land mask

let between_cw a x b =
  let da = distance_cw a x and db = distance_cw a b in
  da > 0 && da < db

let add a b = (a + b) land mask

let power_offset k =
  assert (k >= 0 && k < bits);
  1 lsl k
