lib/dht/id_space.mli:
