lib/dht/chord.ml: Array Float Hashtbl Id_space List Tivaware_delay_space
