lib/dht/id_space.ml: Int64
