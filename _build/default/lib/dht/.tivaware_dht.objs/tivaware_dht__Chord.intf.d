lib/dht/chord.mli: Tivaware_delay_space
