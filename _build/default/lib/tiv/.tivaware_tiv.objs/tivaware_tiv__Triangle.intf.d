lib/tiv/triangle.mli: Tivaware_delay_space Tivaware_util
