lib/tiv/alert.mli: Tivaware_delay_space
