lib/tiv/alert.ml: Array List Tivaware_delay_space
