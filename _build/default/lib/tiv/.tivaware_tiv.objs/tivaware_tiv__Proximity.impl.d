lib/tiv/proximity.ml: Array Fun Tivaware_delay_space Tivaware_util
