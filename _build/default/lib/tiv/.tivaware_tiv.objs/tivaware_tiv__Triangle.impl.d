lib/tiv/triangle.ml: Array Float Tivaware_delay_space Tivaware_util
