lib/tiv/proximity.mli: Tivaware_delay_space Tivaware_util
