lib/tiv/cluster_analysis.mli: Format Tivaware_delay_space
