lib/tiv/eval.ml: Alert Array Hashtbl List Severity Tivaware_delay_space
