lib/tiv/severity.mli: Tivaware_delay_space
