lib/tiv/cluster_analysis.ml: Array Float Format List Severity Tivaware_delay_space Tivaware_util
