lib/tiv/severity.ml: Array Float List Tivaware_delay_space
