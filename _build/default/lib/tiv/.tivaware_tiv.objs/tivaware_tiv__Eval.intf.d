lib/tiv/eval.mli: Tivaware_delay_space
