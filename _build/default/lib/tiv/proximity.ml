module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Stats = Tivaware_util.Stats

type result = {
  nearest_pair_diffs : float array;
  random_pair_diffs : float array;
}

let analyze rng delays ~severity ~samples =
  let n = Matrix.size delays in
  let nearest = Array.init n (fun i -> Matrix.nearest_neighbor delays i) in
  let edges = Matrix.edges severity in
  let total = Array.length edges in
  if total = 0 then invalid_arg "Proximity.analyze: no edges";
  let picks =
    if samples >= total then Array.init total Fun.id
    else Rng.sample_indices rng ~n:total ~k:samples
  in
  let nearest_diffs = ref [] and random_diffs = ref [] in
  Array.iter
    (fun idx ->
      let a, b, sev = edges.(idx) in
      (match (nearest.(a), nearest.(b)) with
      | Some (an, _), Some (bn, _) when an <> bn && Matrix.known severity an bn ->
        let sev_near = Matrix.get severity an bn in
        nearest_diffs := abs_float (sev -. sev_near) :: !nearest_diffs
      | _ -> ());
      (* Random-pair edge: uniform among present edges, rejecting the
         edge itself. *)
      let rec random_edge tries =
        if tries = 0 then None
        else begin
          let r = Rng.int rng total in
          if r = idx then random_edge (tries - 1)
          else begin
            let _, _, s = edges.(r) in
            Some s
          end
        end
      in
      match random_edge 10 with
      | Some s -> random_diffs := abs_float (sev -. s) :: !random_diffs
      | None -> ())
    picks;
  {
    nearest_pair_diffs = Array.of_list !nearest_diffs;
    random_pair_diffs = Array.of_list !random_diffs;
  }

let similarity_gap r =
  Stats.mean r.random_pair_diffs -. Stats.mean r.nearest_pair_diffs
