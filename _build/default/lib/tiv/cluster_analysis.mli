(** TIV severity by cluster structure (Figure 3 and related text).

    Reproduces the observation that edges within a major cluster cause
    fewer/milder violations than edges crossing clusters, including the
    in-text statistic that the average number of violations caused by
    within-cluster edges is much smaller than by cross-cluster edges
    (80 vs 206 in DS²). *)

type block = {
  row_cluster : int;  (** cluster index; [-1] is the noise cluster *)
  col_cluster : int;
  edges : int;
  mean_severity : float;
  p90_severity : float;
}

type t = {
  blocks : block list;  (** one entry per cluster pair, row <= col *)
  within_mean_violations : float;
  cross_mean_violations : float;
  within_mean_severity : float;
  cross_mean_severity : float;
}

val analyze :
  Tivaware_delay_space.Matrix.t ->
  Tivaware_delay_space.Clustering.assignment ->
  t
(** [analyze delays assignment] computes severities internally. *)

val analyze_with :
  severity:Tivaware_delay_space.Matrix.t ->
  counts:(int * int * int) array ->
  Tivaware_delay_space.Clustering.assignment ->
  t
(** Variant reusing a precomputed severity matrix and violation
    counts (from {!Severity.all_with_counts}). *)

val pp : Format.formatter -> t -> unit

val shade_matrix :
  severity:Tivaware_delay_space.Matrix.t ->
  Tivaware_delay_space.Clustering.assignment ->
  cells:int ->
  float array array
(** Downsampled [cells x cells] rendering of the cluster-reordered
    severity matrix (mean severity per cell), the numeric equivalent of
    Figure 3's gray-shade plot. *)
