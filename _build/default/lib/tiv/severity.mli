(** The paper's TIV severity metric (Section 2.1).

    Edge [AC] causes a triangle inequality violation in triangle [ABC]
    when [d(A,C) > d(A,B) + d(B,C)]; the {e triangulation ratio} of the
    violation is [d(A,C) / (d(A,B) + d(B,C)) > 1].  The severity of edge
    [AC] is the sum of its triangulation ratios over all violating
    intermediates [B], divided by the number of nodes [|S|]:

    [severity(AC) = (Σ_B ratio(A,B,C)) / |S|]  where the sum ranges over
    [B] with [d(A,C) > d(A,B) + d(B,C)].

    A severity of 0 means the edge causes no violation; larger is worse.
    Missing measurements are skipped (a [B] with an unknown leg cannot
    witness a violation). *)

type edge_stats = {
  severity : float;
  violations : int;  (** number of violating intermediates *)
  max_ratio : float;  (** worst triangulation ratio; 1.0 if none *)
  mean_ratio : float;  (** mean ratio over violations; 1.0 if none *)
}

val edge : Tivaware_delay_space.Matrix.t -> int -> int -> edge_stats
(** Severity and violation statistics for one edge.  Raises
    [Invalid_argument] if the edge itself is missing. *)

val edge_severity : Tivaware_delay_space.Matrix.t -> int -> int -> float

val triangulation_ratios :
  Tivaware_delay_space.Matrix.t -> int -> int -> float array
(** [triangulation_ratios m i j]: the ratio
    [d(i,j) / (d(i,b) + d(b,j))] for {e every} valid intermediate [b]
    (not just violating ones) — the distribution Figure 1 plots; values
    above 1 are the violations.  Raises [Invalid_argument] if the edge
    itself is missing. *)

val all : Tivaware_delay_space.Matrix.t -> Tivaware_delay_space.Matrix.t
(** Severity of every present edge, as a matrix aligned with the input
    (missing edges stay missing).  O(n³) but cache-friendly. *)

val all_with_counts :
  Tivaware_delay_space.Matrix.t ->
  Tivaware_delay_space.Matrix.t * (int * int * int) array
(** As {!all}, also returning per-edge violation counts
    [(i, j, count)]. *)

val severities : Tivaware_delay_space.Matrix.t -> float array
(** Flattened severity samples of every present edge (for CDFs). *)

val worst_edges :
  Tivaware_delay_space.Matrix.t -> fraction:float -> (int * int) array
(** The [fraction] (e.g. [0.2]) of present edges with the highest
    severity, given a precomputed severity matrix. *)
