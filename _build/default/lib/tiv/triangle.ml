module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix

type census = {
  triangles : int;
  violating : int;
  fraction : float;
  worst_ratio : float;
}

(* A triangle violates when its longest side exceeds the sum of the other
   two; the triangulation ratio is longest / (sum of the others). *)
let classify a b c =
  let longest = Float.max a (Float.max b c) in
  let sum = a +. b +. c -. longest in
  if longest > sum then Some (longest /. sum) else None

let finish triangles violating worst =
  {
    triangles;
    violating;
    fraction =
      (if triangles = 0 then 0.
       else float_of_int violating /. float_of_int triangles);
    worst_ratio = worst;
  }

let census m =
  let n = Matrix.size m in
  let rows = Array.init n (fun i -> Matrix.row m i) in
  let triangles = ref 0 and violating = ref 0 and worst = ref 1. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dij = rows.(i).(j) in
      if not (Float.is_nan dij) then
        for k = j + 1 to n - 1 do
          let dik = rows.(i).(k) and djk = rows.(j).(k) in
          if not (Float.is_nan dik || Float.is_nan djk) then begin
            incr triangles;
            match classify dij dik djk with
            | Some ratio ->
              incr violating;
              if ratio > !worst then worst := ratio
            | None -> ()
          end
        done
    done
  done;
  finish !triangles !violating !worst

let sample_triangle rng m =
  let n = Matrix.size m in
  let i = Rng.int rng n in
  let j = Rng.int rng n in
  let k = Rng.int rng n in
  if i = j || j = k || i = k then None
  else begin
    let a = Matrix.get m i j and b = Matrix.get m i k and c = Matrix.get m j k in
    if Float.is_nan a || Float.is_nan b || Float.is_nan c then None
    else Some (a, b, c)
  end

let sampled_census rng m ~samples =
  let triangles = ref 0 and violating = ref 0 and worst = ref 1. in
  for _ = 1 to samples do
    match sample_triangle rng m with
    | None -> ()
    | Some (a, b, c) ->
      incr triangles;
      (match classify a b c with
      | Some ratio ->
        incr violating;
        if ratio > !worst then worst := ratio
      | None -> ())
  done;
  finish !triangles !violating !worst

let violation_ratios rng m ~samples =
  let out = ref [] in
  for _ = 1 to samples do
    match sample_triangle rng m with
    | None -> ()
    | Some (a, b, c) -> (
      match classify a b c with
      | Some ratio -> out := ratio :: !out
      | None -> ())
  done;
  Array.of_list !out
