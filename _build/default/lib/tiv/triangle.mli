(** Triangle census of a delay space.

    Supports the in-text claim that ~12% of all triangles in the DS²
    data violate the triangle inequality, and provides the raw
    triangulation-ratio distribution earlier studies reported. *)

type census = {
  triangles : int;  (** triangles with all three edges measured *)
  violating : int;  (** triangles in which some edge exceeds the other two *)
  fraction : float;
  worst_ratio : float;  (** largest triangulation ratio seen; 1.0 if none *)
}

val census : Tivaware_delay_space.Matrix.t -> census
(** Exact O(n³) count over all measured triangles. *)

val sampled_census :
  Tivaware_util.Rng.t -> Tivaware_delay_space.Matrix.t -> samples:int -> census
(** Monte-Carlo estimate for large matrices: [samples] random triangles.
    [triangles] is the number of valid sampled triangles. *)

val violation_ratios :
  Tivaware_util.Rng.t -> Tivaware_delay_space.Matrix.t -> samples:int -> float array
(** Triangulation ratios of violating sampled triangles (for ratio
    CDFs). *)
