module Matrix = Tivaware_delay_space.Matrix
module Clustering = Tivaware_delay_space.Clustering
module Stats = Tivaware_util.Stats

type block = {
  row_cluster : int;
  col_cluster : int;
  edges : int;
  mean_severity : float;
  p90_severity : float;
}

type t = {
  blocks : block list;
  within_mean_violations : float;
  cross_mean_violations : float;
  within_mean_severity : float;
  cross_mean_severity : float;
}

let analyze_with ~severity ~counts assignment =
  let label = assignment.Clustering.label in
  let k = Array.length assignment.Clustering.clusters in
  (* Cluster ids 0..k-1 plus the noise cluster mapped to index k. *)
  let idx l = if l < 0 then k else l in
  let nblocks = k + 1 in
  let samples = Array.make_matrix nblocks nblocks [] in
  Matrix.iter_edges severity (fun i j s ->
      let a = idx label.(i) and b = idx label.(j) in
      let a, b = if a <= b then (a, b) else (b, a) in
      samples.(a).(b) <- s :: samples.(a).(b));
  let blocks = ref [] in
  for a = nblocks - 1 downto 0 do
    for b = nblocks - 1 downto a do
      match samples.(a).(b) with
      | [] -> ()
      | l ->
        let arr = Array.of_list l in
        blocks :=
          {
            row_cluster = (if a = k then -1 else a);
            col_cluster = (if b = k then -1 else b);
            edges = Array.length arr;
            mean_severity = Stats.mean arr;
            p90_severity = Stats.percentile arr 90.;
          }
          :: !blocks
    done
  done;
  (* Within vs cross statistics over severities... *)
  let within_sev = ref [] and cross_sev = ref [] in
  Matrix.iter_edges severity (fun i j s ->
      if label.(i) >= 0 && label.(i) = label.(j) then within_sev := s :: !within_sev
      else cross_sev := s :: !cross_sev);
  (* ... and over violation counts (includes zero-violation edges). *)
  let within_viol = ref 0 and cross_viol = ref 0 in
  let within_edges = ref 0 and cross_edges = ref 0 in
  Matrix.iter_edges severity (fun i j _ ->
      if label.(i) >= 0 && label.(i) = label.(j) then incr within_edges
      else incr cross_edges);
  Array.iter
    (fun (i, j, c) ->
      if label.(i) >= 0 && label.(i) = label.(j) then within_viol := !within_viol + c
      else cross_viol := !cross_viol + c)
    counts;
  let safe_div a b = if b = 0 then 0. else float_of_int a /. float_of_int b in
  {
    blocks = !blocks;
    within_mean_violations = safe_div !within_viol !within_edges;
    cross_mean_violations = safe_div !cross_viol !cross_edges;
    within_mean_severity = Stats.mean (Array.of_list !within_sev);
    cross_mean_severity = Stats.mean (Array.of_list !cross_sev);
  }

let analyze delays assignment =
  let severity, counts = Severity.all_with_counts delays in
  analyze_with ~severity ~counts assignment

let pp ppf t =
  Format.fprintf ppf
    "within: mean_sev=%.4f mean_viol=%.1f  cross: mean_sev=%.4f mean_viol=%.1f@."
    t.within_mean_severity t.within_mean_violations t.cross_mean_severity
    t.cross_mean_violations;
  List.iter
    (fun b ->
      Format.fprintf ppf "  block (%d,%d): edges=%d mean=%.4f p90=%.4f@."
        b.row_cluster b.col_cluster b.edges b.mean_severity b.p90_severity)
    t.blocks

let shade_matrix ~severity assignment ~cells =
  assert (cells > 0);
  let order = Clustering.reorder assignment in
  let n = Array.length order in
  let sums = Array.make_matrix cells cells 0. in
  let counts = Array.make_matrix cells cells 0 in
  let cell_of pos = min (cells - 1) (pos * cells / n) in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let s = Matrix.get severity order.(a) order.(b) in
      if not (Float.is_nan s) then begin
        let ca = cell_of a and cb = cell_of b in
        sums.(ca).(cb) <- sums.(ca).(cb) +. s;
        counts.(ca).(cb) <- counts.(ca).(cb) + 1;
        if ca <> cb then begin
          sums.(cb).(ca) <- sums.(cb).(ca) +. s;
          counts.(cb).(ca) <- counts.(cb).(ca) + 1
        end
      end
    done
  done;
  Array.init cells (fun r ->
      Array.init cells (fun c ->
          if counts.(r).(c) = 0 then 0. else sums.(r).(c) /. float_of_int counts.(r).(c)))
