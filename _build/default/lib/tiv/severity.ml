module Matrix = Tivaware_delay_space.Matrix

type edge_stats = {
  severity : float;
  violations : int;
  max_ratio : float;
  mean_ratio : float;
}

(* Dense row cache: the O(n^3) sweep is memory-bound, so we expand the
   triangular storage into plain rows once. *)
let dense_rows m =
  let n = Matrix.size m in
  Array.init n (fun i -> Matrix.row m i)

let edge_stats_rows rows n i j =
  let dij = rows.(i).(j) in
  if Float.is_nan dij then invalid_arg "Severity.edge: missing edge";
  let sum = ref 0. and count = ref 0 and max_ratio = ref 1. in
  let ri = rows.(i) and rj = rows.(j) in
  for b = 0 to n - 1 do
    if b <> i && b <> j then begin
      let leg = ri.(b) +. rj.(b) in
      (* nan legs fail the comparison, skipping missing intermediates. *)
      if dij > leg then begin
        let ratio = dij /. leg in
        sum := !sum +. ratio;
        incr count;
        if ratio > !max_ratio then max_ratio := ratio
      end
    end
  done;
  {
    severity = !sum /. float_of_int n;
    violations = !count;
    max_ratio = !max_ratio;
    mean_ratio = (if !count = 0 then 1. else !sum /. float_of_int !count);
  }

let edge m i j =
  let rows = dense_rows m in
  edge_stats_rows rows (Matrix.size m) i j

let edge_severity m i j = (edge m i j).severity

let triangulation_ratios m i j =
  let n = Matrix.size m in
  let rows = dense_rows m in
  let dij = rows.(i).(j) in
  if Float.is_nan dij then invalid_arg "Severity.triangulation_ratios: missing edge";
  let out = ref [] in
  for b = 0 to n - 1 do
    if b <> i && b <> j then begin
      let leg = rows.(i).(b) +. rows.(j).(b) in
      if (not (Float.is_nan leg)) && leg > 0. then out := (dij /. leg) :: !out
    end
  done;
  Array.of_list !out

let all_with_counts m =
  let n = Matrix.size m in
  let rows = dense_rows m in
  let out = Matrix.create n in
  let counts = ref [] in
  let nf = float_of_int n in
  for i = 0 to n - 1 do
    let ri = rows.(i) in
    for j = i + 1 to n - 1 do
      let dij = ri.(j) in
      if not (Float.is_nan dij) then begin
        let rj = rows.(j) in
        let sum = ref 0. and count = ref 0 in
        for b = 0 to n - 1 do
          let leg = ri.(b) +. rj.(b) in
          if dij > leg then begin
            sum := !sum +. (dij /. leg);
            incr count
          end
        done;
        Matrix.set out i j (!sum /. nf);
        if !count > 0 then counts := (i, j, !count) :: !counts
      end
    done
  done;
  (out, Array.of_list (List.rev !counts))

let all m = fst (all_with_counts m)

let severities m = Matrix.delays (all m)

let worst_edges severity_matrix ~fraction =
  assert (fraction >= 0. && fraction <= 1.);
  let edges = Matrix.edges severity_matrix in
  Array.sort (fun (_, _, a) (_, _, b) -> compare b a) edges;
  let keep =
    int_of_float (Float.round (fraction *. float_of_int (Array.length edges)))
  in
  Array.map (fun (i, j, _) -> (i, j)) (Array.sub edges 0 (min keep (Array.length edges)))
