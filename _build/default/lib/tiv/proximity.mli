(** Proximity (non-)predictability of TIV severity (Figure 9).

    Tests the hypothesis that nearby edges have similar TIV severity:
    for each sampled edge [AB], its {e nearest-pair edge} is [AnBn]
    where [An]/[Bn] are the delay-nearest neighbors of [A]/[B]; a
    {e random-pair edge} is drawn uniformly.  The paper finds the two
    severity-difference distributions nearly coincide, i.e. proximity
    does not predict severity. *)

type result = {
  nearest_pair_diffs : float array;
  random_pair_diffs : float array;
}

val analyze :
  Tivaware_util.Rng.t ->
  Tivaware_delay_space.Matrix.t ->
  severity:Tivaware_delay_space.Matrix.t ->
  samples:int ->
  result
(** [analyze rng delays ~severity ~samples] draws [samples] edges (or
    every edge when fewer exist) and computes both difference arrays.
    Edges whose nearest-pair edge is missing from the matrix are
    skipped. *)

val similarity_gap : result -> float
(** Mean(random diffs) - mean(nearest diffs): how much more similar
    nearest pairs are.  The paper's point is that this gap is small. *)
