(* Bechamel microbenchmarks of the hot kernels.  Run with --perf; they
   are excluded from the default figure run to keep it fast. *)

open Bechamel
open Toolkit
module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Severity = Tivaware_tiv.Severity
module Shortest_path = Tivaware_delay_space.Shortest_path
module System = Tivaware_vivaldi.System
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Query = Tivaware_meridian.Query
module Generator = Tivaware_topology.Generator
module Datasets = Tivaware_topology.Datasets

let tests () =
  let data = Datasets.generate ~size:200 ~seed:99 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let system = System.create (Rng.create 1) m in
  System.run system ~rounds:50;
  let rng = Rng.create 2 in
  let meridian_nodes = Rng.sample_indices rng ~n:(Matrix.size m) ~k:100 in
  let overlay =
    Overlay.build (Rng.create 3) m Ring.default_config ~meridian_nodes
  in
  let query_rng = Rng.create 4 in
  [
    Test.make ~name:"rng/int" (Staged.stage (fun () -> Rng.int query_rng 1000));
    Test.make ~name:"vivaldi/round"
      (Staged.stage (fun () -> System.round system));
    Test.make ~name:"severity/edge"
      (Staged.stage (fun () -> ignore (Severity.edge m 0 1)));
    Test.make ~name:"dijkstra/single-source"
      (Staged.stage (fun () -> ignore (Shortest_path.single_source m 0)));
    Test.make ~name:"meridian/query"
      (Staged.stage (fun () ->
           let start = meridian_nodes.(Rng.int query_rng 100) in
           let target = Rng.int query_rng (Matrix.size m) in
           if Overlay.is_meridian overlay start
              && (not (Overlay.is_meridian overlay target))
              && not (Matrix.is_missing m start target)
           then ignore (Query.closest overlay m ~start ~target)));
    Test.make ~name:"generator/200-nodes"
      (Staged.stage (fun () ->
           ignore (Datasets.generate ~size:200 ~seed:5 Datasets.Ds2)));
  ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  (* Run each test individually and print the OLS-estimated monotonic
     time per run. *)
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        ols)
    (List.map (fun t -> Test.make_grouped ~name:"kernel" [ t ]) (tests ()))
