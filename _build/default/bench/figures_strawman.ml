(* Section 4 figures: strawman solutions that do not (much) help. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Ides = Tivaware_embedding.Ides
module Lat = Tivaware_embedding.Lat
module Error = Tivaware_embedding.Error
module Severity = Tivaware_tiv.Severity
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors

let vivaldi_baseline ctx =
  let system = Context.vivaldi ctx in
  Experiment.run_predictor (Context.rng ctx 40) (Context.matrix ctx) ~runs:5
    ~candidate_count:(Context.candidate_count ctx)
    ~predict:(Selectors.vivaldi_predict system) ()

let fig15 ctx =
  Report.section "fig15" "Neighbor selection: IDES vs Vivaldi";
  Report.expectation
    "IDES (matrix factorization, allows TIV) is WORSE than Vivaldi at \
     neighbor selection despite comparable aggregate accuracy";
  let m = Context.matrix ctx in
  let ides = Ides.fit (Context.rng ctx 15) m in
  Report.note "IDES landmark factorization RMSE: %.2f ms" (Ides.landmark_rmse ides);
  let vivaldi_err =
    Error.evaluate m ~predicted:(Selectors.vivaldi_predict (Context.vivaldi ctx))
  in
  let ides_err = Error.evaluate m ~predicted:(Selectors.ides_predict ides) in
  Format.printf "aggregate error  Vivaldi: %a@." Error.pp vivaldi_err;
  Format.printf "aggregate error  IDES:    %a@." Error.pp ides_err;
  let r_ides =
    Experiment.run_predictor (Context.rng ctx 150) m ~runs:5
      ~candidate_count:(Context.candidate_count ctx)
      ~predict:(Selectors.ides_predict ides) ()
  in
  let r_vivaldi = vivaldi_baseline ctx in
  Report.penalty_cdf_table
    [
      ("IDES", r_ides.Experiment.penalties);
      ("Vivaldi-original", r_vivaldi.Experiment.penalties);
    ]

let fig16 ctx =
  Report.section "fig16" "Neighbor selection: Vivaldi+LAT vs Vivaldi";
  Report.expectation "LAT only marginally better than original Vivaldi";
  let m = Context.matrix ctx in
  let lat = Lat.fit (Context.rng ctx 16) (Context.vivaldi ctx) in
  let lat_err = Error.evaluate m ~predicted:(Selectors.lat_predict lat) in
  Format.printf "aggregate error  Vivaldi+LAT: %a@." Error.pp lat_err;
  let r_lat =
    Experiment.run_predictor (Context.rng ctx 160) m ~runs:5
      ~candidate_count:(Context.candidate_count ctx)
      ~predict:(Selectors.lat_predict lat) ()
  in
  let r_vivaldi = vivaldi_baseline ctx in
  Report.penalty_cdf_table
    [
      ("Vivaldi-with-LAT", r_lat.Experiment.penalties);
      ("Vivaldi-original", r_vivaldi.Experiment.penalties);
    ]

let banned_worst_20 ctx =
  Selectors.banned_set
    (Severity.worst_edges (Context.severity ctx) ~fraction:0.2)

let fig17 ctx =
  Report.section "fig17" "Vivaldi with global TIV-severity filter (worst 20% edges)";
  Report.expectation
    "removing outlier edges barely improves Vivaldi: TIV is widespread, \
     not an outlier phenomenon";
  let m = Context.matrix ctx in
  let banned = banned_worst_20 ctx in
  let filtered =
    Selectors.embed_vivaldi_filtered ~rounds:ctx.Context.vivaldi_rounds ~banned
      (Context.rng ctx 17) m
  in
  let r_filtered =
    Experiment.run_predictor (Context.rng ctx 170) m ~runs:5
      ~candidate_count:(Context.candidate_count ctx)
      ~predict:(Selectors.vivaldi_predict filtered) ()
  in
  let r_vivaldi = vivaldi_baseline ctx in
  Report.penalty_cdf_table
    [
      ("Vivaldi-original", r_vivaldi.Experiment.penalties);
      ("Vivaldi-TIV-severity-filter", r_filtered.Experiment.penalties);
    ]

let fig18 ctx =
  Report.section "fig18" "Meridian with TIV-severity filter";
  Report.expectation
    "the filter DEGRADES Meridian: it removes edges queries need, \
     under-populating rings (paper: some rings lose up to 50%%)";
  let m = Context.matrix ctx in
  let cfg = Ring.default_config in
  let banned = banned_worst_20 ctx in
  let count = Context.meridian_count_normal ctx in
  let r_orig =
    Experiment.run_meridian (Context.rng ctx 18) m ~runs:5 ~meridian_count:count
      ~build:(Selectors.meridian_build m cfg) ()
  in
  let r_filt =
    Experiment.run_meridian (Context.rng ctx 181) m ~runs:5 ~meridian_count:count
      ~build:(Selectors.meridian_build_filtered m cfg ~banned) ()
  in
  (* Ring population diagnostic on one overlay instance of each kind. *)
  let rng = Context.rng ctx 182 in
  let nodes = Rng.sample_indices rng ~n:(Matrix.size m) ~k:count in
  let pop_orig = Overlay.mean_ring_population (Selectors.meridian_build m cfg rng nodes) in
  let pop_filt =
    Overlay.mean_ring_population
      (Selectors.meridian_build_filtered m cfg ~banned rng nodes)
  in
  print_endline "mean ring population (original / filtered):";
  Array.iteri
    (fun r a ->
      Printf.printf "  ring %2d: %6.2f / %6.2f\n" (r + 1) a pop_filt.(r))
    pop_orig;
  Report.penalty_cdf_table
    [
      ("Meridian-original", r_orig.Experiment.base.Experiment.penalties);
      ("Meridian-TIV-severity-filter", r_filt.Experiment.base.Experiment.penalties);
    ]

let register () =
  Registry.register "fig15" "IDES strawman" fig15;
  Registry.register "fig16" "LAT strawman" fig16;
  Registry.register "fig17" "Vivaldi severity filter" fig17;
  Registry.register "fig18" "Meridian severity filter" fig18
