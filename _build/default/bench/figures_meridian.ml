(* Section 3.2.2 figures: how TIVs break Meridian. *)

module Rng = Tivaware_util.Rng
module Table = Tivaware_util.Table
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Misplacement = Tivaware_meridian.Misplacement
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors

let fig13 ctx =
  Report.section "fig13" "Percentage of Meridian ring members misplaced";
  Report.expectation
    "larger beta tolerates more TIVs; at beta=0.5 placement errors hit \
     10-30%% below 400ms and worse beyond";
  let m = Context.matrix ctx in
  let betas = [ 0.1; 0.5; 0.9 ] in
  let series =
    List.map
      (fun beta -> (beta, Misplacement.misplaced_fraction_by_delay m ~beta ~bin_width:100.))
      betas
  in
  (* Merge the per-beta series on the shared delay bins. *)
  let bins =
    List.sort_uniq compare
      (List.concat_map (fun (_, s) -> List.map fst s) series)
  in
  let table =
    Table.create
      ~header:
        ("delay_ms" :: List.map (fun b -> Printf.sprintf "beta=%.1f" b) betas)
  in
  List.iter
    (fun bin ->
      if bin <= 1000. then
        Table.add_row table
          (Printf.sprintf "%.0f" bin
          :: List.map
               (fun (_, s) ->
                 match List.assoc_opt bin s with
                 | Some f -> Printf.sprintf "%.3f" f
                 | None -> "-")
               series))
    bins;
  Table.print table

(* The worked example of Figure 12, with the paper's exact delays:
   A-T = 12, T-N = 1, A-N = 25, A-B = 11, B-T = 2, B-N = 4. *)
let fig12_matrix () =
  let a = 0 and b = 1 and n = 2 and t = 3 in
  let m = Matrix.create 4 in
  Matrix.set m a t 12.;
  Matrix.set m t n 1.;
  Matrix.set m a n 25.;
  Matrix.set m a b 11.;
  Matrix.set m b t 2.;
  Matrix.set m b n 4.;
  (m, a, b, n, t)

let fig12 ctx =
  Report.section "fig12" "The worked example: Meridian misled by two TIVs";
  Report.expectation
    "query from A for T's closest neighbor returns B (2ms) even though \
     N (1ms) exists: A-N and B-N measurements are TIV-inflated, so N is \
     never asked to probe";
  ignore ctx;
  let m, a, b, n, t = fig12_matrix () in
  let overlay =
    Tivaware_meridian.Overlay.build (Rng.create 12) m Ring.default_config
      ~meridian_nodes:[| a; b; n |]
  in
  let outcome = Query.closest overlay m ~start:a ~target:t in
  Report.measured "chosen %c at %.0f ms (optimal N at 1 ms); path %s"
    (match outcome.Query.chosen with
    | x when x = a -> 'A'
    | x when x = b -> 'B'
    | x when x = n -> 'N'
    | _ -> '?')
    outcome.Query.chosen_delay
    (String.concat "->"
       (List.map
          (fun x -> if x = a then "A" else if x = b then "B" else "N")
          outcome.Query.path));
  (* The TIV alert view: with the embedding-predicted "true" delays the
     restart rule re-examines N. *)
  let predicted i j =
    (* Hypothetical embedding that reflects the short alternative paths. *)
    let key = (min i j, max i j) in
    if key = (a, n) then 13. else if key = (b, n) then 3. else Matrix.get m i j
  in
  let aware_overlay =
    Tivaware_meridian.Overlay.build
      ~placement:
        (Tivaware_meridian.Tiv_aware.placement Ring.default_config ~predicted
           ~measured:m ())
      (Rng.create 12) m Ring.default_config ~meridian_nodes:[| a; b; n |]
  in
  let fallback =
    Tivaware_meridian.Tiv_aware.fallback aware_overlay ~predicted ~measured:m ()
  in
  let aware = Query.closest ~fallback aware_overlay m ~start:a ~target:t in
  Report.measured "with TIV awareness: chosen %s at %.0f ms"
    (if aware.Query.chosen = n then "N" else "not-N")
    aware.Query.chosen_delay

let ideal_meridian ctx m =
  let n = Matrix.size m in
  let cfg = Ring.unlimited_config n in
  Experiment.run_meridian (Context.rng ctx 14) m ~runs:5
    ~termination:Query.Any_improvement
    ~meridian_count:(Context.meridian_count_ideal ctx)
    ~build:(Selectors.meridian_build m cfg) ()

let fig14 ctx =
  Report.section "fig14" "Meridian under idealized settings: Euclidean vs DS2";
  Report.expectation
    "near-perfect on the Euclidean matrix; on measured-like data Meridian \
     misses the closest neighbor in ~13%% of cases even with unlimited \
     membership and no termination";
  let ds2 = Context.matrix ctx in
  let eucl =
    Euclidean.clustered (Context.rng ctx 141) ~n:(Matrix.size ds2)
      ~centers:
        [
          (Array.make 5 0., 25.);
          ([| 90.; 0.; 0.; 0.; 0. |], 25.);
          ([| 0.; 110.; 0.; 0.; 0. |], 25.);
        ]
  in
  let r_eucl = ideal_meridian ctx eucl in
  let r_ds2 = ideal_meridian ctx ds2 in
  let perfect r =
    let p = r.Experiment.base.Experiment.penalties in
    if Array.length p = 0 then 0.
    else begin
      let ok = Array.fold_left (fun acc x -> if x <= 1e-9 then acc + 1 else acc) 0 p in
      float_of_int ok /. float_of_int (Array.length p)
    end
  in
  Report.measured "perfect selections: Euclidean %.1f%%, DS2-like %.1f%% (miss rate %.1f%%)"
    (100. *. perfect r_eucl) (100. *. perfect r_ds2)
    (100. *. (1. -. perfect r_ds2));
  Report.penalty_cdf_table
    [
      ("Meridian-Euclidean", r_eucl.Experiment.base.Experiment.penalties);
      ("Meridian-DS2", r_ds2.Experiment.base.Experiment.penalties);
    ]

let register () =
  Registry.register "fig12" "Worked TIV example (A, B, N, T)" fig12;
  Registry.register "fig13" "Meridian ring misplacement census" fig13;
  Registry.register "fig14" "Idealized Meridian: Euclidean vs DS2" fig14
