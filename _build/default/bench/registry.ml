(* Figure/experiment registry: bench/main.exe runs every registered
   entry, or a subset selected with --only. *)

type entry = {
  id : string;
  title : string;
  run : Context.t -> unit;
}

let entries : entry list ref = ref []

let register id title run = entries := { id; title; run } :: !entries

let all () = List.rev !entries

let find ids =
  let wanted = List.map String.lowercase_ascii ids in
  List.filter (fun e -> List.mem (String.lowercase_ascii e.id) wanted) (all ())
