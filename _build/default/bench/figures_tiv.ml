(* Section 2 figures: TIV characteristics of the delay spaces. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Binned = Tivaware_util.Binned
module Table = Tivaware_util.Table
module Matrix = Tivaware_delay_space.Matrix
module Clustering = Tivaware_delay_space.Clustering
module Shortest_path = Tivaware_delay_space.Shortest_path
module Generator = Tivaware_topology.Generator
module Datasets = Tivaware_topology.Datasets
module Severity = Tivaware_tiv.Severity
module Triangle = Tivaware_tiv.Triangle
module Proximity = Tivaware_tiv.Proximity
module Cluster_analysis = Tivaware_tiv.Cluster_analysis

(* The four data sets (and their severity matrices) are shared by
   Figures 2, 4-7 and 9; compute them once per bench process. *)
let ensemble_cache :
    (int, (Datasets.preset * Generator.t * Matrix.t) list) Hashtbl.t =
  Hashtbl.create 4

let ensemble (ctx : Context.t) =
  match Hashtbl.find_opt ensemble_cache ctx.Context.seed with
  | Some e -> e
  | None ->
    let e =
      List.map
        (fun preset ->
          let data =
            if preset = Datasets.Ds2 then Context.ds2 ctx
            else Datasets.generate ~seed:ctx.Context.seed preset
          in
          let severity =
            if preset = Datasets.Ds2 then Context.severity ctx
            else Severity.all data.Generator.matrix
          in
          (preset, data, severity))
        Datasets.all
    in
    Hashtbl.replace ensemble_cache ctx.Context.seed e;
    e

let fig1 ctx =
  Report.section "fig1" "The severity metric illustrated on one real edge";
  Report.expectation
    "severity = area above 1 under the edge's triangulation-ratio CDF; \
     the CDF's crossing of ratio 1 is the fraction of violating \
     triangles";
  let m = Context.matrix ctx in
  let severity = Context.severity ctx in
  (* Pick the single worst edge as the specimen. *)
  match Severity.worst_edges severity ~fraction:1.0 with
  | [||] -> print_endline "(no edges)"
  | worst ->
    let i, j = worst.(0) in
    let ratios = Severity.triangulation_ratios m i j in
    let violating = Array.of_list (List.filter (fun r -> r > 1.) (Array.to_list ratios)) in
    Report.measured
      "edge %d-%d: delay %.1f ms, severity %.3f; %d of %d intermediates \
       violate (%.0f%%), worst ratio %.2f"
      i j (Matrix.get m i j)
      (Matrix.get severity i j)
      (Array.length violating) (Array.length ratios)
      (100. *. float_of_int (Array.length violating) /. float_of_int (Array.length ratios))
      (Array.fold_left Float.max 1. ratios);
    (* The severity definition, recomputed from the raw ratios. *)
    let from_ratios =
      Array.fold_left (fun acc r -> if r > 1. then acc +. r else acc) 0. violating
      /. float_of_int (Matrix.size m)
    in
    Report.measured "severity recomputed from the ratio distribution: %.3f"
      from_ratios;
    print_endline "triangulation-ratio CDF of the specimen edge:";
    Report.value_cdf_table ~label:"ratio<="
      ~thresholds:[ 0.5; 0.8; 1.0; 1.5; 2.0; 3.0; 5.0; 8.0 ]
      [ (Printf.sprintf "edge %d-%d" i j, ratios) ]

let fig2 ctx =
  Report.section "fig2" "Cumulative distribution of TIV severity (4 data sets)";
  Report.expectation
    "all curves rise steeply (most edges mild) with long tails; Meridian \
     data worst, p2psim mildest";
  let series =
    List.map
      (fun (preset, data, severity) ->
        ( Datasets.name ~size:(Matrix.size data.Generator.matrix) preset,
          Matrix.delays severity ))
      (ensemble ctx)
  in
  Report.value_cdf_table ~label:"severity<="
    ~thresholds:[ 0.; 0.01; 0.02; 0.05; 0.1; 0.2; 0.4; 0.6; 0.8; 1.0 ]
    series;
  List.iter (fun (name, sevs) -> Report.summary_line name sevs) series

let fig3 ctx =
  Report.section "fig3" "TIV severity by cluster (matrix blocks)";
  Report.expectation
    "diagonal (within-cluster) blocks darker/milder than off-diagonal \
     (cross-cluster) blocks; DS2 text: avg violations 80 within vs 206 cross";
  let analysis =
    Cluster_analysis.analyze_with ~severity:(Context.severity ctx)
      ~counts:(Context.severity_counts ctx)
      (Context.clustering ctx)
  in
  Format.printf "%a" Cluster_analysis.pp analysis;
  Report.measured "avg violations per edge: within=%.1f cross=%.1f"
    analysis.Cluster_analysis.within_mean_violations
    analysis.Cluster_analysis.cross_mean_violations;
  let shade =
    Cluster_analysis.shade_matrix ~severity:(Context.severity ctx)
      (Context.clustering ctx) ~cells:8
  in
  print_endline "mean severity per 8x8 cell of the cluster-reordered matrix:";
  Array.iter
    (fun row ->
      Array.iter (fun v -> Printf.printf " %6.3f" v) row;
      print_newline ())
    shade

let severity_vs_delay name matrix severity =
  let obs = ref [] in
  Matrix.iter_edges matrix (fun i j d ->
      if Matrix.known severity i j then
        obs := (d, Matrix.get severity i j) :: !obs);
  Printf.printf "-- %s --\n" name;
  let binned = Binned.make ~width:50. ~x_max:1000. (List.to_seq !obs) in
  Report.binned_table ~x_label:"delay_ms" ~y_label:"sev" binned

let fig4_7 ctx =
  Report.section "fig4-7" "TIV severity vs edge delay (per data set)";
  Report.expectation
    "longer edges cause more severe TIVs but the relation is irregular \
     (peaks and dips; same-severity edges at very different delays)";
  List.iter
    (fun (preset, data, severity) ->
      severity_vs_delay
        (Datasets.name ~size:(Matrix.size data.Generator.matrix) preset)
        data.Generator.matrix severity)
    (ensemble ctx)

let fig8 ctx =
  Report.section "fig8"
    "Fraction within-cluster and shortest-path length vs edge delay (DS2)";
  Report.expectation
    "edges > ~200ms are mostly cross-cluster; shortest alternative paths \
     grow with delay but plateau where severe TIVs live";
  let m = Context.matrix ctx in
  let clustering = Context.clustering ctx in
  let within = ref [] and sp_lengths = ref [] in
  let inflation = Shortest_path.inflation m in
  Array.iter
    (fun (i, j, measured, shortest) ->
      let w = if Clustering.same_cluster clustering i j then 1.0 else 0.0 in
      within := (measured, w) :: !within;
      sp_lengths := (measured, shortest) :: !sp_lengths)
    inflation;
  print_endline "fraction of edges within the same cluster, by edge delay:";
  let wb = Binned.make ~width:100. ~x_max:1000. (List.to_seq !within) in
  let table = Table.create ~header:[ "delay_ms"; "count"; "frac_within" ] in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Printf.sprintf "%.0f" r.Binned.x_mid;
          string_of_int r.Binned.count;
          Printf.sprintf "%.3f" r.Binned.mean;
        ])
    wb;
  Table.print table;
  print_endline "shortest alternative path length (ms), by edge delay:";
  let sb = Binned.make ~width:100. ~x_max:1000. (List.to_seq !sp_lengths) in
  Report.binned_table ~x_label:"delay_ms" ~y_label:"sp_ms" sb

let fig9 ctx =
  Report.section "fig9"
    "Proximity property: severity difference of nearest-pair vs random-pair edges";
  Report.expectation
    "nearest-pair curves barely above random-pair curves: proximity does \
     not predict TIV severity";
  let rng = Context.rng ctx 9 in
  List.iter
    (fun (preset, data, severity) ->
      let result =
        Proximity.analyze rng data.Generator.matrix ~severity ~samples:10_000
      in
      Printf.printf "-- %s (gap %.4f) --\n"
        (Datasets.name ~size:(Matrix.size data.Generator.matrix) preset)
        (Proximity.similarity_gap result);
      Report.value_cdf_table ~label:"sev_diff<="
        ~thresholds:[ 0.; 0.01; 0.05; 0.1; 0.25; 0.5; 1.0; 1.5 ]
        [
          ("nearest-pair-edges", result.Proximity.nearest_pair_diffs);
          ("random-pair-edges", result.Proximity.random_pair_diffs);
        ])
    (ensemble ctx)

let text_stats ctx =
  Report.section "text-12pct" "Fraction of violating triangles (DS2 text stat)";
  Report.expectation "around 12%% of all DS2 triangles violate the inequality";
  let census = Triangle.census (Context.matrix ctx) in
  Report.measured "%d / %d triangles violate (%.1f%%), worst ratio %.2f"
    census.Triangle.violating census.Triangle.triangles
    (100. *. census.Triangle.fraction)
    census.Triangle.worst_ratio

let register () =
  Registry.register "fig1" "Severity metric on a specimen edge" fig1;
  Registry.register "fig2" "TIV severity CDFs across data sets" fig2;
  Registry.register "fig3" "TIV severity by cluster" fig3;
  Registry.register "fig4-7" "TIV severity vs delay, all data sets" fig4_7;
  Registry.register "fig8" "Within-cluster fraction & shortest paths vs delay" fig8;
  Registry.register "fig9" "Proximity (non-)predictability of severity" fig9;
  Registry.register "text-12pct" "Violating-triangle fraction" text_stats
