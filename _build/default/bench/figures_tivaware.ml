(* Section 5.3 figures: TIV-aware Meridian. *)

module Matrix = Tivaware_delay_space.Matrix
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors

let predicted_fn ctx =
  let system = Context.vivaldi ctx in
  fun i j -> Tivaware_vivaldi.System.predicted system i j

let probe_overhead baseline enhanced =
  if baseline.Experiment.probes = 0 then 0.
  else begin
    let b = float_of_int baseline.Experiment.probes in
    let e = float_of_int enhanced.Experiment.probes in
    100. *. (e -. b) /. b
  end

let fig24 ctx =
  Report.section "fig24" "TIV-aware Meridian, normal setting";
  Report.expectation
    "TIV alert (dual ring placement + query restart) improves the \
     penalty CDF at ~6%% extra probes";
  let m = Context.matrix ctx in
  let cfg = Ring.default_config in
  let count = Context.meridian_count_normal ctx in
  let predicted = predicted_fn ctx in
  let r_orig =
    Experiment.run_meridian (Context.rng ctx 24) m ~runs:5 ~meridian_count:count
      ~build:(Selectors.meridian_build m cfg) ()
  in
  let r_aware =
    Experiment.run_meridian (Context.rng ctx 241) m ~runs:5 ~meridian_count:count
      ~build:(Selectors.meridian_build_tiv_aware m cfg ~predicted)
      ~fallback:(Selectors.meridian_fallback_tiv_aware m ~predicted ()) ()
  in
  Report.measured
    "probes: original %d, TIV-alert %d (%+.1f%%); restarts %d over %d queries"
    r_orig.Experiment.probes r_aware.Experiment.probes
    (probe_overhead r_orig r_aware)
    r_aware.Experiment.restarts r_aware.Experiment.queries;
  Report.penalty_cdf_table
    [
      ("Meridian-original", r_orig.Experiment.base.Experiment.penalties);
      ("Meridian-TIV-alert", r_aware.Experiment.base.Experiment.penalties);
    ]

let fig25 ctx =
  Report.section "fig25" "TIV-aware Meridian, full-membership setting";
  Report.expectation
    "with all participants as ring members Meridian is already strong; \
     TIV alert still beats both the original and the no-termination \
     idealization at ~5%% extra probes";
  let m = Context.matrix ctx in
  let count = Context.meridian_count_ideal ctx in
  let cfg = Ring.unlimited_config (Matrix.size m) in
  let predicted = predicted_fn ctx in
  let r_orig =
    Experiment.run_meridian (Context.rng ctx 25) m ~runs:5 ~meridian_count:count
      ~build:(Selectors.meridian_build m cfg) ()
  in
  let r_aware =
    Experiment.run_meridian (Context.rng ctx 251) m ~runs:5 ~meridian_count:count
      ~build:(Selectors.meridian_build_tiv_aware m cfg ~predicted)
      ~fallback:(Selectors.meridian_fallback_tiv_aware m ~predicted ()) ()
  in
  let r_noterm =
    Experiment.run_meridian (Context.rng ctx 252) m ~runs:5 ~meridian_count:count
      ~termination:Query.Any_improvement
      ~build:(Selectors.meridian_build m cfg) ()
  in
  Report.measured
    "probes: original %d, TIV-alert %d (%+.1f%%), no-termination %d (%+.1f%%)"
    r_orig.Experiment.probes r_aware.Experiment.probes
    (probe_overhead r_orig r_aware)
    r_noterm.Experiment.probes
    (probe_overhead r_orig r_noterm);
  Report.penalty_cdf_table
    [
      ("Meridian-original", r_orig.Experiment.base.Experiment.penalties);
      ("Meridian-TIV-alert", r_aware.Experiment.base.Experiment.penalties);
      ("Meridian-no-termination", r_noterm.Experiment.base.Experiment.penalties);
    ]

let register () =
  Registry.register "fig24" "TIV-aware Meridian (normal)" fig24;
  Registry.register "fig25" "TIV-aware Meridian (full membership)" fig25
