(* Section 5.1-5.2 figures: the TIV alert mechanism and dynamic-neighbor
   Vivaldi. *)

module Rng = Tivaware_util.Rng
module Binned = Tivaware_util.Binned
module Table = Tivaware_util.Table
module Matrix = Tivaware_delay_space.Matrix
module Alert = Tivaware_tiv.Alert
module Eval = Tivaware_tiv.Eval
module System = Tivaware_vivaldi.System
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors

let fig19 ctx =
  Report.section "fig19" "TIV severity vs embedding prediction ratio";
  Report.expectation
    "shrunk edges (ratio << 1) have high severity; ratio > 2 edges have \
     severity ~0; trend is clear though noisy per bin";
  let pairs =
    Alert.ratio_severity_pairs ~ratios:(Context.ratios ctx)
      ~severity:(Context.severity ctx)
  in
  let binned = Binned.make ~width:0.25 ~x_max:5. (Array.to_seq pairs) in
  Report.binned_table ~x_label:"pred_ratio" ~y_label:"sev" binned

let fig20_21 ctx =
  Report.section "fig20-21" "TIV alert accuracy and recall vs threshold";
  Report.expectation
    "tight threshold (0.1): very high accuracy, tiny recall; relaxing \
     trades accuracy for recall; at 0.6 a few %% of edges are alerted \
     with ~70%% of the worst-1%% caught";
  let ratios = Context.ratios ctx and severity = Context.severity ctx in
  let fractions = [ 0.01; 0.05; 0.10; 0.20 ] in
  let results =
    List.map
      (fun f ->
        ( f,
          Eval.evaluate ~ratios ~severity ~worst_fraction:f
            ~thresholds:Eval.default_thresholds ))
      fractions
  in
  let print_metric name get =
    Printf.printf "%s:\n" name;
    let table =
      Table.create
        ~header:
          ("threshold"
          :: List.map (fun f -> Printf.sprintf "worst%.0f%%" (100. *. f)) fractions)
    in
    List.iteri
      (fun k t ->
        Table.add_row table
          (Printf.sprintf "%.1f" t
          :: List.map
               (fun (_, points) -> Printf.sprintf "%.3f" (get (List.nth points k)))
               results))
      Eval.default_thresholds;
    Table.print table
  in
  print_metric "accuracy (fig20)" (fun p -> p.Eval.accuracy);
  print_metric "recall (fig21)" (fun p -> p.Eval.recall);
  let total_edges = Matrix.edge_count ratios in
  let alerts_06 = Array.length (Alert.alerted ~ratios ~threshold:0.6) in
  Report.measured "threshold 0.6 alerts %.1f%% of all edges (%d / %d)"
    (100. *. float_of_int alerts_06 /. float_of_int total_edges)
    alerts_06 total_edges

(* Figures 22 and 23 share one dynamic-neighbor run; snapshot both the
   neighbor-edge severities and the selection penalties at the paper's
   iteration counts. *)
type dyn_snapshot = {
  iteration : int;
  neighbor_severities : float array;
  penalties : float array;
}

let dyn_cache : (int, dyn_snapshot list) Hashtbl.t = Hashtbl.create 4

let dynamic_run ctx =
  match Hashtbl.find_opt dyn_cache ctx.Context.seed with
  | Some s -> s
  | None ->
    let m = Context.matrix ctx in
    let severity = Context.severity ctx in
    let system = System.create (Context.rng ctx 22) m in
    let neighbor_severities () =
      let out = ref [] in
      List.iter
        (fun (i, j) ->
          if Matrix.known severity i j then
            out := Matrix.get severity i j :: !out)
        (System.neighbor_edges system);
      Array.of_list !out
    in
    let penalties () =
      (Experiment.run_predictor (Context.rng ctx 23) m ~runs:3
         ~candidate_count:(Context.candidate_count ctx)
         ~predict:(Selectors.vivaldi_predict system) ())
        .Experiment.penalties
    in
    let snapshots = ref [] in
    (* Iteration 0 = the original random neighbor sets, after the same
       warm-up embedding the paper gives them. *)
    System.run system ~rounds:100;
    snapshots :=
      [
        {
          iteration = 0;
          neighbor_severities = neighbor_severities ();
          penalties = penalties ();
        };
      ];
    let schedule =
      { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 10 }
    in
    Dynamic_neighbors.run
      ~on_iteration:(fun k _ ->
        if List.mem k [ 1; 2; 5; 10 ] then
          snapshots :=
            {
              iteration = k;
              neighbor_severities = neighbor_severities ();
              penalties = penalties ();
            }
            :: !snapshots)
      system schedule;
    let result = List.rev !snapshots in
    Hashtbl.replace dyn_cache ctx.Context.seed result;
    result

let label k =
  if k = 0 then "Vivaldi-original" else Printf.sprintf "Vivaldi-dyn-neigh-iter%d" k

let fig22 ctx =
  Report.section "fig22" "TIV severity of Vivaldi neighbor edges across iterations";
  Report.expectation
    "each dynamic-neighbor iteration shifts the neighbor-edge severity \
     CDF left: high-severity edges are evicted";
  let snaps = dynamic_run ctx in
  Report.value_cdf_table ~label:"severity<="
    ~thresholds:[ 0.; 0.005; 0.01; 0.05; 0.1; 0.2; 0.3; 0.5 ]
    (List.map (fun s -> (label s.iteration, s.neighbor_severities)) snaps);
  List.iter
    (fun s -> Report.summary_line (label s.iteration) s.neighbor_severities)
    snaps

let fig23 ctx =
  Report.section "fig23" "Neighbor selection of dynamic-neighbor Vivaldi";
  Report.expectation
    "selection penalty CDF improves with iterations; iter10 clearly beats \
     original Vivaldi";
  let snaps = dynamic_run ctx in
  Report.penalty_cdf_table
    (List.map (fun s -> (label s.iteration, s.penalties)) snaps)

let register () =
  Registry.register "fig19" "Severity vs prediction ratio" fig19;
  Registry.register "fig20-21" "Alert accuracy & recall" fig20_21;
  Registry.register "fig22" "Dynamic-neighbor severity CDFs" fig22;
  Registry.register "fig23" "Dynamic-neighbor selection quality" fig23
