bench/figures_alert.ml: Array Context Hashtbl List Printf Registry Report Tivaware_core Tivaware_delay_space Tivaware_tiv Tivaware_util Tivaware_vivaldi
