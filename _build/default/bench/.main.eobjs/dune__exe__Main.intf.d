bench/main.mli:
