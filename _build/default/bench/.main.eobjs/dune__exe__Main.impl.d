bench/main.ml: Ablations Arg Context Extensions Figures_alert Figures_meridian Figures_strawman Figures_tiv Figures_tivaware Figures_vivaldi List Perf Printf Registry Sys
