bench/figures_vivaldi.ml: Array Context List Printf Registry Report Tivaware_delay_space Tivaware_util Tivaware_vivaldi
