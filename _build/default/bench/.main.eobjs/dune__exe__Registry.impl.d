bench/registry.ml: Context List String
