bench/figures_tiv.ml: Array Context Float Format Hashtbl List Printf Registry Report Tivaware_delay_space Tivaware_tiv Tivaware_topology Tivaware_util
