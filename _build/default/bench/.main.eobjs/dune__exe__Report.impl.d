bench/report.ml: Array List Printf Tivaware_util
