(* Ablation benches for the design choices called out in DESIGN.md.
   These go beyond the paper's figures: they quantify how sensitive the
   reproduction is to the knobs we had to pick. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix
module Alert = Tivaware_tiv.Alert
module Eval = Tivaware_tiv.Eval
module System = Tivaware_vivaldi.System
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Ring = Tivaware_meridian.Ring
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors

let abl_timestep ctx =
  Report.section "abl-timestep" "Vivaldi timestep rule: constant vs adaptive";
  Report.note "adaptive (Dabek et al.) should converge tighter than any fixed delta";
  let m = Context.matrix ctx in
  let variants =
    [
      ("constant 0.05", System.Constant 0.05);
      ("constant 0.25", System.Constant 0.25);
      ("adaptive 0.25/0.25", System.Adaptive { cc = 0.25; ce = 0.25 });
    ]
  in
  List.iter
    (fun (name, timestep) ->
      let config = { System.default_config with System.timestep } in
      let system =
        Selectors.embed_vivaldi ~config ~rounds:ctx.Context.vivaldi_rounds
          (Context.rng ctx 301) m
      in
      let errs = System.absolute_errors system in
      Printf.printf "%-22s abs err p50=%.1f p90=%.1f ms\n" name
        (Stats.median errs) (Stats.percentile errs 90.))
    variants

let abl_dimension ctx =
  Report.section "abl-dimension" "Embedding dimension vs alert quality";
  Report.note
    "alert accuracy for the worst-10%% set at threshold 0.6, per dimension";
  let m = Context.matrix ctx in
  let severity = Context.severity ctx in
  List.iter
    (fun dim ->
      let config = { System.default_config with System.dim } in
      let system =
        Selectors.embed_vivaldi ~config ~rounds:ctx.Context.vivaldi_rounds
          (Context.rng ctx 302) m
      in
      let ratios =
        Alert.ratio_matrix ~measured:m ~predicted:(fun i j ->
            System.predicted system i j)
      in
      match
        Eval.evaluate ~ratios ~severity ~worst_fraction:0.10 ~thresholds:[ 0.6 ]
      with
      | [ p ] ->
        Printf.printf "dim=%d: alerts=%d accuracy=%.3f recall=%.3f\n" dim
          p.Eval.alerts p.Eval.accuracy p.Eval.recall
      | _ -> assert false)
    [ 2; 5; 9 ]

let abl_drop_fraction ctx =
  Report.section "abl-dropfrac" "Dynamic-neighbor eviction aggressiveness";
  Report.note
    "paper drops 32 of 64 candidates; milder eviction keeps more \
     severe edges, harsher risks churn";
  let m = Context.matrix ctx in
  let severity = Context.severity ctx in
  List.iter
    (fun (name, extra_per_want) ->
      (* Emulate different aggressiveness by scaling how many fresh
         candidates are sampled per refresh: sampling fewer candidates
         evicts fewer current neighbors. *)
      let config =
        { System.default_config with System.neighbors_per_node = extra_per_want }
      in
      let system = System.create ~config (Context.rng ctx 303) m in
      System.run system ~rounds:100;
      Dynamic_neighbors.run system
        { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 5 };
      let sevs = ref [] in
      List.iter
        (fun (i, j) ->
          if Matrix.known severity i j then sevs := Matrix.get severity i j :: !sevs)
        (System.neighbor_edges system);
      let sevs = Array.of_list !sevs in
      Printf.printf "%-18s neighbor-edge severity mean=%.4f p90=%.4f\n" name
        (Stats.mean sevs) (Stats.percentile sevs 90.))
    [ ("16 neighbors", 16); ("32 neighbors", 32); ("64 neighbors", 64) ]

let abl_beta_sweep ctx =
  Report.section "abl-beta" "Meridian beta sweep vs TIV-alert";
  Report.note
    "raising beta buys accuracy with probes; TIV-alert should sit above \
     the beta curve at equal overhead";
  let m = Context.matrix ctx in
  let count = Context.meridian_count_normal ctx in
  let run_with beta =
    let cfg = { Ring.default_config with Ring.beta } in
    Experiment.run_meridian (Context.rng ctx 304) m ~runs:3 ~meridian_count:count
      ~build:(Selectors.meridian_build m cfg) ()
  in
  List.iter
    (fun beta ->
      let r = run_with beta in
      Printf.printf "beta=%.2f: %s probes=%d\n" beta
        (Tivaware_core.Penalty.summarize r.Experiment.base.Experiment.penalties)
        r.Experiment.probes)
    [ 0.3; 0.5; 0.7; 0.9 ];
  let predicted =
    let system = Context.vivaldi ctx in
    fun i j -> System.predicted system i j
  in
  let cfg = Ring.default_config in
  let r =
    Experiment.run_meridian (Context.rng ctx 304) m ~runs:3 ~meridian_count:count
      ~build:(Selectors.meridian_build_tiv_aware m cfg ~predicted)
      ~fallback:(Selectors.meridian_fallback_tiv_aware m ~predicted ()) ()
  in
  Printf.printf "TIV-alert (beta=0.5): %s probes=%d\n"
    (Tivaware_core.Penalty.summarize r.Experiment.base.Experiment.penalties)
    r.Experiment.probes

let abl_thresholds ctx =
  Report.section "abl-thresholds" "TIV-aware Meridian ts/tl sensitivity";
  Report.note "paper uses ts=0.6, tl=2.0 without claiming optimality";
  let m = Context.matrix ctx in
  let cfg = Ring.default_config in
  let count = Context.meridian_count_normal ctx in
  let predicted =
    let system = Context.vivaldi ctx in
    fun i j -> System.predicted system i j
  in
  List.iter
    (fun (ts, tl) ->
      let r =
        Experiment.run_meridian (Context.rng ctx 305) m ~runs:3
          ~meridian_count:count
          ~build:(Selectors.meridian_build_tiv_aware m cfg ~predicted ~ts ~tl)
          ~fallback:(Selectors.meridian_fallback_tiv_aware m ~predicted ~ts ())
          ()
      in
      Printf.printf "ts=%.1f tl=%.1f: %s probes=%d restarts=%d\n" ts tl
        (Tivaware_core.Penalty.summarize r.Experiment.base.Experiment.penalties)
        r.Experiment.probes r.Experiment.restarts)
    [ (0.4, 2.5); (0.6, 2.0); (0.8, 1.5) ]

let abl_gnp ctx =
  Report.section "abl-gnp"
    "Embedding substrates for the TIV alert: Vivaldi vs GNP vs virtual landmarks";
  Report.note
    "the TIV alert needs only *some* embedding; any landmark or \
     decentralized coordinate system should expose the shrunk-edge signal";
  let m = Context.matrix ctx in
  let severity = Context.severity ctx in
  let gnp =
    Tivaware_embedding.Gnp.fit
      ~config:{ Tivaware_embedding.Gnp.default_config with
                Tivaware_embedding.Gnp.landmarks = 15 }
      (Context.rng ctx 306) m
  in
  let vl = Tivaware_embedding.Virtual_landmarks.fit (Context.rng ctx 311) m in
  let report name predicted =
    let err = Tivaware_embedding.Error.evaluate m ~predicted in
    let ratios = Alert.ratio_matrix ~measured:m ~predicted in
    match
      Eval.evaluate ~ratios ~severity ~worst_fraction:0.10 ~thresholds:[ 0.6 ]
    with
    | [ p ] ->
      Printf.printf
        "%-18s rel err p50=%.3f | alert@0.6: alerts=%d acc=%.3f recall=%.3f\n"
        name err.Tivaware_embedding.Error.median_rel p.Eval.alerts p.Eval.accuracy
        p.Eval.recall
    | _ -> assert false
  in
  report "Vivaldi"
    (let s = Context.vivaldi ctx in
     fun i j -> System.predicted s i j);
  report "GNP" (Tivaware_embedding.Gnp.predicted gnp);
  report "virtual landmarks" (Tivaware_embedding.Virtual_landmarks.predicted vl)

let abl_height ctx =
  Report.section "abl-height" "Plain vs height-vector Vivaldi on the DS2 space";
  Report.note
    "heights absorb access-link delay; on a TIV space the gain is \
     limited because TIVs, not access links, dominate the error";
  let m = Context.matrix ctx in
  List.iter
    (fun (name, height) ->
      let config = { System.default_config with System.height } in
      let system =
        Selectors.embed_vivaldi ~config ~rounds:ctx.Context.vivaldi_rounds
          (Context.rng ctx 307) m
      in
      let errs = System.absolute_errors system in
      Printf.printf "%-16s abs err p50=%.1f p90=%.1f ms\n" name
        (Stats.median errs)
        (Stats.percentile errs 90.))
    [ ("euclidean", false); ("with heights", true) ]

let abl_dht ctx =
  Report.section "abl-dht" "Chord PNS: finger proximity source";
  Report.note
    "lookup latency under proximity-oblivious, Vivaldi, TIV-aware and \
     oracle finger selection (shared 600-lookup workload)";
  let module Chord = Tivaware_dht.Chord in
  let module Id_space = Tivaware_dht.Id_space in
  let m = Context.matrix ctx in
  let vivaldi = Context.vivaldi ctx in
  let aware =
    let s = System.create (Context.rng ctx 308) m in
    System.run s ~rounds:100;
    Dynamic_neighbors.run s
      { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 5 };
    s
  in
  let rng = Context.rng ctx 309 in
  let workload =
    Array.init 600 (fun _ ->
        (Tivaware_util.Rng.int rng (Matrix.size m),
         Tivaware_util.Rng.int rng Id_space.modulus))
  in
  List.iter
    (fun (name, predict) ->
      let overlay = Chord.build ?predict m in
      let latencies =
        Array.map
          (fun (source, key) -> (Chord.lookup overlay m ~source ~key).Chord.latency)
          workload
      in
      Printf.printf "%-18s median=%.1f p90=%.1f mean=%.1f ms\n" name
        (Stats.median latencies)
        (Stats.percentile latencies 90.)
        (Stats.mean latencies))
    [
      ("plain Chord", None);
      ("PNS/Vivaldi", Some (fun i j -> System.predicted vivaldi i j));
      ("PNS/TIV-aware", Some (fun i j -> System.predicted aware i j));
      ("PNS/oracle", Some (fun i j -> Matrix.get m i j));
    ]

let abl_online ctx =
  Report.section "abl-online" "Online Meridian query latency (event simulator)";
  Report.note
    "timed replay of the recursive protocol: latency includes probe \
     fan-out barriers, so TIVs that add hops also add wall-clock";
  let module Online = Tivaware_meridian.Online in
  let module Overlay = Tivaware_meridian.Overlay in
  let module Sim = Tivaware_eventsim.Sim in
  let m = Context.matrix ctx in
  let n = Matrix.size m in
  let rng = Context.rng ctx 310 in
  let count = Context.meridian_count_normal ctx in
  let nodes = Tivaware_util.Rng.sample_indices rng ~n ~k:count in
  let overlay = Overlay.build rng m Ring.default_config ~meridian_nodes:nodes in
  let sim = Sim.create () in
  let latencies = ref [] and probes = ref 0 and queries = ref 0 in
  for _ = 1 to 400 do
    let client = Tivaware_util.Rng.int rng n in
    let start = nodes.(Tivaware_util.Rng.int rng count) in
    let target = Tivaware_util.Rng.int rng n in
    if
      (not (Overlay.is_meridian overlay client))
      && (not (Overlay.is_meridian overlay target))
      && client <> target
      && Matrix.known m client start
      && Matrix.known m start target
    then begin
      let o = Online.closest sim overlay m ~client ~start ~target in
      latencies := o.Online.latency :: !latencies;
      probes := !probes + o.Online.query.Tivaware_meridian.Query.probes;
      incr queries
    end
  done;
  let lat = Array.of_list !latencies in
  Printf.printf
    "%d queries: latency median=%.0f p90=%.0f ms; %.1f probes/query; \
     virtual time elapsed %.1f s\n"
    !queries (Stats.median lat)
    (Stats.percentile lat 90.)
    (float_of_int !probes /. float_of_int (max 1 !queries))
    (Sim.now sim /. 1000.)

let abl_diversity ctx =
  Report.section "abl-diversity"
    "Meridian ring membership: first-come vs diversity replacement";
  Report.note
    "real Meridian replaces ring members to maximize diversity \
     (hypervolume); does it matter for closest-neighbor accuracy?";
  let module Overlay = Tivaware_meridian.Overlay in
  let m = Context.matrix ctx in
  let count = Context.meridian_count_normal ctx in
  List.iter
    (fun (name, selection) ->
      let build rng nodes =
        Overlay.build ~selection rng m Ring.default_config ~meridian_nodes:nodes
      in
      let r =
        Experiment.run_meridian (Context.rng ctx 313) m ~runs:3
          ~meridian_count:count ~build ()
      in
      Printf.printf "%-12s %s probes=%d\n" name
        (Tivaware_core.Penalty.summarize r.Experiment.base.Experiment.penalties)
        r.Experiment.probes)
    [ ("first-come", Overlay.First_come); ("diverse", Overlay.Diverse) ]

let abl_gossip ctx =
  Report.section "abl-gossip"
    "Meridian membership: global directory vs gossip discovery";
  Report.note
    "overlays built from event-simulated gossip views vs idealized \
     global knowledge";
  let module Overlay = Tivaware_meridian.Overlay in
  let module Gossip = Tivaware_meridian.Gossip in
  let m = Context.matrix ctx in
  let count = Context.meridian_count_normal ctx in
  List.iter
    (fun (name, duration) ->
      let build rng nodes =
        match duration with
        | None -> Overlay.build rng m Ring.default_config ~meridian_nodes:nodes
        | Some d ->
          let sim = Tivaware_eventsim.Sim.create () in
          let g = Gossip.run sim rng m ~meridian_nodes:nodes ~duration:d in
          Printf.printf "  [%s: coverage %.2f after %d messages]\n" name
            (Gossip.coverage g) (Gossip.messages_sent g);
          Overlay.build ~candidates:(Gossip.candidates_hook g) rng m
            Ring.default_config ~meridian_nodes:nodes
      in
      let r =
        Experiment.run_meridian (Context.rng ctx 314) m ~runs:2
          ~meridian_count:count ~build ()
      in
      Printf.printf "%-18s %s\n" name
        (Tivaware_core.Penalty.summarize r.Experiment.base.Experiment.penalties))
    [ ("global", None); ("gossip 30s", Some 30.); ("gossip 120s", Some 120.) ]

let abl_stability ctx =
  Report.section "abl-stability"
    "Synchronous rounds vs event-driven probing (Vivaldi)";
  Report.note
    "the paper simulates synchronized rounds; a deployment probes \
     asynchronously with in-flight staleness — accuracy should match";
  let m = Context.matrix ctx in
  let duration = float_of_int ctx.Context.vivaldi_rounds in
  (* Synchronous driver. *)
  let sync = System.create (Context.rng ctx 312) m in
  System.run sync ~rounds:ctx.Context.vivaldi_rounds;
  let sync_err = Stats.median (System.absolute_errors sync) in
  (* Event-driven driver with one probe per node per second on average. *)
  let async = System.create (Context.rng ctx 312) m in
  let sim = Tivaware_eventsim.Sim.create () in
  let stats = Tivaware_vivaldi.Protocol.run sim async ~duration in
  let async_err = Stats.median (System.absolute_errors async) in
  (* Event-driven with churn: nodes fail and rejoin with fresh state. *)
  let churned = System.create (Context.rng ctx 312) m in
  let sim2 = Tivaware_eventsim.Sim.create () in
  let cstats =
    Tivaware_vivaldi.Protocol.run_with_churn sim2 churned ~duration:(2. *. duration)
  in
  let churn_err = Stats.median (System.absolute_errors churned) in
  Printf.printf
    "synchronous:  abs err p50=%.1f ms after %d rounds\n\
     event-driven: abs err p50=%.1f ms after %.0f s (%d probes, %d applied)\n\
     with churn:   abs err p50=%.1f ms (%d failures, %d rejoins, %d probes lost)\n"
    sync_err ctx.Context.vivaldi_rounds async_err duration
    stats.Tivaware_vivaldi.Protocol.probes_sent
    stats.Tivaware_vivaldi.Protocol.probes_completed
    churn_err cstats.Tivaware_vivaldi.Protocol.failures
    cstats.Tivaware_vivaldi.Protocol.rejoins
    cstats.Tivaware_vivaldi.Protocol.probes_lost

let register () =
  Registry.register "abl-timestep" "Vivaldi timestep ablation" abl_timestep;
  Registry.register "abl-dimension" "Embedding dimension ablation" abl_dimension;
  Registry.register "abl-dropfrac" "Neighbor eviction ablation" abl_drop_fraction;
  Registry.register "abl-beta" "Meridian beta sweep" abl_beta_sweep;
  Registry.register "abl-thresholds" "TIV-aware thresholds" abl_thresholds;
  Registry.register "abl-gnp" "GNP embedding substrate" abl_gnp;
  Registry.register "abl-height" "Height-vector Vivaldi" abl_height;
  Registry.register "abl-dht" "Chord PNS proximity sources" abl_dht;
  Registry.register "abl-online" "Online Meridian latency" abl_online;
  Registry.register "abl-stability" "Sync vs event-driven Vivaldi" abl_stability;
  Registry.register "abl-diversity" "Meridian ring replacement policy" abl_diversity;
  Registry.register "abl-gossip" "Gossip vs global membership" abl_gossip
