(* Extension experiments: the TIV-aware mechanisms inside the
   distributed systems the paper motivates (overlay multicast) — beyond
   the paper's own figure set. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Multicast = Tivaware_overlay.Multicast
module System = Tivaware_vivaldi.System
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Selectors = Tivaware_core.Selectors

let ext_multicast ctx =
  Report.section "ext-multicast" "Overlay multicast trees under TIV";
  Report.note
    "sequential joins with degree cap 6; stretch = tree delay to root / \
     direct unicast delay";
  let m = Context.matrix ctx in
  let rng = Context.rng ctx 400 in
  let join_order = Rng.permutation rng (Matrix.size m) in
  let vivaldi = Context.vivaldi ctx in
  let aware = System.create (Context.rng ctx 401) m in
  System.run aware ~rounds:100;
  Dynamic_neighbors.run aware
    { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 5 };
  let show name t =
    let metrics = Multicast.evaluate t m in
    Printf.printf "%-24s members=%d edge=%.1fms stretch p50=%.2f p90=%.2f depth=%d\n"
      name metrics.Multicast.members metrics.Multicast.mean_edge_ms
      metrics.Multicast.median_stretch metrics.Multicast.p90_stretch
      metrics.Multicast.max_depth
  in
  let oracle =
    Multicast.build m ~join_order ~predict:(fun a b -> Matrix.get m a b)
  in
  show "oracle" oracle;
  let t_vivaldi =
    Multicast.build m ~join_order ~predict:(Selectors.vivaldi_predict vivaldi)
  in
  show "vivaldi" t_vivaldi;
  let t_aware =
    Multicast.build m ~join_order ~predict:(Selectors.vivaldi_predict aware)
  in
  show "tiv-aware vivaldi" t_aware;
  let refresh_rng = Context.rng ctx 402 in
  let switches = ref 0 in
  for _ = 1 to 3 do
    switches :=
      !switches
      + Multicast.refresh t_aware refresh_rng m
          ~predict:(Selectors.vivaldi_predict aware)
  done;
  show (Printf.sprintf "  + refresh (%d moves)" !switches) t_aware

let register () =
  Registry.register "ext-multicast" "Overlay multicast trees" ext_multicast
