(* Section 3.2.1 figures: how TIVs destabilize Vivaldi. *)

module Rng = Tivaware_util.Rng
module Binned = Tivaware_util.Binned
module Matrix = Tivaware_delay_space.Matrix
module System = Tivaware_vivaldi.System
module Trace = Tivaware_vivaldi.Trace

(* The paper's 3-node example: AB = 5ms, BC = 5ms, CA = 100ms. *)
let three_node_matrix () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 5.;
  Matrix.set m 1 2 5.;
  Matrix.set m 2 0 100.;
  m

let fig10 ctx =
  Report.section "fig10" "Vivaldi error trace on a 3-node TIV network";
  Report.expectation
    "no embedding satisfies AB=5, BC=5, CA=100; errors oscillate forever \
     instead of converging (paper amplitude: tens of ms)";
  let m = three_node_matrix () in
  let config =
    { System.default_config with System.neighbors_per_node = 2 }
  in
  let system = System.create ~config (Context.rng ctx 10) m in
  let traces =
    Trace.error_traces system ~edges:[ (0, 1); (1, 2); (2, 0) ] ~rounds:100
  in
  Printf.printf "%6s %12s %12s %12s\n" "round" "err(A-B)" "err(B-C)" "err(C-A)";
  let rounds = 100 in
  let get k r = (List.nth traces k).Trace.errors.(r) in
  let rec print_rows r =
    if r < rounds then begin
      Printf.printf "%6d %12.2f %12.2f %12.2f\n" (r + 1) (get 0 r) (get 1 r)
        (get 2 r);
      print_rows (r + 10)
    end
  in
  print_rows 0;
  List.iteri
    (fun k t ->
      let errs = t.Trace.errors in
      let late = Array.sub errs (rounds / 2) (rounds / 2) in
      let lo, hi = Tivaware_util.Stats.min_max late in
      Printf.printf "edge %d steady-state error range: [%.1f, %.1f] ms\n" k lo hi)
    traces

let fig11 ctx =
  Report.section "fig11" "Oscillation range of predicted distances (DS2)";
  Report.expectation
    "large oscillation even for short edges (a 10ms edge can swing by \
     ~175ms); in-text: median abs error ~20ms, p90 ~140ms, median \
     movement ~1.6 ms/step";
  (* Fresh system so the context's converged embedding is untouched. *)
  let system =
    System.create (Context.rng ctx 11) (Context.matrix ctx)
  in
  System.run system ~rounds:ctx.Context.vivaldi_rounds;
  let stats = Trace.steady_state_stats system ~rounds:30 in
  Report.measured
    "abs error p50=%.1fms p90=%.1fms; movement p50=%.2f p90=%.2f ms/step"
    stats.Trace.median_abs_error stats.Trace.p90_abs_error
    stats.Trace.median_movement stats.Trace.p90_movement;
  let osc = Trace.oscillation system ~rounds:500 ~sample_every:5 in
  let obs =
    Array.to_seq (Array.mapi (fun k d -> (d, osc.Trace.ranges.(k))) osc.Trace.delays)
  in
  let binned = Binned.make ~width:50. ~x_max:1000. obs in
  Report.binned_table ~x_label:"delay_ms" ~y_label:"osc_range_ms" binned

let register () =
  Registry.register "fig10" "3-node Vivaldi oscillation" fig10;
  Registry.register "fig11" "Vivaldi oscillation ranges on DS2" fig11
