(* Shared output helpers so every figure prints in a uniform style. *)

module Stats = Tivaware_util.Stats
module Cdf = Tivaware_util.Cdf
module Table = Tivaware_util.Table
module Ascii_plot = Tivaware_util.Ascii_plot

let section id title = Printf.printf "\n=== %s: %s ===\n" id title

let expectation fmt = Printf.printf ("paper: " ^^ fmt ^^ "\n")
let measured fmt = Printf.printf ("measured: " ^^ fmt ^^ "\n")
let note fmt = Printf.printf ("note: " ^^ fmt ^^ "\n")

(* Penalty CDFs are compared at fixed log-spaced thresholds (the paper
   plots them on a log axis from 10^0 to 10^4 percent). *)
let penalty_thresholds = [ 0.; 1.; 3.; 10.; 30.; 100.; 300.; 1000.; 3000.; 10000. ]

let penalty_cdf_table series =
  let header =
    "penalty<=%"
    :: List.map (fun t -> Printf.sprintf "%g" t) penalty_thresholds
  in
  let table = Table.create ~header in
  List.iter
    (fun (name, penalties) ->
      if Array.length penalties = 0 then Table.add_row table [ name ]
      else begin
        let cdf = Cdf.of_samples penalties in
        Table.add_row table
          (name
          :: List.map
               (fun t -> Printf.sprintf "%.3f" (Cdf.eval cdf t))
               penalty_thresholds)
      end)
    series;
  Table.print table

let value_cdf_table ~label ~thresholds series =
  let header = label :: List.map (fun t -> Printf.sprintf "%g" t) thresholds in
  let table = Table.create ~header in
  List.iter
    (fun (name, samples) ->
      if Array.length samples = 0 then Table.add_row table [ name ]
      else begin
        let cdf = Cdf.of_samples samples in
        Table.add_row table
          (name
          :: List.map (fun t -> Printf.sprintf "%.3f" (Cdf.eval cdf t)) thresholds)
      end)
    series;
  Table.print table

let summary_line name samples =
  if Array.length samples = 0 then Printf.printf "%-28s (no samples)\n" name
  else begin
    let s = Stats.summarize samples in
    Printf.printf "%-28s p10=%-8.3f p50=%-8.3f p90=%-8.3f mean=%-8.3f max=%.3f\n"
      name s.Stats.p10 s.Stats.p50 s.Stats.p90 s.Stats.mean s.Stats.max
  end

let binned_table ~x_label ~y_label binned =
  let table =
    Table.create ~header:[ x_label; "count"; y_label ^ "_p10"; y_label ^ "_p50"; y_label ^ "_p90" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Printf.sprintf "%g" r.Tivaware_util.Binned.x_mid;
          string_of_int r.Tivaware_util.Binned.count;
          Printf.sprintf "%.4f" r.Tivaware_util.Binned.p10;
          Printf.sprintf "%.4f" r.Tivaware_util.Binned.p50;
          Printf.sprintf "%.4f" r.Tivaware_util.Binned.p90;
        ])
    binned;
  Table.print table

let cdf_plot series =
  let plot_series =
    List.filter_map
      (fun (marker, samples) ->
        if Array.length samples = 0 then None
        else Some (marker, Cdf.points ~max_points:48 (Cdf.of_samples samples)))
      series
  in
  print_string (Ascii_plot.plot ~x_label:"value" ~y_label:"cdf" plot_series)
