(* Central leader election with Meridian's multi-target query.

   A group of member nodes wants a coordinator that minimizes the
   worst-case (max) delay to all of them — e.g. the sequencer of a
   totally-ordered broadcast group.  Meridian solves this with the same
   recursive protocol as closest-neighbor search, using the max-norm;
   TIVs mislead it the same way.

   Run with:  dune exec examples/leader_election.exe *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Query = Tivaware_meridian.Query

let () =
  let data = Datasets.generate ~size:220 ~seed:51 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let rng = Rng.create 52 in
  let meridian_nodes = Rng.sample_indices rng ~n:220 ~k:110 in
  let overlay =
    Overlay.build (Rng.create 53) m Ring.default_config ~meridian_nodes
  in
  let outsiders =
    Array.to_list (Rng.permutation (Rng.create 54) 220)
    |> List.filter (fun i -> not (Overlay.is_meridian overlay i))
  in
  let penalties = ref [] and perfect = ref 0 and elections = ref 0 in
  (* 100 elections over random 4-member groups. *)
  let rec groups k remaining =
    if k = 0 then ()
    else begin
      match remaining with
      | a :: b :: c :: d :: rest ->
        let targets = [ a; b; c; d ] in
        let start = meridian_nodes.(Rng.int rng (Array.length meridian_nodes)) in
        (match
           ( Query.closest_multi overlay m ~start ~targets,
             Query.optimal_multi overlay m ~targets )
         with
        | outcome, Some (_, opt) when opt > 0. ->
          incr elections;
          let penalty = (outcome.Query.chosen_delay -. opt) /. opt *. 100. in
          penalties := penalty :: !penalties;
          if penalty <= 1e-9 then incr perfect
        | _ -> ()
        | exception Invalid_argument _ -> ());
        groups (k - 1) rest
      | _ -> ()
    end
  in
  groups 100 (outsiders @ outsiders @ outsiders @ outsiders);
  let p = Array.of_list !penalties in
  Printf.printf
    "%d elections over 4-member groups (110 Meridian nodes of 220):\n" !elections;
  Printf.printf "  leader found exactly:     %.0f%%\n"
    (100. *. float_of_int !perfect /. float_of_int !elections);
  Printf.printf "  max-delay penalty median: %.1f%%  p90: %.1f%%\n"
    (Stats.median p) (Stats.percentile p 90.);
  print_endline
    "\nThe same TIV-inflated measurements that hide the nearest neighbor\n\
     also hide the best coordinator; the penalty tail is the TIV tax."
