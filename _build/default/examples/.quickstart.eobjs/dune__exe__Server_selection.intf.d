examples/server_selection.mli:
