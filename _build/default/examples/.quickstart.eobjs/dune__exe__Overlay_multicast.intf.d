examples/overlay_multicast.mli:
