examples/quickstart.mli:
