examples/tiv_survey.ml: Array Format List Printf Sys Tivaware_delay_space Tivaware_tiv Tivaware_topology Tivaware_util
