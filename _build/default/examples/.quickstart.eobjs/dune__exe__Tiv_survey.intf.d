examples/tiv_survey.mli:
