(* Structured-overlay (Chord-like DHT) lookups with proximity neighbor
   selection — the paper's motivating class of distributed system.

   Finger tables are built four ways:
   - plain Chord (id-space only, proximity-oblivious);
   - PNS with raw Vivaldi predictions;
   - PNS with TIV-aware (dynamic-neighbor) Vivaldi predictions;
   - PNS with the measured-delay oracle (upper bound).
   We compare lookup latencies over the same random key workload.

   Run with:  dune exec examples/dht_lookup.exe *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Chord = Tivaware_dht.Chord
module Id_space = Tivaware_dht.Id_space
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Selectors = Tivaware_core.Selectors

let () =
  let data = Datasets.generate ~size:250 ~seed:41 Datasets.Ds2 in
  let m = data.Generator.matrix in

  let vivaldi = Selectors.embed_vivaldi (Rng.create 42) m in
  let aware = Selectors.embed_vivaldi (Rng.create 42) m in
  Dynamic_neighbors.run aware
    { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 5 };

  let overlays =
    [
      ("plain Chord", Chord.build m);
      ("PNS / Vivaldi", Chord.build ~predict:(Selectors.vivaldi_predict vivaldi) m);
      ("PNS / TIV-aware", Chord.build ~predict:(Selectors.vivaldi_predict aware) m);
      ("PNS / oracle", Chord.build ~predict:(fun a b -> Matrix.get m a b) m);
    ]
  in

  (* Shared workload: 1000 random (source, key) lookups. *)
  let rng = Rng.create 43 in
  let workload =
    Array.init 1000 (fun _ ->
        (Rng.int rng (Matrix.size m), Rng.int rng Id_space.modulus))
  in

  Printf.printf "%-18s %10s %12s %12s %10s\n" "finger selection" "mean hops"
    "median (ms)" "p90 (ms)" "mean (ms)";
  List.iter
    (fun (name, overlay) ->
      let latencies = ref [] and hops = ref 0 in
      Array.iter
        (fun (source, key) ->
          let l = Chord.lookup overlay m ~source ~key in
          latencies := l.Chord.latency :: !latencies;
          hops := !hops + l.Chord.hops)
        workload;
      let lat = Array.of_list !latencies in
      Printf.printf "%-18s %10.2f %12.1f %12.1f %10.1f\n" name
        (float_of_int !hops /. float_of_int (Array.length workload))
        (Stats.median lat) (Stats.percentile lat 90.) (Stats.mean lat))
    overlays;
  print_endline
    "\nPNS shrinks lookup latency without touching the id-space structure;\n\
     TIV-aware coordinates recover most of the oracle's advantage."
