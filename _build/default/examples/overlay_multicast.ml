(* Overlay multicast tree construction — the motivating application of
   the paper's introduction.  A joining node must pick a nearby existing
   member as its parent; bad picks inflate the whole tree.

   We grow degree-capped multicast trees with three neighbor selection
   mechanisms — brute-force oracle, raw Vivaldi coordinates, TIV-aware
   (dynamic-neighbor) Vivaldi — and additionally run the library's
   parent-refresh passes, comparing edge cost and root-to-member
   stretch.

   Run with:  dune exec examples/overlay_multicast.exe *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Multicast = Tivaware_overlay.Multicast
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Selectors = Tivaware_core.Selectors

let show name (m : Multicast.metrics) =
  Printf.printf "%-28s %8d %12.1f %10.2f %9.2f %7d %8d\n" name
    m.Multicast.members m.Multicast.mean_edge_ms m.Multicast.median_stretch
    m.Multicast.p90_stretch m.Multicast.max_depth m.Multicast.max_fanout

let () =
  let data = Datasets.generate ~size:220 ~seed:17 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let rng = Rng.create 23 in
  let join_order = Rng.permutation rng (Matrix.size m) in

  (* Mechanism 1: full-measurement oracle (brute-force probing). *)
  let oracle =
    Multicast.build m ~join_order ~predict:(fun a b -> Matrix.get m a b)
  in

  (* Mechanism 2: raw Vivaldi coordinates. *)
  let vivaldi = Selectors.embed_vivaldi (Rng.create 24) m in
  let t_vivaldi =
    Multicast.build m ~join_order ~predict:(Selectors.vivaldi_predict vivaldi)
  in

  (* Mechanism 3: TIV-aware dynamic-neighbor Vivaldi. *)
  let aware = Selectors.embed_vivaldi (Rng.create 24) m in
  Dynamic_neighbors.run aware
    { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 5 };
  let t_aware =
    Multicast.build m ~join_order ~predict:(Selectors.vivaldi_predict aware)
  in

  Printf.printf "%-28s %8s %12s %10s %9s %7s %8s\n" "mechanism" "members"
    "edge (ms)" "stretch50" "stretch90" "depth" "fanout";
  show "oracle (brute force)" (Multicast.evaluate oracle m);
  show "vivaldi" (Multicast.evaluate t_vivaldi m);
  show "tiv-aware vivaldi" (Multicast.evaluate t_aware m);

  (* Parent refresh: three passes under each predictor. *)
  let refresh_rng = Rng.create 25 in
  let total_switches = ref 0 in
  for _ = 1 to 3 do
    total_switches :=
      !total_switches
      + Multicast.refresh t_aware refresh_rng m
          ~predict:(Selectors.vivaldi_predict aware)
  done;
  Printf.printf "\nafter 3 refresh passes (%d parent switches):\n" !total_switches;
  show "tiv-aware + refresh" (Multicast.evaluate t_aware m);
  print_endline
    "\nLower stretch = multicast paths closer to direct unicast.\n\
     TIV-aware neighbor sets shrink the gap to the oracle tree."
