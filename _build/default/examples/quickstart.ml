(* Quickstart: generate a delay space, measure its TIVs, embed it with
   Vivaldi, and pick a nearest neighbor with and without TIV awareness.

   Run with:  dune exec examples/quickstart.exe *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Severity = Tivaware_tiv.Severity
module Triangle = Tivaware_tiv.Triangle
module System = Tivaware_vivaldi.System
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors
module Penalty = Tivaware_core.Penalty

let () =
  (* 1. A synthetic Internet delay space with realistic TIVs. *)
  let data = Datasets.generate ~size:200 ~seed:7 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let census = Triangle.census m in
  Printf.printf "delay space: %d nodes, %.1f%% of triangles violate the inequality\n"
    (Matrix.size m) (100. *. census.Triangle.fraction);

  (* 2. Quantify per-edge TIV severity (Section 2 of the paper). *)
  let severity = Severity.all m in
  let sev_summary = Stats.summarize (Matrix.delays severity) in
  Printf.printf "TIV severity: median %.3f, p90 %.3f, max %.2f\n"
    sev_summary.Stats.p50 sev_summary.Stats.p90 sev_summary.Stats.max;

  (* 3. Embed with Vivaldi and select neighbors from coordinates. *)
  let rng = Rng.create 42 in
  let system = Selectors.embed_vivaldi rng m in
  let result =
    Experiment.run_predictor rng m ~runs:3 ~candidate_count:40
      ~predict:(Selectors.vivaldi_predict system) ()
  in
  Printf.printf "Vivaldi neighbor selection:           %s\n"
    (Penalty.summarize result.Experiment.penalties);

  (* 4. Make it TIV-aware: dynamic neighbor refresh driven by the
        prediction-ratio alert (Section 5.2). *)
  Dynamic_neighbors.run system
    { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 5 };
  let result' =
    Experiment.run_predictor rng m ~runs:3 ~candidate_count:40
      ~predict:(Selectors.vivaldi_predict system) ()
  in
  Printf.printf "dynamic-neighbor Vivaldi (TIV-aware): %s\n"
    (Penalty.summarize result'.Experiment.penalties)
