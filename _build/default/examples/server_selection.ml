(* CDN-style server selection with Meridian.

   A pool of replica servers participates in a Meridian overlay; each
   client asks a random Meridian node for the closest replica.  We
   compare plain Meridian against TIV-aware Meridian (dual ring
   placement + query restart, Section 5.3) and report the extra delay
   clients pay over the optimal replica, plus probing overhead.

   Run with:  dune exec examples/server_selection.exe *)

module Rng = Tivaware_util.Rng
module Cdf = Tivaware_util.Cdf
module Matrix = Tivaware_delay_space.Matrix
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Ring = Tivaware_meridian.Ring
module System = Tivaware_vivaldi.System
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors
module Penalty = Tivaware_core.Penalty

let () =
  let data = Datasets.generate ~size:240 ~seed:31 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let cfg = Ring.default_config in
  let replicas = 120 in

  (* An independent Vivaldi embedding supplies the TIV alerts. *)
  let vivaldi = Selectors.embed_vivaldi (Rng.create 32) m in
  let predicted i j = System.predicted vivaldi i j in

  let original =
    Experiment.run_meridian (Rng.create 33) m ~runs:3 ~meridian_count:replicas
      ~build:(Selectors.meridian_build m cfg) ()
  in
  let aware =
    Experiment.run_meridian (Rng.create 33) m ~runs:3 ~meridian_count:replicas
      ~build:(Selectors.meridian_build_tiv_aware m cfg ~predicted)
      ~fallback:(Selectors.meridian_fallback_tiv_aware m ~predicted ()) ()
  in

  let show name (r : Experiment.meridian_result) =
    Printf.printf "%-22s %s\n" name (Penalty.summarize r.Experiment.base.Experiment.penalties);
    Printf.printf "%-22s   probes=%d over %d queries (%.1f per query)\n" ""
      r.Experiment.probes r.Experiment.queries
      (float_of_int r.Experiment.probes /. float_of_int (max 1 r.Experiment.queries))
  in
  show "Meridian (original)" original;
  show "Meridian (TIV-aware)" aware;

  let overhead =
    100.
    *. float_of_int (aware.Experiment.probes - original.Experiment.probes)
    /. float_of_int original.Experiment.probes
  in
  Printf.printf "\nprobe overhead of TIV awareness: %+.1f%%\n" overhead;

  (* Penalty CDF at a few thresholds, CDN-operator style. *)
  let cdf = Cdf.of_samples aware.Experiment.base.Experiment.penalties in
  let cdf0 = Cdf.of_samples original.Experiment.base.Experiment.penalties in
  Printf.printf "\n%-14s %12s %12s\n" "penalty <=" "original" "tiv-aware";
  List.iter
    (fun t ->
      Printf.printf "%-14s %12.3f %12.3f\n"
        (Printf.sprintf "%g%%" t) (Cdf.eval cdf0 t) (Cdf.eval cdf t))
    [ 0.; 5.; 20.; 50.; 100.; 500. ]
