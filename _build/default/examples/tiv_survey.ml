(* TIV survey of a delay space — the measurement-study workflow of
   Section 2, runnable against any delay matrix, including one loaded
   from disk in the library's text format.

   Run with:  dune exec examples/tiv_survey.exe [matrix-file]
   Without an argument it surveys a freshly generated DS2-like space. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Cdf = Tivaware_util.Cdf
module Binned = Tivaware_util.Binned
module Ascii_plot = Tivaware_util.Ascii_plot
module Matrix = Tivaware_delay_space.Matrix
module Io = Tivaware_delay_space.Io
module Clustering = Tivaware_delay_space.Clustering
module Properties = Tivaware_delay_space.Properties
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Severity = Tivaware_tiv.Severity
module Triangle = Tivaware_tiv.Triangle
module Cluster_analysis = Tivaware_tiv.Cluster_analysis

let () =
  let m =
    if Array.length Sys.argv > 1 then begin
      Printf.printf "loading delay matrix from %s\n" Sys.argv.(1);
      Io.load Sys.argv.(1)
    end
    else begin
      print_endline "no matrix file given; generating a DS2-like space (200 nodes)";
      (Datasets.generate ~size:200 ~seed:3 Datasets.Ds2).Generator.matrix
    end
  in
  Format.printf "@.== delay space ==@.%a@.@." Properties.pp (Properties.analyze m);

  let census = Triangle.census m in
  Printf.printf "== triangles ==\n%d of %d triangles violate (%.1f%%), worst ratio %.2f\n\n"
    census.Triangle.violating census.Triangle.triangles
    (100. *. census.Triangle.fraction) census.Triangle.worst_ratio;

  let severity, counts = Severity.all_with_counts m in
  let sevs = Matrix.delays severity in
  Format.printf "== TIV severity per edge ==@.%a@.@." Stats.pp_summary
    (Stats.summarize sevs);
  let cdf = Cdf.of_samples sevs in
  print_string
    (Ascii_plot.plot ~x_label:"severity" ~y_label:"cdf"
       [ ('*', Cdf.points ~max_points:48 cdf) ]);

  print_endline "\n== severity vs edge delay ==";
  let obs = ref [] in
  Matrix.iter_edges m (fun i j d ->
      if Matrix.known severity i j then obs := (d, Matrix.get severity i j) :: !obs);
  let binned = Binned.make ~width:100. ~x_max:1000. (List.to_seq !obs) in
  Format.printf "%a@." Binned.pp binned;

  print_endline "== cluster structure ==";
  let assignment = Clustering.cluster m in
  Format.printf "%a@." Clustering.pp assignment;
  let analysis =
    Cluster_analysis.analyze_with ~severity ~counts assignment
  in
  Printf.printf
    "within-cluster: mean severity %.4f, %.1f violations/edge\n\
     cross-cluster:  mean severity %.4f, %.1f violations/edge\n"
    analysis.Cluster_analysis.within_mean_severity
    analysis.Cluster_analysis.within_mean_violations
    analysis.Cluster_analysis.cross_mean_severity
    analysis.Cluster_analysis.cross_mean_violations;

  print_endline "\n== worst 10 edges by severity ==";
  let worst = Severity.worst_edges severity ~fraction:1.0 in
  Array.iteri
    (fun k (i, j) ->
      if k < 10 then
        Printf.printf "  %3d-%3d  delay %7.1f ms  severity %.3f\n" i j
          (Matrix.get m i j) (Matrix.get severity i j))
    worst
