(* tivlab — command-line laboratory for TIV-aware neighbor selection.

   Subcommands:
     gen          generate a synthetic delay space and save it
     survey       TIV analysis of a delay matrix (Section 2 workflow)
     import       convert a full square delay matrix to the native format
     repair       clean a measured delay matrix
     synthesize   scale a measured matrix to any size (DS2-style)
     vivaldi      Vivaldi embedding + neighbor-selection experiment
     meridian     Meridian neighbor-selection experiment
     alert        evaluate the TIV alert mechanism on a matrix
     dht          Chord-like DHT lookups with PNS
     multicast    build and score an overlay multicast tree
     embed        Vivaldi embedding over a delay backend (dense or lazy)
     closest      Meridian closest-node queries over a delay backend
     tiv-scan     sampled TIV alert evaluation over a delay backend
     store        object-store reads over a consistent-hashing ring
     stream       P2P live streaming swarm with pluggable neighbor selection
     metrics-diff per-series comparison of two --metrics-out summaries *)

open Cmdliner
module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix
module Io = Tivaware_delay_space.Io
module Clustering = Tivaware_delay_space.Clustering
module Properties = Tivaware_delay_space.Properties
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Severity = Tivaware_tiv.Severity
module Triangle = Tivaware_tiv.Triangle
module Alert = Tivaware_tiv.Alert
module Eval = Tivaware_tiv.Eval
module System = Tivaware_vivaldi.System
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Error = Tivaware_embedding.Error
module Ring = Tivaware_meridian.Ring
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors
module Penalty = Tivaware_core.Penalty
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Profile = Tivaware_measure.Profile
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Budget = Tivaware_measure.Budget
module Arbiter = Tivaware_measure.Arbiter
module Probe_stats = Tivaware_measure.Probe_stats
module Sim = Tivaware_eventsim.Sim
module Zipf = Tivaware_util.Zipf
module Obs = Tivaware_obs
module Backend = Tivaware_backend.Delay_backend
module Synthesizer = Tivaware_topology.Synthesizer
module Overlay = Tivaware_meridian.Overlay
module Query = Tivaware_meridian.Query
module Multicast = Tivaware_overlay.Multicast
module Store_ring = Tivaware_store.Ring
module Store_policy = Tivaware_store.Policy
module Store_scenario = Tivaware_store.Scenario
module Stream_select = Tivaware_stream.Select
module Stream_swarm = Tivaware_stream.Swarm

(* ---------------------------------------------------------------- *)
(* Shared arguments                                                  *)

let seed_arg =
  Arg.(value & opt int 2007 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let size_arg =
  Arg.(value & opt int 400 & info [ "size"; "n" ] ~docv:"N" ~doc:"Node count.")

let matrix_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "matrix"; "m" ] ~docv:"FILE"
        ~doc:"Delay matrix file (tivaware text format). When absent, a \
              DS2-like space is generated from $(b,--size)/$(b,--seed).")

let preset_arg =
  let presets =
    [ ("ds2", Datasets.Ds2); ("meridian", Datasets.Meridian);
      ("p2psim", Datasets.P2psim); ("planetlab", Datasets.Planetlab) ]
  in
  Arg.(
    value
    & opt (enum presets) Datasets.Ds2
    & info [ "preset" ] ~docv:"PRESET"
        ~doc:"Data-set preset: $(b,ds2), $(b,meridian), $(b,p2psim) or \
              $(b,planetlab).")

(* Returns the matrix plus lazy cluster labels ([-1] = noise) for
   topology-derived fault profiles: ground truth when generating,
   DS2-style clustering when loading a measured matrix. *)
let load_or_generate matrix_file size seed =
  match matrix_file with
  | Some path ->
    let m = Io.load path in
    (m, lazy (Clustering.cluster m).Clustering.label)
  | None ->
    let data = Datasets.generate ~size ~seed Datasets.Ds2 in
    (data.Generator.matrix, lazy data.Generator.cluster_of)

(* ---------------------------------------------------------------- *)
(* Measurement-plane arguments (vivaldi / meridian / alert)          *)

let loss_arg =
  Arg.(
    value & opt float 0.
    & info [ "loss" ] ~docv:"P"
        ~doc:"Probe loss probability injected by the measurement plane.")

let meas_jitter_arg =
  Arg.(
    value & opt float 0.
    & info [ "jitter" ] ~docv:"F"
        ~doc:"Multiplicative probe jitter: measured RTT is scaled by a \
              uniform factor in [1-F, 1+F].")

let probe_budget_arg =
  Arg.(
    value & opt int 0
    & info [ "probe-budget" ] ~docv:"N"
        ~doc:"Per-node probe budget: token bucket of capacity N refilled \
              at N tokens per logical second (0 = unlimited).")

let cache_ttl_arg =
  Arg.(
    value & opt float 0.
    & info [ "cache-ttl" ] ~docv:"SECONDS"
        ~doc:"RTT cache TTL in logical seconds — the IDMS-style delay \
              service mode (0 = on-demand, no cache).")

let cache_capacity_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"LRU entry bound for the RTT cache (0 = unbounded; \
              requires $(b,--cache-ttl)).")

let retry_policy_arg =
  let policies =
    [ ("fixed", `Fixed); ("backoff", `Backoff); ("adaptive", `Adaptive) ]
  in
  Arg.(
    value & opt (enum policies) `Fixed
    & info [ "retry-policy" ] ~docv:"POLICY"
        ~doc:"Retransmission policy for lost probes: $(b,fixed) \
              (immediate, up to $(b,--retries)), $(b,backoff) \
              (exponential, 100 ms base, factor 2, 10% delay jitter) or \
              $(b,adaptive) (backoff with the retry budget sized per \
              node from its estimated loss rate).")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:"Maximum retransmissions per probe request.")

let charge_time_arg =
  Arg.(
    value & flag
    & info [ "charge-time" ]
        ~doc:"Advance the measurement-plane clock by what each probe \
              costs (RTTs, timeouts, backoff), instead of one logical \
              second per round only.")

let profile_arg =
  let profiles = [ ("uniform", `Uniform); ("topo", `Topo); ("random", `Random) ] in
  Arg.(
    value & opt (enum profiles) `Uniform
    & info [ "profile" ] ~docv:"KIND"
        ~doc:"Per-link fault profile built from $(b,--loss)/$(b,--jitter): \
              $(b,uniform) (every link identical — the global model), \
              $(b,topo) (access links of noise hosts lossy, inter-cluster \
              paths jittery, from cluster labels) or $(b,random) (seeded \
              per-link heterogeneity, mean equal to the base rates).")

let churn_arg =
  Arg.(
    value & flag
    & info [ "churn" ]
        ~doc:"Enable seeded node churn: a fraction of nodes alternates \
              exponential up/down lifetimes on the engine clock; down \
              nodes answer no probes.")

let churn_fraction_arg =
  Arg.(
    value & opt float 0.2
    & info [ "churn-fraction" ] ~docv:"F"
        ~doc:"Share of nodes subject to churn (with $(b,--churn)).")

let dynamics_arg =
  let kinds =
    [ ("none", `None); ("diurnal", `Diurnal); ("routeflap", `Routeflap) ]
  in
  Arg.(
    value & opt (enum kinds) `None
    & info [ "dynamics" ] ~docv:"KIND"
        ~doc:"Time-varying network conditions on the engine clock: \
              $(b,diurnal) (loss/jitter follow a 240 s sinusoidal cycle, \
              amplitude 0.8) or $(b,routeflap) (seeded per-link route \
              changes, mean one per 100 s, re-drawing up to 50 ms of \
              extra delay).  $(b,none) keeps the profile static.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the run's observability summary (probe, cache, repair \
              and alert metrics plus the trace ring) to FILE as JSON.")

type meas_opts = {
  loss : float;
  jitter : float;
  probe_budget : int;
  cache_ttl : float;
  cache_capacity : int;
  retry_policy : [ `Fixed | `Backoff | `Adaptive ];
  retries : int;
  charge_time : bool;
  profile : [ `Uniform | `Topo | `Random ];
  churn : bool;
  churn_fraction : float;
  dynamics : [ `None | `Diurnal | `Routeflap ];
  metrics_out : string option;
}

let meas_term =
  let make loss jitter probe_budget cache_ttl cache_capacity retry_policy
      retries charge_time profile churn churn_fraction dynamics metrics_out =
    {
      loss;
      jitter;
      probe_budget;
      cache_ttl;
      cache_capacity;
      retry_policy;
      retries;
      charge_time;
      profile;
      churn;
      churn_fraction;
      dynamics;
      metrics_out;
    }
  in
  Term.(
    const make $ loss_arg $ meas_jitter_arg $ probe_budget_arg $ cache_ttl_arg
    $ cache_capacity_arg $ retry_policy_arg $ retries_arg $ charge_time_arg
    $ profile_arg $ churn_arg $ churn_fraction_arg $ dynamics_arg
    $ metrics_out_arg)

let cli_backoff = { Fault.default_backoff with Fault.delay_jitter = 0.1 }

let make_engine_config ?(labels = lazy [||]) opts ~seed =
  let policy =
    match opts.retry_policy with
    | `Fixed -> Fault.Fixed
    | `Backoff -> Fault.Backoff cli_backoff
    | `Adaptive -> Fault.adaptive ~backoff:cli_backoff ()
  in
  let profile =
    match opts.profile with
    | `Uniform -> None (* fault config drives the injector, as before *)
    | `Topo ->
      Some
        (Profile.topology ~loss:opts.loss ~jitter:opts.jitter
           ~cluster_of:(Lazy.force labels) ())
    | `Random ->
      Some (Profile.random ~loss:opts.loss ~jitter:opts.jitter ~seed ())
  in
  let churn =
    if opts.churn then
      Some { Churn.default with Churn.fraction = opts.churn_fraction; seed }
    else None
  in
  let dynamics =
    match opts.dynamics with
    | `None -> None
    | `Diurnal ->
      Some
        { Dynamics.default with Dynamics.diurnal = Some Dynamics.default_diurnal; seed }
    | `Routeflap ->
      Some
        {
          Dynamics.default with
          Dynamics.route_flap = Some Dynamics.default_route_flap;
          seed;
        }
  in
  let config =
    {
      Engine.fault =
        {
          Fault.default with
          Fault.loss = opts.loss;
          jitter = opts.jitter;
          retries = opts.retries;
          policy;
        };
      profile;
      churn;
      dynamics;
      budget =
        (if opts.probe_budget <= 0 then None
         else
           Some
             (Budget.per_node
                ~capacity:(float_of_int opts.probe_budget)
                ~rate:(float_of_int opts.probe_budget)));
      cache_ttl = (if opts.cache_ttl <= 0. then None else Some opts.cache_ttl);
      cache_capacity =
        (if opts.cache_capacity <= 0 then None else Some opts.cache_capacity);
      charge_time = opts.charge_time;
      seed;
    }
  in
  config

let make_engine m ?labels opts ~seed =
  let config = make_engine_config ?labels opts ~seed in
  try Engine.of_matrix ~config m
  with Invalid_argument msg ->
    prerr_endline ("tivlab: " ^ msg);
    exit 2

let make_backend_engine backend ?labels opts ~seed =
  let config = make_engine_config ?labels opts ~seed in
  try
    let engine = Backend.engine ~config backend in
    Backend.attach_obs backend (Engine.obs engine);
    engine
  with Invalid_argument msg ->
    prerr_endline ("tivlab: " ^ msg);
    exit 2

let print_probe_summary engine =
  Format.printf "probes: %a@." Probe_stats.pp (Engine.stats engine)

(* Dump the engine's metric registry — probe/cache/repair/alert series
   plus whatever driver-level gauges the subcommand added — as JSON. *)
let write_metrics meas engine =
  match meas.metrics_out with
  | None -> ()
  | Some path ->
    Obs.Summary.write ~clock:(Engine.now engine) (Engine.obs engine) path;
    Printf.printf "metrics: wrote %s\n" path

let set_gauge engine name v =
  Obs.Gauge.set (Obs.Registry.gauge (Engine.obs engine) name) v

(* ---------------------------------------------------------------- *)
(* Delay-backend arguments (embed / closest / tiv-scan)              *)

let backend_kind_arg =
  let kinds = [ ("dense", `Dense); ("lazy", `Lazy) ] in
  Arg.(
    value & opt (enum kinds) `Dense
    & info [ "backend" ] ~docv:"KIND"
        ~doc:"Delay-plane backend: $(b,dense) materializes the full \
              matrix (the historical model); $(b,lazy) synthesizes each \
              queried pair on demand from a DS2 model, so memory stays \
              independent of the pair count.")

let nodes_arg =
  Arg.(
    value & opt int 0
    & info [ "nodes" ] ~docv:"N"
        ~doc:"Delay-space size for backend subcommands (0 = $(b,--size)). \
              With $(b,--backend lazy) this can exceed dense-matrix scale \
              (e.g. 100000).")

let model_size_arg =
  Arg.(
    value & opt int 400
    & info [ "model-size" ] ~docv:"N"
        ~doc:"Size of the dense source space the lazy backend's DS2 model \
              is measured from (with $(b,--backend lazy) and no \
              $(b,--matrix)).")

let memo_arg =
  Arg.(
    value & opt int 0
    & info [ "memo" ] ~docv:"N"
        ~doc:"Bound the lazy backend's LRU memo of materialized pairs to N \
              entries (0 = no memo; every query re-derives its pair, \
              still deterministic).")

(* Build the ground-truth backend for a backend subcommand.  Dense: the
   usual load-or-generate matrix at the requested node count.  Lazy: a
   DS2 model measured from a small dense source (--matrix or a
   --model-size generated space), then a lazy space of --nodes over
   it. *)
let make_backend kind ~matrix_file ~nodes ~model_size ~memo ~seed =
  let memo = if memo <= 0 then None else Some memo in
  match kind with
  | `Dense ->
    let m, labels = load_or_generate matrix_file nodes seed in
    (Backend.dense m, labels)
  | `Lazy ->
    let source, _ = load_or_generate matrix_file model_size seed in
    let model =
      try Synthesizer.analyze source
      with Invalid_argument msg ->
        prerr_endline ("tivlab: " ^ msg);
        exit 2
    in
    let backend = Backend.lazy_synth ?memo ~seed ~size:nodes model in
    let labels = lazy (Option.get (Backend.labels backend)) in
    (backend, labels)

(* Resident set size from the kernel's accounting, for the flat-RSS
   claim backend runs print. *)
let rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> nan
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> nan
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
          try
            Scanf.sscanf
              (String.sub line 6 (String.length line - 6))
              " %d kB"
              (fun kb -> float_of_int kb /. 1024.)
          with Scanf.Scan_failure _ | Failure _ -> nan
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let print_backend_summary backend engine =
  let rss = rss_mb () in
  if not (Float.is_nan rss) then
    Printf.printf "memory: rss=%.1f MB, materialized pairs=%d (%s backend, %d nodes)\n"
      rss
      (Backend.materialized backend)
      (Backend.kind_name backend) (Backend.size backend);
  set_gauge engine "backend.rss_mb" (if Float.is_nan rss then 0. else rss)

(* ---------------------------------------------------------------- *)
(* gen                                                               *)

let gen_cmd =
  let run preset size seed output =
    let data = Datasets.generate ~size ~seed preset in
    Io.save data.Generator.matrix output;
    Printf.printf "wrote %s (%s, %d nodes, %d edges)\n" output
      (Datasets.name ~size preset) size
      (Matrix.edge_count data.Generator.matrix)
  in
  let output =
    Arg.(
      value & opt string "delay-matrix.dm"
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic Internet delay space.")
    Term.(const run $ preset_arg $ size_arg $ seed_arg $ output)

(* ---------------------------------------------------------------- *)
(* survey                                                            *)

let survey_cmd =
  let run matrix_file size seed =
    let m, _ = load_or_generate matrix_file size seed in
    Format.printf "%a@." Properties.pp (Properties.analyze m);
    let census = Triangle.census m in
    Printf.printf "triangles: %d/%d violate (%.1f%%), worst ratio %.2f\n"
      census.Triangle.violating census.Triangle.triangles
      (100. *. census.Triangle.fraction) census.Triangle.worst_ratio;
    let severity = Severity.all m in
    Format.printf "severity: %a@." Stats.pp_summary
      (Stats.summarize (Matrix.delays severity));
    Format.printf "clusters: %a@." Clustering.pp (Clustering.cluster m)
  in
  Cmd.v
    (Cmd.info "survey" ~doc:"TIV analysis of a delay space.")
    Term.(const run $ matrix_arg $ size_arg $ seed_arg)

(* ---------------------------------------------------------------- *)
(* vivaldi                                                           *)

let vivaldi_cmd =
  let run matrix_file size seed rounds dim dynamic candidates meas =
    let m, labels = load_or_generate matrix_file size seed in
    let config = { System.default_config with System.dim } in
    let rng = Rng.create seed in
    let engine = make_engine m ~labels meas ~seed in
    let system = Selectors.embed_vivaldi_engine ~config ~rounds rng engine in
    if dynamic > 0 then
      Dynamic_neighbors.run system
        { Dynamic_neighbors.rounds_per_iteration = rounds; iterations = dynamic };
    let err =
      Error.evaluate m ~predicted:(Selectors.vivaldi_predict system)
    in
    Format.printf "embedding error: %a@." Error.pp err;
    let result =
      Experiment.run_predictor rng m ~runs:5 ~candidate_count:candidates
        ~predict:(Selectors.vivaldi_predict system) ()
    in
    Printf.printf "neighbor selection: %s (failures %d)\n"
      (Penalty.summarize result.Experiment.penalties)
      result.Experiment.failures;
    if meas.charge_time then
      Printf.printf "virtual time: %.1f s (measurement-aware)\n"
        (Engine.now engine);
    print_probe_summary engine;
    set_gauge engine "vivaldi.embed_error.median_abs_ms" err.Error.median_abs;
    set_gauge engine "vivaldi.embed_error.p90_abs_ms" err.Error.p90_abs;
    set_gauge engine "vivaldi.embed_error.median_rel" err.Error.median_rel;
    set_gauge engine "vivaldi.embed_error.p90_rel" err.Error.p90_rel;
    set_gauge engine "vivaldi.selection_failures"
      (float_of_int result.Experiment.failures);
    write_metrics meas engine
  in
  let rounds =
    Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"N" ~doc:"Embedding rounds.")
  in
  let dim =
    Arg.(value & opt int 5 & info [ "dim" ] ~docv:"D" ~doc:"Embedding dimension.")
  in
  let dynamic =
    Arg.(
      value & opt int 0
      & info [ "dynamic" ] ~docv:"ITERS"
          ~doc:"Dynamic-neighbor iterations (0 = plain Vivaldi).")
  in
  let candidates =
    Arg.(value & opt int 40 & info [ "candidates" ] ~docv:"N" ~doc:"Candidate pool size.")
  in
  Cmd.v
    (Cmd.info "vivaldi" ~doc:"Vivaldi embedding and neighbor selection.")
    Term.(
      const run $ matrix_arg $ size_arg $ seed_arg $ rounds $ dim $ dynamic
      $ candidates $ meas_term)

(* ---------------------------------------------------------------- *)
(* meridian                                                          *)

let meridian_cmd =
  let run matrix_file size seed count beta tiv_aware no_termination meas =
    let m, labels = load_or_generate matrix_file size seed in
    let cfg = { Ring.default_config with Ring.beta } in
    let rng = Rng.create seed in
    let engine = make_engine m ~labels meas ~seed in
    let termination =
      if no_termination then Some Tivaware_meridian.Query.Any_improvement else None
    in
    let result =
      if tiv_aware then begin
        let vivaldi = Selectors.embed_vivaldi (Rng.create (seed + 1)) m in
        let predicted i j = System.predicted vivaldi i j in
        Experiment.run_meridian rng m ~runs:5 ?termination ~engine
          ~meridian_count:count
          ~build:(Selectors.meridian_build_tiv_aware_engine engine cfg ~predicted)
          ~fallback:
            (Selectors.meridian_fallback_tiv_aware_engine engine ~predicted ())
          ()
      end
      else
        Experiment.run_meridian rng m ~runs:5 ?termination ~engine
          ~meridian_count:count ~build:(Selectors.meridian_build m cfg) ()
    in
    Printf.printf "neighbor selection: %s\n"
      (Penalty.summarize result.Experiment.base.Experiment.penalties);
    Printf.printf "probes=%d queries=%d hops/query=%.2f restarts=%d failures=%d\n"
      result.Experiment.probes result.Experiment.queries
      result.Experiment.hops_mean result.Experiment.restarts
      result.Experiment.base.Experiment.failures;
    print_probe_summary engine;
    set_gauge engine "meridian.queries"
      (float_of_int result.Experiment.queries);
    set_gauge engine "meridian.hops_mean" result.Experiment.hops_mean;
    set_gauge engine "meridian.restarts"
      (float_of_int result.Experiment.restarts);
    set_gauge engine "meridian.failures"
      (float_of_int result.Experiment.base.Experiment.failures);
    write_metrics meas engine
  in
  let count =
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"N" ~doc:"Meridian node count.")
  in
  let beta =
    Arg.(value & opt float 0.5 & info [ "beta" ] ~docv:"B" ~doc:"Acceptance threshold.")
  in
  let tiv_aware =
    Arg.(value & flag & info [ "tiv-aware" ] ~doc:"Enable the TIV alert mechanism.")
  in
  let no_termination =
    Arg.(value & flag & info [ "no-termination" ] ~doc:"Disable the termination rule.")
  in
  Cmd.v
    (Cmd.info "meridian" ~doc:"Meridian neighbor-selection experiment.")
    Term.(
      const run $ matrix_arg $ size_arg $ seed_arg $ count $ beta $ tiv_aware
      $ no_termination $ meas_term)

(* ---------------------------------------------------------------- *)
(* import                                                            *)

let import_cmd =
  let run input output symmetrize =
    let m = Io.load_square ~symmetrize input in
    Io.save m output;
    Printf.printf "imported %s: %d nodes, %d edges -> %s\n" input
      (Matrix.size m) (Matrix.edge_count m) output
  in
  let input =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"INPUT" ~doc:"Square-matrix text file (e.g. p2psim King data).")
  in
  let output =
    Arg.(value & opt string "imported.dm" & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let symmetrize =
    let modes = [ ("min", `Min); ("max", `Max); ("mean", `Mean) ] in
    Arg.(
      value & opt (enum modes) `Mean
      & info [ "symmetrize" ] ~docv:"MODE"
          ~doc:"Asymmetry reconciliation: $(b,min), $(b,max) or $(b,mean).")
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Convert a full square delay matrix to the native format.")
    Term.(const run $ input $ output $ symmetrize)

(* ---------------------------------------------------------------- *)
(* repair                                                            *)

let repair_cmd =
  let run input output min_degree clamp fill =
    let module Repair = Tivaware_delay_space.Repair in
    let m = Io.load input in
    Printf.printf "loaded %d nodes, %d missing entries\n" (Matrix.size m)
      (Repair.missing_count m);
    let m, mapping = Repair.drop_low_degree m ~min_degree in
    Printf.printf "after degree filter (>= %d): %d nodes kept\n" min_degree
      (Array.length mapping);
    let m =
      match clamp with
      | None -> m
      | Some p ->
        Printf.printf "clamping delays at the p%.1f percentile\n" p;
        Repair.clamp_outliers m ~percentile:p
    in
    let m =
      if fill then begin
        let filled = Repair.fill_missing_shortest_path m in
        Printf.printf "filled %d entries via shortest paths\n"
          (Repair.missing_count m - Repair.missing_count filled);
        filled
      end
      else m
    in
    Io.save m output;
    Printf.printf "wrote %s (%d nodes, %d missing)\n" output (Matrix.size m)
      (Repair.missing_count m)
  in
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT" ~doc:"Input matrix.")
  in
  let output =
    Arg.(value & opt string "repaired.dm" & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let min_degree =
    Arg.(value & opt int 1 & info [ "min-degree" ] ~docv:"N" ~doc:"Drop nodes with fewer measured edges.")
  in
  let clamp =
    Arg.(value & opt (some float) None & info [ "clamp" ] ~docv:"P" ~doc:"Cap delays at this percentile.")
  in
  let fill =
    Arg.(value & flag & info [ "fill" ] ~doc:"Fill missing entries with shortest-path estimates.")
  in
  Cmd.v
    (Cmd.info "repair" ~doc:"Clean a measured delay matrix.")
    Term.(const run $ input $ output $ min_degree $ clamp $ fill)

(* ---------------------------------------------------------------- *)
(* alert                                                             *)

let alert_cmd =
  let run matrix_file size seed worst meas =
    let m, labels = load_or_generate matrix_file size seed in
    let severity = Severity.all m in
    let system = Selectors.embed_vivaldi (Rng.create seed) m in
    let engine = make_engine m ~labels meas ~seed in
    let points =
      Eval.evaluate_engine ~engine
        ~predicted:(fun i j -> System.predicted system i j)
        ~severity ~worst_fraction:worst ~thresholds:Eval.default_thresholds
    in
    Printf.printf "worst fraction: %.0f%%\n" (100. *. worst);
    Printf.printf "%10s %8s %10s %8s\n" "threshold" "alerts" "accuracy" "recall";
    List.iter
      (fun p ->
        Printf.printf "%10.1f %8d %10.3f %8.3f\n" p.Eval.threshold p.Eval.alerts
          p.Eval.accuracy p.Eval.recall)
      points;
    print_probe_summary engine;
    write_metrics meas engine
  in
  let worst =
    Arg.(
      value & opt float 0.1
      & info [ "worst" ] ~docv:"F" ~doc:"Worst-edge fraction used as ground truth.")
  in
  Cmd.v
    (Cmd.info "alert" ~doc:"Evaluate the TIV alert mechanism.")
    Term.(const run $ matrix_arg $ size_arg $ seed_arg $ worst $ meas_term)

(* ---------------------------------------------------------------- *)
(* synthesize                                                        *)

let synthesize_cmd =
  let run input output size seed jitter =
    let module Synthesizer = Tivaware_topology.Synthesizer in
    let source = Io.load input in
    let model = Synthesizer.analyze source in
    Printf.printf "model: %d source nodes, cluster shares [%s], %.1f%% missing\n"
      (Synthesizer.source_size model)
      (String.concat "; "
         (Array.to_list
            (Array.map (Printf.sprintf "%.2f") (Synthesizer.cluster_fractions model))))
      (100. *. Synthesizer.missing_fraction model);
    let synth = Synthesizer.synthesize ~jitter (Rng.create seed) model ~size in
    Io.save synth output;
    Printf.printf "wrote %s (%d nodes, %d edges)\n" output size
      (Matrix.edge_count synth)
  in
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT" ~doc:"Source matrix.")
  in
  let output =
    Arg.(value & opt string "synthesized.dm" & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let size =
    Arg.(value & opt int 1000 & info [ "size"; "n" ] ~docv:"N" ~doc:"Synthetic node count.")
  in
  let jitter =
    Arg.(value & opt float 0.05 & info [ "jitter" ] ~docv:"F" ~doc:"Smoothing jitter fraction.")
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Scale a measured delay space to any size (DS2-style synthesis).")
    Term.(const run $ input $ output $ size $ seed_arg $ jitter)

(* ---------------------------------------------------------------- *)
(* dht                                                               *)

(* Continuous-stabilization scenario (--stabilize MS): a Zipf key
   workload replayed over simulated time while the ring runs Chord's
   periodic stabilize/notify/fix-fingers protocol.  Both planes pay
   their probes through one engine — foreground lookups under the
   [dht] label, maintenance under [chord_stabilize] — and with
   --probe-budget plus --stabilize-share the maintenance plane is
   additionally admission-controlled by a strict arbiter carve.  The
   whole run is a deterministic function of (seed, interval, budget). *)
let run_dht_stabilize ~backend ~labels ~seed ~candidates ~lookups ~meas
    ~interval ~keys ~zipf_s ~duration ~replicas ~share ~fingers_per_round =
  let module Chord = Tivaware_dht.Chord in
  let module Id_space = Tivaware_dht.Id_space in
  if keys < 1 then begin
    prerr_endline "tivlab: --keys must be >= 1";
    exit 2
  end;
  if not (duration > 0.) then begin
    prerr_endline "tivlab: --duration must be positive";
    exit 2
  end;
  let engine = make_backend_engine backend ~labels meas ~seed in
  let n = Backend.size backend in
  let overlay = Chord.build_engine ~candidates engine in
  (* Distinct key ids, deterministic in the seed. *)
  let krng = Rng.create (seed + 11) in
  let seen = Hashtbl.create (2 * keys) in
  let key_ids =
    Array.init keys (fun _ ->
        let rec draw () =
          let k = Rng.int krng Id_space.modulus in
          if Hashtbl.mem seen k then draw ()
          else begin
            Hashtbl.replace seen k ();
            k
          end
        in
        draw ())
  in
  let store = Chord.Store.create ~replicas overlay ~keys:key_ids in
  let arbiter =
    if meas.probe_budget > 0 && share > 0. && share < 1. then begin
      (* Carve the system-wide probe allowance between the maintenance
         plane and foreground lookups; only the stabilizer asks for
         admission, so its carve is a hard ceiling on background spend
         while the engine-level budget still caps the aggregate. *)
      let total = float_of_int (meas.probe_budget * n) in
      Some
        (Arbiter.create
           (Arbiter.config ~capacity:total ~rate:total
              ~shares:[ ("chord_stabilize", share); ("dht", 1. -. share) ]))
    end
    else None
  in
  let config =
    { Chord.Stabilizer.default_config with Chord.Stabilizer.interval; fingers_per_round }
  in
  let stab =
    try Chord.Stabilizer.create ~config ?arbiter ~store overlay engine
    with Invalid_argument msg ->
      prerr_endline ("tivlab: " ^ msg);
      exit 2
  in
  let sim = Sim.create () in
  Chord.Stabilizer.schedule stab sim;
  let zipf = Zipf.create ~n:keys ~s:zipf_s in
  let wrong_counter =
    Obs.Registry.counter (Engine.obs engine) "chord.lookup_wrong_owner"
  in
  let ground_up node =
    match Engine.churn engine with None -> true | Some c -> Churn.is_up c node
  in
  let lrng = Rng.create (seed + 13) in
  let latencies = ref [] and hops = ref 0 in
  let issued = ref 0 and skipped = ref 0 in
  let correct = ref 0 and wrong = ref 0 in
  for i = 0 to lookups - 1 do
    let at = duration *. float_of_int (i + 1) /. float_of_int (lookups + 1) in
    Sim.schedule_at sim at (fun () ->
        let source = Rng.int lrng n in
        let key = key_ids.(Zipf.sample zipf lrng) in
        if not (ground_up source) then incr skipped
        else begin
          incr issued;
          let l =
            Chord.lookup_fn overlay
              (fun u v -> Engine.rtt ~label:"dht" engine u v)
              ~source ~key
          in
          latencies := l.Chord.latency :: !latencies;
          hops := !hops + l.Chord.hops;
          (* A lookup is correct when it terminates at a node that is
             actually up (ground truth, not belief) and holds the key. *)
          if
            ground_up l.Chord.owner
            && Chord.Store.holds store ~key ~node:l.Chord.owner
          then incr correct
          else begin
            incr wrong;
            Obs.Counter.add wrong_counter 1.
          end
        end)
  done;
  Sim.run sim ~until:duration;
  let t = Chord.Stabilizer.totals stab in
  Printf.printf
    "stabilize: interval=%gs fingers/round=%d candidates=%d keys=%d zipf=%.2f \
     replicas=%d duration=%gs\n"
    interval fingers_per_round candidates keys zipf_s replicas duration;
  Printf.printf
    "stabilize: rounds=%d probes=%d rerouted=%d marked_dead=%d revived=%d denied=%d\n"
    t.Chord.Stabilizer.rounds t.Chord.Stabilizer.checked
    t.Chord.Stabilizer.rerouted t.Chord.Stabilizer.marked_dead
    t.Chord.Stabilizer.revived t.Chord.Stabilizer.denied;
  Printf.printf "keys: migrated=%d copies over %d rehomes\n"
    (Chord.Store.migrated store) (Chord.Store.rehomes store);
  let lat = Array.of_list !latencies in
  let median = if lat = [||] then 0. else Stats.median lat in
  let p90 = if lat = [||] then 0. else Stats.percentile lat 90. in
  let hops_mean =
    if !issued = 0 then 0. else float_of_int !hops /. float_of_int !issued
  in
  let pct =
    if !issued = 0 then 0. else 100. *. float_of_int !correct /. float_of_int !issued
  in
  Printf.printf
    "%d lookups (%d skipped, source down): correct=%.1f%% wrong=%d hops \
     mean=%.2f latency median=%.1f p90=%.1f ms\n"
    !issued !skipped pct !wrong hops_mean median p90;
  print_probe_summary engine;
  set_gauge engine "dht.lookups" (float_of_int !issued);
  set_gauge engine "dht.lookup_correct_pct" pct;
  set_gauge engine "dht.hops_mean" hops_mean;
  set_gauge engine "dht.latency_median_ms" median;
  set_gauge engine "dht.latency_p90_ms" p90;
  write_metrics meas engine

let dht_cmd =
  let run matrix_file size seed kind nodes model_size memo lookups candidates
      pns stabilize_ms stab_keys zipf_s duration replicas stab_share
      fingers_per_round meas =
    let module Chord = Tivaware_dht.Chord in
    let module Id_space = Tivaware_dht.Id_space in
    let nodes = if nodes > 0 then nodes else size in
    let backend, labels =
      make_backend kind ~matrix_file ~nodes ~model_size ~memo ~seed
    in
    if stabilize_ms > 0. then
      (* The stabilization scenario always probes through the
         measurement plane (PNS = engine); --pns is ignored here. *)
      run_dht_stabilize ~backend ~labels ~seed ~candidates ~lookups ~meas
        ~interval:(stabilize_ms /. 1000.) ~keys:stab_keys ~zipf_s ~duration
        ~replicas ~share:stab_share ~fingers_per_round
    else
    let n = Backend.size backend in
    let rng = Rng.create seed in
    let engine = ref None in
    let overlay =
      match pns with
      | `None -> Chord.build_sized ~candidates n
      | `Oracle -> Chord.build_backend ~candidates backend
      | `Engine ->
        (* PNS probes pay the measurement plane (--loss, --retry-policy,
           --cache-capacity, ...). *)
        let e = make_backend_engine backend ~labels meas ~seed in
        engine := Some e;
        Chord.build_engine ~candidates e
      | `Vivaldi ->
        (* Coordinate embeddings need the materialized space. *)
        let system =
          Selectors.embed_vivaldi (Rng.create (seed + 1)) (Backend.densify backend)
        in
        Chord.build_backend ~candidates
          ~predict:(Selectors.vivaldi_predict system) backend
      | `Tiv_aware ->
        let system =
          Selectors.embed_vivaldi (Rng.create (seed + 1)) (Backend.densify backend)
        in
        Dynamic_neighbors.run system
          { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 5 };
        Chord.build_backend ~candidates
          ~predict:(Selectors.vivaldi_predict system) backend
    in
    let latencies = ref [] and hops = ref 0 in
    for _ = 1 to lookups do
      let l =
        Chord.lookup_backend overlay backend
          ~source:(Rng.int rng n)
          ~key:(Rng.int rng Id_space.modulus)
      in
      latencies := l.Chord.latency :: !latencies;
      hops := !hops + l.Chord.hops
    done;
    let lat = Array.of_list !latencies in
    Printf.printf
      "%d lookups: hops mean=%.2f, latency median=%.1f p90=%.1f mean=%.1f ms\n"
      lookups
      (float_of_int !hops /. float_of_int lookups)
      (Stats.median lat)
      (Stats.percentile lat 90.)
      (Stats.mean lat);
    (match !engine with
    | Some e ->
      print_probe_summary e;
      set_gauge e "dht.lookups" (float_of_int lookups);
      set_gauge e "dht.hops_mean" (float_of_int !hops /. float_of_int lookups);
      set_gauge e "dht.latency_median_ms" (Stats.median lat);
      set_gauge e "dht.latency_p90_ms" (Stats.percentile lat 90.);
      write_metrics meas e
    | None ->
      if meas.metrics_out <> None then
        prerr_endline
          "tivlab: --metrics-out needs the measurement plane; use --pns engine")
  in
  let lookups =
    Arg.(value & opt int 1000 & info [ "lookups" ] ~docv:"N" ~doc:"Lookup count.")
  in
  let candidates =
    Arg.(value & opt int 8 & info [ "candidates" ] ~docv:"N" ~doc:"PNS arc candidates.")
  in
  let pns =
    let sources =
      [ ("none", `None); ("oracle", `Oracle); ("engine", `Engine);
        ("vivaldi", `Vivaldi); ("tiv-aware", `Tiv_aware) ]
    in
    Arg.(
      value & opt (enum sources) `None
      & info [ "pns" ] ~docv:"SOURCE"
          ~doc:"Finger proximity source: $(b,none), $(b,oracle), \
                $(b,engine) (direct probes through the measurement \
                plane), $(b,vivaldi) or $(b,tiv-aware).")
  in
  let stabilize =
    Arg.(
      value & opt float 0.
      & info [ "stabilize" ] ~docv:"MS"
          ~doc:"Run the continuous-stabilization scenario: each node \
                stabilizes every $(docv) milliseconds of simulated time \
                while a Zipf key workload replays over $(b,--duration). \
                Implies engine PNS; 0 (default) disables.")
  in
  let stab_keys =
    Arg.(
      value & opt int 512
      & info [ "keys" ] ~docv:"N"
          ~doc:"Keyspace size for the stabilization scenario.")
  in
  let zipf_s =
    Arg.(
      value & opt float 0.9
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Zipf exponent of the key popularity distribution \
                (0 = uniform).")
  in
  let duration =
    Arg.(
      value & opt float 120.
      & info [ "duration" ] ~docv:"SEC"
          ~doc:"Simulated seconds the stabilization scenario runs for.")
  in
  let replicas =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"R"
          ~doc:"Replica copies per key beyond the primary.")
  in
  let stab_share =
    Arg.(
      value & opt float 0.25
      & info [ "stabilize-share" ] ~docv:"F"
          ~doc:"With $(b,--probe-budget), carve this weight fraction of \
                the system-wide probe allowance into a strict admission \
                bucket for the stabilization plane (0 or 1 disables \
                arbitration).")
  in
  let fingers_per_round =
    Arg.(
      value & opt int 1
      & info [ "fingers-per-round" ] ~docv:"K"
          ~doc:"Finger-table slots each stabilization round refreshes.")
  in
  Cmd.v
    (Cmd.info "dht" ~doc:"Chord-like DHT lookups with proximity neighbor selection.")
    Term.(
      const run $ matrix_arg $ size_arg $ seed_arg $ backend_kind_arg
      $ nodes_arg $ model_size_arg $ memo_arg $ lookups $ candidates $ pns
      $ stabilize $ stab_keys $ zipf_s $ duration $ replicas $ stab_share
      $ fingers_per_round $ meas_term)

(* ---------------------------------------------------------------- *)
(* multicast                                                         *)

let multicast_cmd =
  let run matrix_file size seed kind nodes model_size memo max_degree refreshes
      tiv_aware measured meas =
    let module Multicast = Tivaware_overlay.Multicast in
    let nodes = if nodes > 0 then nodes else size in
    let backend, labels =
      make_backend kind ~matrix_file ~nodes ~model_size ~memo ~seed
    in
    let rng = Rng.create seed in
    let join_order = Rng.permutation rng (Backend.size backend) in
    let config = { Multicast.default_config with Multicast.max_degree } in
    let t, switches, engine =
      if measured then begin
        (* Joins and refreshes probe candidate edges through the
           measurement plane instead of trusting coordinates. *)
        let engine = make_backend_engine backend ~labels meas ~seed in
        let t = Multicast.build_engine ~config engine ~join_order in
        let switches = ref 0 in
        for _ = 1 to refreshes do
          switches := !switches + Multicast.refresh_engine t rng engine
        done;
        (t, !switches, Some engine)
      end
      else begin
        (* Coordinate embeddings need the materialized space. *)
        let system =
          Selectors.embed_vivaldi (Rng.create (seed + 1)) (Backend.densify backend)
        in
        if tiv_aware then
          Dynamic_neighbors.run system
            { Dynamic_neighbors.rounds_per_iteration = 100; iterations = 5 };
        let predict = Selectors.vivaldi_predict system in
        let t = Multicast.build_backend ~config ~predict backend ~join_order in
        let switches = ref 0 in
        for _ = 1 to refreshes do
          switches := !switches + Multicast.refresh_backend ~predict t rng backend
        done;
        (t, !switches, None)
      end
    in
    (* Engine-backed runs evaluate through the nan-audited path, so
       unmeasurable edges land in multicast.evaluate_failures instead
       of silently vanishing from the percentiles. *)
    let metrics =
      match engine with
      | Some e -> Multicast.evaluate_engine t e
      | None -> Multicast.evaluate_backend t backend
    in
    Printf.printf
      "members=%d  mean edge=%.1f ms  stretch p50=%.2f p90=%.2f  depth=%d \
       fanout=%d  (%d refresh switches)\n"
      metrics.Multicast.members metrics.Multicast.mean_edge_ms
      metrics.Multicast.median_stretch metrics.Multicast.p90_stretch
      metrics.Multicast.max_depth metrics.Multicast.max_fanout switches;
    (match engine with
    | Some e ->
      print_probe_summary e;
      set_gauge e "multicast.members" (float_of_int metrics.Multicast.members);
      set_gauge e "multicast.mean_edge_ms" metrics.Multicast.mean_edge_ms;
      set_gauge e "multicast.stretch_p50" metrics.Multicast.median_stretch;
      set_gauge e "multicast.stretch_p90" metrics.Multicast.p90_stretch;
      set_gauge e "multicast.refresh_switches" (float_of_int switches);
      write_metrics meas e
    | None ->
      if meas.metrics_out <> None then
        prerr_endline
          "tivlab: --metrics-out needs the measurement plane; use --measured")
  in
  let max_degree =
    Arg.(value & opt int 6 & info [ "max-degree" ] ~docv:"N" ~doc:"Children cap.")
  in
  let refreshes =
    Arg.(value & opt int 0 & info [ "refresh" ] ~docv:"N" ~doc:"Parent refresh passes.")
  in
  let tiv_aware =
    Arg.(value & flag & info [ "tiv-aware" ] ~doc:"Use dynamic-neighbor Vivaldi.")
  in
  let measured =
    Arg.(
      value & flag
      & info [ "measured" ]
          ~doc:"Select parents by probing through the measurement plane \
                ($(b,--loss), $(b,--retry-policy), $(b,--cache-capacity), \
                ...) instead of Vivaldi coordinates.")
  in
  Cmd.v
    (Cmd.info "multicast" ~doc:"Build and score an overlay multicast tree.")
    Term.(
      const run $ matrix_arg $ size_arg $ seed_arg $ backend_kind_arg
      $ nodes_arg $ model_size_arg $ memo_arg $ max_degree $ refreshes
      $ tiv_aware $ measured $ meas_term)

(* ---------------------------------------------------------------- *)
(* embed                                                             *)

let embed_cmd =
  let run matrix_file size seed kind nodes model_size memo rounds dim sample
      meas =
    let nodes = if nodes > 0 then nodes else size in
    let backend, labels =
      make_backend kind ~matrix_file ~nodes ~model_size ~memo ~seed
    in
    let engine = make_backend_engine backend ~labels meas ~seed in
    let config = { System.default_config with System.dim } in
    let rng = Rng.create seed in
    let system = System.create_with_engine ~config rng engine in
    System.run system ~rounds;
    let rel = System.sampled_relative_errors system rng ~pairs:sample in
    Printf.printf
      "embedding (%s backend, %d nodes, %d rounds): sampled relative error \
       median=%.3f p90=%.3f (%d/%d pairs measured)\n"
      (Backend.kind_name backend) nodes rounds (Stats.median rel)
      (Stats.percentile rel 90.) (Array.length rel) sample;
    if meas.charge_time then
      Printf.printf "virtual time: %.1f s (measurement-aware)\n"
        (Engine.now engine);
    print_probe_summary engine;
    print_backend_summary backend engine;
    set_gauge engine "embed.rel_error_median" (Stats.median rel);
    set_gauge engine "embed.rel_error_p90" (Stats.percentile rel 90.);
    set_gauge engine "embed.nodes" (float_of_int nodes);
    write_metrics meas engine
  in
  let rounds =
    Arg.(value & opt int 20 & info [ "rounds" ] ~docv:"N" ~doc:"Embedding rounds.")
  in
  let dim =
    Arg.(value & opt int 5 & info [ "dim" ] ~docv:"D" ~doc:"Embedding dimension.")
  in
  let sample =
    Arg.(
      value & opt int 2000
      & info [ "sample" ] ~docv:"N"
          ~doc:"Pairs sampled for the error estimate (full-matrix error \
                is off the table at lazy scale).")
  in
  Cmd.v
    (Cmd.info "embed"
       ~doc:"Vivaldi embedding over a delay backend ($(b,--backend lazy) \
             scales to 100k+ nodes with flat memory).")
    Term.(
      const run $ matrix_arg $ size_arg $ seed_arg $ backend_kind_arg
      $ nodes_arg $ model_size_arg $ memo_arg $ rounds $ dim $ sample
      $ meas_term)

(* ---------------------------------------------------------------- *)
(* closest                                                           *)

let closest_cmd =
  let run matrix_file size seed kind nodes model_size memo count
      candidate_budget beta queries meas =
    let nodes = if nodes > 0 then nodes else size in
    let backend, labels =
      make_backend kind ~matrix_file ~nodes ~model_size ~memo ~seed
    in
    let engine = make_backend_engine backend ~labels meas ~seed in
    let cfg = { Ring.default_config with Ring.beta } in
    let rng = Rng.create seed in
    let count = min count nodes in
    let meridian_nodes = Rng.sample_indices rng ~n:nodes ~k:count in
    let overlay =
      Overlay.build_backend ~candidate_budget rng backend cfg ~meridian_nodes
    in
    let stretches = ref [] and hops = ref 0 and failures = ref 0 in
    for _ = 1 to queries do
      let start = meridian_nodes.(Rng.int rng count) in
      let target = Rng.int rng nodes in
      let outcome = Query.closest_engine overlay engine ~start ~target in
      if Float.is_nan outcome.Query.chosen_delay then incr failures
      else begin
        hops := !hops + outcome.Query.hops;
        (* Optimal among the Meridian members, from ground truth. *)
        let best = ref infinity in
        Array.iter
          (fun m ->
            if m <> target then begin
              let d = Backend.query backend m target in
              if (not (Float.is_nan d)) && d < !best then best := d
            end)
          meridian_nodes;
        if Float.is_finite !best && !best > 1e-9 then
          stretches := (outcome.Query.chosen_delay /. !best) :: !stretches
      end
    done;
    let s = Array.of_list !stretches in
    Printf.printf
      "closest (%s backend, %d nodes, %d meridian, budget %d): %d queries, \
       stretch median=%.2f p90=%.2f, hops/query=%.2f, failures=%d\n"
      (Backend.kind_name backend) nodes count candidate_budget queries
      (Stats.median s) (Stats.percentile s 90.)
      (float_of_int !hops /. float_of_int (max 1 (queries - !failures)))
      !failures;
    print_probe_summary engine;
    print_backend_summary backend engine;
    set_gauge engine "closest.stretch_median" (Stats.median s);
    set_gauge engine "closest.stretch_p90" (Stats.percentile s 90.);
    set_gauge engine "closest.failures" (float_of_int !failures);
    write_metrics meas engine
  in
  let count =
    Arg.(
      value & opt int 64
      & info [ "count" ] ~docv:"N" ~doc:"Meridian node count.")
  in
  let candidate_budget =
    Arg.(
      value & opt int 32
      & info [ "candidate-budget" ] ~docv:"N"
          ~doc:"Peers each Meridian node samples during ring construction \
                (bounded discovery; keeps lazy-backend ring building \
                O(count × budget) queries).")
  in
  let beta =
    Arg.(
      value & opt float 0.5
      & info [ "beta" ] ~docv:"B" ~doc:"Acceptance threshold.")
  in
  let queries =
    Arg.(value & opt int 50 & info [ "queries" ] ~docv:"N" ~doc:"Query count.")
  in
  Cmd.v
    (Cmd.info "closest"
       ~doc:"Meridian closest-node search over a delay backend.")
    Term.(
      const run $ matrix_arg $ size_arg $ seed_arg $ backend_kind_arg
      $ nodes_arg $ model_size_arg $ memo_arg $ count $ candidate_budget
      $ beta $ queries $ meas_term)

(* ---------------------------------------------------------------- *)
(* tiv-scan                                                          *)

let tiv_scan_cmd =
  let run matrix_file size seed kind nodes model_size memo rounds pairs legs
      worst meas =
    let nodes = if nodes > 0 then nodes else size in
    let backend, labels =
      make_backend kind ~matrix_file ~nodes ~model_size ~memo ~seed
    in
    let engine = make_backend_engine backend ~labels meas ~seed in
    let rng = Rng.create seed in
    let system = System.create_with_engine rng engine in
    System.run system ~rounds;
    let points =
      Eval.evaluate_sampled ~engine
        ~predicted:(fun i j -> System.predicted system i j)
        ~pairs ~legs ~worst_fraction:worst
        ~thresholds:Eval.default_thresholds rng
    in
    Printf.printf
      "tiv-scan (%s backend, %d nodes): %d sampled pairs, %d legs each, \
       worst fraction %.0f%%\n"
      (Backend.kind_name backend) nodes pairs legs (100. *. worst);
    Printf.printf "%10s %8s %10s %8s\n" "threshold" "alerts" "accuracy"
      "recall";
    List.iter
      (fun p ->
        Printf.printf "%10.1f %8d %10.3f %8.3f\n" p.Eval.threshold
          p.Eval.alerts p.Eval.accuracy p.Eval.recall)
      points;
    print_probe_summary engine;
    print_backend_summary backend engine;
    write_metrics meas engine
  in
  let rounds =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~docv:"N" ~doc:"Vivaldi warm-up rounds for the predictor.")
  in
  let pairs =
    Arg.(
      value & opt int 2000
      & info [ "pairs" ] ~docv:"N" ~doc:"Pairs sampled for the sweep.")
  in
  let legs =
    Arg.(
      value & opt int 64
      & info [ "legs" ] ~docv:"N"
          ~doc:"Intermediate nodes sampled per pair for the severity \
                estimate.")
  in
  let worst =
    Arg.(
      value & opt float 0.1
      & info [ "worst" ] ~docv:"F"
          ~doc:"Worst-severity fraction of the sample used as ground truth.")
  in
  Cmd.v
    (Cmd.info "tiv-scan"
       ~doc:"Sampled TIV alert evaluation over a delay backend.")
    Term.(
      const run $ matrix_arg $ size_arg $ seed_arg $ backend_kind_arg
      $ nodes_arg $ model_size_arg $ memo_arg $ rounds $ pairs $ legs $ worst
      $ meas_term)

(* ---------------------------------------------------------------- *)
(* metrics-diff                                                      *)

let metrics_diff_cmd =
  let run tol all a_path b_path =
    let read path =
      match open_in_bin path with
      | exception Sys_error msg ->
        prerr_endline ("tivlab: " ^ msg);
        exit 2
      | ic ->
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (try Obs.Json.of_string s
         with Failure msg ->
           prerr_endline (Printf.sprintf "tivlab: %s: %s" path msg);
           exit 2)
    in
    let a = Obs.Diff.strip_trace (read a_path)
    and b = Obs.Diff.strip_trace (read b_path) in
    let deltas = Obs.Diff.deltas a b in
    let changed = ref 0 in
    Printf.printf "%-56s %12s %12s %12s\n" "series" a_path b_path "delta";
    List.iter
      (fun d ->
        let line before after delta =
          Printf.printf "%-56s %12s %12s %12s\n" d.Obs.Diff.series before
            after delta
        in
        match (d.Obs.Diff.before, d.Obs.Diff.after) with
        | Some x, Some y ->
          let close =
            x = y
            || Float.abs (y -. x)
               <= tol *. Float.max (Float.abs x) (Float.abs y)
          in
          if not close then begin
            incr changed;
            line (Printf.sprintf "%g" x) (Printf.sprintf "%g" y)
              (Printf.sprintf "%+g" (Obs.Diff.change d))
          end
          else if all then
            line (Printf.sprintf "%g" x) (Printf.sprintf "%g" y) "="
        | Some x, None ->
          incr changed;
          line (Printf.sprintf "%g" x) "-" "removed"
        | None, Some y ->
          incr changed;
          line "-" (Printf.sprintf "%g" y) "added"
        | None, None -> ())
      deltas;
    Printf.printf "%d series compared, %d differ (tolerance %g)\n"
      (List.length deltas) !changed tol;
    if !changed > 0 then exit 1
  in
  let tol =
    Arg.(
      value & opt float Obs.Diff.default_tolerance
      & info [ "tol" ] ~docv:"F"
          ~doc:"Relative tolerance below which two numbers count as equal.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Also print unchanged series (marked $(b,=)).")
  in
  let a_path =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"A.json" ~doc:"First --metrics-out summary.")
  in
  let b_path =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"B.json" ~doc:"Second --metrics-out summary.")
  in
  Cmd.v
    (Cmd.info "metrics-diff"
       ~doc:"Compare two --metrics-out summaries series by series; exits 1 \
             when they differ beyond the tolerance.")
    Term.(const run $ tol $ all $ a_path $ b_path)

(* ---------------------------------------------------------------- *)
(* store: replica placement + read-path policy comparison            *)

let store_cmd =
  let run matrix_file size seed kind nodes model_size memo policy devices zones
      part_power replicas objects zipf_s reads duration repair_ms repair_share
      penalty meas =
    let nodes = if nodes > 0 then nodes else size in
    let backend, labels =
      make_backend kind ~matrix_file ~nodes ~model_size ~memo ~seed
    in
    let config =
      {
        Store_scenario.devices;
        zones;
        part_power;
        replicas;
        objects;
        zipf_s;
        reads;
        duration;
        repair_interval = repair_ms /. 1000.;
        failure_penalty_ms = penalty;
        seed = seed + 17;
      }
    in
    (try Store_scenario.validate_config "tivlab store" config
     with Invalid_argument msg ->
       prerr_endline ("tivlab: " ^ msg);
       exit 2);
    let engine = make_backend_engine backend ~labels meas ~seed in
    (* Coordinate-based policies embed through a separate maintenance
       engine over the same backend (same measurement-plane options),
       so the scenario engine's fault/churn streams stay identical
       across policies and the embedding's probe bill is reported
       separately. *)
    let maintenance = ref None in
    let embed () =
      let e = make_backend_engine backend ~labels meas ~seed:(seed + 1) in
      let sys = Selectors.embed_vivaldi_engine (Rng.create (seed + 1)) e in
      maintenance := Some e;
      System.predictor sys
    in
    let pol =
      match policy with
      | `Naive -> Store_policy.naive ()
      | `Vivaldi -> Store_policy.coordinate (embed ())
      | `Meridian -> Store_policy.probe ()
      | `Alert -> Store_policy.alert (embed ())
    in
    let arbiter =
      if meas.probe_budget > 0 && repair_share > 0. && repair_share < 1. then begin
        (* Same carve as dht --stabilize: the repair plane's admission
           bucket is a strict share of the system-wide allowance. *)
        let total = float_of_int (meas.probe_budget * Backend.size backend) in
        Some
          (Arbiter.create
             (Arbiter.config ~capacity:total ~rate:total
                ~shares:
                  [ ("store_repair", repair_share); ("store", 1. -. repair_share) ]))
      end
      else None
    in
    let sc =
      try Store_scenario.create ?arbiter ~config ~policy:pol ~backend ~engine ()
      with Invalid_argument msg ->
        prerr_endline ("tivlab: " ^ msg);
        exit 2
    in
    let ring = Store_scenario.ring sc in
    let r = Store_scenario.run sc in
    Printf.printf
      "store: policy=%s backend=%s devices=%d zones=%d parts=%d replicas=%d \
       objects=%d zipf=%.2f\n"
      (Store_policy.name pol) (Backend.kind_name backend) devices zones
      (Store_ring.parts ring) replicas objects zipf_s;
    Printf.printf
      "store: reads issued=%d completed=%d failed=%d skipped=%d handoffs=%d \
       dead_attempts=%d\n"
      r.Store_scenario.issued r.Store_scenario.completed r.Store_scenario.failed
      r.Store_scenario.skipped r.Store_scenario.handoffs
      r.Store_scenario.dead_attempts;
    let lat = r.Store_scenario.latencies in
    let mean = if lat = [||] then 0. else Stats.mean lat in
    let p50 = if lat = [||] then 0. else Stats.median lat in
    let p99 = if lat = [||] then 0. else Stats.percentile lat 99. in
    let maint_probes =
      match !maintenance with
      | None -> 0
      | Some e -> Probe_stats.label_count (Engine.stats e) "vivaldi"
    in
    Printf.printf
      "store: latency mean=%.1f p50=%.1f p99=%.1f ms  policy probes=%d  \
       maintenance probes=%d\n"
      mean p50 p99 r.Store_scenario.policy_probes maint_probes;
    let rep = r.Store_scenario.repair in
    Printf.printf "store: repair passes=%d checked=%d rehomed=%d restored=%d denied=%d\n"
      rep.Store_scenario.passes rep.Store_scenario.total_checked
      rep.Store_scenario.total_rehomed rep.Store_scenario.total_restored
      rep.Store_scenario.total_denied;
    print_probe_summary engine;
    set_gauge engine "store.read_mean_ms" mean;
    set_gauge engine "store.read_p50_ms" p50;
    set_gauge engine "store.read_p99_ms" p99;
    set_gauge engine "store.policy_probes" (float_of_int r.Store_scenario.policy_probes);
    set_gauge engine "store.maintenance_probes" (float_of_int maint_probes);
    write_metrics meas engine
  in
  let policy =
    let policies =
      [ ("naive", `Naive); ("vivaldi", `Vivaldi); ("meridian", `Meridian);
        ("alert", `Alert) ]
    in
    Arg.(
      value & opt (enum policies) `Alert
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Replica selection: $(b,naive) static proximity (probe once, \
                trust forever), $(b,vivaldi) coordinate prediction, \
                $(b,meridian) direct probing of every candidate, or \
                $(b,alert) TIV-alert-aware verification (walk candidates in \
                predicted order, skip flagged likely-TIV edges).")
  in
  let devices =
    Arg.(
      value & opt int 24
      & info [ "devices" ] ~docv:"N"
          ~doc:"Storage devices sampled from the delay space's nodes.")
  in
  let zones =
    Arg.(
      value & opt int 4
      & info [ "zones" ] ~docv:"N" ~doc:"Failure zones (assigned round-robin).")
  in
  let part_power =
    Arg.(
      value & opt int 6
      & info [ "part-power" ] ~docv:"P"
          ~doc:"2^P partitions on the consistent-hashing ring.")
  in
  let replicas =
    Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"R" ~doc:"Replicas per partition.")
  in
  let objects =
    Arg.(value & opt int 256 & info [ "objects" ] ~docv:"N" ~doc:"Distinct objects.")
  in
  let zipf_s =
    Arg.(
      value & opt float 0.9
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Zipf exponent of object popularity (0 = uniform).")
  in
  let reads =
    Arg.(
      value & opt int 600
      & info [ "reads" ] ~docv:"N"
          ~doc:"Client GETs spread evenly over $(b,--duration).")
  in
  let duration =
    Arg.(
      value & opt float 120.
      & info [ "duration" ] ~docv:"SEC" ~doc:"Simulated seconds the workload runs for.")
  in
  let repair_ms =
    Arg.(
      value & opt float 10000.
      & info [ "repair" ] ~docv:"MS"
          ~doc:"Repair-plane interval in milliseconds of simulated time: \
                probe device liveness and re-home partitions off \
                believed-dead devices (0 disables).")
  in
  let repair_share =
    Arg.(
      value & opt float 0.25
      & info [ "repair-share" ] ~docv:"F"
          ~doc:"With $(b,--probe-budget), carve this weight fraction of the \
                system-wide probe allowance into a strict admission bucket \
                for the repair plane (0 or 1 disables arbitration).")
  in
  let penalty =
    Arg.(
      value & opt float 3000.
      & info [ "penalty" ] ~docv:"MS"
          ~doc:"Latency charged per attempt on a dead replica (the client's \
                timeout) before it retries elsewhere.")
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:"Object-store reads over a consistent-hashing ring: compare \
             replica-selection policies under churn and dynamics.")
    Term.(
      const run $ matrix_arg $ size_arg $ seed_arg $ backend_kind_arg
      $ nodes_arg $ model_size_arg $ memo_arg $ policy $ devices $ zones
      $ part_power $ replicas $ objects $ zipf_s $ reads $ duration
      $ repair_ms $ repair_share $ penalty $ meas_term)

(* ---------------------------------------------------------------- *)
(* stream: P2P live streaming with pluggable neighbor selection      *)

let stream_cmd =
  let run matrix_file size seed kind nodes model_size memo policy members
      chunk_ms deadline_ms buffer pull_ms repair_ms repair_share degree duration
      meas =
    let nodes = if nodes > 0 then nodes else size in
    let backend, labels =
      make_backend kind ~matrix_file ~nodes ~model_size ~memo ~seed
    in
    let config =
      {
        Stream_swarm.members;
        chunk_ms;
        deadline_ms;
        buffer_chunks = buffer;
        pull_interval = pull_ms /. 1000.;
        repair_interval = repair_ms /. 1000.;
        max_degree = degree;
        duration;
        seed = seed + 23;
      }
    in
    (try Stream_swarm.validate_config "tivlab stream" config
     with Invalid_argument msg ->
       prerr_endline ("tivlab: " ^ msg);
       exit 2);
    let engine = make_backend_engine backend ~labels meas ~seed in
    (* Same discipline as store: coordinate-based policies embed through
       a separate maintenance engine over the same backend, so the swarm
       engine's fault/churn streams stay identical across policies and
       the embedding's probe bill is reported separately. *)
    let maintenance = ref None in
    let embed () =
      let e = make_backend_engine backend ~labels meas ~seed:(seed + 1) in
      let sys = Selectors.embed_vivaldi_engine (Rng.create (seed + 1)) e in
      maintenance := Some e;
      System.predictor sys
    in
    let select =
      match policy with
      | `Naive -> Stream_select.naive ~seed:(seed + 23)
      | `Vivaldi -> Stream_select.coordinate (embed ())
      | `Alert -> Stream_select.alert (embed ())
    in
    let arbiter =
      if meas.probe_budget > 0 && repair_share > 0. && repair_share < 1. then begin
        let total = float_of_int (meas.probe_budget * Backend.size backend) in
        Some
          (Arbiter.create
             (Arbiter.config ~capacity:total ~rate:total
                ~shares:
                  [
                    ("stream_repair", repair_share);
                    ("stream", 1. -. repair_share);
                  ]))
      end
      else None
    in
    let sw =
      try Stream_swarm.create ?arbiter ~config ~select ~backend ~engine ()
      with Invalid_argument msg ->
        prerr_endline ("tivlab: " ^ msg);
        exit 2
    in
    let r = Stream_swarm.run sw in
    Printf.printf
      "stream: policy=%s backend=%s members=%d source=%d chunks=%d \
       chunk=%.0fms deadline=%.0fms degree=%d\n"
      (Stream_select.name select) (Backend.kind_name backend) members
      (Stream_swarm.source sw) r.Stream_swarm.chunks chunk_ms deadline_ms degree;
    Printf.printf
      "stream: deadlines on_time=%d missed=%d down=%d miss_rate=%.4f\n"
      r.Stream_swarm.on_time r.Stream_swarm.missed
      r.Stream_swarm.down_at_deadline r.Stream_swarm.miss_rate;
    Printf.printf
      "stream: deliveries=%d duplicates=%d lost_down=%d transfer_failures=%d\n"
      r.Stream_swarm.deliveries r.Stream_swarm.duplicates
      r.Stream_swarm.lost_down r.Stream_swarm.transfer_failures;
    Printf.printf
      "stream: pull exchanges=%d failures=%d requests=%d hits=%d \
       overhead=%.3f\n"
      r.Stream_swarm.pull_exchanges r.Stream_swarm.pull_failures
      r.Stream_swarm.pull_requests r.Stream_swarm.pull_hits
      r.Stream_swarm.overhead_ratio;
    let st = r.Stream_swarm.stretches in
    let s50 = if st = [||] then 0. else Stats.median st in
    let s90 = if st = [||] then 0. else Stats.percentile st 90. in
    Printf.printf "stream: delivery stretch p50=%.2f p90=%.2f (n=%d)\n" s50 s90
      (Array.length st);
    let rep = r.Stream_swarm.repair in
    Printf.printf
      "stream: repair passes=%d denied=%d detached=%d reattached=%d \
       rejoined=%d\n"
      rep.Stream_swarm.passes rep.Stream_swarm.denied
      rep.Stream_swarm.detached rep.Stream_swarm.reattached
      rep.Stream_swarm.rejoined;
    let tm = r.Stream_swarm.tree_metrics in
    Printf.printf
      "stream: tree joined=%d/%d mean_edge=%.1fms median_stretch=%.2f \
       depth=%d fanout=%d\n"
      r.Stream_swarm.joined members tm.Multicast.mean_edge_ms
      tm.Multicast.median_stretch tm.Multicast.max_depth tm.Multicast.max_fanout;
    let maint_probes =
      match !maintenance with
      | None -> 0
      | Some e -> Probe_stats.label_count (Engine.stats e) "vivaldi"
    in
    Printf.printf "stream: maintenance probes=%d\n" maint_probes;
    print_probe_summary engine;
    set_gauge engine "stream.miss_rate" r.Stream_swarm.miss_rate;
    set_gauge engine "stream.overhead_ratio" r.Stream_swarm.overhead_ratio;
    set_gauge engine "stream.stretch_p50" s50;
    set_gauge engine "stream.stretch_p90" s90;
    set_gauge engine "stream.maintenance_probes" (float_of_int maint_probes);
    write_metrics meas engine
  in
  let policy =
    let policies = [ ("naive", `Naive); ("vivaldi", `Vivaldi); ("alert", `Alert) ] in
    Arg.(
      value & opt (enum policies) `Alert
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Neighbor selection: $(b,naive) seeded-random attachment, \
                $(b,vivaldi) coordinate-ranked candidates, or $(b,alert) \
                TIV-alert-aware verification of candidates in predicted \
                order (flagged likely-TIV edges rank behind every clean \
                one).")
  in
  let members =
    Arg.(
      value & opt int Stream_swarm.default_config.Stream_swarm.members
      & info [ "members" ] ~docv:"N"
          ~doc:"Swarm size sampled from the delay space (source included).")
  in
  let chunk_ms =
    Arg.(
      value & opt float Stream_swarm.default_config.Stream_swarm.chunk_ms
      & info [ "chunk-ms" ] ~docv:"MS"
          ~doc:"Inter-chunk emission gap in milliseconds of stream time.")
  in
  let deadline_ms =
    Arg.(
      value & opt float Stream_swarm.default_config.Stream_swarm.deadline_ms
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Playback deadline: a chunk not held this many milliseconds \
                after emission is a miss.")
  in
  let buffer =
    Arg.(
      value & opt int Stream_swarm.default_config.Stream_swarm.buffer_chunks
      & info [ "buffer" ] ~docv:"CHUNKS"
          ~doc:"Bounded chunk buffer: the have-map/pull window, in chunks.")
  in
  let pull_ms =
    Arg.(
      value & opt float 2000.
      & info [ "pull" ] ~docv:"MS"
          ~doc:"Pull-plane interval in milliseconds of simulated time: \
                exchange have-maps with the parent and request missing \
                chunks in the buffer window.")
  in
  let repair_ms =
    Arg.(
      value & opt float 5000.
      & info [ "repair" ] ~docv:"MS"
          ~doc:"Repair-plane interval in milliseconds of simulated time: \
                re-graft members orphaned by churn (0 disables).")
  in
  let repair_share =
    Arg.(
      value & opt float 0.25
      & info [ "repair-share" ] ~docv:"F"
          ~doc:"With $(b,--probe-budget), carve this weight fraction of the \
                system-wide probe allowance into a strict admission bucket \
                for the repair plane (0 or 1 disables arbitration).")
  in
  let degree =
    Arg.(
      value & opt int Stream_swarm.default_config.Stream_swarm.max_degree
      & info [ "degree" ] ~docv:"D" ~doc:"Children cap per member.")
  in
  let duration =
    Arg.(
      value & opt float Stream_swarm.default_config.Stream_swarm.duration
      & info [ "duration" ] ~docv:"SEC"
          ~doc:"Simulated seconds of chunk emission (pull and repair run \
                until the last chunk's deadline).")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"P2P live streaming over the delay space: chunk dissemination \
             with playback deadlines, comparing locality-unaware, \
             coordinate-based and TIV-alert-aware neighbor selection.")
    Term.(
      const run $ matrix_arg $ size_arg $ seed_arg $ backend_kind_arg
      $ nodes_arg $ model_size_arg $ memo_arg $ policy $ members $ chunk_ms
      $ deadline_ms $ buffer $ pull_ms $ repair_ms $ repair_share $ degree
      $ duration $ meas_term)

let () =
  let info =
    Cmd.info "tivlab" ~version:"1.0.0"
      ~doc:"Laboratory for TIV-aware distributed systems (IMC 2007 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; survey_cmd; vivaldi_cmd; meridian_cmd; alert_cmd; import_cmd;
            repair_cmd; synthesize_cmd; dht_cmd; multicast_cmd; embed_cmd;
            closest_cmd; tiv_scan_cmd; store_cmd; stream_cmd; metrics_diff_cmd;
          ]))
