(* tivd — the sustained-load query-serving harness.

   Serves a seeded mixed stream of Meridian closest-node queries, Chord
   lookups and multicast refresh passes against a delay backend, sharded
   across OCaml domains (one world + engine + metric registry per
   domain), and reports one deterministic merged summary.

   The summary written by --report depends only on the spec and the
   domain count — never on scheduling or wall-clock — so CI can diff it
   against a committed fixture; throughput (wall-clock qps) is printed
   to stdout only. *)

open Cmdliner
module Rng = Tivaware_util.Rng
module Io = Tivaware_delay_space.Io
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Synthesizer = Tivaware_topology.Synthesizer
module Backend = Tivaware_backend.Delay_backend
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Obs = Tivaware_obs
module Workload = Tivaware_service.Workload
module Shard = Tivaware_service.Shard
module Driver = Tivaware_service.Driver

let make_backend_factory kind ~matrix_file ~nodes ~model_size ~memo ~seed =
  let memo = if memo <= 0 then None else Some memo in
  let load_or_generate size =
    match matrix_file with
    | Some path -> Io.load path
    | None -> (Datasets.generate ~size ~seed Datasets.Ds2).Generator.matrix
  in
  match kind with
  | `Dense ->
    (* The matrix is immutable, so shard factories may share it; each
       shard still gets its own backend value (obs attach points). *)
    let m = load_or_generate nodes in
    fun () -> Backend.dense m
  | `Lazy ->
    let model = Synthesizer.analyze (load_or_generate model_size) in
    fun () -> Backend.lazy_synth ?memo ~seed ~size:nodes model

let make_engine_config ~loss ~jitter ~retries ~cache_ttl ~cache_capacity
    ~charge_time ~seed =
  {
    Engine.default_config with
    Engine.fault = { Fault.default with Fault.loss; jitter; retries };
    cache_ttl = (if cache_ttl <= 0. then None else Some cache_ttl);
    cache_capacity = (if cache_capacity <= 0 then None else Some cache_capacity);
    charge_time;
    seed;
  }

let kind_counter obs name kind =
  Obs.Counter.value
    (Obs.Registry.counter obs
       ~labels:[ ("kind", Workload.kind_label kind) ]
       name)

let kind_latency obs kind =
  Obs.Registry.histogram obs
    ~labels:[ ("kind", Workload.kind_label kind) ]
    ~edges:Shard.latency_edges "service.latency_ms"

let print_summary result wall =
  let obs = result.Driver.obs in
  let served =
    Array.fold_left
      (fun acc k -> acc +. kind_counter obs "service.queries" k)
      0. Workload.kinds
  in
  Format.printf "tivd: served %.0f queries over %d domain%s in %.2f s (%.0f qps)@."
    served result.Driver.domains
    (if result.Driver.domains = 1 then "" else "s")
    wall
    (if wall > 0. then served /. wall else 0.);
  Array.iter
    (fun kind ->
      let q = kind_counter obs "service.queries" kind in
      let f = kind_counter obs "service.failures" kind in
      let h = kind_latency obs kind in
      Format.printf
        "  %-10s %6.0f queries, %.0f failures, latency p50=%.1f p99=%.1f ms@."
        (Workload.kind_label kind) q f
        (Obs.Histogram.quantile h 0.5)
        (Obs.Histogram.quantile h 0.99))
    Workload.kinds;
  let switches = Obs.Counter.value (Obs.Registry.counter obs "service.switches") in
  let hops =
    Obs.Registry.histogram obs ~edges:Shard.hops_edges "service.hops"
  in
  Format.printf "  dht hops mean=%.2f, refresh switches=%.0f, clock=%.1f s@."
    (Obs.Histogram.mean hops) switches result.Driver.clock

let run domains queries rate mix backend_kind matrix_file nodes model_size memo
    seed meridian candidate_budget beta loss jitter retries cache_ttl
    cache_capacity charge_time sequential report =
  try
    let spec =
      {
        Shard.seed;
        engine_config =
          make_engine_config ~loss ~jitter ~retries ~cache_ttl ~cache_capacity
            ~charge_time ~seed;
        make_backend =
          make_backend_factory backend_kind ~matrix_file ~nodes ~model_size
            ~memo ~seed;
        meridian_count = meridian;
        candidate_budget =
          (if candidate_budget <= 0 then None else Some candidate_budget);
        beta;
        rate = (if rate <= 0. then None else Some rate);
        mix;
        queries;
      }
    in
    let t0 = Unix.gettimeofday () in
    let result =
      if sequential then Driver.run_sequential spec
      else Driver.run ~domains spec
    in
    let wall = Unix.gettimeofday () -. t0 in
    print_summary result wall;
    Option.iter
      (fun path ->
        Obs.Summary.write ~clock:result.Driver.clock result.Driver.obs path;
        Format.printf "summary written to %s@." path)
      report;
    0
  with Invalid_argument msg | Sys_error msg ->
    prerr_endline ("tivd: " ^ msg);
    2

(* ---------------------------------------------------------------- *)
(* Arguments                                                         *)

let mix_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ c; d; m ] -> (
      match (int_of_string_opt c, int_of_string_opt d, int_of_string_opt m) with
      | Some closest, Some dht, Some multicast -> (
        let mix = { Workload.closest; dht; multicast } in
        match Workload.validate_mix mix with
        | () -> Ok mix
        | exception Invalid_argument msg -> Error (`Msg msg))
      | _ -> Error (`Msg (Printf.sprintf "invalid mix %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "mix must be C:D:M, got %S" s))
  in
  let print ppf m =
    Format.fprintf ppf "%d:%d:%d" m.Workload.closest m.Workload.dht
      m.Workload.multicast
  in
  Arg.conv (parse, print)

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains the query stream is sharded across.")

let queries_arg =
  Arg.(
    value & opt int 2000
    & info [ "queries" ] ~docv:"N" ~doc:"Total queries in the stream.")

let rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "rate" ] ~docv:"R"
        ~doc:"Open-loop Poisson arrival rate in queries/second (0 = \
              closed loop: back-to-back queries, no arrival clock).")

let mix_arg =
  Arg.(
    value & opt mix_conv Workload.default_mix
    & info [ "mix" ] ~docv:"C:D:M"
        ~doc:"Relative weights of closest:dht:multicast queries.")

let backend_kind_arg =
  Arg.(
    value
    & opt (enum [ ("dense", `Dense); ("lazy", `Lazy) ]) `Dense
    & info [ "backend" ] ~docv:"KIND"
        ~doc:"Delay-plane backend: $(b,dense) materializes the matrix, \
              $(b,lazy) synthesizes queried pairs on demand from a DS2 \
              model.")

let matrix_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "matrix" ] ~docv:"FILE"
        ~doc:"Delay matrix to serve (dense) or to measure the DS2 model \
              from (lazy); omitted = a generated DS2 space.")

let nodes_arg =
  Arg.(
    value & opt int 400
    & info [ "nodes" ] ~docv:"N" ~doc:"Delay-space node count.")

let model_size_arg =
  Arg.(
    value & opt int 400
    & info [ "model-size" ] ~docv:"N"
        ~doc:"Dense source size the lazy backend's model is measured from.")

let memo_arg =
  Arg.(
    value & opt int 0
    & info [ "memo" ] ~docv:"N"
        ~doc:"LRU memo bound for the lazy backend (0 = no memo).")

let seed_arg =
  Arg.(value & opt int 2007 & info [ "seed" ] ~docv:"N" ~doc:"Master seed.")

let meridian_arg =
  Arg.(
    value & opt int 32
    & info [ "meridian" ] ~docv:"N"
        ~doc:"Meridian participants sampled from the space.")

let candidate_budget_arg =
  Arg.(
    value & opt int 0
    & info [ "candidate-budget" ] ~docv:"N"
        ~doc:"Ring-construction discovery budget per Meridian node \
              (0 = unbounded, scans all participants).")

let beta_arg =
  Arg.(
    value & opt float 0.5
    & info [ "beta" ] ~docv:"F" ~doc:"Meridian acceptance threshold.")

let loss_arg =
  Arg.(
    value & opt float 0.
    & info [ "loss" ] ~docv:"P" ~doc:"Injected probe loss probability.")

let jitter_arg =
  Arg.(
    value & opt float 0.
    & info [ "jitter" ] ~docv:"F"
        ~doc:"Multiplicative probe jitter in [1-F, 1+F].")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N" ~doc:"Probe retries after a loss.")

let cache_ttl_arg =
  Arg.(
    value & opt float 0.
    & info [ "cache-ttl" ] ~docv:"S"
        ~doc:"Measurement cache TTL in seconds (0 = no cache).")

let cache_capacity_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"LRU bound on cache entries (0 = unbounded).")

let charge_time_arg =
  Arg.(
    value & flag
    & info [ "charge-time" ]
        ~doc:"Advance the engine clock by each probe's measurement cost.")

let sequential_arg =
  Arg.(
    value & flag
    & info [ "sequential" ]
        ~doc:"Run the reference sequential driver on the calling domain \
              (ignores $(b,--domains); the bit-identity baseline for \
              $(b,--domains 1)).")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write the merged observability summary as JSON.")

let cmd =
  let term =
    Term.(
      const run $ domains_arg $ queries_arg $ rate_arg $ mix_arg
      $ backend_kind_arg $ matrix_arg $ nodes_arg $ model_size_arg $ memo_arg
      $ seed_arg $ meridian_arg $ candidate_budget_arg $ beta_arg $ loss_arg
      $ jitter_arg $ retries_arg $ cache_ttl_arg $ cache_capacity_arg
      $ charge_time_arg $ sequential_arg $ report_arg)
  in
  Cmd.v
    (Cmd.info "tivd" ~version:"%%VERSION%%"
       ~doc:"Multicore sustained-load query serving over a delay backend.")
    term

let () = exit (Cmd.eval' cmd)
