(** Dynamic-neighbor Vivaldi (Section 5.2): the TIV alert mechanism
    applied to Vivaldi's own probing-neighbor sets.

    After each embedding period, every node samples a second batch of
    random neighbor candidates, ranks the combined pool by the
    prediction ratio of its edges under the current coordinates, and
    drops the most-shrunk half — exactly the edges the alert mechanism
    flags as likely severe-TIV edges.  Iterating this shrinks the TIV
    severity of neighbor edges (Figure 22) and improves neighbor
    selection (Figure 23) at no extra measurement cost. *)

type schedule = {
  rounds_per_iteration : int;
      (** embedding rounds between neighbor refreshes; the paper uses
          100 simulated seconds so coordinates re-converge *)
  iterations : int;
}

val default_schedule : schedule
(** 100 rounds per iteration, 10 iterations. *)

val refresh_neighbors : System.t -> unit
(** One refresh step for every node: sample as many new random
    candidates as the node currently has, rank the union by prediction
    ratio ascending, and keep the top half (largest ratios — the least
    shrunk edges). *)

val run :
  ?on_iteration:(int -> System.t -> unit) ->
  System.t ->
  schedule ->
  unit
(** Runs the schedule: embed, refresh, repeat.  [on_iteration k system]
    is called after iteration [k] (1-based) has embedded and refreshed —
    use it to snapshot neighbor-edge severities or selection quality at
    the iteration counts the paper plots (1, 2, 5, 10). *)

(** {2 Churn-aware repair} *)

type repair = {
  evicted : int;  (** neighbors dropped because they answered no probe *)
  resampled : int;  (** live replacements admitted into neighbor sets *)
}

val repair_neighbors : ?label:string -> System.t -> repair
(** One repair pass: every node that is itself up (per the engine's
    churn model; always, without churn) re-probes its current neighbors
    through the system's engine, evicts the ones whose probe fails
    (outage, loss, budget denial — the prober cannot tell these apart),
    and samples random replacements until the set is full again,
    admitting only candidates that answer a probe.  All repair probes
    are charged and accounted under [label] (default
    ["vivaldi-repair"]).  Under an oracle-mode engine every probe
    succeeds and the pass is a no-op. *)
