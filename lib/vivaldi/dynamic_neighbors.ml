module Rng = Tivaware_util.Rng
module Engine = Tivaware_measure.Engine
module Churn = Tivaware_measure.Churn
module Obs = Tivaware_obs

type schedule = {
  rounds_per_iteration : int;
  iterations : int;
}

let default_schedule = { rounds_per_iteration = 100; iterations = 10 }

(* Rank candidates by prediction ratio and keep the [keep] largest:
   small ratios are shrunk edges, the likely severe-TIV ones. *)
let select_best system node candidates keep =
  let scored =
    List.filter_map
      (fun j ->
        let r = System.prediction_ratio system node j in
        (* Unmeasured candidates are unusable as probing neighbors. *)
        if Float.is_nan r then None else Some (j, r))
      candidates
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (j, _) :: rest -> j :: take (k - 1) rest
  in
  Array.of_list (take keep sorted)

let refresh_neighbors system =
  let n = System.size system in
  let rng = System.rng system in
  for i = 0 to n - 1 do
    let current = System.neighbors system i in
    let want = Array.length current in
    if want > 0 && n > want + 1 then begin
      (* Sample a fresh batch of candidates, excluding self; duplicates
         with the current set collapse naturally via the seen table. *)
      let seen = Hashtbl.create (4 * want) in
      Array.iter (fun j -> Hashtbl.replace seen j ()) current;
      let fresh = ref [] and fresh_count = ref 0 and attempts = ref 0 in
      while !fresh_count < want && !attempts < 20 * want do
        incr attempts;
        let j = Rng.int rng n in
        if j <> i && not (Hashtbl.mem seen j) then begin
          Hashtbl.replace seen j ();
          fresh := j :: !fresh;
          incr fresh_count
        end
      done;
      let pool = Array.to_list current @ !fresh in
      let best = select_best system i pool want in
      if Array.length best = want then System.set_neighbors system i best
    end
  done

let run ?(on_iteration = fun _ _ -> ()) system schedule =
  for k = 1 to schedule.iterations do
    System.run system ~rounds:schedule.rounds_per_iteration;
    refresh_neighbors system;
    on_iteration k system
  done

type repair = {
  evicted : int;
  resampled : int;
}

(* Churn-aware neighbor repair: every live node re-probes its current
   neighbors through the system's engine and drops the ones that answer
   nothing, then samples fresh candidates until the set is full again —
   accepting only candidates that answer a probe.  Every liveness check
   is a real probe (charged, budgeted, accounted under [label]), so
   repair traffic shows up in the measurement plane like any other. *)
let repair_neighbors ?(label = "vivaldi-repair") system =
  let n = System.size system in
  let engine = System.engine system in
  let rng = System.rng system in
  let self_up i =
    match Engine.churn engine with
    | None -> true
    | Some c -> Churn.is_up c i
  in
  let evicted = ref 0 and resampled = ref 0 in
  for i = 0 to n - 1 do
    (* A node that is itself down runs no maintenance. *)
    if self_up i then begin
      let current = System.neighbors system i in
      let want = Array.length current in
      if want > 0 then begin
        let seen = Hashtbl.create (4 * want) in
        Array.iter (fun j -> Hashtbl.replace seen j ()) current;
        let alive =
          List.filter
            (fun j -> not (Float.is_nan (Engine.rtt ~label engine i j)))
            (Array.to_list current)
        in
        evicted := !evicted + (want - List.length alive);
        let fresh = ref [] in
        let missing = ref (want - List.length alive) in
        let attempts = ref 0 in
        while !missing > 0 && !attempts < 20 * want do
          incr attempts;
          let j = Rng.int rng n in
          if j <> i && not (Hashtbl.mem seen j) then begin
            Hashtbl.replace seen j ();
            if not (Float.is_nan (Engine.rtt ~label engine i j)) then begin
              fresh := j :: !fresh;
              incr resampled;
              decr missing
            end
          end
        done;
        let repaired = Array.of_list (alive @ List.rev !fresh) in
        if Array.length repaired > 0 && repaired <> current then
          System.set_neighbors system i repaired
      end
    end
  done;
  let reg = Engine.obs engine in
  let labels = [ ("plane", "vivaldi") ] in
  Obs.Counter.add (Obs.Registry.counter reg ~labels "repair.evicted")
    (float_of_int !evicted);
  Obs.Counter.add (Obs.Registry.counter reg ~labels "repair.resampled")
    (float_of_int !resampled);
  Obs.Registry.trace_event reg ~time:(Engine.now engine) ~label:"repair.vivaldi"
    (Printf.sprintf "evicted=%d resampled=%d" !evicted !resampled);
  { evicted = !evicted; resampled = !resampled }
