module Rng = Tivaware_util.Rng
module Sim = Tivaware_eventsim.Sim
module Matrix = Tivaware_delay_space.Matrix
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault

type config = {
  probe_period : float;
  jitter : float;
}

let default_config = { probe_period = 1.; jitter = 0.1 }

type stats = {
  probes_sent : int;
  probes_completed : int;
}

let run ?(config = default_config) sim system ~duration =
  assert (config.probe_period > 0. && config.jitter >= 0. && config.jitter < 1.);
  let n = System.size system in
  let engine = System.engine system in
  let rng = System.rng system in
  let deadline = Sim.now sim +. duration in
  let sent = ref 0 and completed = ref 0 in
  let next_gap () =
    let j = config.jitter *. config.probe_period in
    Float.max 1e-3 (config.probe_period +. Rng.uniform rng (-.j) j)
  in
  let rec probe_loop node () =
    if Sim.now sim < deadline then begin
      Engine.advance_to engine (Sim.now sim);
      let neighbors = System.neighbors system node in
      if Array.length neighbors > 0 then begin
        let peer = Rng.choice rng neighbors in
        match Engine.probe ~label:"vivaldi" engine node peer with
        | Engine.Rtt rtt | Engine.Cached rtt ->
          incr sent;
          (* The response arrives one RTT later (delays are in ms);
             the jittered sample that timed the response is the one
             applied to the coordinate. *)
          Sim.schedule_after sim (rtt /. 1000.) (fun () ->
              if Sim.now sim <= deadline then begin
                System.observe_rtt system node peer rtt;
                incr completed
              end)
        | Engine.Lost | Engine.Down ->
          (* Sent on the wire, no response ever comes back. *)
          incr sent
        | Engine.Denied | Engine.Unmeasured -> ()
      end;
      Sim.schedule_after sim (next_gap ()) (probe_loop node)
    end
  in
  for node = 0 to n - 1 do
    (* Desynchronized start within the first period. *)
    Sim.schedule_after sim (Rng.float rng config.probe_period) (probe_loop node)
  done;
  Sim.run ~until:deadline sim;
  { probes_sent = !sent; probes_completed = !completed }

type churn = {
  mean_uptime : float;
  mean_downtime : float;
}

let default_churn = { mean_uptime = 60.; mean_downtime = 10. }

type churn_stats = {
  base : stats;
  failures : int;
  rejoins : int;
  probes_lost : int;
}

let alive_fraction_hint c = c.mean_uptime /. (c.mean_uptime +. c.mean_downtime)

let run_with_churn ?(config = default_config) ?(churn = default_churn) sim
    system ~duration =
  assert (churn.mean_uptime > 0. && churn.mean_downtime > 0.);
  let n = System.size system in
  let engine = System.engine system in
  let rng = System.rng system in
  let deadline = Sim.now sim +. duration in
  let alive = Array.make n true in
  let sent = ref 0 and completed = ref 0 in
  let failures = ref 0 and rejoins = ref 0 and lost = ref 0 in
  let next_gap () =
    let j = config.jitter *. config.probe_period in
    Float.max 1e-3 (config.probe_period +. Rng.uniform rng (-.j) j)
  in
  (* Up/down life cycle per node.  Both transitions are mirrored into
     the engine's fault injector: a down node must answer no probes,
     and — just as important — a revived node must answer them again,
     otherwise the measurement plane slowly silences the whole
     population while the protocol believes its peers rejoined. *)
  let rec go_down node () =
    if Sim.now sim < deadline then begin
      alive.(node) <- false;
      Fault.set_down (Engine.fault engine) node true;
      incr failures;
      Sim.schedule_after sim
        (Rng.exponential rng ~rate:(1. /. churn.mean_downtime))
        (come_up node)
    end
  and come_up node () =
    if Sim.now sim < deadline then begin
      alive.(node) <- true;
      Fault.set_down (Engine.fault engine) node false;
      incr rejoins;
      (* State lost while down: restart from a fresh coordinate. *)
      System.reset_node system node;
      Sim.schedule_after sim
        (Rng.exponential rng ~rate:(1. /. churn.mean_uptime))
        (go_down node)
    end
  in
  let rec probe_loop node () =
    if Sim.now sim < deadline then begin
      Engine.advance_to engine (Sim.now sim);
      if alive.(node) then begin
        let neighbors = System.neighbors system node in
        if Array.length neighbors > 0 then begin
          let peer = Rng.choice rng neighbors in
          match Engine.probe ~label:"vivaldi" engine node peer with
          | Engine.Rtt rtt | Engine.Cached rtt ->
            incr sent;
            if not alive.(peer) then incr lost
            else
              Sim.schedule_after sim (rtt /. 1000.) (fun () ->
                  (* Both ends must still be up when the response lands. *)
                  if Sim.now sim <= deadline && alive.(node) && alive.(peer)
                  then begin
                    System.observe_rtt system node peer rtt;
                    incr completed
                  end
                  else incr lost)
          | Engine.Lost | Engine.Down ->
            (* Dropped on the wire — by loss, or because the peer's
               outage is mirrored into the injector. *)
            incr sent;
            incr lost
          | Engine.Denied | Engine.Unmeasured -> ()
        end
      end;
      Sim.schedule_after sim (next_gap ()) (probe_loop node)
    end
  in
  for node = 0 to n - 1 do
    Sim.schedule_after sim (Rng.float rng config.probe_period) (probe_loop node);
    Sim.schedule_after sim
      (Rng.exponential rng ~rate:(1. /. churn.mean_uptime))
      (go_down node)
  done;
  Sim.run ~until:deadline sim;
  {
    base = { probes_sent = !sent; probes_completed = !completed };
    failures = !failures;
    rejoins = !rejoins;
    probes_lost = !lost;
  }
