(** The Vivaldi decentralized network coordinate system (Dabek, Cox,
    Kaashoek, Morris — SIGCOMM 2004), as used throughout the paper.

    Each node holds a coordinate in a low-dimensional Euclidean space
    and a local error estimate.  Whenever a node measures the delay to a
    neighbor it moves along the spring force
    [(rtt - ||xi - xj||) * u(xi - xj)], with an adaptive timestep that
    weights confident neighbors more.  The paper embeds into 5-D
    Euclidean space with 32 random probing neighbors per node. *)

type timestep =
  | Constant of float  (** fixed delta, the original simple rule *)
  | Adaptive of { cc : float; ce : float }
      (** Dabek et al.'s adaptive rule; [cc]=[ce]=0.25 recommended *)

type config = {
  dim : int;  (** embedding dimension (paper: 5) *)
  timestep : timestep;
  neighbors_per_node : int;  (** paper: 32 random neighbors *)
  height : bool;
      (** height-vector model (Dabek et al.): each node carries a
          non-negative height [h] modelling its access link, and the
          predicted delay becomes [||x_i - x_j|| + h_i + h_j].  The
          paper's experiments use plain Euclidean coordinates
          ([height = false]); the variant is provided for ablations. *)
}

val default_config : config
(** 5-D, adaptive (0.25, 0.25), 32 neighbors, no height. *)

type t

val create : ?config:config -> Tivaware_util.Rng.t -> Tivaware_delay_space.Matrix.t -> t
(** Fresh system over the delay matrix: random small initial
    coordinates, random neighbor sets (the system keeps its own
    sub-generator; the passed one is advanced once).  Measurements go
    through a default (oracle-mode) {!Tivaware_measure.Engine}, so the
    behavior is exactly the idealized model. *)

val create_with_engine :
  ?config:config -> Tivaware_util.Rng.t -> Tivaware_measure.Engine.t -> t
(** As {!create}, but every observation probes through the given
    engine: loss and budget denial skip the update, jitter perturbs
    the sample.  Ground truth for {!prediction_ratio} and the error
    statistics is the engine's delay backend
    ({!Tivaware_backend.Delay_backend.of_engine}), so any engine works
    — a matrix-backed one behaves exactly as before, and a lazy
    backend scales the system past dense-matrix sizes. *)

val config : t -> config
val size : t -> int

val matrix : t -> Tivaware_delay_space.Matrix.t
(** The dense ground-truth matrix.  Raises [Invalid_argument] when the
    system runs over a non-dense backend — use {!backend} (and the
    sampled error statistics) there. *)

val backend : t -> Tivaware_backend.Delay_backend.t
(** The ground-truth delay backend evaluation reads. *)

val engine : t -> Tivaware_measure.Engine.t
(** The measurement plane observations go through ({!create} installs
    an oracle-mode engine; its {!Tivaware_measure.Probe_stats} still
    account every probe). *)

val rng : t -> Tivaware_util.Rng.t
(** The system's private generator, for components (dynamic neighbor
    refresh, experiment drivers) that must stay deterministic with it. *)

val coord : t -> int -> Tivaware_util.Vec.t
(** The node's current coordinate (a copy). *)

val error_estimate : t -> int -> float
(** The node's current local error estimate in [0, ...]. *)

val predicted : t -> int -> int -> float
(** Euclidean distance between current coordinates. *)

val prediction_ratio : t -> int -> int -> float
(** [predicted /. measured]; [nan] when the measurement is missing. *)

val neighbors : t -> int -> int array
(** Current probing neighbor set (a copy). *)

val set_neighbors : t -> int -> int array -> unit
(** Replaces a node's probing neighbors (used by dynamic-neighbor
    Vivaldi).  Self-loops are rejected with [Invalid_argument]. *)

val neighbor_edges : t -> (int * int) list
(** All (node, neighbor) pairs, normalized to [i < j], deduplicated. *)

val observe : t -> int -> int -> unit
(** [observe t i j]: node [i] probes its delay to [j] through the
    engine and updates its coordinate (and error estimate).  No-op when
    the probe fails (missing measurement, loss, outage, budget
    denial). *)

val observe_rtt : t -> int -> int -> float -> unit
(** [observe_rtt t i j rtt] applies an already-measured sample (the
    event-driven protocol probes the engine itself so the same sample
    that timed the response updates the coordinate).  No-op on
    [nan]. *)

val reset_node : t -> int -> unit
(** Re-initializes one node's coordinate (small random position, error
    estimate back to 1) — what a node does when it rejoins after a
    failure and has lost its state. *)

val round : t -> unit
(** One simulation round: every node, in random order, probes one
    random neighbor.  The engine clock advances by at least one virtual
    second; with a time-charging engine ([charge_time = true]) a round
    whose probes cost more than a second takes what they cost, so
    {!Tivaware_measure.Engine.now} reads the measurement-aware
    convergence time. *)

val run : t -> rounds:int -> unit

val rounds_elapsed : t -> int

val movement : t -> Tivaware_util.Welford.t
(** Distribution of per-update coordinate displacements (ms per step),
    matching the paper's "movement speed" statistic. *)

val reset_movement : t -> unit

val absolute_errors : t -> float array
(** |predicted - measured| over all present edges at the current
    state.  Dense systems only (it iterates the full matrix); raises
    [Invalid_argument] otherwise — see {!sampled_absolute_errors}. *)

val relative_errors : t -> float array
(** |predicted - measured| / measured over all present edges.  Dense
    systems only, as {!absolute_errors}. *)

val sampled_absolute_errors :
  t -> Tivaware_util.Rng.t -> pairs:int -> float array
(** |predicted - measured| over [pairs] uniformly sampled off-diagonal
    pairs (missing measurements skipped) — the estimator that works on
    any backend, including lazy spaces too large to enumerate. *)

val sampled_relative_errors :
  t -> Tivaware_util.Rng.t -> pairs:int -> float array
(** As {!sampled_absolute_errors}, relative to the measured delay. *)

val predictor : t -> int -> int -> float
(** {!predicted} partially applied — the shape selection policies and
    the TIV alert take as their prediction source. *)
