(** Event-driven Vivaldi over the discrete-event simulator.

    {!System.run} advances the embedding in synchronous rounds; this
    module instead runs Vivaldi the way a deployment does: every node
    independently probes one random neighbor every [probe_period]
    seconds (with per-probe jitter so nodes desynchronize), and the
    coordinate update is applied when the probe {e response} arrives —
    one RTT after it was sent — so updates interleave in continuous
    virtual time and act on coordinates that may have moved since the
    probe left.

    The paper's experiments use the synchronous driver; this module
    supports stability studies (cf. "network coordinates in the wild")
    and exercises the simulator against a second protocol. *)

type config = {
  probe_period : float;  (** mean seconds between a node's probes (default 1) *)
  jitter : float;  (** uniform fraction of the period (default 0.1) *)
}

val default_config : config

type stats = {
  probes_sent : int;
  probes_completed : int;  (** responses applied before the deadline *)
}

val run :
  ?config:config ->
  Tivaware_eventsim.Sim.t ->
  System.t ->
  duration:float ->
  stats
(** [run sim system ~duration] schedules every node's probe loop and
    runs the simulator for [duration] virtual seconds (RTTs from the
    system's delay matrix are in milliseconds and converted).  The
    simulator clock advances by [duration]; calling again continues
    the protocol.

    Probes go through the system's measurement-plane engine, whose
    logical clock is kept in sync with the simulator: a probe the
    engine drops ([Lost]/[Down]) counts as sent but never completes; a
    budget-denied or unmeasurable probe is not sent at all. *)

(** {2 Churn}

    Deployment studies ("network coordinates in the wild") observe that
    Vivaldi must cope with nodes failing and rejoining.  The churned
    run gives every node an exponential up-time and down-time: while
    down, it sends no probes and answers none (probes to it are lost);
    on rejoin it has lost its coordinate state and restarts from a
    fresh position ({!System.reset_node}). *)

type churn = {
  mean_uptime : float;  (** seconds; exponential (default 60) *)
  mean_downtime : float;  (** seconds; exponential (default 10) *)
}

val default_churn : churn

type churn_stats = {
  base : stats;
  failures : int;  (** down transitions *)
  rejoins : int;
  probes_lost : int;  (** probes sent to (or by) a node that went down *)
}

val run_with_churn :
  ?config:config ->
  ?churn:churn ->
  Tivaware_eventsim.Sim.t ->
  System.t ->
  duration:float ->
  churn_stats
(** As {!run}, with every node cycling through up/down periods.  All
    nodes start up.  Each transition is mirrored into the engine's
    fault injector ({!Tivaware_measure.Fault.set_down}): probes to a
    down peer come back [Down], and a revived node answers probes again
    the instant it rejoins. *)

val alive_fraction_hint : churn -> float
(** Steady-state expected fraction of nodes up:
    [mean_uptime / (mean_uptime + mean_downtime)]. *)
