module Rng = Tivaware_util.Rng
module Vec = Tivaware_util.Vec
module Welford = Tivaware_util.Welford
module Matrix = Tivaware_delay_space.Matrix
module Engine = Tivaware_measure.Engine
module Backend = Tivaware_backend.Delay_backend

type timestep =
  | Constant of float
  | Adaptive of { cc : float; ce : float }

type config = {
  dim : int;
  timestep : timestep;
  neighbors_per_node : int;
  height : bool;
}

let default_config =
  {
    dim = 5;
    timestep = Adaptive { cc = 0.25; ce = 0.25 };
    neighbors_per_node = 32;
    height = false;
  }

let min_height = 0.1

type t = {
  config : config;
  backend : Backend.t;  (* ground truth, for evaluation only *)
  engine : Engine.t;  (* every observation probes through here *)
  rng : Rng.t;
  coords : Vec.t array;
  errors : float array;
  neighbor_sets : int array array;
  mutable movement : Welford.t;
  mutable rounds : int;
}

let random_neighbors rng n self count =
  let want = min count (n - 1) in
  let picks = Rng.sample_indices rng ~n:(n - 1) ~k:want in
  (* Indices in [0, n-1) skipping self. *)
  Array.map (fun p -> if p >= self then p + 1 else p) picks

let create_with_engine ?(config = default_config) rng engine =
  let backend = Backend.of_engine engine in
  let n = Backend.size backend in
  assert (n >= 2);
  let rng = Rng.split rng in
  (* With heights the coordinate array carries one extra slot (the
     height, kept >= min_height). *)
  let storage_dim = config.dim + if config.height then 1 else 0 in
  let initial _ =
    let v = Array.init storage_dim (fun _ -> Rng.uniform rng (-1.) 1.) in
    if config.height then v.(config.dim) <- Rng.uniform rng min_height 1.;
    v
  in
  {
    config;
    backend;
    engine;
    rng;
    (* Small random initial coordinates break symmetry without starting
       far from the origin. *)
    coords = Array.init n initial;
    errors = Array.make n 1.;
    neighbor_sets =
      Array.init n (fun i -> random_neighbors rng n i config.neighbors_per_node);
    movement = Welford.create ();
    rounds = 0;
  }

let create ?config rng matrix =
  create_with_engine ?config rng (Engine.of_matrix matrix)

let config t = t.config
let size t = Array.length t.coords
let backend t = t.backend

let matrix t =
  match Backend.matrix t.backend with
  | Some m -> m
  | None -> invalid_arg "System.matrix: not a dense (matrix-backed) system"

let engine t = t.engine
let rng t = t.rng
let coord t i = Vec.copy t.coords.(i)
let error_estimate t i = t.errors.(i)

(* Distance over the euclidean part only (ignores the height slot). *)
let euclidean_part_dist t xi xj =
  let acc = ref 0. in
  for d = 0 to t.config.dim - 1 do
    let diff = xi.(d) -. xj.(d) in
    acc := !acc +. (diff *. diff)
  done;
  sqrt !acc

let distance t xi xj =
  if t.config.height then
    euclidean_part_dist t xi xj +. xi.(t.config.dim) +. xj.(t.config.dim)
  else Vec.dist xi xj

let predicted t i j = distance t t.coords.(i) t.coords.(j)

let prediction_ratio t i j =
  let d = Backend.query t.backend i j in
  if Float.is_nan d || d < 1e-9 then nan else predicted t i j /. d

let neighbors t i = Array.copy t.neighbor_sets.(i)

let set_neighbors t i ns =
  if Array.exists (fun j -> j = i) ns then
    invalid_arg "System.set_neighbors: self-loop";
  t.neighbor_sets.(i) <- Array.copy ns

let neighbor_edges t =
  let seen = Hashtbl.create 1024 in
  Array.iteri
    (fun i ns ->
      Array.iter
        (fun j ->
          let key = if i < j then (i, j) else (j, i) in
          Hashtbl.replace seen key ())
        ns)
    t.neighbor_sets;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

let observe_rtt t i j rtt =
  if not (Float.is_nan rtt) then begin
    let xi = t.coords.(i) and xj = t.coords.(j) in
    let dim = t.config.dim in
    let dist = distance t xi xj in
    let delta =
      match t.config.timestep with
      | Constant d -> d
      | Adaptive { cc; ce } ->
        let ei = t.errors.(i) and ej = t.errors.(j) in
        let w = if ei +. ej < 1e-12 then 0.5 else ei /. (ei +. ej) in
        (* Update the local error estimate with the sample error. *)
        let sample_error = if rtt < 1e-9 then 0. else abs_float (dist -. rtt) /. rtt in
        t.errors.(i) <- (sample_error *. ce *. w) +. (t.errors.(i) *. (1. -. (ce *. w)));
        cc *. w
    in
    let force = delta *. (rtt -. dist) in
    (* Euclidean part: move along the unit vector from j toward i. *)
    let eu = euclidean_part_dist t xi xj in
    let moved = ref 0. in
    if eu > 1e-12 then
      for d = 0 to dim - 1 do
        let u = (xi.(d) -. xj.(d)) /. eu in
        let step = force *. u in
        xi.(d) <- xi.(d) +. step;
        moved := !moved +. (step *. step)
      done
    else begin
      let u = Vec.random_unit t.rng dim in
      for d = 0 to dim - 1 do
        let step = force *. u.(d) in
        xi.(d) <- xi.(d) +. step;
        moved := !moved +. (step *. step)
      done
    end;
    (* Height part: the [x, h] unit vector's height component is
       (h_i + h_j) / dist (Dabek et al.), with the height floored. *)
    if t.config.height && dist > 1e-12 then begin
      let h_component = (xi.(dim) +. xj.(dim)) /. dist in
      let old_h = xi.(dim) in
      xi.(dim) <- Float.max min_height (xi.(dim) +. (force *. h_component));
      let dh = xi.(dim) -. old_h in
      moved := !moved +. (dh *. dh)
    end;
    Welford.add t.movement (sqrt !moved)
  end

let observe t i j = observe_rtt t i j (Engine.rtt ~label:"vivaldi" t.engine i j)

let reset_node t i =
  let storage_dim = t.config.dim + if t.config.height then 1 else 0 in
  let v = Array.init storage_dim (fun _ -> Rng.uniform t.rng (-1.) 1.) in
  if t.config.height then v.(t.config.dim) <- Rng.uniform t.rng min_height 1.;
  t.coords.(i) <- v;
  t.errors.(i) <- 1.

let round t =
  let n = size t in
  let started = Engine.now t.engine in
  let order = Rng.permutation t.rng n in
  Array.iter
    (fun i ->
      let ns = t.neighbor_sets.(i) in
      if Array.length ns > 0 then observe t i (Rng.choice t.rng ns))
    order;
  (* One synchronous round lasts at least one virtual second of
     measurement-plane time (budget refill, cache aging).  With a
     time-charging engine the probes themselves advance the clock, and
     a round whose measurements cost more than a second takes exactly
     what they cost — convergence time becomes measurement-aware. *)
  let elapsed = Engine.now t.engine -. started in
  if elapsed < 1. then Engine.advance t.engine (1. -. elapsed);
  t.rounds <- t.rounds + 1

let run t ~rounds =
  for _ = 1 to rounds do
    round t
  done

let rounds_elapsed t = t.rounds

let movement t = t.movement

let reset_movement t = t.movement <- Welford.create ()

let absolute_errors t =
  let out = ref [] in
  Matrix.iter_edges (matrix t) (fun i j d ->
      out := abs_float (predicted t i j -. d) :: !out);
  Array.of_list !out

let relative_errors t =
  let out = ref [] in
  Matrix.iter_edges (matrix t) (fun i j d ->
      if d > 1e-9 then out := (abs_float (predicted t i j -. d) /. d) :: !out);
  Array.of_list !out

(* Sampled counterparts for backends where iterating every pair is off
   the table (a 100k-node lazy space has 5e9 pairs). *)
let sampled_errors t rng ~pairs =
  let n = size t in
  let abs_out = ref [] and rel_out = ref [] in
  for _ = 1 to pairs do
    let i = Rng.int rng n in
    let j =
      let p = Rng.int rng (n - 1) in
      if p >= i then p + 1 else p
    in
    let d = Backend.query t.backend i j in
    if not (Float.is_nan d) then begin
      let err = abs_float (predicted t i j -. d) in
      abs_out := err :: !abs_out;
      if d > 1e-9 then rel_out := (err /. d) :: !rel_out
    end
  done;
  (Array.of_list !abs_out, Array.of_list !rel_out)

let sampled_absolute_errors t rng ~pairs = fst (sampled_errors t rng ~pairs)
let sampled_relative_errors t rng ~pairs = snd (sampled_errors t rng ~pairs)

let predictor t = predicted t
