(** Minimal JSON values, zero dependencies.

    Just enough for run summaries and bench baselines: a value type,
    a deterministic printer, and a strict recursive-descent parser.
    Numbers are split into [Int] (emitted without a decimal point) and
    [Float]; floats print with 6 significant digits, which both absorbs
    last-ulp libm drift across machines and guarantees decimal
    round-trip stability ([of_string (to_string v)] re-prints
    identically). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val number : float -> t
(** [Float f], except non-finite values become [Null] (JSON has no
    NaN/infinity) and integral values in the exactly-representable
    range become [Int]. *)

val to_string : ?indent:bool -> t -> string
(** Deterministic serialization: object fields are emitted in the order
    given (build them sorted for stable output).  [indent] pretty-prints
    with two-space indentation (default [true]). *)

val of_string : string -> t
(** Strict parse of a single JSON value (surrounding whitespace
    allowed).  Raises [Failure] with a byte offset on malformed
    input.  Numbers parse as [Int] when they carry no fraction or
    exponent and fit in an OCaml [int], as [Float] otherwise. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other values or a missing key. *)

val to_float : t -> float option
(** Numeric view of [Int] or [Float]. *)
