(** A monotone counter.

    Holds a float so time totals (charged milliseconds) and event
    counts share one primitive; {!value} is integral whenever only
    {!incr} was used. *)

type t

val create : unit -> t
(** Starts at 0. *)

val incr : t -> unit
(** Add one. *)

val add : t -> float -> unit
(** Add a non-negative finite amount.  Raises [Invalid_argument] on a
    negative or non-finite delta — counters only go up. *)

val value : t -> float
