type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

type t = {
  table : (string, metric) Hashtbl.t;
  trace : Trace.t;
  (* Guards the table's *structure* (find-or-create, import, traversal)
     against concurrent registration from several domains.  It does NOT
     make the instruments atomic — see the domain-safety rule in the
     interface: one registry per domain, merged with [Merge] at the
     end. *)
  lock : Mutex.t;
}

let create ?trace_capacity () =
  {
    table = Hashtbl.create 64;
    trace = Trace.create ?capacity:trace_capacity ();
    lock = Mutex.create ();
  }

let series_name name labels =
  match labels with
  | [] -> name
  | labels ->
    let sorted =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) sorted)
    ^ "}"

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_or_create t name labels ~kind ~make =
  let key = series_name name labels in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some m -> m
      | None ->
        ignore kind;
        let m = make () in
        Hashtbl.replace t.table key m;
        m)

let mismatch key existing wanted =
  invalid_arg
    (Printf.sprintf "Registry: %s is already registered as a %s, not a %s" key
       (kind_name existing) wanted)

let counter t ?(labels = []) name =
  match
    find_or_create t name labels ~kind:"counter" ~make:(fun () ->
        Counter (Counter.create ()))
  with
  | Counter c -> c
  | other -> mismatch (series_name name labels) other "counter"

let gauge t ?(labels = []) name =
  match
    find_or_create t name labels ~kind:"gauge" ~make:(fun () ->
        Gauge (Gauge.create ()))
  with
  | Gauge g -> g
  | other -> mismatch (series_name name labels) other "gauge"

let histogram t ?(labels = []) ~edges name =
  match
    find_or_create t name labels ~kind:"histogram" ~make:(fun () ->
        Histogram (Histogram.create ~edges))
  with
  | Histogram h ->
    if Histogram.edges h <> edges then
      invalid_arg
        (Printf.sprintf
           "Registry: histogram %s is already registered with different bucket \
            edges"
           (series_name name labels));
    h
  | other -> mismatch (series_name name labels) other "histogram"

let import t key metric =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> Hashtbl.replace t.table key metric
      | Some existing ->
        if kind_name existing <> kind_name metric then
          mismatch key existing (kind_name metric)
        else
          invalid_arg
            (Printf.sprintf "Registry.import: %s is already registered" key))

let trace t = t.trace
let trace_event t ~time ~label message = Trace.record t.trace ~time ~label message

let metrics t =
  with_lock t (fun () -> Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
