type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

type t = {
  table : (string, metric) Hashtbl.t;
  trace : Trace.t;
}

let create ?trace_capacity () =
  { table = Hashtbl.create 64; trace = Trace.create ?capacity:trace_capacity () }

let series_name name labels =
  match labels with
  | [] -> name
  | labels ->
    let sorted =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) sorted)
    ^ "}"

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create t name labels ~kind ~make =
  let key = series_name name labels in
  match Hashtbl.find_opt t.table key with
  | Some m -> m
  | None ->
    ignore kind;
    let m = make () in
    Hashtbl.replace t.table key m;
    m

let mismatch key existing wanted =
  invalid_arg
    (Printf.sprintf "Registry: %s is already registered as a %s, not a %s" key
       (kind_name existing) wanted)

let counter t ?(labels = []) name =
  match
    find_or_create t name labels ~kind:"counter" ~make:(fun () ->
        Counter (Counter.create ()))
  with
  | Counter c -> c
  | other -> mismatch (series_name name labels) other "counter"

let gauge t ?(labels = []) name =
  match
    find_or_create t name labels ~kind:"gauge" ~make:(fun () ->
        Gauge (Gauge.create ()))
  with
  | Gauge g -> g
  | other -> mismatch (series_name name labels) other "gauge"

let histogram t ?(labels = []) ~edges name =
  match
    find_or_create t name labels ~kind:"histogram" ~make:(fun () ->
        Histogram (Histogram.create ~edges))
  with
  | Histogram h ->
    if Histogram.edges h <> edges then
      invalid_arg
        (Printf.sprintf
           "Registry: histogram %s is already registered with different bucket \
            edges"
           (series_name name labels));
    h
  | other -> mismatch (series_name name labels) other "histogram"

let trace t = t.trace
let trace_event t ~time ~label message = Trace.record t.trace ~time ~label message

let metrics t =
  Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
