type t = { mutable v : float }

let create () = { v = 0. }
let incr t = t.v <- t.v +. 1.

let add t d =
  if not (Float.is_finite d) || d < 0. then
    invalid_arg (Printf.sprintf "Counter.add: delta must be finite and >= 0 (got %g)" d);
  t.v <- t.v +. d

let value t = t.v
