type t = {
  edges : float array;
  counts : int array;  (* length = edges + 1; last is overflow *)
  mutable count : int;
  mutable dropped : int;
  mutable sum : float;
}

let create ~edges =
  let n = Array.length edges in
  if n = 0 then invalid_arg "Histogram.create: no bucket edges";
  Array.iteri
    (fun i e ->
      if not (Float.is_finite e) then
        invalid_arg "Histogram.create: edges must be finite";
      if i > 0 && edges.(i - 1) >= e then
        invalid_arg "Histogram.create: edges must be strictly increasing")
    edges;
  {
    edges = Array.copy edges;
    counts = Array.make (n + 1) 0;
    count = 0;
    dropped = 0;
    sum = 0.;
  }

(* First bucket whose upper edge is >= v; [Array.length edges] when v
   exceeds every edge (the overflow bucket). *)
let bucket_of t v =
  let n = Array.length t.edges in
  if v <= t.edges.(0) then 0
  else if v > t.edges.(n - 1) then n
  else begin
    (* Invariant: edges.(lo) < v <= edges.(hi). *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= t.edges.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let observe t v =
  if Float.is_nan v then t.dropped <- t.dropped + 1
  else begin
    let b = bucket_of t v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.count <- t.count + 1;
    (* Keep the sum finite even for infinite observations. *)
    if Float.is_finite v then t.sum <- t.sum +. v
  end

let count t = t.count
let dropped t = t.dropped
let sum t = t.sum
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let edges t = Array.copy t.edges
let counts t = Array.copy t.counts
