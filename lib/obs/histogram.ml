type t = {
  edges : float array;
  counts : int array;  (* length = edges + 1; last is overflow *)
  mutable count : int;
  mutable dropped : int;
  mutable sum : float;
}

let create ~edges =
  let n = Array.length edges in
  if n = 0 then invalid_arg "Histogram.create: no bucket edges";
  Array.iteri
    (fun i e ->
      if not (Float.is_finite e) then
        invalid_arg "Histogram.create: edges must be finite";
      if i > 0 && edges.(i - 1) >= e then
        invalid_arg "Histogram.create: edges must be strictly increasing")
    edges;
  {
    edges = Array.copy edges;
    counts = Array.make (n + 1) 0;
    count = 0;
    dropped = 0;
    sum = 0.;
  }

(* First bucket whose upper edge is >= v; [Array.length edges] when v
   exceeds every edge (the overflow bucket). *)
let bucket_of t v =
  let n = Array.length t.edges in
  if v <= t.edges.(0) then 0
  else if v > t.edges.(n - 1) then n
  else begin
    (* Invariant: edges.(lo) < v <= edges.(hi). *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= t.edges.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let observe t v =
  if Float.is_nan v then t.dropped <- t.dropped + 1
  else begin
    let b = bucket_of t v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.count <- t.count + 1;
    (* Keep the sum finite even for infinite observations. *)
    if Float.is_finite v then t.sum <- t.sum +. v
  end

let count t = t.count
let dropped t = t.dropped

(* Rank-based estimate with linear interpolation inside the bucket:
   the rank q * count is located in the cumulative counts, and the
   bucket's mass is assumed uniformly spread over (lower, upper].
   The first bucket's lower bound is min(0, first edge) — edges are
   positive in practice and observations non-negative; the overflow
   bucket has no upper bound, so it reports the last finite edge (a
   lower bound on the true quantile). *)
let quantile t q =
  if not (Float.is_finite q) || q < 0. || q > 1. then
    invalid_arg "Histogram.quantile: q must be in [0, 1]";
  if t.count = 0 then nan
  else begin
    let n = Array.length t.edges in
    let rank = q *. float_of_int t.count in
    let rec locate b cum =
      if b > n then t.edges.(n - 1) (* unreachable: cum reaches count *)
      else begin
        let cum' = cum + t.counts.(b) in
        if float_of_int cum' >= rank && t.counts.(b) > 0 then begin
          if b = n then (* overflow: no upper edge to interpolate to *)
            t.edges.(n - 1)
          else begin
            let lo = if b = 0 then Float.min 0. t.edges.(0) else t.edges.(b - 1) in
            let hi = t.edges.(b) in
            let inside = (rank -. float_of_int cum) /. float_of_int t.counts.(b) in
            lo +. ((hi -. lo) *. Float.max 0. (Float.min 1. inside))
          end
        end
        else locate (b + 1) cum'
      end
    in
    locate 0 0
  end
let sum t = t.sum
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let edges t = Array.copy t.edges
let counts t = Array.copy t.counts

(* Bucket-wise merge: the histogram of the union of both observation
   streams.  Quantiles of the merge are exactly what a single histogram
   over all observations would report, because the estimate only reads
   the bucket counts. *)
let merge a b =
  if a.edges <> b.edges then
    invalid_arg "Histogram.merge: bucket edges differ";
  let m = create ~edges:a.edges in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.count <- a.count + b.count;
  m.dropped <- a.dropped + b.dropped;
  m.sum <- a.sum +. b.sum;
  m
