(** JSON run summaries of a {!Registry}.

    The summary is the machine-readable face of a run: every counter,
    gauge and histogram (sorted by series name, so output is
    deterministic) plus the trace ring, under a versioned schema tag.
    Counters that only ever saw integral increments serialize as JSON
    integers; all floats print with 6 significant digits
    ({!Json.to_string}), which keeps fixtures stable across machines.

    Layout:
    {v
    { "schema": "tivaware.obs/1",
      "clock": 37.5,
      "counters":   { "measure.probes.sent{plane=vivaldi}": 4800, ... },
      "gauges":     { "alert.precision": 0.84, ... },
      "histograms": { "measure.rtt_ms":
                        { "count": 4800, "sum": 211000.0, "mean": 43.9,
                          "p50": 38.2, "p99": 187.0,
                          "dropped": 0,
                          "buckets": [ {"le": 10.0, "count": 12}, ...,
                                       {"le": "+inf", "count": 3} ] } },
      "trace":      [ {"t": 50.0, "label": "repair.vivaldi",
                       "event": "evicted=3 resampled=3"}, ... ],
      "trace_dropped": 0 }
    v}

    [p50]/[p99] are {!Histogram.quantile} estimates (bucket-linear
    interpolation); [mean], [p50] and [p99] are [null] for an empty
    histogram. *)

val to_json : ?clock:float -> Registry.t -> Json.t
(** [clock] stamps the run's logical end time (the engine clock);
    omitted when absent. *)

val to_string : ?clock:float -> Registry.t -> string
(** [Json.to_string] of {!to_json} (indented), plus a trailing
    newline. *)

val write : ?clock:float -> Registry.t -> string -> unit
(** Write {!to_string} to a file path. *)
