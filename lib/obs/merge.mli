(** Merging per-domain registries into one deterministic summary.

    The service harness ([Tivaware_service]) runs one engine — and so
    one metric registry — per domain, because instruments are plain
    mutable cells (see the domain-safety rule in {!Registry}).  After
    the domains join, this module combines their registries into a
    single registry whose {!Summary} is {e independent of domain
    order}: the merge folds over series keys, and each per-key
    combination is commutative and associative. *)

val registries : Registry.t list -> Registry.t
(** [registries rs] is a fresh registry combining every series of
    every input:

    - {b counters} add — each domain counted disjoint events, the
      merged counter is the fleet total;
    - {b histograms} merge bucket-wise, so a post-merge
      {!Histogram.quantile} equals the quantile of one histogram fed
      every domain's observations;
    - {b gauges} take the maximum across inputs (a gauge is a level —
      the merged value reads as "worst/highest across domains");
    - {b traces} concatenate, sorted by (time, label, message), into a
      ring sized to the sum of the input capacities (no merge-time
      drops).

    The inputs are deep-copied: mutating them afterwards does not
    alias into the result.  Raises [Invalid_argument] when one series
    key is registered under different metric kinds across inputs, or
    under histograms with different bucket edges — a schema bug the
    shape guard refuses to average away.  [registries [r]] preserves
    [r]'s series exactly, so a single-domain merged summary is
    byte-identical to the unmerged one. *)
