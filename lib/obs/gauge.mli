(** A gauge: a float that can move in both directions (last-write
    wins).  Non-finite values are rejected so summaries never carry
    NaN. *)

type t

val create : unit -> t
(** Starts at 0. *)

val set : t -> float -> unit
(** Raises [Invalid_argument] on a non-finite value. *)

val add : t -> float -> unit
(** Signed adjustment; raises [Invalid_argument] on a non-finite
    delta. *)

val value : t -> float
