(** A bounded ring of trace events.

    Events carry the emitting plane's label and a timestamp on whatever
    clock the caller runs (the measurement-plane engine clock
    throughout this repo, so event-driven traces line up with charged
    probe time).  When the ring is full the oldest event is dropped and
    counted, so a long run keeps its recent history without unbounded
    memory. *)

type event = {
  time : float;
  label : string;
  message : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256.  Raises [Invalid_argument] when
    [capacity < 1]. *)

val record : t -> time:float -> label:string -> string -> unit
val events : t -> event list
(** Oldest first. *)

val length : t -> int
val dropped : t -> int
(** Events displaced by the capacity bound. *)

val capacity : t -> int
