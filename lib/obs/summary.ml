let schema = "tivaware.obs/1"

let histogram_json h =
  let edges = Histogram.edges h in
  let counts = Histogram.counts h in
  let buckets =
    List.init (Array.length counts) (fun i ->
        let le =
          if i < Array.length edges then Json.number edges.(i)
          else Json.String "+inf"
        in
        Json.Obj [ ("le", le); ("count", Json.Int counts.(i)) ])
  in
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("sum", Json.number (Histogram.sum h));
      ( "mean",
        if Histogram.count h = 0 then Json.Null
        else Json.number (Histogram.mean h) );
      ( "p50",
        if Histogram.count h = 0 then Json.Null
        else Json.number (Histogram.quantile h 0.5) );
      ( "p99",
        if Histogram.count h = 0 then Json.Null
        else Json.number (Histogram.quantile h 0.99) );
      ("dropped", Json.Int (Histogram.dropped h));
      ("buckets", Json.List buckets);
    ]

let to_json ?clock registry =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (key, metric) ->
      match metric with
      | Registry.Counter c ->
        counters := (key, Json.number (Counter.value c)) :: !counters
      | Registry.Gauge g ->
        gauges := (key, Json.number (Gauge.value g)) :: !gauges
      | Registry.Histogram h -> histograms := (key, histogram_json h) :: !histograms)
    (Registry.metrics registry);
  let trace = Registry.trace registry in
  let events =
    List.map
      (fun e ->
        Json.Obj
          [
            ("t", Json.number e.Trace.time);
            ("label", Json.String e.Trace.label);
            ("event", Json.String e.Trace.message);
          ])
      (Trace.events trace)
  in
  Json.Obj
    (("schema", Json.String schema)
     ::
     (match clock with
     | None -> []
     | Some c -> [ ("clock", Json.number c) ])
    @ [
        ("counters", Json.Obj (List.rev !counters));
        ("gauges", Json.Obj (List.rev !gauges));
        ("histograms", Json.Obj (List.rev !histograms));
        ("trace", Json.List events);
        ("trace_dropped", Json.Int (Trace.dropped trace));
      ])

let to_string ?clock registry = Json.to_string (to_json ?clock registry) ^ "\n"

let write ?clock registry path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?clock registry))
