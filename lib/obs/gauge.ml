type t = { mutable v : float }

let create () = { v = 0. }

let set t x =
  if not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "Gauge.set: value must be finite (got %g)" x);
  t.v <- x

let add t d =
  if not (Float.is_finite d) then
    invalid_arg (Printf.sprintf "Gauge.add: delta must be finite (got %g)" d);
  t.v <- t.v +. d

let value t = t.v
