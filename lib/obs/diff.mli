(** Structural comparison of metric summaries ({!Summary} JSON).

    Two jobs share this module: the CI metrics gate (does a fresh
    summary still match its committed fixture, within tolerance?) and
    the [tivlab metrics-diff] subcommand (what changed between two
    runs, series by series?). *)

val default_tolerance : float
(** Relative tolerance for numeric equality, 0.02 — seeded runs are
    bit-deterministic in probe counts, but derived means can drift
    across libm versions. *)

val strip_trace : Json.t -> Json.t
(** Drops the [trace] and [trace_dropped] fields of a summary object —
    event wording is documentation, not contract. *)

val structural : ?tol:float -> Json.t -> Json.t -> (string * string) list
(** [structural expected actual] compares two JSON documents key by
    key: both must carry the same keys (one appearing or disappearing
    fails either way), strings and booleans must match exactly, and
    numbers must agree within the relative tolerance [tol] (default
    {!default_tolerance}).  Returns the mismatches as
    [(json-path, message)] pairs, in document order; empty = match. *)

(** {2 Series deltas} *)

type delta = {
  series : string;  (** flattened series key, e.g.
                        ["measure.rtt_ms{plane=vivaldi}.p99"] *)
  before : float option;  (** [None] = series absent in the first file *)
  after : float option;
}

val change : delta -> float
(** [after - before]; [nan] when the series is missing on either
    side. *)

val deltas : Json.t -> Json.t -> delta list
(** [deltas a b] flattens both summaries — counters and gauges under
    their series keys, each histogram's scalar fields ([count], [sum],
    [mean], [p50], [p99], [dropped]) as [key.field] sub-series, plus
    [clock] — and pairs them up.  Order: series as they appear in [a],
    then series only [b] carries. *)
