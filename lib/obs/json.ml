type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Doubles represent integers exactly up to 2^53. *)
let max_exact_int = 9007199254740992.

let number f =
  if not (Float.is_finite f) then Null
  else if
    Float.is_integer f && Float.abs f < max_exact_int
    && Float.abs f <= float_of_int max_int
  then Int (int_of_float f)
  else Float f

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.6g is short enough to be stable across machines and short enough
   (< 15 significant digits) that decimal -> double -> decimal is the
   identity, so printed output survives a parse/re-print round trip. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.6g" f in
    (* Keep the number a float on re-parse. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let to_string ?(indent = true) v =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          go ()
        | 'n' ->
          Buffer.add_char buf '\n';
          go ()
        | 'r' ->
          Buffer.add_char buf '\r';
          go ()
        | 't' ->
          Buffer.add_char buf '\t';
          go ()
        | 'b' ->
          Buffer.add_char buf '\b';
          go ()
        | 'f' ->
          Buffer.add_char buf '\012';
          go ()
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* Summaries only emit ASCII escapes; decode the Latin-1
             subset and replace anything wider. *)
          Buffer.add_char buf
            (if code < 0x100 then Char.chr code else '?');
          go ()
        | _ -> fail "bad escape character")
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let raw = String.sub s start (!pos - start) in
    if raw = "" then fail "expected a value";
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') raw in
    if is_float then
      match float_of_string_opt raw with
      | Some f -> Float f
      | None -> fail ("bad number " ^ raw)
    else begin
      match int_of_string_opt raw with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt raw with
        | Some f -> Float f
        | None -> fail ("bad number " ^ raw))
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with Parse (at, msg) ->
    failwith (Printf.sprintf "Json.of_string: %s at byte %d" msg at)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
