(** A fixed-bucket histogram.

    Buckets are defined by a strictly increasing array of finite upper
    edges; an observation lands in the first bucket whose edge is at or
    above it (upper-inclusive, Prometheus-style), or in the implicit
    overflow bucket past the last edge.  Cheap enough for the probe hot
    path: one binary search and two stores per observation. *)

type t

val create : edges:float array -> t
(** Raises [Invalid_argument] when [edges] is empty, non-finite or not
    strictly increasing. *)

val observe : t -> float -> unit
(** NaN observations are dropped (they carry no magnitude to bin) and
    tallied in {!dropped}; infinities land in the overflow bucket. *)

val count : t -> int
(** Observations binned (dropped NaNs excluded). *)

val dropped : t -> int
val sum : t -> float
val mean : t -> float
(** [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile ([q] in [0, 1],
    [Invalid_argument] otherwise) from the bucket counts: the rank
    [q * count] is located in the cumulative distribution and linearly
    interpolated within its bucket (mass assumed uniform over the
    bucket's span; the first bucket spans from [min 0 (first edge)]).
    A rank landing in the overflow bucket reports the last finite edge
    — a lower bound.  [nan] when the histogram is empty. *)

val edges : t -> float array
(** A copy of the upper edges. *)

val counts : t -> int array
(** A copy of the per-bucket counts; length [Array.length edges + 1],
    last entry the overflow bucket. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram over the union of both observation
    streams: bucket counts, totals, sums and dropped tallies add.
    Because {!quantile} reads only bucket counts, a quantile of the
    merge equals the quantile of one histogram fed both streams —
    the property {!Tivaware_obs.Merge} relies on for per-domain summary
    merging.  Raises [Invalid_argument] when the bucket edges differ
    (merging histograms of different shape is a schema bug, not data). *)
