(** The metric registry: named, labelled counters, gauges and
    histograms plus one trace-event ring.

    Metrics are keyed by [(name, labels)].  Labels are key/value pairs
    canonicalized by key order, so [[("plane","vivaldi")]] names the
    same series however the caller orders it; the conventional label
    throughout this repo is [plane] (protocol layer: [vivaldi],
    [meridian], [chord], [chord_stabilize], [multicast], [alert]).
    Background maintenance planes get their own value — continuous
    Chord stabilization reports its [repair.*] family under
    [chord_stabilize], distinct from one-shot healing's [chord] — so a
    summary separates maintenance probe spend from the foreground
    traffic it competes with.  Accessors
    find-or-create: the first call registers the instrument, later
    calls return the same one — so instruments can be resolved once
    and cached on hot paths, and metric families can be pre-registered
    at zero so every run summary carries the full schema.

    Re-registering a name+labels under a different metric kind (or a
    histogram under different edges) raises [Invalid_argument]: a
    series never silently changes shape.

    {2 Domain-safety rule}

    A registry is a {e single-domain} object.  The find-or-create path
    (and {!import}/{!metrics} traversal) is guarded by a mutex, so two
    domains that accidentally share a registry cannot corrupt the
    series table — but the instruments themselves are plain mutable
    cells: concurrent [Counter.incr] from two domains loses updates,
    silently.  The supported concurrent shape, used by
    [Tivaware_service], is {e one registry per domain} (each engine
    already creates its own), combined into one deterministic summary
    with {!Merge} after the domains join.  Never hand one engine, or
    one registry, to two domains. *)

type t

val create : ?trace_capacity:int -> unit -> t
(** An empty registry with a trace ring (default capacity 256). *)

val counter : t -> ?labels:(string * string) list -> string -> Counter.t
val gauge : t -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  t -> ?labels:(string * string) list -> edges:float array -> string -> Histogram.t
(** [edges] applies on first registration; later lookups must pass the
    same edges ([Invalid_argument] otherwise). *)

val trace : t -> Trace.t
val trace_event : t -> time:float -> label:string -> string -> unit
(** Record into the registry's ring. *)

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

val kind_name : metric -> string
(** ["counter"], ["gauge"] or ["histogram"] — for diagnostics. *)

val series_name : string -> (string * string) list -> string
(** The canonical series key, [name] or [name{k=v,...}] with labels
    sorted by key. *)

val metrics : t -> (string * metric) list
(** Every registered series keyed by {!series_name}, sorted. *)

val import : t -> string -> metric -> unit
(** [import t key metric] installs a pre-built metric under an exact
    series key — the building block {!Merge} assembles merged
    registries with.  Raises [Invalid_argument] when [key] is already
    registered (whether as the same kind or another): import never
    silently replaces a live series. *)
