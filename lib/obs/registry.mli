(** The metric registry: named, labelled counters, gauges and
    histograms plus one trace-event ring.

    Metrics are keyed by [(name, labels)].  Labels are key/value pairs
    canonicalized by key order, so [[("plane","vivaldi")]] names the
    same series however the caller orders it; the conventional label
    throughout this repo is [plane] (protocol layer: [vivaldi],
    [meridian], [chord], [multicast], [alert]).  Accessors
    find-or-create: the first call registers the instrument, later
    calls return the same one — so instruments can be resolved once
    and cached on hot paths, and metric families can be pre-registered
    at zero so every run summary carries the full schema.

    Re-registering a name+labels under a different metric kind (or a
    histogram under different edges) raises [Invalid_argument]: a
    series never silently changes shape. *)

type t

val create : ?trace_capacity:int -> unit -> t
(** An empty registry with a trace ring (default capacity 256). *)

val counter : t -> ?labels:(string * string) list -> string -> Counter.t
val gauge : t -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  t -> ?labels:(string * string) list -> edges:float array -> string -> Histogram.t
(** [edges] applies on first registration; later lookups must pass the
    same edges ([Invalid_argument] otherwise). *)

val trace : t -> Trace.t
val trace_event : t -> time:float -> label:string -> string -> unit
(** Record into the registry's ring. *)

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

val series_name : string -> (string * string) list -> string
(** The canonical series key, [name] or [name{k=v,...}] with labels
    sorted by key. *)

val metrics : t -> (string * metric) list
(** Every registered series keyed by {!series_name}, sorted. *)
