type event = {
  time : float;
  label : string;
  message : string;
}

type t = {
  ring : event option array;
  mutable next : int;  (* write cursor *)
  mutable length : int;
  mutable dropped : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Trace.create: capacity must be >= 1 (got %d)" capacity);
  { ring = Array.make capacity None; next = 0; length = 0; dropped = 0 }

let capacity t = Array.length t.ring

let record t ~time ~label message =
  let cap = capacity t in
  if t.length = cap then t.dropped <- t.dropped + 1
  else t.length <- t.length + 1;
  t.ring.(t.next) <- Some { time; label; message };
  t.next <- (t.next + 1) mod cap

let length t = t.length
let dropped t = t.dropped

let events t =
  let cap = capacity t in
  let start = (t.next - t.length + cap) mod cap in
  List.init t.length (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)
