(* Deterministic combination of per-domain registries into one summary.

   The merge is a fold over series keys, so the result depends only on
   the *multiset* of input series, never on the order the registries
   are listed in or the order domains finished — the property the
   service harness's N-domain determinism contract rests on:

   - counters add (every domain counted disjoint events);
   - histograms merge bucket-wise (Histogram.merge), so post-merge
     quantiles equal those of one histogram fed every observation;
   - gauges take the maximum (a gauge is a level, not a flow; max is
     the only order-free choice that keeps "worst across domains"
     meaningful for levels like rss_mb or repair.pending);
   - traces concatenate, sorted by (time, label, message).

   A series key registered under two different kinds across inputs is a
   schema bug and raises, mirroring the registry's own shape guard. *)

let merge_metric key a b =
  match (a, b) with
  | Registry.Counter x, Registry.Counter y ->
    let c = Counter.create () in
    Counter.add c (Counter.value x);
    Counter.add c (Counter.value y);
    Registry.Counter c
  | Registry.Gauge x, Registry.Gauge y ->
    let g = Gauge.create () in
    Gauge.set g (Float.max (Gauge.value x) (Gauge.value y));
    Registry.Gauge g
  | Registry.Histogram x, Registry.Histogram y ->
    (try Registry.Histogram (Histogram.merge x y)
     with Invalid_argument _ ->
       invalid_arg
         (Printf.sprintf
            "Merge.registries: histogram %s has different bucket edges across \
             inputs"
            key))
  | a, b ->
    invalid_arg
      (Printf.sprintf "Merge.registries: %s is a %s in one input and a %s in \
                       another"
         key (Registry.kind_name a) (Registry.kind_name b))

(* Deep copy, so mutating an input after the merge cannot alias into
   the merged registry. *)
let copy_metric = function
  | Registry.Counter x ->
    let c = Counter.create () in
    Counter.add c (Counter.value x);
    Registry.Counter c
  | Registry.Gauge x ->
    let g = Gauge.create () in
    Gauge.set g (Gauge.value x);
    Registry.Gauge g
  | Registry.Histogram x ->
    Registry.Histogram (Histogram.merge x (Histogram.create ~edges:(Histogram.edges x)))

let compare_events (a : Trace.event) (b : Trace.event) =
  match Float.compare a.Trace.time b.Trace.time with
  | 0 -> (
    match String.compare a.Trace.label b.Trace.label with
    | 0 -> String.compare a.Trace.message b.Trace.message
    | c -> c)
  | c -> c

let registries inputs =
  let trace_capacity =
    List.fold_left (fun acc r -> acc + Trace.capacity (Registry.trace r)) 0 inputs
  in
  let out = Registry.create ~trace_capacity:(max 1 trace_capacity) () in
  let table = Hashtbl.create 256 in
  let keys = ref [] in
  List.iter
    (fun reg ->
      List.iter
        (fun (key, metric) ->
          match Hashtbl.find_opt table key with
          | None ->
            Hashtbl.replace table key (copy_metric metric);
            keys := key :: !keys
          | Some acc -> Hashtbl.replace table key (merge_metric key acc metric))
        (Registry.metrics reg))
    inputs;
  List.iter
    (fun key -> Registry.import out key (Hashtbl.find table key))
    (List.sort String.compare !keys);
  (* A singleton merge must reproduce its input byte-for-byte (the
     service harness's `--domains 1` == sequential contract), and
     same-time events in one registry carry meaning in insertion order
     — so only a genuine multi-input merge re-sorts. *)
  let events =
    match inputs with
    | [ only ] -> Trace.events (Registry.trace only)
    | _ ->
      List.concat_map (fun reg -> Trace.events (Registry.trace reg)) inputs
      |> List.stable_sort compare_events
  in
  List.iter
    (fun (e : Trace.event) ->
      Trace.record (Registry.trace out) ~time:e.Trace.time ~label:e.Trace.label
        e.Trace.message)
    events;
  out
