let default_tolerance = 0.02

let close ~tol a b =
  a = b || Float.abs (a -. b) <= tol *. Float.max (Float.abs a) (Float.abs b)

let strip_trace = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter (fun (k, _) -> k <> "trace" && k <> "trace_dropped") fields)
  | v -> v

let structural ?(tol = default_tolerance) expected actual =
  let failures = ref [] in
  let fail path fmt =
    Printf.ksprintf (fun s -> failures := (path, s) :: !failures) fmt
  in
  let rec compare_json path expected actual =
    match (expected, actual) with
    | Json.Null, Json.Null -> ()
    | Json.Bool a, Json.Bool b ->
      if a <> b then fail path "expected %b, got %b" a b
    | (Json.Int _ | Json.Float _), (Json.Int _ | Json.Float _) ->
      let a = Option.get (Json.to_float expected)
      and b = Option.get (Json.to_float actual) in
      if not (close ~tol a b) then
        fail path "expected %g, got %g (tolerance %g)" a b tol
    | Json.String a, Json.String b ->
      if a <> b then fail path "expected %S, got %S" a b
    | Json.List a, Json.List b ->
      if List.length a <> List.length b then
        fail path "expected %d elements, got %d" (List.length a)
          (List.length b)
      else
        List.iteri
          (fun i (e, a) -> compare_json (Printf.sprintf "%s[%d]" path i) e a)
          (List.combine a b)
    | Json.Obj a, Json.Obj b ->
      let keys l = List.sort compare (List.map fst l) in
      List.iter
        (fun k -> if not (List.mem_assoc k b) then fail path "missing key %S" k)
        (keys a);
      List.iter
        (fun k ->
          if not (List.mem_assoc k a) then fail path "unexpected key %S" k)
        (keys b);
      List.iter
        (fun (k, e) ->
          match List.assoc_opt k b with
          | Some v -> compare_json (path ^ "." ^ k) e v
          | None -> ())
        a
    | _ -> fail path "type mismatch"
  in
  compare_json "$" expected actual;
  List.rev !failures

type delta = {
  series : string;
  before : float option;
  after : float option;
}

let change d =
  match (d.before, d.after) with
  | Some a, Some b -> b -. a
  | _ -> nan

(* Flatten a summary into (series, value) rows: every counter and
   gauge under its series key, every histogram's scalar fields as
   sub-series.  Null scalars (empty-histogram mean/p50/p99) are
   skipped; buckets are not flattened (the scalars carry the
   comparison). *)
let flatten summary =
  let rows = ref [] in
  let add series v =
    match Json.to_float v with
    | Some f -> rows := (series, f) :: !rows
    | None -> ()
  in
  let section name flat =
    match Json.member name summary with
    | Some (Json.Obj fields) ->
      List.iter
        (fun (key, v) ->
          if flat then add key v
          else
            match v with
            | Json.Obj sub ->
              List.iter
                (fun (field, fv) ->
                  if field <> "buckets" then add (key ^ "." ^ field) fv)
                sub
            | _ -> ())
        fields
    | _ -> ()
  in
  (match Json.member "clock" summary with Some v -> add "clock" v | None -> ());
  section "counters" true;
  section "gauges" true;
  section "histograms" false;
  List.rev !rows

let deltas a b =
  let fa = flatten a and fb = flatten b in
  let keys = ref [] in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (k, _) ->
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        keys := k :: !keys
      end)
    (fa @ fb);
  List.rev_map
    (fun series ->
      { series; before = List.assoc_opt series fa; after = List.assoc_opt series fb })
    !keys
