module Rng = Tivaware_util.Rng

type kind = Closest | Dht_lookup | Multicast_refresh

let kinds = [| Closest; Dht_lookup; Multicast_refresh |]

let kind_label = function
  | Closest -> "closest"
  | Dht_lookup -> "dht"
  | Multicast_refresh -> "multicast"

let kind_index = function
  | Closest -> 0
  | Dht_lookup -> 1
  | Multicast_refresh -> 2

type mix = { closest : int; dht : int; multicast : int }

let default_mix = { closest = 6; dht = 6; multicast = 1 }

let validate_mix m =
  if m.closest < 0 || m.dht < 0 || m.multicast < 0 then
    invalid_arg "Workload.validate_mix: weights must be non-negative";
  if m.closest + m.dht + m.multicast = 0 then
    invalid_arg "Workload.validate_mix: at least one weight must be positive"

(* SplitMix64's finalizer over (seed, qid).  Each query gets a private
   generator derived from the pair alone, so a query's parameters are
   identical whichever shard executes it and however many shards there
   are — the heart of the partition-independence contract. *)
let mix_seed seed qid =
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul (Int64.of_int (qid + 1)) 0x9E3779B97F4A7C15L)
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 30) in
  let z = Int64.mul z 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  let z = Int64.mul z 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z

let query_rng ~seed ~qid = Rng.create (mix_seed seed qid)

let draw_kind rng mix =
  let total = mix.closest + mix.dht + mix.multicast in
  let r = Rng.int rng total in
  if r < mix.closest then Closest
  else if r < mix.closest + mix.dht then Dht_lookup
  else Multicast_refresh

let draws ~seed ~qid ~rate mix =
  let rng = query_rng ~seed ~qid in
  let gap =
    match rate with Some r -> Rng.exponential rng ~rate:r | None -> 0.
  in
  let kind = draw_kind rng mix in
  (gap, kind, rng)
