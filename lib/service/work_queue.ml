type 'a t = {
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  lock : Mutex.t;
  (* Two conditions, not one: a producer waking another producer (or a
     consumer another consumer) on a full/empty transition would be a
     lost wakeup under contention. *)
  not_full : Condition.t;
  not_empty : Condition.t;
}

let create ?(capacity = 64) () =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Work_queue.create: capacity must be >= 1 (got %d)"
         capacity);
  {
    items = Queue.create ();
    capacity;
    closed = false;
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  with_lock t (fun () ->
      while (not t.closed) && Queue.length t.items >= t.capacity do
        Condition.wait t.not_full t.lock
      done;
      if t.closed then invalid_arg "Work_queue.push: queue is closed";
      Queue.push x t.items;
      Condition.signal t.not_empty)

let pop t =
  with_lock t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.not_empty t.lock
      done;
      match Queue.take_opt t.items with
      | Some x ->
        Condition.signal t.not_full;
        Some x
      | None -> None (* closed and drained *))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      (* Every waiter must re-check: consumers to observe the drain,
         producers to fail their pending push. *)
      Condition.broadcast t.not_empty;
      Condition.broadcast t.not_full)

let is_closed t = with_lock t (fun () -> t.closed)
let length t = with_lock t (fun () -> Queue.length t.items)
