(** The query workload: what the service harness serves, drawn
    deterministically per query.

    Every query [qid] owns a private {!Tivaware_util.Rng.t} seeded from
    [(seed, qid)] by a SplitMix64 finalizer, so its arrival gap, kind
    and node parameters are a pure function of the pair — independent
    of which shard executes it and of how many shards exist.  That is
    the partition-independence half of the harness's determinism
    contract ({!Shard} supplies the other half: identical per-shard
    worlds).

    Fixed draw order from the query's generator: arrival gap first
    (only when an open-loop [rate] is set), then the kind, then
    whatever node parameters the kind's executor needs. *)

type kind =
  | Closest  (** a Meridian closest-node query through the engine *)
  | Dht_lookup  (** a Chord lookup over the delay backend *)
  | Multicast_refresh  (** one parent-refresh pass over the tree *)

val kinds : kind array
(** All kinds, in {!kind_index} order. *)

val kind_label : kind -> string
(** ["closest"], ["dht"], ["multicast"] — the [kind] label value on
    every [service.*] series. *)

val kind_index : kind -> int
(** Position in {!kinds} (for per-kind instrument arrays). *)

(** Relative weights of the three kinds in the query stream. *)
type mix = { closest : int; dht : int; multicast : int }

val default_mix : mix
(** [{closest = 6; dht = 6; multicast = 1}] — refreshes are whole-tree
    passes, far heavier than a single query, so they ride along at a
    low rate as a background maintenance load. *)

val validate_mix : mix -> unit
(** Raises [Invalid_argument] on a negative weight or an all-zero mix. *)

val query_rng : seed:int -> qid:int -> Tivaware_util.Rng.t
(** The query's private generator. *)

val draws :
  seed:int -> qid:int -> rate:float option -> mix -> float * kind * Tivaware_util.Rng.t
(** [(gap, kind, rng)] for one query: the exponential inter-arrival gap
    in seconds ([0.] when [rate] is [None] — closed loop), the drawn
    kind, and the generator positioned for the kind's node-parameter
    draws. *)
