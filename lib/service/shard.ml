module Rng = Tivaware_util.Rng
module Backend = Tivaware_backend.Delay_backend
module Engine = Tivaware_measure.Engine
module Probe_stats = Tivaware_measure.Probe_stats
module Obs = Tivaware_obs
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Query = Tivaware_meridian.Query
module Chord = Tivaware_dht.Chord
module Id_space = Tivaware_dht.Id_space
module Multicast = Tivaware_overlay.Multicast

type spec = {
  seed : int;
  engine_config : Engine.config;
  make_backend : unit -> Backend.t;
  meridian_count : int;
  candidate_budget : int option;
  beta : float;
  rate : float option;
  mix : Workload.mix;
  queries : int;
}

type t = {
  spec : spec;
  backend : Backend.t;
  engine : Engine.t;
  overlay : Overlay.t;
  chord : Chord.t;
  tree : Multicast.t;
  meridian_nodes : int array;
  size : int;
  queries_c : Obs.Counter.t array;  (* per kind, Workload.kind_index order *)
  failures_c : Obs.Counter.t array;
  latency_h : Obs.Histogram.t array;
  hops_h : Obs.Histogram.t;
  switches_c : Obs.Counter.t;
}

let latency_edges =
  [| 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.;
     10000.; 20000.; 50000. |]

let hops_edges = [| 1.; 2.; 3.; 4.; 5.; 6.; 8.; 10.; 12.; 16.; 24.; 32. |]

let validate spec =
  Workload.validate_mix spec.mix;
  if spec.queries < 0 then
    invalid_arg "Shard.create: queries must be non-negative";
  if spec.meridian_count < 1 then
    invalid_arg "Shard.create: meridian_count must be >= 1";
  match spec.rate with
  | Some r when not (r > 0.) ->
    invalid_arg "Shard.create: rate must be positive"
  | _ -> ()

let create spec =
  validate spec;
  let backend = spec.make_backend () in
  let n = Backend.size backend in
  if spec.meridian_count > n then
    invalid_arg "Shard.create: meridian_count exceeds the backend size";
  (* World construction consumes the shard generator in a fixed order
     (meridian sample, overlay build, join-order permutation), so every
     shard of a run — and the sequential driver — builds the exact same
     overlay, ring set and tree from [spec.seed] alone. *)
  let rng = Rng.create spec.seed in
  let meridian_nodes = Rng.sample_indices rng ~n ~k:spec.meridian_count in
  let cfg = { Ring.default_config with beta = spec.beta } in
  let overlay =
    Overlay.build_backend ?candidate_budget:spec.candidate_budget rng backend
      cfg ~meridian_nodes
  in
  let chord = Chord.build_backend backend in
  let join_order = Rng.permutation rng n in
  let tree = Multicast.build_backend backend ~join_order in
  let engine = Backend.engine ~config:spec.engine_config backend in
  Backend.attach_obs backend (Engine.obs engine);
  let obs = Engine.obs engine in
  let per_kind f =
    Array.map
      (fun k -> f ~labels:[ ("kind", Workload.kind_label k) ])
      Workload.kinds
  in
  {
    spec;
    backend;
    engine;
    overlay;
    chord;
    tree;
    meridian_nodes;
    size = n;
    queries_c = per_kind (fun ~labels -> Obs.Registry.counter obs ~labels "service.queries");
    failures_c = per_kind (fun ~labels -> Obs.Registry.counter obs ~labels "service.failures");
    latency_h =
      per_kind (fun ~labels ->
          Obs.Registry.histogram obs ~labels ~edges:latency_edges
            "service.latency_ms");
    hops_h = Obs.Registry.histogram obs ~edges:hops_edges "service.hops";
    switches_c = Obs.Registry.counter obs "service.switches";
  }

(* Per-kind service latency sources: a closest query and a refresh pass
   cost what their probes cost (the engine's charged probe_ms delta); a
   DHT lookup's latency is the accumulated delay of its route. *)
let execute t kind qrng =
  let i = Workload.kind_index kind in
  Obs.Counter.incr t.queries_c.(i);
  let stats = Engine.stats t.engine in
  match kind with
  | Workload.Closest ->
    let start = Rng.choice qrng t.meridian_nodes in
    let target = Rng.int qrng t.size in
    let before = stats.Probe_stats.probe_ms in
    let out = Query.closest_engine t.overlay t.engine ~start ~target in
    if Float.is_nan out.Query.chosen_delay then
      Obs.Counter.incr t.failures_c.(i);
    Obs.Histogram.observe t.latency_h.(i) (stats.Probe_stats.probe_ms -. before)
  | Workload.Dht_lookup ->
    let source = Rng.int qrng t.size in
    let key = Rng.int qrng Id_space.modulus in
    let r = Chord.lookup_backend t.chord t.backend ~source ~key in
    Obs.Histogram.observe t.hops_h (float_of_int r.Chord.hops);
    Obs.Histogram.observe t.latency_h.(i) r.Chord.latency
  | Workload.Multicast_refresh ->
    let before = stats.Probe_stats.probe_ms in
    let switches = Multicast.refresh_engine t.tree qrng t.engine in
    Obs.Counter.add t.switches_c (float_of_int switches);
    Obs.Histogram.observe t.latency_h.(i) (stats.Probe_stats.probe_ms -. before)

let run_partition t ~domain ~domains =
  if domains < 1 then invalid_arg "Shard.run_partition: domains must be >= 1";
  if domain < 0 || domain >= domains then
    invalid_arg "Shard.run_partition: domain out of range";
  let spec = t.spec in
  (* Every shard walks the full query stream to accumulate the shared
     open-loop arrival clock; it executes only its own residue class.
     Per-query generators make the skipped draws free of side effects
     on the executed ones. *)
  let arrival = ref 0.0 in
  for qid = 0 to spec.queries - 1 do
    let gap, kind, qrng =
      Workload.draws ~seed:spec.seed ~qid ~rate:spec.rate spec.mix
    in
    arrival := !arrival +. gap;
    if qid mod domains = domain then begin
      (match spec.rate with
      | Some _ -> Engine.advance_to t.engine !arrival
      | None -> ());
      execute t kind qrng
    end
  done

let obs t = Engine.obs t.engine
let clock t = Engine.now t.engine
let engine t = t.engine
let size t = t.size
