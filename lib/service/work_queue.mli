(** A bounded multi-producer multi-consumer work queue over stdlib
    [Mutex]/[Condition] — the hand-off between the service driver and
    its worker domains.

    Blocking discipline: {!push} waits while the queue is at capacity,
    {!pop} waits while it is empty.  {!close} ends the stream: blocked
    consumers drain whatever remains and then receive [None]; blocked
    and later producers fail with [Invalid_argument].  Closing is how
    the driver guarantees worker shutdown — a worker loop
    [while pop q <> None] terminates exactly when the queue is closed
    and drained, never sooner. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 64; raises [Invalid_argument] when < 1. *)

val push : 'a t -> 'a -> unit
(** Blocks while full.  Raises [Invalid_argument] if the queue is (or
    is closed while) waiting. *)

val pop : 'a t -> 'a option
(** Blocks while empty and open.  [None] once the queue is closed and
    drained — remaining items are always delivered first. *)

val close : 'a t -> unit
(** Idempotent.  Wakes every blocked producer and consumer. *)

val is_closed : 'a t -> bool

val length : 'a t -> int
(** Items currently queued (racy under concurrency, exact when
    quiescent). *)
