module Obs = Tivaware_obs

type result = {
  obs : Obs.Registry.t;
  clock : float;
  queries : int;
  domains : int;
}

let run_sequential spec =
  let shard = Shard.create spec in
  Shard.run_partition shard ~domain:0 ~domains:1;
  {
    obs = Shard.obs shard;
    clock = Shard.clock shard;
    queries = spec.Shard.queries;
    domains = 1;
  }

let run ?(domains = 1) spec =
  if domains < 1 then invalid_arg "Driver.run: domains must be >= 1";
  (* Slots are indexed by domain, not by completion order, so the merge
     input order — and with it the merged summary — is independent of
     how the runtime schedules the workers. *)
  let results = Array.make domains None in
  let queue = Work_queue.create ~capacity:domains () in
  let worker () =
    let rec loop () =
      match Work_queue.pop queue with
      | None -> ()
      | Some d ->
        let shard = Shard.create spec in
        Shard.run_partition shard ~domain:d ~domains;
        results.(d) <- Some (Shard.obs shard, Shard.clock shard);
        loop ()
    in
    loop ()
  in
  let workers = Array.init domains (fun _ -> Domain.spawn worker) in
  for d = 0 to domains - 1 do
    Work_queue.push queue d
  done;
  Work_queue.close queue;
  Array.iter Domain.join workers;
  let parts =
    Array.to_list results
    |> List.mapi (fun d r ->
           match r with
           | Some part -> part
           | None ->
             invalid_arg
               (Printf.sprintf "Driver.run: shard %d produced no result" d))
  in
  {
    obs = Obs.Merge.registries (List.map fst parts);
    clock = List.fold_left (fun acc (_, c) -> Float.max acc c) 0. parts;
    queries = spec.Shard.queries;
    domains;
  }
