(** One shard of the query-serving harness: a private world plus the
    executor for its partition of the query stream.

    Each shard owns a full stack — delay backend, probe engine (with
    its own {!Tivaware_obs.Registry}), Meridian overlay, Chord overlay
    and multicast tree — built deterministically from the spec seed, so
    every shard of a run inhabits an identical world and nothing is
    shared across domains (the one-registry-per-domain rule).

    Queries are partitioned statically: shard [d] of [N] executes the
    qids with [qid mod N = d].  Combined with {!Workload}'s per-query
    generators, a query's parameters and its world are the same
    whichever shard runs it; only engine-local state (cache, budgets,
    clock, the mutable tree) differs with [N] — which is why the
    determinism contract is per-domain-count: [--domains 1] reproduces
    the sequential driver exactly, and any scheduling of [--domains N]
    reproduces any other.

    Recorded into the shard's registry, merged later by
    {!Tivaware_obs.Merge}: [service.queries{kind=...}] and
    [service.failures{kind=...}] counters, [service.latency_ms{kind=...}]
    histograms (closest/refresh latency = charged probe milliseconds;
    DHT latency = route delay), the [service.hops] histogram and the
    [service.switches] counter. *)

type spec = {
  seed : int;  (** world + workload master seed *)
  engine_config : Tivaware_measure.Engine.config;
  make_backend : unit -> Tivaware_backend.Delay_backend.t;
      (** factory, not a value: a backend (lazy memo, sparse table) is
          mutable, so each shard must materialize its own instance,
          inside its own domain *)
  meridian_count : int;  (** Meridian participants sampled from the space *)
  candidate_budget : int option;
      (** ring-construction discovery budget (lazy-space friendly) *)
  beta : float;  (** Meridian acceptance/termination threshold *)
  rate : float option;
      (** open-loop Poisson arrival rate in queries/second; [None] =
          closed loop (no arrival clock, back-to-back queries) *)
  mix : Workload.mix;
  queries : int;  (** total stream length across all shards *)
}

type t

val create : spec -> t
(** Build the shard's world.  Raises [Invalid_argument] on a bad spec
    (empty mix, negative queries, non-positive rate,
    [meridian_count < 1] or exceeding the backend size) and passes
    through engine-config validation errors. *)

val run_partition : t -> domain:int -> domains:int -> unit
(** Execute this shard's residue class of the stream.  Under an
    open-loop [rate], the engine clock is slaved to each query's global
    arrival time ({!Tivaware_measure.Engine.advance_to}), so caches age
    and budgets refill against wall-modelled arrivals even though
    shards run independently. *)

val obs : t -> Tivaware_obs.Registry.t
(** The shard engine's registry ([service.*] plus the engine's own
    [measure.*]/[backend.*] series). *)

val clock : t -> float
(** Engine clock after (or during) the run, in seconds. *)

val engine : t -> Tivaware_measure.Engine.t
val size : t -> int

val latency_edges : float array
(** Bucket edges of [service.latency_ms] (milliseconds). *)

val hops_edges : float array
(** Bucket edges of [service.hops]. *)
