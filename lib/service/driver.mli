(** The sustained-load driver: the whole query stream, served either on
    the calling domain or sharded across worker domains.

    {!run} spawns [domains] workers; each pops shard indices off a
    {!Work_queue}, builds its own {!Shard} (world, engine, registry —
    nothing shared), executes its residue class of the stream, and
    publishes its registry into a domain-indexed slot.  After the join,
    the per-domain registries are combined with
    {!Tivaware_obs.Merge.registries} in domain order — so the merged
    summary depends only on [(spec, domains)], never on scheduling.

    Determinism contract, tested in [test_service.ml]:
    - [run ~domains:1] is byte-identical (summary JSON) to
      {!run_sequential}, even though the work ran on a spawned domain
      and passed through a singleton merge;
    - [run ~domains:n] is byte-identical across repeated runs for any
      fixed [n]. *)

type result = {
  obs : Tivaware_obs.Registry.t;
      (** merged registry ([service.*], [measure.*], [backend.*]) *)
  clock : float;  (** max engine clock over shards, seconds *)
  queries : int;
  domains : int;
}

val run_sequential : Shard.spec -> result
(** The reference implementation: one shard, executed inline on the
    calling domain, registry returned unmerged. *)

val run : ?domains:int -> Shard.spec -> result
(** Serve the stream over [domains] worker domains (default 1).
    Raises [Invalid_argument] when [domains < 1] and passes through
    {!Shard.create} spec validation. *)
