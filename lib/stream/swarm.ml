module Rng = Tivaware_util.Rng
module Engine = Tivaware_measure.Engine
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Profile = Tivaware_measure.Profile
module Arbiter = Tivaware_measure.Arbiter
module Backend = Tivaware_backend.Delay_backend
module Sim = Tivaware_eventsim.Sim
module Multicast = Tivaware_overlay.Multicast
module Obs = Tivaware_obs

type config = {
  members : int;
  chunk_ms : float;
  deadline_ms : float;
  buffer_chunks : int;
  pull_interval : float;
  repair_interval : float;
  max_degree : int;
  duration : float;
  seed : int;
}

let default_config =
  {
    members = 48;
    chunk_ms = 400.;
    deadline_ms = 800.;
    buffer_chunks = 16;
    pull_interval = 2.;
    repair_interval = 5.;
    max_degree = 4;
    duration = 120.;
    seed = 7;
  }

let validate_config ctx c =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if c.members < 2 then fail "%s: members must be >= 2 (got %d)" ctx c.members;
  if not (Float.is_finite c.chunk_ms) || c.chunk_ms <= 0. then
    fail "%s: chunk_ms must be positive (got %g)" ctx c.chunk_ms;
  if not (Float.is_finite c.deadline_ms) || c.deadline_ms <= 0. then
    fail "%s: deadline_ms must be positive (got %g)" ctx c.deadline_ms;
  if c.buffer_chunks < 1 then
    fail "%s: buffer_chunks must be >= 1 (got %d)" ctx c.buffer_chunks;
  if not (Float.is_finite c.pull_interval) || c.pull_interval <= 0. then
    fail "%s: pull_interval must be positive (got %g)" ctx c.pull_interval;
  if Float.is_nan c.repair_interval || c.repair_interval < 0. then
    fail "%s: repair_interval must be >= 0 (got %g)" ctx c.repair_interval;
  if c.max_degree < 1 then
    fail "%s: max_degree must be >= 1 (got %d)" ctx c.max_degree;
  if not (Float.is_finite c.duration) || c.duration <= 0. then
    fail "%s: duration must be positive (got %g)" ctx c.duration

type instruments = {
  c_emitted : Obs.Counter.t;
  c_delivered : Obs.Counter.t;
  c_duplicates : Obs.Counter.t;
  c_lost_down : Obs.Counter.t;
  c_transfer_failures : Obs.Counter.t;
  c_pull_exchanges : Obs.Counter.t;
  c_pull_failures : Obs.Counter.t;
  c_pull_requests : Obs.Counter.t;
  c_pull_hits : Obs.Counter.t;
  c_on_time : Obs.Counter.t;
  c_missed : Obs.Counter.t;
  c_down_at_deadline : Obs.Counter.t;
  c_stretch_dropped : Obs.Counter.t;
  c_repair_denied : Obs.Counter.t;
  h_receive_ms : Obs.Histogram.t;
  h_stretch : Obs.Histogram.t;
}

let receive_ms_edges = [| 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000. |]
let stretch_edges = [| 0.5; 1.; 1.5; 2.; 3.; 5.; 10.; 20.; 50.; 100. |]

let make_instruments obs =
  {
    c_emitted = Obs.Registry.counter obs "stream.chunks_emitted";
    c_delivered = Obs.Registry.counter obs "stream.deliveries";
    c_duplicates = Obs.Registry.counter obs "stream.duplicates";
    c_lost_down = Obs.Registry.counter obs "stream.lost_down";
    c_transfer_failures = Obs.Registry.counter obs "stream.transfer_failures";
    c_pull_exchanges = Obs.Registry.counter obs "stream.pull_exchanges";
    c_pull_failures = Obs.Registry.counter obs "stream.pull_failures";
    c_pull_requests = Obs.Registry.counter obs "stream.pull_requests";
    c_pull_hits = Obs.Registry.counter obs "stream.pull_hits";
    c_on_time = Obs.Registry.counter obs "stream.on_time";
    c_missed = Obs.Registry.counter obs "stream.missed";
    c_down_at_deadline = Obs.Registry.counter obs "stream.down_at_deadline";
    c_stretch_dropped = Obs.Registry.counter obs "stream.stretch_dropped";
    c_repair_denied = Obs.Registry.counter obs "stream.repair_denied";
    h_receive_ms = Obs.Registry.histogram obs ~edges:receive_ms_edges "stream.receive_ms";
    h_stretch = Obs.Registry.histogram obs ~edges:stretch_edges "stream.stretch";
  }

type t = {
  config : config;
  backend : Backend.t;
  engine : Engine.t;
  arbiter : Arbiter.t option;
  tree : Multicast.t;
  nodes : int array;  (* member node ids, ascending *)
  src_idx : int;  (* index of the source in [nodes] *)
  idx_of : (int, int) Hashtbl.t;  (* node id -> member index *)
  chunks : int;
  recv : float array array;  (* member index x chunk -> receive time (s), nan = not held *)
  repair_rng : Rng.t;
  repair_predict : int -> int -> float;
  inst : instruments;
  (* run tallies (the obs counters mirror these) *)
  mutable deliveries : int;
  mutable duplicates : int;
  mutable lost_down : int;
  mutable transfer_failures : int;
  mutable pull_exchanges : int;
  mutable pull_failures : int;
  mutable pull_requests : int;
  mutable pull_hits : int;
  mutable on_time : int;
  mutable missed : int;
  mutable down_at_deadline : int;
  mutable stretches : float list;
  mutable repair_passes : int;
  mutable repair_denied : int;
  mutable repair_detached : int;
  mutable repair_reattached : int;
  mutable repair_rejoined : int;
}

let source t = t.nodes.(t.src_idx)
let tree t = t.tree

let up engine node =
  match Engine.churn engine with Some c -> Churn.is_up c node | None -> true

(* What a chunk transfer on (i, j) costs right now: the backend's base
   delay plus whatever extra delay the dynamics plane currently imposes
   (route flaps, detours) — the same "what the wire does today" rule
   the store scenario charges its reads. *)
let link t i j =
  let base = Backend.query t.backend i j in
  if Float.is_nan base then nan
  else
    match Engine.dynamics t.engine with
    | Some d -> base +. (Dynamics.link d i j).Profile.extra_delay
    | None -> base

let create ?arbiter ~config ~select ~backend ~engine () =
  validate_config "Stream.Swarm" config;
  let n = Backend.size backend in
  if config.members > n then
    invalid_arg
      (Printf.sprintf "Stream.Swarm: members (%d) exceeds delay-space nodes (%d)"
         config.members n);
  let rng = Rng.create ((config.seed * 0x9e37) + 0xa3) in
  let nodes =
    if config.members = n then Array.init n Fun.id
    else Rng.sample_indices rng ~n ~k:config.members
  in
  Array.sort compare nodes;
  (* The broadcaster must not churn away mid-stream: the repair
     contract covers member failure, not root failure.  Pick the first
     sampled node outside the churning subset (fall back to the first
     sample when everyone churns). *)
  let src_idx =
    match Engine.churn engine with
    | None -> 0
    | Some c -> (
        let found = ref None in
        Array.iteri
          (fun k node ->
            if !found = None && not (Churn.churning c node) then found := Some k)
          nodes;
        match !found with Some k -> k | None -> 0)
  in
  let idx_of = Hashtbl.create (2 * config.members) in
  Array.iteri (fun k node -> Hashtbl.replace idx_of node k) nodes;
  let join_order =
    let rest =
      Array.of_list
        (List.filter (( <> ) nodes.(src_idx)) (Array.to_list nodes))
    in
    Rng.shuffle rng rest;
    Array.append [| nodes.(src_idx) |] rest
  in
  Engine.register_plane engine "stream";
  Engine.register_plane engine "stream_repair";
  let mc_config =
    { Multicast.default_config with Multicast.max_degree = config.max_degree }
  in
  let tree =
    Multicast.build_engine ~config:mc_config ~label:"stream"
      ~predict:(Select.predictor ~label:"stream" select engine)
      engine ~join_order
  in
  let chunks =
    max 1 (int_of_float (config.duration *. 1000. /. config.chunk_ms))
  in
  {
    config;
    backend;
    engine;
    arbiter;
    tree;
    nodes;
    src_idx;
    idx_of;
    chunks;
    recv = Array.init config.members (fun _ -> Array.make chunks nan);
    repair_rng = Rng.create ((config.seed * 0x9e37) + 0xb7);
    repair_predict = Select.predictor ~label:"stream_repair" select engine;
    inst = make_instruments (Engine.obs engine);
    deliveries = 0;
    duplicates = 0;
    lost_down = 0;
    transfer_failures = 0;
    pull_exchanges = 0;
    pull_failures = 0;
    pull_requests = 0;
    pull_hits = 0;
    on_time = 0;
    missed = 0;
    down_at_deadline = 0;
    stretches = [];
    repair_passes = 0;
    repair_denied = 0;
    repair_detached = 0;
    repair_reattached = 0;
    repair_rejoined = 0;
  }

type repair_totals = {
  passes : int;
  denied : int;
  detached : int;
  reattached : int;
  rejoined : int;
}

type result = {
  members : int;
  joined : int;
  chunks : int;
  on_time : int;
  missed : int;
  down_at_deadline : int;
  miss_rate : float;
  deliveries : int;
  duplicates : int;
  transfer_failures : int;
  lost_down : int;
  pull_exchanges : int;
  pull_failures : int;
  pull_requests : int;
  pull_hits : int;
  overhead_ratio : float;
  stretches : float array;
  repair : repair_totals;
  tree_metrics : Multicast.metrics;
}

let has t midx k = not (Float.is_nan t.recv.(midx).(k))

(* Push dissemination: whoever holds a fresh chunk forwards it to its
   current tree children, each copy arriving one link delay later.
   The child set is read at forwarding time, so re-grafted subtrees
   start receiving from their new parent immediately. *)
let rec forward t sim midx k now =
  let node = t.nodes.(midx) in
  List.iter
    (fun child ->
      let d = link t node child in
      if Float.is_nan d then begin
        t.transfer_failures <- t.transfer_failures + 1;
        Obs.Counter.incr t.inst.c_transfer_failures
      end
      else
        let cidx = Hashtbl.find t.idx_of child in
        Sim.schedule_at sim (now +. (d /. 1000.)) (fun () ->
            deliver t sim cidx k (Sim.now sim)))
    (Multicast.children t.tree node)

and deliver t sim cidx k now =
  if not (up t.engine t.nodes.(cidx)) then begin
    t.lost_down <- t.lost_down + 1;
    Obs.Counter.incr t.inst.c_lost_down
  end
  else if has t cidx k then begin
    t.duplicates <- t.duplicates + 1;
    Obs.Counter.incr t.inst.c_duplicates
  end
  else begin
    t.recv.(cidx).(k) <- now;
    t.deliveries <- t.deliveries + 1;
    Obs.Counter.incr t.inst.c_delivered;
    forward t sim cidx k now
  end

(* Pull recovery: each live member exchanges a have-map with its parent
   (one control probe on the "stream" plane) and requests every chunk
   in the buffer window it lacks; requested chunks the parent holds
   arrive one control round-trip plus one link delay later. *)
let pull_pass t sim now =
  let c = t.config in
  let k_now =
    min (t.chunks - 1) (int_of_float (now *. 1000. /. c.chunk_ms))
  in
  let lo = max 0 (k_now - c.buffer_chunks + 1) in
  Array.iteri
    (fun midx node ->
      if midx <> t.src_idx && up t.engine node then
        match Multicast.parent t.tree node with
        | None -> ()  (* detached: repair re-grafts, pull resumes after *)
        | Some p ->
            let missing = ref [] in
            for k = k_now downto lo do
              if not (has t midx k) then missing := k :: !missing
            done;
            if !missing <> [] then begin
              t.pull_exchanges <- t.pull_exchanges + 1;
              Obs.Counter.incr t.inst.c_pull_exchanges;
              let rtt = Engine.rtt ~label:"stream" t.engine node p in
              if Float.is_nan rtt then begin
                t.pull_failures <- t.pull_failures + 1;
                Obs.Counter.incr t.inst.c_pull_failures
              end
              else
                let pidx = Hashtbl.find t.idx_of p in
                List.iter
                  (fun k ->
                    t.pull_requests <- t.pull_requests + 1;
                    Obs.Counter.incr t.inst.c_pull_requests;
                    if has t pidx k && t.recv.(pidx).(k) <= now then begin
                      t.pull_hits <- t.pull_hits + 1;
                      Obs.Counter.incr t.inst.c_pull_hits;
                      let d = link t p node in
                      if Float.is_nan d then begin
                        t.transfer_failures <- t.transfer_failures + 1;
                        Obs.Counter.incr t.inst.c_transfer_failures
                      end
                      else
                        Sim.schedule_at sim
                          (now +. ((rtt +. d) /. 1000.))
                          (fun () -> deliver t sim midx k (Sim.now sim))
                    end)
                  !missing
            end)
    t.nodes

let repair_pass t now =
  let admitted =
    match t.arbiter with
    | Some a -> Arbiter.admit a ~now "stream_repair"
    | None -> true
  in
  if not admitted then begin
    t.repair_denied <- t.repair_denied + 1;
    Obs.Counter.incr t.inst.c_repair_denied
  end
  else begin
    let r =
      Multicast.repair_engine ~label:"stream_repair" ~predict:t.repair_predict
        t.tree t.repair_rng t.engine
    in
    t.repair_passes <- t.repair_passes + 1;
    t.repair_detached <- t.repair_detached + r.Multicast.detached;
    t.repair_reattached <- t.repair_reattached + r.Multicast.reattached;
    t.repair_rejoined <- t.repair_rejoined + r.Multicast.rejoined
  end

let deadline_check t emit_time k now =
  Array.iteri
    (fun midx node ->
      if midx <> t.src_idx then begin
        if not (up t.engine node) then begin
          t.down_at_deadline <- t.down_at_deadline + 1;
          Obs.Counter.incr t.inst.c_down_at_deadline
        end
        else if has t midx k && t.recv.(midx).(k) <= now then begin
          t.on_time <- t.on_time + 1;
          Obs.Counter.incr t.inst.c_on_time;
          let receive_ms = (t.recv.(midx).(k) -. emit_time) *. 1000. in
          Obs.Histogram.observe t.inst.h_receive_ms receive_ms;
          let direct = Backend.query t.backend node (source t) in
          if Float.is_finite direct && direct > 0. then begin
            let s = receive_ms /. direct in
            t.stretches <- s :: t.stretches;
            Obs.Histogram.observe t.inst.h_stretch s
          end
          else begin
            (* No measurable direct path to judge stretch against: the
               delivery counts, the stretch sample is recorded as
               dropped instead of silently narrowing the percentiles. *)
            t.stretches <- t.stretches;
            Obs.Counter.incr t.inst.c_stretch_dropped
          end
        end
        else begin
          t.missed <- t.missed + 1;
          Obs.Counter.incr t.inst.c_missed
        end
      end)
    t.nodes

let run t =
  let c = t.config in
  let sim = Sim.create () in
  Sim.on_advance sim (fun time -> Engine.advance_to t.engine time);
  let chunk_s = c.chunk_ms /. 1000. in
  let deadline_s = c.deadline_ms /. 1000. in
  (* Maintenance planes stay up until the last chunk's deadline, so a
     gap opened late in the broadcast still has its recovery chance. *)
  let stop = (float_of_int (t.chunks - 1) *. chunk_s) +. deadline_s in
  for k = 0 to t.chunks - 1 do
    let at = float_of_int k *. chunk_s in
    Sim.schedule_at sim at (fun () ->
        t.recv.(t.src_idx).(k) <- at;
        Obs.Counter.incr t.inst.c_emitted;
        forward t sim t.src_idx k at);
    Sim.schedule_at sim (at +. deadline_s) (fun () ->
        deadline_check t at k (Sim.now sim))
  done;
  Sim.schedule_every sim ~start:(c.pull_interval /. 2.) ~every:c.pull_interval
    (fun () ->
      let now = Sim.now sim in
      if now > stop then false
      else begin
        pull_pass t sim now;
        true
      end);
  if c.repair_interval > 0. then
    Sim.schedule_every sim ~start:c.repair_interval ~every:c.repair_interval
      (fun () ->
        let now = Sim.now sim in
        if now > stop then false
        else begin
          repair_pass t now;
          true
        end);
  Sim.run sim;
  let judged = t.on_time + t.missed in
  {
    members = c.members;
    joined = List.length (Multicast.members t.tree);
    chunks = t.chunks;
    on_time = t.on_time;
    missed = t.missed;
    down_at_deadline = t.down_at_deadline;
    miss_rate =
      (if judged = 0 then 0. else float_of_int t.missed /. float_of_int judged);
    deliveries = t.deliveries;
    duplicates = t.duplicates;
    transfer_failures = t.transfer_failures;
    lost_down = t.lost_down;
    pull_exchanges = t.pull_exchanges;
    pull_failures = t.pull_failures;
    pull_requests = t.pull_requests;
    pull_hits = t.pull_hits;
    overhead_ratio =
      float_of_int (t.duplicates + t.pull_exchanges)
      /. float_of_int (max 1 t.deliveries);
    stretches = Array.of_list (List.rev t.stretches);
    repair =
      {
        passes = t.repair_passes;
        denied = t.repair_denied;
        detached = t.repair_detached;
        reattached = t.repair_reattached;
        rejoined = t.repair_rejoined;
      };
    tree_metrics = Multicast.evaluate_engine t.tree t.engine;
  }
