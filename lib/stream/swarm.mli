(** P2P live streaming over the TIV delay space — the first scenario
    judged by an {e application} metric (missed playback deadlines)
    rather than a protocol metric.

    A seeded source emits fixed-rate chunks with playback deadlines
    into a dissemination tree built over
    {!Tivaware_overlay.Multicast} with a pluggable {!Select} policy.
    Members hold bounded chunk buffers; chunks are pushed down the
    tree paying the real link delay (backend base delay plus whatever
    the dynamics plane currently imposes), and gaps are recovered by a
    periodic have-map/pull exchange with the parent whose control
    round-trip is a probe through the {!Tivaware_measure.Engine} (so
    loss, budgets and churn tax recovery like any other measurement).
    Churn-driven re-neighboring runs through a [stream_repair] plane
    gated by an optional {!Tivaware_measure.Arbiter} carve.

    Everything is slaved to one event simulator, so a run is a pure
    function of [(config, policy, backend, engine config)] — byte
    reproducible, which is what the CI determinism gate checks. *)

type config = {
  members : int;  (** swarm size, source included (>= 2) *)
  chunk_ms : float;  (** inter-chunk emission gap, ms of stream time *)
  deadline_ms : float;  (** playback deadline after emission, ms *)
  buffer_chunks : int;  (** have-map / pull window, in chunks (>= 1) *)
  pull_interval : float;  (** seconds between pull exchanges (> 0) *)
  repair_interval : float;  (** seconds between repair passes (0 = off) *)
  max_degree : int;  (** children cap per member *)
  duration : float;  (** seconds of stream emission *)
  seed : int;  (** membership / join-order / repair-sampling seed *)
}

val default_config : config
(** 48 members, 400 ms chunks, 800 ms deadline, 16-chunk buffer, 2 s
    pulls, 5 s repair, degree 4, 120 s, seed 7. *)

val validate_config : string -> config -> unit
(** Raises [Invalid_argument] with a [ctx]-prefixed message naming the
    offending field. *)

type t

val create :
  ?arbiter:Tivaware_measure.Arbiter.t ->
  config:config ->
  select:Select.t ->
  backend:Tivaware_backend.Delay_backend.t ->
  engine:Tivaware_measure.Engine.t ->
  unit ->
  t
(** Samples the membership from the delay space (the source is the
    first sampled node outside the churning subset, so the broadcast
    does not die with its broadcaster), builds the dissemination tree
    through the policy's ranking (attachment probes on the ["stream"]
    plane), and registers the [stream.*] observability series.
    Raises [Invalid_argument] on an invalid config or when [members]
    exceeds the delay space. *)

val source : t -> int
(** Node id of the chunk source (the tree root). *)

val tree : t -> Tivaware_overlay.Multicast.t

type repair_totals = {
  passes : int;  (** repair passes that ran *)
  denied : int;  (** passes refused by the arbiter carve *)
  detached : int;
  reattached : int;
  rejoined : int;
}

type result = {
  members : int;  (** swarm size (source included) *)
  joined : int;  (** tree members when the run ended *)
  chunks : int;  (** chunks emitted *)
  on_time : int;  (** (member, chunk) deliveries inside the deadline *)
  missed : int;  (** (member, chunk) pairs past deadline at a live member *)
  down_at_deadline : int;  (** pairs not judged: member down at deadline *)
  miss_rate : float;  (** missed / (on_time + missed) *)
  deliveries : int;  (** push + pull chunk deliveries accepted *)
  duplicates : int;  (** deliveries of already-held chunks *)
  transfer_failures : int;  (** forwards dropped on an unmeasurable link *)
  lost_down : int;  (** deliveries that found the receiver down *)
  pull_exchanges : int;  (** have-map control rounds issued *)
  pull_failures : int;  (** control rounds whose probe failed *)
  pull_requests : int;  (** chunks asked for across all exchanges *)
  pull_hits : int;  (** requested chunks the parent could serve *)
  overhead_ratio : float;
      (** (duplicates + pull control rounds) per accepted delivery *)
  stretches : float array;
      (** per on-time delivery: receive latency over the member's
          direct source delay *)
  repair : repair_totals;
  tree_metrics : Tivaware_overlay.Multicast.metrics;
      (** final tree judged by {!Tivaware_overlay.Multicast.evaluate_engine}
          (ground truth, nan-audited) *)
}

val run : t -> result
(** Plays the whole broadcast: chunk emissions over [duration],
    deadline judgements [deadline_ms] later, pull and repair planes
    running until the last deadline.  All state advances through the
    event simulator; the engine clock (and with it churn, dynamics,
    budget refill and cache aging) is slaved to it. *)
