module Alert = Tivaware_tiv.Alert

type t =
  | Naive of int
  | Coordinate of (int -> int -> float)
  | Alert_aware of { predicted : int -> int -> float; threshold : float }

let default_threshold = 0.5
let flagged_penalty = 1000.

let naive ~seed = Naive seed
let coordinate predicted = Coordinate predicted

let alert ?(threshold = default_threshold) predicted =
  if not (Float.is_finite threshold) || threshold <= 0. then
    invalid_arg
      (Printf.sprintf
         "Stream.Select.alert: threshold must be positive and finite (got %g)"
         threshold);
  Alert_aware { predicted; threshold }

let name = function
  | Naive _ -> "naive"
  | Coordinate _ -> "vivaldi"
  | Alert_aware _ -> "alert"

(* SplitMix64 finalizer — the same mixing discipline the lazy backend
   uses for pair seeds, so naive ranking is a pure function of
   (seed, i, j): no RNG state, no path dependence. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let hash_score seed i j =
  let z = mix64 (Int64.add (mix64 (Int64.of_int seed)) (Int64.of_int (i + 1))) in
  let z = mix64 (Int64.add z (Int64.of_int (j + 1))) in
  let bits = Int64.to_int (Int64.shift_right_logical z 11) in
  (* 53 uniform bits onto (0, 1): never 0, so a score is always a
     usable (non-nan, positive) rank. *)
  (float_of_int bits +. 1.) *. (1. /. 9007199254740993.)

let predictor ?(label = "stream") t engine =
  match t with
  | Naive seed -> fun i j -> hash_score seed i j
  | Coordinate predicted -> predicted
  | Alert_aware { predicted; threshold } ->
      fun i j -> (
        match Alert.alert_pair ~label ~engine ~predicted ~threshold i j with
        | `Clean d -> d
        | `Flagged d -> flagged_penalty *. d
        | `Unmeasurable -> nan)
