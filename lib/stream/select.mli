(** Neighbor-selection policies for the streaming swarm: how a peer
    ranks prospective parents when it joins, refreshes, or is
    re-grafted after churn.

    Each policy is exposed as a [predict : int -> int -> float]
    function (smaller = more attractive, [nan] = unusable) so the
    whole swarm rides the {!Tivaware_overlay.Multicast} attachment
    machinery unchanged — the policy only changes how candidates are
    ordered, and any measurement it wants is a probe through the
    {!Tivaware_measure.Engine}, so loss, churn, budgets and dynamics
    hit every policy alike.  The three policies reproduce the
    locality spectrum of Clegg et al.'s live-streaming study:

    - {!naive} — locality-unaware: candidates are ranked by a pure
      seeded hash, i.e. the peer attaches to a uniformly random member
      with spare degree.  Zero probes.
    - {!coordinate} — Vivaldi-style: rank by predicted coordinate
      distance.  Zero probes per join; exactly the ranking TIVs
      silently break — shrunk edges look closer than they are.
    - {!alert} — TIV-alert-aware: rank by one verification probe per
      evaluated candidate ({!Tivaware_tiv.Alert.alert_pair}, the same
      adapter the store policies use); a candidate whose prediction
      ratio flags a likely-shrunk edge is pushed behind every clean
      candidate by a large rank penalty. *)

type t

val naive : seed:int -> t
(** Seeded random ranking: [predict i j] is a pure hash of
    [(seed, i, j)] in [(0, 1)], so join order — not probe luck —
    decides the tree, and replays are bit-identical. *)

val coordinate : (int -> int -> float) -> t
(** [coordinate predicted]: rank by [predicted i j]. *)

val alert : ?threshold:float -> (int -> int -> float) -> t
(** [alert predicted] with the prediction-ratio [threshold] (default
    {!default_threshold}).  Raises [Invalid_argument] on a
    non-positive or non-finite threshold. *)

val default_threshold : float
(** 0.5 — an edge measured at more than twice its predicted distance
    is flagged as likely-severe. *)

val flagged_penalty : float
(** Rank multiplier applied to flagged edges (1000): a flagged
    candidate is only chosen when no clean candidate is eligible. *)

val name : t -> string
(** ["naive" | "vivaldi" | "alert"]. *)

val predictor :
  ?label:string -> t -> Tivaware_measure.Engine.t -> int -> int -> float
(** The ranking function handed to
    {!Tivaware_overlay.Multicast.build_engine} (and refresh/repair).
    Probes issued by the {!alert} policy are charged through [engine]
    under [label] (default ["stream"]); {!naive} and {!coordinate}
    never touch the engine. *)
