type spec = { node : int; zone : int; weight : float }
type device = { id : int; node : int; zone : int; weight : float }

type t = {
  part_power : int;
  parts : int;
  replicas : int;
  seed : int;
  mutable devs : device option array;  (* indexed by id; None = removed *)
  mutable live : int;
  table : int array;  (* parts * replicas, flattened *)
  mutable last_moves : int;
}

(* SplitMix64 finalizer: the per-slot tie-break and the object hash
   both need a stateless hash so the assignment is a pure function of
   (seed, inputs) and never of iteration history. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash2 a b =
  Int64.to_int
    (mix64 (Int64.add (Int64.mul (Int64.of_int a) 0x9e3779b97f4a7c15L) (Int64.of_int b)))
  land max_int

let part_power t = t.part_power
let parts t = t.parts
let replicas t = t.replicas
let seed t = t.seed
let size t = t.live

let devices t =
  Array.of_list
    (List.filter_map Fun.id (Array.to_list t.devs))

let device t id =
  if id < 0 || id >= Array.length t.devs then None else t.devs.(id)

let assignment t part =
  if part < 0 || part >= t.parts then
    invalid_arg (Printf.sprintf "Store.Ring.assignment: partition %d out of range" part);
  Array.init t.replicas (fun r -> t.table.((part * t.replicas) + r))

let partition_of t obj =
  hash2 (hash2 t.seed 0x9106) obj land (t.parts - 1)

let assigned t id =
  let k = ref 0 in
  Array.iter (fun d -> if d = id then incr k) t.table;
  !k

let live_ids t =
  let out = ref [] in
  for id = Array.length t.devs - 1 downto 0 do
    if t.devs.(id) <> None then out := id :: !out
  done;
  !out

let weight_of t id =
  match t.devs.(id) with Some d -> d.weight | None -> 0.

let zone_of t id =
  match t.devs.(id) with Some d -> d.zone | None -> -1

(* Weight-proportional desired slot counts with per-device cap [parts]
   (one replica of a partition per device): waterfill, redistributing
   any capped device's excess over the uncapped remainder. *)
let desired_shares t =
  let des = Array.make (Array.length t.devs) 0. in
  let cap = float_of_int t.parts in
  let rec fill remaining ids =
    let sum_w = List.fold_left (fun a id -> a +. weight_of t id) 0. ids in
    if sum_w <= 0. || ids = [] then ()
    else begin
      let over, under =
        List.partition (fun id -> remaining *. weight_of t id /. sum_w > cap) ids
      in
      if over = [] then
        List.iter (fun id -> des.(id) <- remaining *. weight_of t id /. sum_w) ids
      else begin
        List.iter (fun id -> des.(id) <- cap) over;
        fill (remaining -. (cap *. float_of_int (List.length over))) under
      end
    end
  in
  fill (float_of_int (t.parts * t.replicas)) (live_ids t);
  des

let desired_share t id =
  if device t id = None then
    invalid_arg (Printf.sprintf "Store.Ring.desired_share: device %d is not live" id);
  (desired_shares t).(id)

let in_part t part id =
  let base = part * t.replicas in
  let rec go r = r < t.replicas && (t.table.(base + r) = id || go (r + 1)) in
  go 0

let zones_in_part t part upto =
  let base = part * t.replicas in
  let zs = ref [] in
  for r = 0 to upto - 1 do
    let z = zone_of t t.table.(base + r) in
    if not (List.mem z !zs) then zs := z :: !zs
  done;
  !zs

(* Pick the best device for one slot of [part]: among candidates not
   already in the partition, prefer zones the partition does not use
   yet, then the largest deficit (desired - assigned), with a seeded
   per-slot hash as the final tie-break. *)
let pick_device t ~des ~count ~part ~used_zones ~exclude =
  let tie id = hash2 (hash2 t.seed (part + 0x51ab)) id in
  let better (d1, t1) (d2, t2) = d1 > d2 || (d1 = d2 && t1 > t2) in
  let best_pref = ref None and best_any = ref None in
  List.iter
    (fun id ->
      if not (List.mem id exclude) && not (in_part t part id) then begin
        let key = (des.(id) -. float_of_int count.(id), tie id) in
        let consider slot =
          match !slot with
          | Some (_, k) when better k key |> not -> slot := Some (id, key)
          | None -> slot := Some (id, key)
          | Some _ -> ()
        in
        consider best_any;
        if not (List.mem (zone_of t id) used_zones) then consider best_pref
      end)
    (live_ids t);
  match (!best_pref, !best_any) with
  | Some (id, _), _ -> Some id
  | None, Some (id, _) -> Some id
  | None, None -> None

let build t =
  let des = desired_shares t in
  let count = Array.make (Array.length t.devs) 0 in
  for part = 0 to t.parts - 1 do
    for r = 0 to t.replicas - 1 do
      let used_zones = zones_in_part t part r in
      match pick_device t ~des ~count ~part ~used_zones ~exclude:[] with
      | Some id ->
          t.table.((part * t.replicas) + r) <- id;
          count.(id) <- count.(id) + 1
      | None -> invalid_arg "Store.Ring: not enough devices to fill a partition"
    done
  done

let validate_spec ~ctx i (s : spec) =
  if not (Float.is_finite s.weight) || s.weight <= 0. then
    invalid_arg
      (Printf.sprintf "%s: weight must be positive and finite (got %g for device %d)"
         ctx s.weight i);
  if s.node < 0 then
    invalid_arg (Printf.sprintf "%s: node must be >= 0 (got %d for device %d)" ctx s.node i);
  if s.zone < 0 then
    invalid_arg (Printf.sprintf "%s: zone must be >= 0 (got %d for device %d)" ctx s.zone i)

let create ?(seed = 1) ~part_power ~replicas specs =
  let ctx = "Store.Ring.create" in
  if part_power < 0 || part_power > 20 then
    invalid_arg (Printf.sprintf "%s: part_power must be in [0, 20] (got %d)" ctx part_power);
  if replicas < 1 then
    invalid_arg (Printf.sprintf "%s: replicas must be >= 1 (got %d)" ctx replicas);
  let n = Array.length specs in
  if n = 0 then invalid_arg (Printf.sprintf "%s: devices must be non-empty" ctx);
  if replicas > n then
    invalid_arg (Printf.sprintf "%s: replicas (%d) exceeds devices (%d)" ctx replicas n);
  Array.iteri (validate_spec ~ctx) specs;
  let parts = 1 lsl part_power in
  let t =
    {
      part_power;
      parts;
      replicas;
      seed;
      devs =
        Array.mapi
          (fun id (s : spec) -> Some { id; node = s.node; zone = s.zone; weight = s.weight })
          specs;
      live = n;
      table = Array.make (parts * replicas) (-1);
      last_moves = 0;
    }
  in
  build t;
  t

let last_moves t = t.last_moves

let counts t =
  let count = Array.make (Array.length t.devs) 0 in
  Array.iter (fun id -> count.(id) <- count.(id) + 1) t.table;
  count

let add_device t s =
  validate_spec ~ctx:"Store.Ring.add_device" (Array.length t.devs) s;
  let id = Array.length t.devs in
  let dev = Some { id; node = s.node; zone = s.zone; weight = s.weight } in
  t.devs <- Array.append t.devs [| dev |];
  t.live <- t.live + 1;
  let des = desired_shares t in
  let count = counts t in
  let moves = ref 0 in
  (* Pull slots from the most-overfull donor while the newcomer is
     more than half a slot under its share; only donor -> newcomer
     moves, so untouched partitions keep their assignment verbatim. *)
  let continue = ref true in
  while !continue && des.(id) -. float_of_int count.(id) > 0.5 do
    let donor = ref None in
    List.iter
      (fun d ->
        if d <> id then
          let surplus = float_of_int count.(d) -. des.(d) in
          match !donor with
          | Some (_, s) when s >= surplus -> ()
          | _ -> donor := Some (d, surplus))
      (live_ids t);
    match !donor with
    | None -> continue := false
    | Some (_, surplus) when surplus <= 0. -> continue := false
    | Some (d, _) ->
        (* Best slot of the donor: a partition without the newcomer,
           preferring one where the newcomer's zone is absent. *)
        let best = ref None in
        Array.iteri
          (fun slot holder ->
            if holder = d then begin
              let part = slot / t.replicas in
              if not (in_part t part id) then begin
                let zones = zones_in_part t part t.replicas in
                let zone_free = not (List.mem s.zone (List.filter (( <> ) (zone_of t d)) zones)) in
                let key = ((if zone_free then 1 else 0), hash2 (hash2 t.seed (part + 0x77ad)) id) in
                match !best with
                | Some (_, k) when k >= key -> ()
                | _ -> best := Some (slot, key)
              end
            end)
          t.table;
        (match !best with
        | None -> continue := false
        | Some (slot, _) ->
            t.table.(slot) <- id;
            count.(d) <- count.(d) - 1;
            count.(id) <- count.(id) + 1;
            incr moves)
  done;
  t.last_moves <- !moves;
  id

let remove_device t id =
  (match device t id with
  | None -> invalid_arg (Printf.sprintf "Store.Ring.remove_device: device %d is not live" id)
  | Some _ -> ());
  if t.live - 1 < t.replicas then
    invalid_arg
      (Printf.sprintf
         "Store.Ring.remove_device: removing device %d leaves fewer devices (%d) than replicas (%d)"
         id (t.live - 1) t.replicas);
  t.devs.(id) <- None;
  t.live <- t.live - 1;
  let des = desired_shares t in
  let count = counts t in
  count.(id) <- 0;
  let moves = ref 0 in
  Array.iteri
    (fun slot holder ->
      if holder = id then begin
        let part = slot / t.replicas in
        let used_zones =
          List.filter_map
            (fun r ->
              let h = t.table.((part * t.replicas) + r) in
              if h = id then None else Some (zone_of t h))
            (List.init t.replicas Fun.id)
        in
        match pick_device t ~des ~count ~part ~used_zones ~exclude:[ id ] with
        | Some repl ->
            t.table.(slot) <- repl;
            count.(repl) <- count.(repl) + 1;
            incr moves
        | None -> invalid_arg "Store.Ring.remove_device: no eligible replacement"
      end)
    t.table;
  t.last_moves <- !moves

let handoff t part =
  if part < 0 || part >= t.parts then
    invalid_arg (Printf.sprintf "Store.Ring.handoff: partition %d out of range" part);
  let primaries = assignment t part in
  let is_primary id = Array.exists (( = ) id) primaries in
  let others = List.filter (fun id -> not (is_primary id)) (live_ids t) in
  let order id = hash2 (hash2 t.seed (part + 0x4841)) id in
  let used_zones = Array.to_list (Array.map (zone_of t) primaries) in
  (* Phase 1: one device per zone the partition does not cover yet,
     zones in hashed order, each represented by its hashed-first
     device; phase 2: everything else in hashed order. *)
  let missing_zones =
    List.sort_uniq compare
      (List.filter (fun z -> not (List.mem z used_zones)) (List.map (zone_of t) others))
  in
  let first_of_zone z =
    List.fold_left
      (fun acc id ->
        if zone_of t id <> z then acc
        else match acc with Some b when order b <= order id -> acc | _ -> Some id)
      None others
  in
  let phase1 =
    List.filter_map first_of_zone
      (List.sort (fun a b -> compare (hash2 (hash2 t.seed (part + 0x2e)) a) (hash2 (hash2 t.seed (part + 0x2e)) b)) missing_zones)
  in
  let phase2 =
    List.sort
      (fun a b -> compare (order a) (order b))
      (List.filter (fun id -> not (List.mem id phase1)) others)
  in
  Array.of_list (phase1 @ phase2)
