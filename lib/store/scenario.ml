module Rng = Tivaware_util.Rng
module Zipf = Tivaware_util.Zipf
module Engine = Tivaware_measure.Engine
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Profile = Tivaware_measure.Profile
module Arbiter = Tivaware_measure.Arbiter
module Backend = Tivaware_backend.Delay_backend
module Sim = Tivaware_eventsim.Sim
module Obs = Tivaware_obs

type config = {
  devices : int;
  zones : int;
  part_power : int;
  replicas : int;
  objects : int;
  zipf_s : float;
  reads : int;
  duration : float;
  repair_interval : float;
  failure_penalty_ms : float;
  seed : int;
}

let default_config =
  {
    devices = 24;
    zones = 4;
    part_power = 6;
    replicas = 3;
    objects = 256;
    zipf_s = 0.9;
    reads = 600;
    duration = 120.;
    repair_interval = 10.;
    failure_penalty_ms = 3000.;
    seed = 7;
  }

let validate_config ctx c =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if c.devices < 1 then fail "%s: devices must be >= 1 (got %d)" ctx c.devices;
  if c.zones < 1 then fail "%s: zones must be >= 1 (got %d)" ctx c.zones;
  if c.part_power < 0 || c.part_power > 20 then
    fail "%s: part_power must be in [0, 20] (got %d)" ctx c.part_power;
  if c.replicas < 1 then fail "%s: replicas must be >= 1 (got %d)" ctx c.replicas;
  if c.replicas > c.devices then
    fail "%s: replicas (%d) exceeds devices (%d)" ctx c.replicas c.devices;
  if c.objects < 1 then fail "%s: objects must be >= 1 (got %d)" ctx c.objects;
  if Float.is_nan c.zipf_s || c.zipf_s < 0. then
    fail "%s: zipf_s must be non-negative (got %g)" ctx c.zipf_s;
  if c.reads < 0 then fail "%s: reads must be >= 0 (got %d)" ctx c.reads;
  if not (Float.is_finite c.duration) || c.duration <= 0. then
    fail "%s: duration must be positive (got %g)" ctx c.duration;
  if Float.is_nan c.failure_penalty_ms || c.failure_penalty_ms < 0. then
    fail "%s: failure_penalty_ms must be >= 0 (got %g)" ctx c.failure_penalty_ms

type instruments = {
  c_reads : Obs.Counter.t;
  c_failures : Obs.Counter.t;
  c_skipped : Obs.Counter.t;
  c_dead : Obs.Counter.t;
  c_handoff : Obs.Counter.t;
  c_checked : Obs.Counter.t;
  c_rehomed : Obs.Counter.t;
  c_restored : Obs.Counter.t;
  c_denied : Obs.Counter.t;
  h_read_ms : Obs.Histogram.t;
}

let read_ms_edges =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000.; 20000. |]

type t = {
  config : config;
  policy : Policy.t;
  backend : Backend.t;
  engine : Engine.t;
  arbiter : Arbiter.t option;
  ring : Ring.t;
  clients : int array;
  zipf : Zipf.t;
  wl : Rng.t;  (* workload stream: client draws *)
  obj_rng : Rng.t;  (* workload stream: object draws *)
  believed_down : bool array;  (* by device id *)
  serving : int array;  (* parts * replicas, device ids; repair-maintained *)
  inst : instruments;
  mutable passes : int;
  mutable total_checked : int;
  mutable total_rehomed : int;
  mutable total_restored : int;
  mutable total_denied : int;
}

let make_instruments obs =
  let labels = [ ("plane", "store") ] in
  {
    c_reads = Obs.Registry.counter obs "store.reads";
    c_failures = Obs.Registry.counter obs "store.read_failures";
    c_skipped = Obs.Registry.counter obs "store.skipped";
    c_dead = Obs.Registry.counter obs "store.dead_attempts";
    c_handoff = Obs.Registry.counter obs "store.handoff_reads";
    c_checked = Obs.Registry.counter obs ~labels "repair.checked";
    c_rehomed = Obs.Registry.counter obs ~labels "repair.rehomed";
    c_restored = Obs.Registry.counter obs ~labels "repair.restored";
    c_denied = Obs.Registry.counter obs ~labels "repair.denied";
    h_read_ms = Obs.Registry.histogram obs ~edges:read_ms_edges "store.read_ms";
  }

let weights = [| 1.; 1.; 2.; 2.; 4. |]

let create ?arbiter ~config ~policy ~backend ~engine () =
  validate_config "Store.Scenario" config;
  let n = Backend.size backend in
  if config.devices > n then
    invalid_arg
      (Printf.sprintf "Store.Scenario: devices (%d) exceeds delay-space nodes (%d)"
         config.devices n);
  let rng = Rng.create ((config.seed * 0x9e37) + 0x51) in
  let nodes = Rng.sample_indices rng ~n ~k:config.devices in
  Array.sort compare nodes;
  let specs =
    Array.mapi
      (fun i node ->
        { Ring.node; zone = i mod config.zones; weight = Rng.choice rng weights })
      nodes
  in
  let ring =
    Ring.create ~seed:config.seed ~part_power:config.part_power
      ~replicas:config.replicas specs
  in
  let is_device = Array.make n false in
  Array.iter (fun node -> is_device.(node) <- true) nodes;
  let clients =
    let all = List.init n Fun.id in
    match List.filter (fun i -> not is_device.(i)) all with
    | [] -> Array.of_list all
    | cs -> Array.of_list cs
  in
  let parts = Ring.parts ring and replicas = Ring.replicas ring in
  let serving = Array.make (parts * replicas) (-1) in
  for p = 0 to parts - 1 do
    Array.blit (Ring.assignment ring p) 0 serving (p * replicas) replicas
  done;
  Engine.register_plane engine "store";
  Engine.register_plane engine "store_repair";
  {
    config;
    policy;
    backend;
    engine;
    arbiter;
    ring;
    clients;
    zipf = Zipf.create ~n:config.objects ~s:config.zipf_s;
    wl = Rng.create ((config.seed * 0x9e37) + 0x6d);
    obj_rng = Rng.create ((config.seed * 0x9e37) + 0x7f);
    believed_down = Array.make config.devices false;
    serving;
    inst = make_instruments (Engine.obs engine);
    passes = 0;
    total_checked = 0;
    total_rehomed = 0;
    total_restored = 0;
    total_denied = 0;
  }

let ring t = t.ring
let config t = t.config
let policy t = t.policy
let clients t = Array.copy t.clients

let serving t part =
  Array.init t.config.replicas (fun r -> t.serving.((part * t.config.replicas) + r))

let device_node t id =
  match Ring.device t.ring id with
  | Some d -> d.Ring.node
  | None -> invalid_arg (Printf.sprintf "Store.Scenario: unknown device %d" id)

let ground_up t id =
  match Engine.churn t.engine with
  | Some c -> Churn.is_up c (device_node t id)
  | None -> true

(* What the read actually experiences on the chosen link right now:
   the static true delay plus whatever extra delay the dynamics plane
   currently imposes (route flaps, detours).  Fresh measurements track
   this; stale estimates do not. *)
let service_delay t client node =
  let base = Backend.query t.backend client node in
  if Float.is_nan base then nan
  else
    match Engine.dynamics t.engine with
    | Some d -> base +. (Dynamics.link d client node).Profile.extra_delay
    | None -> base

type read_outcome = {
  obj : int;
  part : int;
  client : int;
  device : int option;
  latency_ms : float;
  probes : int;
  attempts : int;
  handoff : bool;
}

let read t ~client ~obj =
  let part = Ring.partition_of t.ring obj in
  let penalties = ref 0. and probes = ref 0 and attempts = ref 0 in
  let remaining =
    ref (Array.to_list (Array.map (fun id -> (id, device_node t id)) (serving t part)))
  in
  let finish ?device latency handoff =
    Obs.Counter.incr t.inst.c_reads;
    (match device with
    | Some _ ->
        Obs.Histogram.observe t.inst.h_read_ms latency;
        if handoff then Obs.Counter.incr t.inst.c_handoff
    | None -> Obs.Counter.incr t.inst.c_failures);
    { obj; part; client; device; latency_ms = latency; probes = !probes;
      attempts = !attempts; handoff }
  in
  let try_serve id node =
    incr attempts;
    if ground_up t id then begin
      let d = service_delay t client node in
      if Float.is_nan d then begin
        penalties := !penalties +. t.config.failure_penalty_ms;
        Obs.Counter.incr t.inst.c_dead;
        None
      end
      else Some (!penalties +. d)
    end
    else begin
      penalties := !penalties +. t.config.failure_penalty_ms;
      Obs.Counter.incr t.inst.c_dead;
      None
    end
  in
  let rec policy_attempts () =
    match !remaining with
    | [] -> handoff_walk ()
    | cands -> (
        match
          Policy.select ~label:"store" t.policy ~engine:t.engine ~client
            ~candidates:(Array.of_list cands)
        with
        | None -> handoff_walk ()
        | Some c -> (
            probes := !probes + c.Policy.probes;
            match try_serve c.Policy.device c.Policy.node with
            | Some latency -> finish ~device:c.Policy.device latency false
            | None ->
                remaining := List.filter (fun (id, _) -> id <> c.Policy.device) cands;
                policy_attempts ()))
  and handoff_walk () =
    let rec walk = function
      | [] -> finish !penalties true
      | id :: rest -> (
          match try_serve id (device_node t id) with
          | Some latency -> finish ~device:id latency true
          | None -> walk rest)
    in
    walk (Array.to_list (Ring.handoff t.ring part))
  in
  policy_attempts ()

type pass_outcome = {
  pass : int;
  time : float;
  checked : int;
  rehomed : int;
  restored : int;
  denied : int;
}

(* The believed-up device nearest [id] by cyclic id order: who probes
   [id]'s liveness.  Falls back to any live peer so a fully-suspected
   cluster still gets probed (from a possibly-dead peer, whose probes
   then fail — honest pessimism). *)
let prober_for t id =
  let ids = Array.map (fun d -> d.Ring.id) (Ring.devices t.ring) in
  let n = Array.length ids in
  let pos = ref 0 in
  Array.iteri (fun k d -> if d = id then pos := k) ids;
  let rec find k =
    if k >= n then ids.((!pos + 1) mod n)
    else
      let cand = ids.((!pos + k) mod n) in
      if cand <> id && not t.believed_down.(cand) then cand else find (k + 1)
  in
  find 1

let rehome t id =
  let replicas = t.config.replicas in
  let moved = ref 0 in
  for part = 0 to Ring.parts t.ring - 1 do
    for r = 0 to replicas - 1 do
      let slot = (part * replicas) + r in
      if t.serving.(slot) = id then begin
        let current = serving t part in
        let eligible cand =
          (not t.believed_down.(cand)) && not (Array.exists (( = ) cand) current)
        in
        match Array.to_seq (Ring.handoff t.ring part) |> Seq.find eligible with
        | Some cand ->
            t.serving.(slot) <- cand;
            incr moved
        | None -> ()
      end
    done
  done;
  !moved

let restore t id =
  let replicas = t.config.replicas in
  let moved = ref 0 in
  for part = 0 to Ring.parts t.ring - 1 do
    let primary = Ring.assignment t.ring part in
    for r = 0 to replicas - 1 do
      let slot = (part * replicas) + r in
      if primary.(r) = id && t.serving.(slot) <> id then begin
        t.serving.(slot) <- id;
        incr moved
      end
    done
  done;
  !moved

let repair_pass t =
  let now = Engine.now t.engine in
  let checked = ref 0 and rehomed = ref 0 and restored = ref 0 and denied = ref 0 in
  Array.iter
    (fun d ->
      let id = d.Ring.id in
      let admitted =
        match t.arbiter with
        | Some a -> Arbiter.admit a ~now "store_repair"
        | None -> true
      in
      if not admitted then begin
        incr denied;
        Obs.Counter.incr t.inst.c_denied
      end
      else begin
        let prober = prober_for t id in
        let rtt =
          if prober = id then 0.
          else
            Engine.rtt ~label:"store_repair" t.engine (device_node t prober)
              (device_node t id)
        in
        incr checked;
        Obs.Counter.incr t.inst.c_checked;
        let alive = not (Float.is_nan rtt) in
        if alive && t.believed_down.(id) then begin
          t.believed_down.(id) <- false;
          let k = restore t id in
          restored := !restored + k;
          Obs.Counter.add t.inst.c_restored (float_of_int k)
        end
        else if (not alive) && not t.believed_down.(id) then begin
          t.believed_down.(id) <- true;
          let k = rehome t id in
          rehomed := !rehomed + k;
          Obs.Counter.add t.inst.c_rehomed (float_of_int k)
        end
      end)
    (Ring.devices t.ring);
  t.passes <- t.passes + 1;
  t.total_checked <- t.total_checked + !checked;
  t.total_rehomed <- t.total_rehomed + !rehomed;
  t.total_restored <- t.total_restored + !restored;
  t.total_denied <- t.total_denied + !denied;
  {
    pass = t.passes;
    time = now;
    checked = !checked;
    rehomed = !rehomed;
    restored = !restored;
    denied = !denied;
  }

type repair_totals = {
  passes : int;
  total_checked : int;
  total_rehomed : int;
  total_restored : int;
  total_denied : int;
}

type result = {
  issued : int;
  completed : int;
  failed : int;
  skipped : int;
  handoffs : int;
  dead_attempts : int;
  policy_probes : int;
  latencies : float array;
  repair : repair_totals;
}

let run ?trace ?repair_trace t =
  let sim = Sim.create () in
  Sim.on_advance sim (fun time -> Engine.advance_to t.engine time);
  let c = t.config in
  if c.repair_interval > 0. then
    Sim.schedule_every sim ~start:c.repair_interval ~every:c.repair_interval (fun () ->
        let out = repair_pass t in
        Option.iter (fun f -> f out) repair_trace;
        true);
  let issued = ref 0 and completed = ref 0 and failed = ref 0 and skipped = ref 0 in
  let handoffs = ref 0 and dead = ref 0 and probes = ref 0 in
  let lat = ref [] in
  for i = 0 to c.reads - 1 do
    let at = c.duration *. float_of_int (i + 1) /. float_of_int (c.reads + 1) in
    Sim.schedule_at sim at (fun () ->
        let client = t.clients.(Rng.int t.wl (Array.length t.clients)) in
        let client_up =
          match Engine.churn t.engine with Some ch -> Churn.is_up ch client | None -> true
        in
        let obj = Zipf.sample t.zipf t.obj_rng in
        if not client_up then begin
          incr skipped;
          Obs.Counter.incr t.inst.c_skipped
        end
        else begin
          incr issued;
          let out = read t ~client ~obj in
          Option.iter (fun f -> f out) trace;
          probes := !probes + out.probes;
          dead := !dead + (out.attempts - if out.device = None then 0 else 1);
          if out.handoff then incr handoffs;
          match out.device with
          | Some _ ->
              incr completed;
              lat := out.latency_ms :: !lat
          | None -> incr failed
        end)
  done;
  Sim.run sim ~until:c.duration;
  {
    issued = !issued;
    completed = !completed;
    failed = !failed;
    skipped = !skipped;
    handoffs = !handoffs;
    dead_attempts = !dead;
    policy_probes = !probes;
    latencies = Array.of_list (List.rev !lat);
    repair =
      {
        passes = t.passes;
        total_checked = t.total_checked;
        total_rehomed = t.total_rehomed;
        total_restored = t.total_restored;
        total_denied = t.total_denied;
      };
  }
