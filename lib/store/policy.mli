(** Replica-selection policies: how a proxy picks which replica of a
    partition serves a read.

    Every policy sees the same candidate list — [(device id, node)]
    pairs — and any measurement it wants costs a probe through the
    {!Tivaware_measure.Engine}, so loss, churn, budgets and dynamics
    hit every policy alike.  The four policies reproduce the paper's
    server-selection spectrum:

    - {!naive} — static proximity: probe a client/replica pair once,
      trust the estimate forever.  Free after warm-up, blind to churn
      and to route dynamics.
    - {!coordinate} — Vivaldi-style: rank replicas by predicted
      coordinate distance, zero probes per read.  Exactly the selection
      TIVs silently break — shrunk edges look closer than they are.
    - {!probe} — Meridian-style direct measurement
      ({!Tivaware_meridian.Query.closest_among}): every candidate is
      probed on every read.  Accurate and expensive.
    - {!alert} — TIV-alert-aware: walk candidates in predicted order
      but verify each with one probe
      ({!Tivaware_tiv.Alert.alert_pair}); a candidate whose prediction
      ratio flags a likely-shrunk edge is skipped while any clean
      candidate remains. *)

type t

val naive : unit -> t
(** Carries its own estimate cache (probe once per (client, node)
    pair); failed probes are retried on later reads rather than cached. *)

val coordinate : (int -> int -> float) -> t
(** [coordinate predicted]: rank by [predicted client node]. *)

val probe : unit -> t

val alert : ?threshold:float -> (int -> int -> float) -> t
(** [alert predicted] with the prediction-ratio [threshold]
    (default {!default_threshold}). *)

val default_threshold : float
(** 0.5 — an edge measured at more than twice its predicted distance
    is flagged as likely-severe. *)

val name : t -> string
(** ["naive" | "coordinate" | "probe" | "alert"]. *)

type choice = {
  device : int;
  node : int;
  estimate : float;
      (** what the policy believed about the chosen replica: cached or
          fresh measurement for probing policies, the coordinate
          prediction for {!coordinate} *)
  probes : int;  (** probes issued during this selection *)
  skipped_flagged : int;
      (** {!alert} only: candidates passed over on a TIV alert *)
}

val select :
  ?label:string ->
  t ->
  engine:Tivaware_measure.Engine.t ->
  client:int ->
  candidates:(int * int) array ->
  choice option
(** Pick a replica for [client] among [candidates] ([(device, node)]).
    Probes carry [label] (plane attribution; default ["store"]).
    Unmeasurable candidates are skipped; [None] when the policy cannot
    rank anyone (empty list, or every probe failed).  Deterministic:
    ties break toward the earlier candidate in array order, so two
    policies ranking candidates identically choose identically. *)
