module Engine = Tivaware_measure.Engine
module Alert = Tivaware_tiv.Alert
module Query = Tivaware_meridian.Query

type kind =
  | Naive of (int * int, float) Hashtbl.t
  | Coordinate of (int -> int -> float)
  | Probe
  | Alert_aware of { predicted : int -> int -> float; threshold : float }

type t = kind

let default_threshold = 0.5
let naive () = Naive (Hashtbl.create 256)
let coordinate predicted = Coordinate predicted
let probe () = Probe

let alert ?(threshold = default_threshold) predicted =
  if not (Float.is_finite threshold) || threshold <= 0. then
    invalid_arg
      (Printf.sprintf "Store.Policy.alert: threshold must be positive and finite (got %g)"
         threshold);
  Alert_aware { predicted; threshold }

let name = function
  | Naive _ -> "naive"
  | Coordinate _ -> "coordinate"
  | Probe -> "probe"
  | Alert_aware _ -> "alert"

type choice = {
  device : int;
  node : int;
  estimate : float;
  probes : int;
  skipped_flagged : int;
}

(* First strict minimum in candidate order — the shared tie-break rule
   that makes policies agree whenever their rankings agree. *)
let argmin_by estimates candidates =
  let best = ref None in
  Array.iteri
    (fun k (dev, node) ->
      let e = estimates.(k) in
      if not (Float.is_nan e) then
        match !best with
        | Some (_, _, be) when be <= e -> ()
        | _ -> best := Some (dev, node, e))
    candidates;
  !best

let select ?(label = "store") t ~engine ~client ~candidates =
  if Array.length candidates = 0 then None
  else
    match t with
    | Coordinate predicted ->
        let est = Array.map (fun (_, node) -> predicted client node) candidates in
        Option.map
          (fun (device, node, estimate) ->
            { device; node; estimate; probes = 0; skipped_flagged = 0 })
          (argmin_by est candidates)
    | Naive cache ->
        let probes = ref 0 in
        let est =
          Array.map
            (fun (_, node) ->
              match Hashtbl.find_opt cache (client, node) with
              | Some e -> e
              | None ->
                  incr probes;
                  let d = Engine.rtt ~label engine client node in
                  if not (Float.is_nan d) then Hashtbl.replace cache (client, node) d;
                  d)
            candidates
        in
        Option.map
          (fun (device, node, estimate) ->
            { device; node; estimate; probes = !probes; skipped_flagged = 0 })
          (argmin_by est candidates)
    | Probe ->
        let nodes = Array.map snd candidates in
        Option.bind (Query.closest_among ~label engine ~target:client ~candidates:nodes)
          (fun (node, estimate) ->
            Array.to_seq candidates
            |> Seq.find (fun (_, n) -> n = node)
            |> Option.map (fun (device, _) ->
                   {
                     device;
                     node;
                     estimate;
                     probes = Array.length nodes;
                     skipped_flagged = 0;
                   }))
    | Alert_aware { predicted; threshold } ->
        (* Walk candidates by ascending prediction; one verification
           probe each; take the first clean one.  Stable sort keeps
           candidate order on equal predictions, matching the other
           policies' tie-break. *)
        let order = Array.mapi (fun k (_, node) -> (k, predicted client node)) candidates in
        Array.stable_sort
          (fun (_, a) (_, b) ->
            match (Float.is_nan a, Float.is_nan b) with
            | true, true -> 0
            | true, false -> 1  (* unpredicted candidates go last *)
            | false, true -> -1
            | false, false -> compare a b)
          order;
        let probes = ref 0 and skipped = ref 0 in
        let best_flagged = ref None in
        let clean = ref None in
        let k = ref 0 in
        while !clean = None && !k < Array.length order do
          let idx, _ = order.(!k) in
          let device, node = candidates.(idx) in
          incr probes;
          (match
             Alert.alert_pair ~label ~engine ~predicted ~threshold client node
           with
          | `Unmeasurable -> ()
          | `Clean d -> clean := Some (device, node, d)
          | `Flagged d -> (
              incr skipped;
              match !best_flagged with
              | Some (_, _, bd) when bd <= d -> ()
              | _ -> best_flagged := Some (device, node, d)));
          incr k
        done;
        Option.map
          (fun (device, node, estimate) ->
            { device; node; estimate; probes = !probes; skipped_flagged = !skipped })
          (match !clean with Some c -> Some c | None -> !best_flagged)
