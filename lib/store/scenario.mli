(** The object-store read-path scenario: Zipf-popular GETs routed by a
    proxy through a replica-selection {!Policy} over a {!Ring}, under
    churn and network dynamics, with a repair plane re-homing
    partitions away from dead devices.

    Devices are a seeded sample of the delay space's nodes; clients
    are drawn from the remainder.  A read hashes its object to a
    partition, asks the policy to pick among the partition's currently
    {e serving} devices, and pays [failure_penalty_ms] (a timeout) for
    every attempt on a device that is in fact down — then retries on
    the remaining candidates and finally walks the ring's handoff
    order.  The repair plane probes device liveness on the
    ["store_repair"] plane (optionally token-gated by an
    {!Tivaware_measure.Arbiter} against foreground ["store"] probes)
    and substitutes handoff devices for believed-dead primaries, so
    the window in which reads hit dead replicas is the repair
    interval.  Everything is deterministic in the config seed and the
    engine's seeds. *)

type config = {
  devices : int;  (** devices sampled from the delay space's nodes *)
  zones : int;  (** failure zones, assigned round-robin *)
  part_power : int;
  replicas : int;
  objects : int;
  zipf_s : float;  (** object popularity skew *)
  reads : int;  (** reads spread evenly over [duration] *)
  duration : float;  (** seconds of simulated time *)
  repair_interval : float;  (** seconds between repair passes; <= 0 = off *)
  failure_penalty_ms : float;  (** per dead-replica attempt (timeout) *)
  seed : int;
}

val default_config : config
(** 24 devices in 4 zones, part_power 6, 3 replicas, 256 objects at
    s = 0.9, 600 reads over 120 s, 10 s repair, 3000 ms penalty,
    seed 7. *)

val validate_config : string -> config -> unit
(** Raises [Invalid_argument] naming the offending field: [devices]
    or [objects] non-positive, [replicas] non-positive or exceeding
    [devices], [zones] non-positive, [part_power] outside [0, 20],
    [zipf_s] negative or non-finite, [reads] negative, [duration]
    non-positive, [failure_penalty_ms] negative. *)

type t

val create :
  ?arbiter:Tivaware_measure.Arbiter.t ->
  config:config ->
  policy:Policy.t ->
  backend:Tivaware_backend.Delay_backend.t ->
  engine:Tivaware_measure.Engine.t ->
  unit ->
  t
(** Samples devices, builds the ring, and registers the scenario's
    instruments on the engine's registry: counters [store.reads],
    [store.read_failures], [store.skipped], [store.dead_attempts],
    [store.handoff_reads], the repair family labelled [plane=store]
    ([repair.checked], [repair.rehomed], [repair.restored],
    [repair.denied]), histogram [store.read_ms], and the ["store"] /
    ["store_repair"] probe planes
    ({!Tivaware_measure.Engine.register_plane}).  The engine must be
    over [backend] (ground truth reads it); [arbiter] gates the repair
    plane's probes under the ["store_repair"] share. *)

val ring : t -> Ring.t
val config : t -> config
val policy : t -> Policy.t

val serving : t -> int -> int array
(** The device ids currently serving a partition — the ring assignment
    with believed-dead devices substituted by repair (a copy). *)

val clients : t -> int array
(** Nodes reads are issued from (every node not hosting a device; all
    nodes when the sample uses the whole space). *)

type read_outcome = {
  obj : int;
  part : int;
  client : int;
  device : int option;  (** serving device; [None] = read failed *)
  latency_ms : float;  (** dead-attempt penalties + service delay *)
  probes : int;  (** selection probes across attempts *)
  attempts : int;  (** devices tried, dead ones included *)
  handoff : bool;  (** the handoff walk was needed *)
}

val read : t -> client:int -> obj:int -> read_outcome
(** One GET at the engine's current clock.  Service delay is the true
    backend delay plus the dynamics plane's current extra delay on the
    chosen link, so stale estimates mispredict exactly when routes
    shift. *)

type pass_outcome = {
  pass : int;
  time : float;
  checked : int;
  rehomed : int;  (** partitions moved off newly-believed-dead devices *)
  restored : int;  (** partitions returned to revived primaries *)
  denied : int;  (** liveness probes refused by the arbiter *)
}

val repair_pass : t -> pass_outcome
(** One repair sweep at the engine's current clock: every device's
    liveness is probed (plane ["store_repair"]) from its nearest
    believed-up peer by id; transitions re-home or restore the serving
    table through the ring's handoff order. *)

type repair_totals = {
  passes : int;
  total_checked : int;
  total_rehomed : int;
  total_restored : int;
  total_denied : int;
}

type result = {
  issued : int;
  completed : int;
  failed : int;
  skipped : int;  (** reads whose client was down *)
  handoffs : int;
  dead_attempts : int;
  policy_probes : int;
  latencies : float array;  (** completed reads, in event order *)
  repair : repair_totals;
}

val run :
  ?trace:(read_outcome -> unit) ->
  ?repair_trace:(pass_outcome -> unit) ->
  t ->
  result
(** Drives the scenario on a fresh event simulator: [reads] GETs at
    evenly spaced times over [duration] (Zipf objects, seeded round-
    robin clients; a read whose client is down is skipped), repair
    passes every [repair_interval] seconds, the engine clock slaved to
    the simulator.  Callbacks observe each event in order. *)
