(** A partition → device consistent-hashing ring, after OpenStack
    Swift's ring builder.

    Objects hash to one of [2^part_power] {e partitions}; each
    partition is assigned [replicas] distinct {e devices}.  Devices
    carry a relative [weight] (capacity) and live in a failure [zone];
    the builder targets weight-proportional slot counts while keeping a
    partition's replicas in as many distinct zones as possible.  A
    rebalance after adding or removing a device moves only the minimal
    number of partition replicas: the new device pulls at most its
    (rounded) fair share, a removed device's slots are the only ones
    reassigned, and no slot moves between surviving devices.

    Everything is a pure function of the construction sequence and the
    [seed]: same inputs, bit-identical assignment. *)

type spec = { node : int; zone : int; weight : float }
(** A device to place: the delay-space node it lives on, its failure
    zone, and its relative capacity. *)

type device = { id : int; node : int; zone : int; weight : float }
(** A placed device.  Ids are dense, assigned in creation order, and
    never reused after removal. *)

type t

val create : ?seed:int -> part_power:int -> replicas:int -> spec array -> t
(** [create ~part_power ~replicas specs] builds the ring and assigns
    every partition replica.  Raises [Invalid_argument] naming the
    offending field when [part_power] is outside [0, 20], [replicas]
    is non-positive or exceeds the device count, a [weight] is not
    positive and finite, or a [node] or [zone] is negative. *)

val part_power : t -> int
val parts : t -> int
val replicas : t -> int
val seed : t -> int

val size : t -> int
(** Live device count. *)

val devices : t -> device array
(** Live devices in id order. *)

val device : t -> int -> device option
(** [None] for removed or never-assigned ids. *)

val assignment : t -> int -> int array
(** Device ids assigned to a partition (length [replicas], all
    distinct).  A copy. *)

val partition_of : t -> int -> int
(** Hash an object id to its partition.  Independent of the device
    set, so rebalances never remap objects to other partitions. *)

val handoff : t -> int -> int array
(** The [get_more_nodes] walk: every live device {e not} assigned to
    the partition, in a deterministic seeded order that visits one
    device from each zone missing from the partition before any
    other — so the first handoffs restore zone dispersion.  Never
    repeats an assigned device. *)

val add_device : t -> spec -> int
(** Adds a device and rebalances: the newcomer steals slots from the
    most-overfull donors (preferring partitions where its zone is not
    yet present) until it holds its rounded fair share.  Only
    donor → newcomer moves happen.  Returns the new id. *)

val remove_device : t -> int -> unit
(** Removes a live device and reassigns exactly the slots it held to
    the most-underfull eligible survivors.  Raises [Invalid_argument]
    on an unknown id or when removal would leave fewer devices than
    [replicas]. *)

val last_moves : t -> int
(** Partition-replica slots reassigned by the most recent
    {!add_device} or {!remove_device} (0 after [create]). *)

val desired_share : t -> int -> float
(** The weight-proportional slot count the builder targets for a live
    device, capped at [parts] (a device holds at most one replica of a
    partition); excess is redistributed over the uncapped devices. *)

val assigned : t -> int -> int
(** Slots currently held by a device (0 for removed ids). *)
