(** Delay-plane backends: the delay space as a query service.

    The original reproduction materializes every delay space as a dense
    upper-triangular {!Tivaware_delay_space.Matrix.t} — O(N²) floats,
    which caps experiments at toy scale.  The IDMS line of work
    ("Internet Delay Matrix Service") inverts the architecture: a
    backend {e answers delay queries on demand}, and only the model
    needed to answer them is kept resident.  This module provides that
    abstraction with three implementations:

    - {b Dense} — wraps an existing matrix.  Queries are [Matrix.get];
      {!oracle} returns the historical [Oracle.of_matrix], so every
      existing dense pipeline (and its golden trace) is bit-identical.
    - {b Lazy} — synthesizes each queried pair's delay on demand from a
      DS² {!Tivaware_topology.Synthesizer.model}.  Per-pair
      determinism comes from hashing [(seed, i, j)] into a private
      SplitMix64 stream, so the delay for a pair is independent of
      query order and never needs to be stored — resident state is the
      O(clusters²) model, the O(N) bucket assignment, and an optional
      bounded LRU memo of materialized pairs.
    - {b Sparse} — a hash table of explicitly [set] edges over an
      optional base backend (absent pairs fall through; with no base
      they are [nan]).  For golden fixtures, repairs and overrides.

    All backends answer [0.] on the diagonal and [nan] for
    unmeasurable pairs, matching the matrix contract. *)

type t

(** {2 Constructors} *)

val dense : Tivaware_delay_space.Matrix.t -> t

val lazy_synth :
  ?jitter:float ->
  ?memo:int ->
  seed:int ->
  size:int ->
  Tivaware_topology.Synthesizer.model ->
  t
(** [lazy_synth ~seed ~size model] is a [size]-node delay space drawn
    lazily from [model].  [jitter] is the per-draw smoothing factor
    (default 0.05, as {!Tivaware_topology.Synthesizer.synthesize}).
    [memo] bounds an optional LRU cache of materialized pairs (entries;
    omitted = recompute every query — still deterministic).  The
    cluster assignment is fixed up front from [seed] (O(N) ints);
    each pair's delay is then a pure function of [(seed, i, j)].
    Raises [Invalid_argument] on [size < 2], jitter outside [0, 1) or
    [memo < 1]. *)

val sparse : ?base:t -> size:int -> unit -> t
(** Explicit-edge backend.  Queries hit the edge table first, then
    [base] (when given; sizes must agree), else [nan]. *)

val of_fn : size:int -> (int -> int -> float) -> t
(** Wraps an arbitrary symmetric delay function ([0.] diagonal, [nan]
    unmeasurable), e.g. to adapt a function-backed oracle. *)

(** {2 Queries} *)

val size : t -> int

val query : t -> int -> int -> float
(** True delay in ms between two nodes; [0.] on the diagonal, [nan]
    when unmeasurable.  Raises [Invalid_argument] out of range. *)

val set : t -> int -> int -> float -> unit
(** Sparse backends only ([Invalid_argument] otherwise): sets the
    delay for a pair ([nan] removes the override so the base shows
    through again). *)

val neighbors_sampled :
  t -> Tivaware_util.Rng.t -> int -> k:int -> (int * float) array
(** [neighbors_sampled t rng i ~k]: [k] distinct nodes sampled
    uniformly (excluding [i]; capped at [size - 1]) with their measured
    delays, unmeasurable pairs dropped.  The bounded replacement for
    [Matrix.neighbors]' O(N) row scan — a lazy space materializes only
    the sampled pairs. *)

val nearest_sampled :
  t -> Tivaware_util.Rng.t -> int -> k:int -> (int * float) option
(** Closest node among a [k]-sample (the bounded replacement for
    [Matrix.nearest_neighbor]); [None] when every sampled pair is
    unmeasurable. *)

(** {2 Introspection} *)

val kind_name : t -> string
(** ["dense"], ["lazy"], ["sparse"] or ["fn"] — the [backend] label on
    every {!attach_obs} series. *)

val matrix : t -> Tivaware_delay_space.Matrix.t option
(** The backing matrix of a dense backend. *)

val labels : t -> int array option
(** Synthetic cluster labels of a lazy backend ([-1] = noise), as
    {!Tivaware_topology.Synthesizer.synthesize_with_clusters}. *)

val materialized : t -> int
(** Pairs currently held resident: all of them for dense, the live
    memo entries for lazy, the explicit edges for sparse, 0 for fn. *)

val densify : t -> Tivaware_delay_space.Matrix.t
(** Materializes the full matrix by querying every pair — O(N²); the
    bridge back to dense-only analyses at small N. *)

(** {2 Measurement plane} *)

type Tivaware_measure.Oracle.ext += Backend of t
(** How an oracle built by {!oracle} remembers its backend. *)

val oracle : t -> Tivaware_measure.Oracle.t
(** Dense backends return [Oracle.of_matrix] (bit-identical to the
    historical path, [matrix_exn] included); every other kind returns a
    function-backed oracle tagged with {!Backend} so {!of_oracle} can
    recover it. *)

val engine : ?config:Tivaware_measure.Engine.config -> t -> Tivaware_measure.Engine.t
(** [Engine.create] over {!oracle}. *)

val of_oracle : Tivaware_measure.Oracle.t -> t
(** Recovers the backend an oracle was built from: the {!Backend} tag
    if present, else a dense wrap of its matrix, else an [of_fn] wrap
    of [Oracle.query].  Always succeeds. *)

val of_engine : Tivaware_measure.Engine.t -> t
(** {!of_oracle} on the engine's oracle — how evaluation code gets
    ground truth without [matrix_exn]. *)

(** {2 Observability} *)

val attach_obs : t -> Tivaware_obs.Registry.t -> unit
(** Registers and wires this backend's instruments, all labelled
    [backend=<kind_name>]: counters [backend.queries],
    [backend.synthesized] (fresh lazy draws), [backend.memo_hits],
    [backend.memo_evictions]; gauge [backend.materialized]; histogram
    [backend.query_draws] — per-query cost in RNG draws (0 = free or
    memoized lookup, 1 = missing-pair trial, 3 = realized synthesis),
    kept in deterministic units so metrics fixtures stay stable. *)
