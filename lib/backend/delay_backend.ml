module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Synthesizer = Tivaware_topology.Synthesizer
module Oracle = Tivaware_measure.Oracle
module Engine = Tivaware_measure.Engine
module Cache = Tivaware_measure.Cache
module Obs = Tivaware_obs

type instruments = {
  queries : Obs.Counter.t;
  synthesized : Obs.Counter.t;
  memo_hits : Obs.Counter.t;
  memo_evictions : Obs.Counter.t;
  materialized_gauge : Obs.Gauge.t;
  draws : Obs.Histogram.t;
}

type lazy_state = {
  model : Synthesizer.model;
  seed : int;
  jitter : float;
  bucket_of : int array;
  lazy_labels : int array;
  memo : Cache.t option;
}

type kind =
  | Dense of Matrix.t
  | Lazy of lazy_state
  | Sparse of { base : t option; edges : (int * int, float) Hashtbl.t }
  | Fn of (int -> int -> float)

and t = {
  size : int;
  kind : kind;
  mutable inst : instruments option;
}

type Oracle.ext += Backend of t

let size t = t.size

let kind_name t =
  match t.kind with
  | Dense _ -> "dense"
  | Lazy _ -> "lazy"
  | Sparse _ -> "sparse"
  | Fn _ -> "fn"

let dense m = { size = Matrix.size m; kind = Dense m; inst = None }

(* Every pair gets its own SplitMix64 stream, seeded by finalizer-mixing
   (seed, min i j, max i j).  Query order therefore cannot matter: the
   draw for a pair is a pure function of the backend seed and the pair. *)
let pair_seed seed i j =
  let i, j = if i < j then (i, j) else (j, i) in
  let mix z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  let open Int64 in
  let h = mix (add (of_int seed) 0x9E3779B97F4A7C15L) in
  let h = mix (logxor h (of_int i)) in
  let h = mix (logxor h (of_int j)) in
  Int64.to_int h

let lazy_synth ?(jitter = 0.05) ?memo ~seed ~size model =
  if size < 2 then invalid_arg "Delay_backend.lazy_synth: size must be >= 2";
  if jitter < 0. || jitter >= 1. then
    invalid_arg "Delay_backend.lazy_synth: jitter must be in [0, 1)";
  (match memo with
  | Some c when c < 1 ->
    invalid_arg "Delay_backend.lazy_synth: memo capacity must be >= 1"
  | _ -> ());
  (* The bucket assignment is the only size-dependent state: O(N) ints,
     never O(N^2) delays.  It consumes the seed's stream exactly like
     the eager synthesizer's assignment pass. *)
  let rng = Rng.create seed in
  let bucket_of = Synthesizer.assign_buckets rng model ~size in
  let lazy_labels = Synthesizer.bucket_labels model bucket_of in
  let memo =
    Option.map (fun capacity -> Cache.create ~capacity ~ttl:infinity ()) memo
  in
  {
    size;
    kind = Lazy { model; seed; jitter; bucket_of; lazy_labels; memo };
    inst = None;
  }

let sparse ?base ~size () =
  (match base with
  | Some b when b.size <> size ->
    invalid_arg "Delay_backend.sparse: base size mismatch"
  | _ -> ());
  if size < 1 then invalid_arg "Delay_backend.sparse: size must be >= 1";
  { size; kind = Sparse { base; edges = Hashtbl.create 64 }; inst = None }

let of_fn ~size f =
  if size < 1 then invalid_arg "Delay_backend.of_fn: size must be >= 1";
  { size; kind = Fn f; inst = None }

let materialized t =
  match t.kind with
  | Dense m -> Matrix.size m * (Matrix.size m - 1) / 2
  | Lazy { memo = Some c; _ } -> Cache.length c
  | Lazy { memo = None; _ } -> 0
  | Sparse { edges; _ } -> Hashtbl.length edges
  | Fn _ -> 0

let draw_lazy ls i j =
  let rng = Rng.create (pair_seed ls.seed i j) in
  Synthesizer.draw_delay ~jitter:ls.jitter rng ls.model
    ~a:ls.bucket_of.(i) ~b:ls.bucket_of.(j)

(* Free lookups (dense, sparse, fn) count as zero-draw queries. *)
let observe_free_query t =
  match t.inst with
  | None -> ()
  | Some inst ->
    Obs.Counter.incr inst.queries;
    Obs.Histogram.observe inst.draws 0.

let rec query t i j =
  if i < 0 || i >= t.size || j < 0 || j >= t.size then
    invalid_arg "Delay_backend.query: node out of range";
  if i = j then 0.
  else
    match t.kind with
    | Dense m ->
      observe_free_query t;
      Matrix.get m i j
    | Fn f ->
      observe_free_query t;
      f i j
    | Sparse { base; edges } -> begin
      observe_free_query t;
      let key = if i < j then (i, j) else (j, i) in
      match Hashtbl.find_opt edges key with
      | Some d -> d
      | None -> (
        match base with
        | Some b -> query b i j
        | None -> nan)
    end
    | Lazy ls -> begin
      let memo_hit =
        match ls.memo with
        | None -> None
        | Some c -> (
          match Cache.find c ~now:0. i j with
          | Cache.Hit d -> Some d
          | Cache.Stale | Cache.Miss -> None)
      in
      match memo_hit with
      | Some d ->
        (match t.inst with
        | Some inst ->
          Obs.Counter.incr inst.queries;
          Obs.Counter.incr inst.memo_hits;
          Obs.Histogram.observe inst.draws 0.
        | None -> ());
        d
      | None ->
        let d = draw_lazy ls i j in
        (* nan = 1 draw (missing trial, or an empty bucket after it);
           a realized delay = bernoulli + choice + jitter = 3 draws. *)
        let draws = if Float.is_nan d then 1. else 3. in
        let evicted =
          match ls.memo with
          | None -> 0
          | Some c -> Cache.store c ~now:0. i j d
        in
        (match t.inst with
        | Some inst ->
          Obs.Counter.incr inst.queries;
          Obs.Counter.incr inst.synthesized;
          Obs.Histogram.observe inst.draws draws;
          if evicted > 0 then
            Obs.Counter.add inst.memo_evictions (float_of_int evicted);
          Obs.Gauge.set inst.materialized_gauge (float_of_int (materialized t))
        | None -> ());
        d
    end

let set t i j d =
  match t.kind with
  | Sparse { edges; _ } ->
    if i < 0 || i >= t.size || j < 0 || j >= t.size then
      invalid_arg "Delay_backend.set: node out of range";
    if i = j then invalid_arg "Delay_backend.set: diagonal is fixed at 0";
    let key = if i < j then (i, j) else (j, i) in
    if Float.is_nan d then Hashtbl.remove edges key
    else Hashtbl.replace edges key d;
    (match t.inst with
    | Some inst ->
      Obs.Gauge.set inst.materialized_gauge (float_of_int (Hashtbl.length edges))
    | None -> ())
  | _ -> invalid_arg "Delay_backend.set: not a sparse backend"

let matrix t = match t.kind with Dense m -> Some m | _ -> None

let labels t =
  match t.kind with
  | Lazy ls -> Some (Array.copy ls.lazy_labels)
  | _ -> None

let densify t = Matrix.init t.size (fun i j -> query t i j)

let neighbors_sampled t rng i ~k =
  if i < 0 || i >= t.size then
    invalid_arg "Delay_backend.neighbors_sampled: node out of range";
  let n = t.size in
  let want = min k (n - 1) in
  if want <= 0 then [||]
  else begin
    let picks = Rng.sample_indices rng ~n:(n - 1) ~k:want in
    let out = ref [] in
    Array.iter
      (fun p ->
        let j = if p >= i then p + 1 else p in
        let d = query t i j in
        if not (Float.is_nan d) then out := (j, d) :: !out)
      picks;
    Array.of_list (List.rev !out)
  end

let nearest_sampled t rng i ~k =
  let candidates = neighbors_sampled t rng i ~k in
  Array.fold_left
    (fun best (j, d) ->
      match best with
      | Some (_, bd) when bd <= d -> best
      | _ -> Some (j, d))
    None candidates

let oracle t =
  match t.kind with
  (* The dense path must stay bit-identical to the historical
     Oracle.of_matrix: same lookup, matrix recoverable, no extra
     instrumentation on engine probes. *)
  | Dense m -> Oracle.of_matrix m
  | _ -> Oracle.of_fn ~ext:(Backend t) ~size:t.size (fun i j -> query t i j)

let engine ?config t = Engine.create ?config (oracle t)

let of_oracle o =
  match Oracle.ext o with
  | Some (Backend b) -> b
  | _ -> (
    match Oracle.matrix o with
    | Some m -> dense m
    | None -> of_fn ~size:(Oracle.size o) (fun i j -> Oracle.query o i j))

let of_engine e = of_oracle (Engine.oracle e)

let draw_edges = [| 0.; 1.; 3. |]

let attach_obs t reg =
  let labels = [ ("backend", kind_name t) ] in
  let inst =
    {
      queries = Obs.Registry.counter reg ~labels "backend.queries";
      synthesized = Obs.Registry.counter reg ~labels "backend.synthesized";
      memo_hits = Obs.Registry.counter reg ~labels "backend.memo_hits";
      memo_evictions = Obs.Registry.counter reg ~labels "backend.memo_evictions";
      materialized_gauge = Obs.Registry.gauge reg ~labels "backend.materialized";
      draws =
        Obs.Registry.histogram reg ~labels ~edges:draw_edges
          "backend.query_draws";
    }
  in
  Obs.Gauge.set inst.materialized_gauge (float_of_int (materialized t));
  t.inst <- Some inst
