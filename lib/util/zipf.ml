type t = {
  n : int;
  s : float;
  cumulative : float array;  (* cumulative.(r) = P(rank <= r); last = 1 *)
}

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if Float.is_nan s || s < 0. then
    invalid_arg "Zipf.create: s must be non-negative";
  let cumulative = Array.make n 0. in
  let total = ref 0. in
  for r = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (r + 1)) s);
    cumulative.(r) <- !total
  done;
  let norm = !total in
  for r = 0 to n - 1 do
    cumulative.(r) <- cumulative.(r) /. norm
  done;
  cumulative.(n - 1) <- 1.;
  { n; s; cumulative }

let n t = t.n
let s t = t.s

let probability t r =
  if r < 0 || r >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if r = 0 then t.cumulative.(0)
  else t.cumulative.(r) -. t.cumulative.(r - 1)

(* First rank whose cumulative mass covers the draw. *)
let sample t rng =
  let u = Rng.float rng 1. in
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) < u then search (mid + 1) hi else search lo mid
    end
  in
  search 0 (t.n - 1)
