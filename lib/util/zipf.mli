(** Zipf-distributed rank sampling.

    Key popularity in storage and DHT workloads is classically
    Zipfian: the [r]-th most popular of [n] items is requested with
    probability proportional to [1 / r^s].  The sampler precomputes
    the cumulative distribution once ([O(n)] floats) and draws by
    binary search ([O(log n)] per sample), consuming exactly one
    [Rng.float] draw per sample so workloads stay replayable. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] builds a sampler over ranks [0 .. n-1] with
    exponent [s >= 0] ([s = 0] is the uniform distribution; larger [s]
    concentrates mass on low ranks).  Raises [Invalid_argument] when
    [n < 1] or [s] is negative or NaN. *)

val n : t -> int
val s : t -> float

val sample : t -> Rng.t -> int
(** A rank in [0, n), rank 0 most popular.  One generator draw. *)

val probability : t -> int -> float
(** The sampling probability of a rank (for assertions and tables). *)
