(** Seeded node churn: alternating up/down lifetimes.

    A churn model picks a deterministic subset of nodes (the churning
    fraction) and gives each an independent schedule of exponential
    up/down lifetimes, all derived from [(seed, node)].  Driving the
    model to a time [T] yields the same up/down state no matter how the
    clock got there — one jump or many small steps — so event-driven
    (via [Sim.on_advance] slaving the engine clock) and synchronous
    (per-round [Engine.advance]) drivers see identical outage windows.

    The model does not deliver probes itself: {!drive} mirrors the
    schedule into a {!Fault} injector's node-outage set
    ({!Fault.set_down}), which the {!Engine} consults on every request —
    so a node in its down window never answers probes, and rejoins
    exactly when its down lifetime expires. *)

type config = {
  fraction : float;  (** share of nodes subject to churn, in [0, 1] *)
  mean_up : float;  (** mean up-lifetime in logical seconds (> 0) *)
  mean_down : float;  (** mean down-lifetime in logical seconds (> 0) *)
  seed : int;  (** schedule seed, independent of the fault seed *)
}

val default : config
(** 20% of nodes churning, 60 s mean up, 10 s mean down, seed 0. *)

val validate_config : string -> config -> unit
(** Raises [Invalid_argument] with a [ctx]-prefixed message on NaN or
    out-of-range fields. *)

type t

val create : ?config:config -> n:int -> unit -> t
(** All nodes start up; each churning node's first failure arrives
    after one exponential up-lifetime.  Raises [Invalid_argument] on an
    invalid config. *)

val config : t -> config

val churning : t -> int -> bool
(** Whether the node belongs to the churning subset. *)

val advance_to : t -> float -> unit
(** Advance the schedule clock (monotonic; earlier times are
    ignored). *)

val now : t -> float

val is_up : t -> int -> bool
(** Node state at the schedule's current time (non-churning nodes are
    always up). *)

val transitions : t -> int
(** Total up/down toggles processed so far. *)

val sync : t -> Fault.t -> unit
(** Mirror the current up/down state of every churning node into the
    injector's outage set. *)

val drive : t -> Fault.t -> time:float -> unit
(** [advance_to] followed by {!sync} — the hook the {!Engine} calls on
    every clock movement. *)
