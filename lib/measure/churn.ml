module Rng = Tivaware_util.Rng

type config = {
  fraction : float;
  mean_up : float;
  mean_down : float;
  seed : int;
}

let default = { fraction = 0.2; mean_up = 60.; mean_down = 10.; seed = 0 }

let validate_config ctx c =
  if Float.is_nan c.fraction || c.fraction < 0. || c.fraction > 1. then
    invalid_arg
      (Printf.sprintf "%s: churn fraction must be in [0, 1] (got %g)" ctx
         c.fraction);
  if Float.is_nan c.mean_up || c.mean_up <= 0. then
    invalid_arg
      (Printf.sprintf "%s: churn mean_up must be > 0 s (got %g)" ctx c.mean_up);
  if Float.is_nan c.mean_down || c.mean_down <= 0. then
    invalid_arg
      (Printf.sprintf "%s: churn mean_down must be > 0 s (got %g)" ctx
         c.mean_down)

(* A churning node's whole lifetime schedule flows from its own
   generator, so state at time T is a pure function of (seed, node, T)
   no matter how the clock was advanced to T. *)
type node_state = {
  rng : Rng.t;
  mutable up : bool;
  mutable next : float;  (* absolute time of the next toggle *)
}

type t = {
  config : config;
  nodes : node_state option array;
  mutable time : float;
  mutable transitions : int;
}

let create ?(config = default) ~n () =
  validate_config "Churn.create" config;
  let node_of i =
    let rng = Rng.create ((config.seed * 2_000_029) + i) in
    if Rng.float rng 1. < config.fraction then
      (* Every node starts up; the first failure arrives after one
         exponential up-lifetime. *)
      Some { rng; up = true; next = Rng.exponential rng ~rate:(1. /. config.mean_up) }
    else None
  in
  { config; nodes = Array.init n node_of; time = 0.; transitions = 0 }

let config t = t.config

let churning t i =
  i >= 0 && i < Array.length t.nodes && t.nodes.(i) <> None

let step_node t st time =
  while st.next <= time do
    st.up <- not st.up;
    t.transitions <- t.transitions + 1;
    let mean = if st.up then t.config.mean_up else t.config.mean_down in
    st.next <- st.next +. Rng.exponential st.rng ~rate:(1. /. mean)
  done

let advance_to t time =
  if time > t.time then begin
    Array.iter
      (function None -> () | Some st -> step_node t st time)
      t.nodes;
    t.time <- time
  end

let now t = t.time

let transitions t = t.transitions

let is_up t i =
  match if i >= 0 && i < Array.length t.nodes then t.nodes.(i) else None with
  | None -> true
  | Some st -> st.up

(* The fault injector's node-outage set is the ground truth probes are
   checked against; churn keeps it in sync with the schedule. *)
let sync t fault =
  Array.iteri
    (fun i st ->
      match st with
      | None -> ()
      | Some st -> Fault.set_down fault i (not st.up))
    t.nodes

let drive t fault ~time =
  advance_to t time;
  sync t fault
