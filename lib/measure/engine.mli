(** The probe engine: every delay lookup, mediated.

    Protocol layers (Vivaldi sampling, Meridian's recursive probing,
    the TIV alert, Chord PNS, the multicast overlay) historically read
    the delay matrix as a free, instantaneous, lossless oracle.  The
    engine interposes the measurement plane between them and the
    {!Oracle}:

    + a TTL'd, optionally capacity-bounded LRU {!Cache} (service mode)
      or none (on-demand mode),
    + per-node and engine-wide token-bucket {!Budget}s,
    + seeded {!Fault} injection (loss, jitter, outages) with a retry
      policy (fixed, exponential backoff, or adaptive),
    + {!Probe_stats} accounting, attributable per protocol label.

    The default configuration is the exact oracle model: no cache, no
    budget, no faults, no time charging — a probe is then a plain
    matrix lookup and the generator is never consulted, so existing
    experiments reproduce their seed results bit-for-bit when rewired
    through an engine.

    {2 Time model}

    Probe costs are expressed in the oracle's RTT unit — milliseconds
    throughout this repo — while the engine clock advances in logical
    {e seconds} (the unit budgets refill against and cache TTLs are
    written in).  A request's [cost] is what the issuing node waits
    for: the RTTs of delivered attempts, the {!Fault.config.timeout} of
    every unanswered one, and the backoff delays between retries.
    Cache hits cost zero.  With [charge_time = true] the engine
    converts each request's cost to seconds ([cost /. 1000.]) and
    advances its own clock by it, so budgets and TTLs age against what
    measurement actually costs.  Synchronous drivers additionally
    advance it per round; event-driven drivers slave it to the
    simulator clock via {!advance_to}. *)

type config = {
  fault : Fault.config;
  profile : Profile.t option;
      (** per-link network profile; [None] = a uniform profile built
          from the global [fault] rates (the historical model, probe
          for probe).  When present, the profile supplies every link's
          loss/jitter/outage/extra-delay and the [fault] record only
          contributes retries/policy/timeout/node-outage. *)
  churn : Churn.config option;
      (** seeded node up/down lifetimes; [None] = no churn.  The churn
          schedule follows the engine clock (every {!advance},
          {!advance_to} and charged probe), so event-driven drivers
          slaving the clock to a simulator get churn "for free". *)
  dynamics : Dynamics.config option;
      (** time-varying network conditions (diurnal loss/jitter
          modulation, seeded route-change events) layered over
          [profile] — or over the uniform profile built from the global
          [fault] rates when [profile] is [None].  Slaved to the engine
          clock exactly like churn; [None] = static conditions. *)
  budget : Budget.config option;  (** [None] = unlimited *)
  cache_ttl : float option;  (** [None] = on-demand (no cache) *)
  cache_capacity : int option;
      (** LRU entry bound for the cache; requires [cache_ttl].
          [None] = unbounded *)
  charge_time : bool;
      (** advance the engine clock by each request's measurement cost *)
  seed : int;  (** fault-injection stream seed *)
}

val default_config : config
(** Oracle model: no faults, no profile, no churn, no budget, no
    cache, no time charging, seed 0. *)

type t

val create : ?config:config -> Oracle.t -> t
(** Raises [Invalid_argument] with a descriptive message on an invalid
    config: non-positive or NaN [cache_ttl], [cache_capacity < 1] or
    given without a [cache_ttl], budget capacities below one token or
    negative/NaN rates ({!Budget.validate_config}), fault/retry
    parameters out of range ({!Fault.validate_config}), churn
    parameters out of range ({!Churn.validate_config}), dynamics
    parameters out of range ({!Dynamics.validate_config}), or any per-link
    profile entry out of range ({!Profile.validate}, which names the
    offending link in the message). *)

val of_matrix : ?config:config -> Tivaware_delay_space.Matrix.t -> t
(** [create] over {!Oracle.of_matrix}; same validation. *)

val config : t -> config
val oracle : t -> Oracle.t
val size : t -> int

val matrix_exn : t -> Tivaware_delay_space.Matrix.t
(** Ground-truth matrix of a matrix-backed oracle (for evaluation
    code); raises [Invalid_argument] otherwise. *)

val fault : t -> Fault.t
(** The live fault injector (scenario hooks: {!Fault.set_down}). *)

val churn : t -> Churn.t option
(** The live churn model, when the config enables one.  Its schedule is
    driven by this engine's clock; churning nodes' up/down state
    overrides the static [fault.outage] draw. *)

val dynamics : t -> Dynamics.t option
(** The live dynamics model, when the config enables one.  Its clock is
    driven by this engine's clock; the {!Fault} injector reads every
    wire attempt's link parameters through it. *)

(** {2 Logical clock} *)

val now : t -> float
val advance : t -> float -> unit
(** Advance the clock by a (non-negative) number of seconds. *)

val advance_to : t -> float -> unit
(** Monotonic absolute set: earlier times are ignored.  Used to slave
    the engine clock to an event simulator. *)

(** {2 Probing} *)

type outcome =
  | Rtt of float  (** fresh measurement (jitter applied) *)
  | Cached of float  (** served from the cache; no probe issued *)
  | Denied  (** refused by the probe budget *)
  | Down  (** an endpoint is in outage; attempts burned *)
  | Lost  (** every attempt dropped *)
  | Unmeasured  (** the oracle has no measurement for the pair *)

type timed = {
  outcome : outcome;
  cost : float;
      (** measurement time in ms: delivered RTTs + timeouts + backoff
          delays; 0 for cache hits and first-attempt budget denials *)
}

val probe_timed : ?label:string -> t -> int -> int -> timed
(** [probe_timed t i j]: node [i] measures its RTT to [j].  Full path:
    cache lookup, then budget check ([Denied] costs nothing further),
    then up to [1 + retries] wire attempts through the fault injector,
    where the retry budget is sized at request start by the engine's
    {!Fault.retry_policy} (per-link loss estimate under [Adaptive]).
    Successful measurements are cached (service mode); capacity
    evictions land in {!Probe_stats.t.evicted}.  The budget is charged
    once per wire attempt, against node [i] and the global bucket.
    When [charge_time] is set the engine clock advances by
    [cost /. 1000.]. *)

val probe : ?label:string -> t -> int -> int -> outcome
(** [(probe_timed t i j).outcome]. *)

val rtt : ?label:string -> t -> int -> int -> float
(** {!probe} collapsed to a float: the measured RTT, or [nan] on
    [Denied | Down | Lost | Unmeasured] — exactly the shape protocol
    code expects from [Matrix.get], so callers fall back on [nan]. *)

val rtt_timed : ?label:string -> t -> int -> int -> float * float
(** [(value, cost)] — {!rtt}'s collapse plus the measurement cost in
    ms, for callers that schedule simulator events around probes. *)

val stats : t -> Probe_stats.t
(** Live counters (mutated by every probe).  Use
    {!Probe_stats.snapshot} to diff around a phase. *)

val reset_stats : t -> unit

(** {2 Observability} *)

val obs : t -> Tivaware_obs.Registry.t
(** The engine's metric registry.  Created with the engine and updated
    on every probe: request/outcome/cache counters ([measure.*],
    mirroring {!Probe_stats}), per-plane probe and charged-time series
    ([measure.probes.sent{plane=...}], [measure.probe_ms{plane=...}]),
    and RTT/cost histograms.  The repair planes, TIV alert evaluation
    and Meridian queries record their [repair.*], [alert.*] and
    [meridian.*] series here too — those families are pre-registered at
    zero so every {!Tivaware_obs.Summary} carries the full schema.
    Serialize with {!Tivaware_obs.Summary.to_json}, stamping
    {!now} as the clock. *)

val register_plane : t -> string -> unit
(** Pre-register the per-plane series
    ([measure.probes.sent{plane=...}], [measure.probe_ms{plane=...}])
    for a plane label, so summaries written before the plane's first
    probe — or from a run where it never probes — still carry the full
    schema.  Planes that do probe are registered lazily as before;
    this only pins the schema. *)
