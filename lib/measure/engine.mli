(** The probe engine: every delay lookup, mediated.

    Protocol layers (Vivaldi sampling, Meridian's recursive probing,
    the TIV alert) historically read the delay matrix as a free,
    instantaneous, lossless oracle.  The engine interposes the
    measurement plane between them and the {!Oracle}:

    + a TTL'd RTT {!Cache} (service mode) or none (on-demand mode),
    + per-node and engine-wide token-bucket {!Budget}s,
    + seeded {!Fault} injection (loss, jitter, outages) with a retry
      policy,
    + {!Probe_stats} accounting, attributable per protocol label.

    The default configuration is the exact oracle model: no cache, no
    budget, no faults — a probe is then a plain matrix lookup and the
    generator is never consulted, so existing experiments reproduce
    their seed results bit-for-bit when rewired through an engine.

    Time is logical (seconds).  Synchronous drivers advance it one
    second per round; event-driven drivers sync it to the simulator
    clock.  Budgets refill and cache entries age against this clock. *)

type config = {
  fault : Fault.config;
  budget : Budget.config option;  (** [None] = unlimited *)
  cache_ttl : float option;  (** [None] = on-demand (no cache) *)
  seed : int;  (** fault-injection stream seed *)
}

val default_config : config
(** Oracle model: no faults, no budget, no cache, seed 0. *)

type t

val create : ?config:config -> Oracle.t -> t

val of_matrix : ?config:config -> Tivaware_delay_space.Matrix.t -> t

val config : t -> config
val oracle : t -> Oracle.t
val size : t -> int

val matrix_exn : t -> Tivaware_delay_space.Matrix.t
(** Ground-truth matrix of a matrix-backed oracle (for evaluation
    code); raises [Invalid_argument] otherwise. *)

val fault : t -> Fault.t
(** The live fault injector (scenario hooks: {!Fault.set_down}). *)

(** {2 Logical clock} *)

val now : t -> float
val advance : t -> float -> unit
(** Advance the clock by a (non-negative) number of seconds. *)

val advance_to : t -> float -> unit
(** Monotonic absolute set: earlier times are ignored. *)

(** {2 Probing} *)

type outcome =
  | Rtt of float  (** fresh measurement (jitter applied) *)
  | Cached of float  (** served from the cache; no probe issued *)
  | Denied  (** refused by the probe budget *)
  | Down  (** an endpoint is in outage; attempts burned *)
  | Lost  (** every attempt dropped *)
  | Unmeasured  (** the oracle has no measurement for the pair *)

val probe : ?label:string -> t -> int -> int -> outcome
(** [probe t i j]: node [i] measures its RTT to [j].  Full path:
    cache lookup, then budget check ([Denied] costs nothing further),
    then up to [1 + retries] wire attempts through the fault injector.
    Successful measurements are cached (service mode).  The budget is
    charged once per wire attempt, against node [i] and the global
    bucket. *)

val rtt : ?label:string -> t -> int -> int -> float
(** {!probe} collapsed to a float: the measured RTT, or [nan] on
    [Denied | Down | Lost | Unmeasured] — exactly the shape protocol
    code expects from [Matrix.get], so callers fall back on [nan]. *)

val stats : t -> Probe_stats.t
(** Live counters (mutated by every probe).  Use
    {!Probe_stats.snapshot} to diff around a phase. *)

val reset_stats : t -> unit
