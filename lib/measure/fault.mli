(** Deterministic, seeded fault injection and retry policy for probes.

    Models the failure modes that separate real measurement from an
    oracle (cf. TimeWeaver's opportunistic, noisy measurements):
    per-attempt {e loss}, multiplicative {e jitter} on the measured
    RTT, whole-node {e outages}, and — through a per-link
    {!Profile} — link-correlated heterogeneity: each directed link can
    carry its own loss, jitter, outage and extra-delay parameters, and
    the retry machinery estimates loss {e per link} rather than per
    node.  All randomness is drawn from the injector's own generator,
    so a fixed seed and probe sequence reproduce the exact same
    faults — and a zero-fault [Fixed] config never consults the
    generator, keeping fault-free runs bit-identical to the oracle
    path.  A {!Profile.uniform} profile built from the global config
    rates draws the same stream as the historical global model, so it
    is probe-for-probe identical under the same seed.

    All delays are in the oracle's RTT unit (milliseconds by
    convention); the {!Engine} converts to logical seconds when it
    charges its clock. *)

type backoff = {
  base : float;  (** delay before the first retransmission, ms *)
  factor : float;  (** multiplier per further retry (>= 1) *)
  delay_jitter : float;
      (** uniform ± fraction applied to each backoff delay, in [0, 1) *)
}

val default_backoff : backoff
(** 100 ms base, factor 2, no delay jitter. *)

type retry_policy =
  | Fixed  (** immediate retransmit, always up to [retries] *)
  | Backoff of backoff
      (** up to [retries] retransmissions, exponentially delayed *)
  | Adaptive of { backoff : backoff; target_failure : float }
      (** the per-link loss-rate estimate sizes each request's retry
          budget: just enough retries that the residual failure
          probability drops below [target_failure], never more than
          [retries].  Links seeing no loss stop retrying entirely. *)

val adaptive : ?backoff:backoff -> ?target_failure:float -> unit -> retry_policy
(** [Adaptive] with {!default_backoff} and [target_failure = 0.01]. *)

type config = {
  loss : float;  (** per-attempt loss probability in [0, 1) *)
  jitter : float;
      (** multiplicative noise: measured RTT is
          [true_rtt * uniform(1 - jitter, 1 + jitter)] *)
  outage : float;  (** fraction of nodes down for the injector's lifetime *)
  retries : int;  (** max extra attempts after a lost probe (>= 0) *)
  policy : retry_policy;  (** how (and how often) retries are issued *)
  timeout : float;  (** ms a prober waits on an unanswered attempt *)
}

val default : config
(** No loss, no jitter, no outages, no retries, [Fixed] policy,
    3000 ms timeout — the oracle model. *)

val validate_config : string -> config -> unit
(** [validate_config ctx c] raises [Invalid_argument] with a
    [ctx]-prefixed descriptive message on any out-of-range field. *)

type t

val create : ?config:config -> ?profile:Profile.t -> Tivaware_util.Rng.t -> n:int -> t
(** The outage set ([floor (outage * n)] distinct nodes) is drawn
    immediately so it is fixed for the injector's lifetime.  When
    [profile] is given it supplies every link's loss/jitter/outage/
    extra-delay (the config's [loss] and [jitter] then only describe
    the legacy global rates and are not consulted); otherwise a
    {!Profile.uniform} profile is built from the config, reproducing
    the global model exactly.  Raises [Invalid_argument] on an invalid
    config ({!validate_config}) or profile ({!Profile.validate}, which
    names the offending link). *)

val config : t -> config

val profile : t -> Profile.t

val link : t -> int -> int -> Profile.link
(** The profile parameters of the directed link [i -> j]. *)

val node_down : t -> int -> bool

val set_down : t -> int -> bool -> unit
(** Scenario hook: force a node in or out of outage ({!Churn} drives
    this from its schedule). *)

val link_down : t -> int -> int -> bool
(** Whether the directed link is in outage for the injector's
    lifetime.  Fractional {!Profile.link.outage} rates are resolved by
    a memoized draw that is deterministic in [(seed, i, j)] and never
    consumes the main fault stream. *)

type attempt =
  | Delivered of float  (** jittered RTT sample (extra delay included) *)
  | Dropped

val attempt : t -> int -> int -> rtt:float -> attempt
(** One wire attempt on the directed link [i -> j] whose true RTT is
    [rtt].  Draws loss first, then jitter, so loss and jitter streams
    stay aligned across profiles with equal parameters; the link's
    [extra_delay] is added to the RTT before jitter. *)

val attempt_into : t -> int -> int -> rtt:float -> into:float array -> bool
(** Non-allocating {!attempt} for the probe hot path: [true] means
    delivered, with the sample stored in [into.(0)] (unboxed —
    [into] must have length >= 1); [false] means dropped and [into] is
    untouched.  Consumes the generator exactly as {!attempt} does, so
    the two are interchangeable draw for draw. *)

(** {2 Per-link loss estimation and retry budgets} *)

val record_outcome : t -> int -> int -> lost:bool -> unit
(** Feed one wire-attempt outcome observed by source node [i] probing
    [j] into the loss-rate estimators (a prober cannot distinguish loss
    from a peer outage, so both count as lost).  Updates both the
    directed link's EWMA and the source node's aggregate EWMA. *)

val estimated_loss : t -> int -> int -> float
(** The directed link's current loss-rate estimate in [0, 1] (0 before
    any observation).  The per-link EWMA is shrunk toward the source
    node's aggregate estimate in proportion to the link's own sample
    count, so a cold link inherits its prober's experience while a
    well-observed link is judged on its own record. *)

val retry_budget : t -> int -> int -> int
(** Retries the policy grants a request issued by node [i] toward [j]:
    [config.retries] under [Fixed]/[Backoff]; under [Adaptive], the
    smallest [r] with [loss_est^(r+1) <= target_failure], capped at
    [config.retries]. *)

val backoff_delay : t -> attempt:int -> float
(** Delay (ms) the prober waits before wire attempt number [attempt]
    (1 = first retransmission): 0 under [Fixed], else
    [base * factor^(attempt-1)], jittered when [delay_jitter > 0]
    (which draws from the injector's generator). *)
