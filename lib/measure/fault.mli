(** Deterministic, seeded fault injection for probes.

    Models the three failure modes that separate real measurement from
    an oracle (cf. TimeWeaver's opportunistic, noisy measurements):
    per-attempt {e loss}, multiplicative {e jitter} on the measured
    RTT, and whole-node {e outages}.  All randomness is drawn from the
    injector's own generator, so a fixed seed and probe sequence
    reproduce the exact same faults — and a zero-fault config never
    consults the generator, keeping fault-free runs bit-identical to
    the oracle path. *)

type config = {
  loss : float;  (** per-attempt loss probability in [0, 1) *)
  jitter : float;
      (** multiplicative noise: measured RTT is
          [true_rtt * uniform(1 - jitter, 1 + jitter)] *)
  outage : float;  (** fraction of nodes down for the injector's lifetime *)
  retries : int;  (** extra attempts after a lost probe (>= 0) *)
}

val default : config
(** No loss, no jitter, no outages, no retries — the oracle model. *)

type t

val create : ?config:config -> Tivaware_util.Rng.t -> n:int -> t
(** The outage set ([floor (outage * n)] distinct nodes) is drawn
    immediately so it is fixed for the injector's lifetime. *)

val config : t -> config

val node_down : t -> int -> bool

val set_down : t -> int -> bool -> unit
(** Scenario hook: force a node in or out of outage. *)

type attempt =
  | Delivered of float  (** jittered RTT sample *)
  | Dropped

val attempt : t -> rtt:float -> attempt
(** One wire attempt for a probe whose true RTT is [rtt].  Draws loss
    first, then jitter, so loss and jitter streams stay aligned across
    configs with equal loss. *)
