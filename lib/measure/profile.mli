(** Per-link network profiles for fault injection.

    The measurement plane's original fault model applied one global
    loss/jitter setting to every probe, which cannot reproduce the
    link-correlated error patterns real paths show: access links of
    poorly-connected hosts are lossy, long-haul inter-cluster paths are
    jittery, and TIV damage concentrates on specific edges.  A profile
    assigns each {e directed} link [(i, j)] its own fault parameters;
    the {!Fault} injector consults the profile on every wire attempt.

    Profiles are pure: parameter lookup never touches the injector's
    random stream, so a {!uniform} profile built from the old global
    rates reproduces the global model probe for probe under the same
    seed, and an all-zero profile never consults the generator at all
    (bit-identical to oracle mode). *)

type link = {
  loss : float;  (** per-attempt loss probability in [0, 1] *)
  jitter : float;
      (** multiplicative noise: measured RTT is
          [true_rtt * uniform(1 - jitter, 1 + jitter)], in [0, 1) *)
  outage : float;
      (** probability the directed link is down for the injector's
          whole lifetime, in [0, 1] (1 = certainly down) *)
  extra_delay : float;
      (** ms added to the true RTT before jitter (path detour /
          bufferbloat on that link), >= 0 *)
}

val clean : link
(** All-zero link: lossless, jitter-free, always up, no extra delay. *)

type t

val name : t -> string

val link : t -> int -> int -> link
(** Parameters of the directed link [i -> j].  Self links are always
    {!clean}. *)

val uniform : ?name:string -> link -> t
(** Every directed link carries the same parameters — the back-compat
    constructor the engine builds from a global {!Fault.config}. *)

val of_rates : loss:float -> jitter:float -> t
(** [uniform] over [{ clean with loss; jitter }]. *)

val make : string -> (int -> int -> link) -> t
(** Arbitrary per-link profile; [f i j] must be pure and total for all
    [i <> j] in range (it is consulted on every wire attempt and during
    validation). *)

val topology :
  ?name:string ->
  loss:float ->
  jitter:float ->
  cluster_of:int array ->
  unit ->
  t
(** Topology-derived heterogeneity from cluster labels ([cluster_of.(i)]
    is node [i]'s cluster, [-1] = noise host), as produced by
    [Tivaware_topology.Generator] ([cluster_of]) or
    [Tivaware_delay_space.Clustering] ([label]).  Links touching a noise
    host model lossy access links ([3 * loss], capped); inter-cluster
    links model jittery long-haul paths ([2 * jitter], capped, half
    loss); intra-cluster links are comparatively clean ([loss / 4],
    [jitter / 4]). *)

val random :
  ?name:string ->
  ?outage:float ->
  loss:float ->
  jitter:float ->
  seed:int ->
  unit ->
  t
(** Seeded heterogeneous profile: each directed link draws its loss and
    jitter uniformly from [[0, 2 * base)] (mean = base, so sweeps
    compare equal average severity against {!uniform}), and is down for
    the injector's lifetime with probability [outage] (default 0).
    Parameters depend only on [(seed, i, j)], never on query order. *)

val validate_link : string -> id:string -> link -> unit
(** Raises [Invalid_argument] naming [id] (the offending link) on
    NaN/out-of-range loss, jitter, outage or extra delay. *)

val validate : string -> n:int -> t -> unit
(** Validates every directed link of an [n]-node profile; the error
    message carries the offending link as ["i->j"]. *)
