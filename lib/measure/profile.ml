module Rng = Tivaware_util.Rng

type link = {
  loss : float;
  jitter : float;
  outage : float;
  extra_delay : float;
}

let clean = { loss = 0.; jitter = 0.; outage = 0.; extra_delay = 0. }

type kind =
  | Uniform of link
  | Fn of (int -> int -> link)

type t = {
  name : string;
  kind : kind;
}

let name t = t.name

let link t i j =
  match t.kind with
  | Uniform l -> l
  | Fn f -> if i = j then clean else f i j

let uniform ?(name = "uniform") l = { name; kind = Uniform l }

let of_rates ~loss ~jitter = uniform { clean with loss; jitter }

let make name f = { name; kind = Fn f }

(* ------------------------------------------------------------------ *)
(* Topology-derived profile                                            *)

(* Link classes mirror Tivaware_topology.Generator.link_class without a
   dependency on the topology library: the caller hands us its cluster
   labels ([-1] = noise host). *)
let class_of_labels cluster_of i j =
  let ci = cluster_of.(i) and cj = cluster_of.(j) in
  if ci < 0 || cj < 0 then `Access
  else if ci = cj then `Intra
  else `Inter

(* Scaling factors chosen so a topology profile with base rates
   (loss, jitter) concentrates loss on access links of poorly-connected
   hosts and jitter on long-haul inter-cluster paths, while keeping the
   same order of magnitude as the uniform profile with equal bases. *)
let topology ?(name = "topo") ~loss ~jitter ~cluster_of () =
  let n = Array.length cluster_of in
  let access = { clean with loss = Float.min 0.95 (3. *. loss); jitter } in
  let inter =
    { clean with loss = loss /. 2.; jitter = Float.min 0.9 (2. *. jitter) }
  in
  let intra = { clean with loss = loss /. 4.; jitter = jitter /. 4. } in
  make name (fun i j ->
      if i < 0 || i >= n || j < 0 || j >= n then clean
      else begin
        match class_of_labels cluster_of i j with
        | `Access -> access
        | `Inter -> inter
        | `Intra -> intra
      end)

(* ------------------------------------------------------------------ *)
(* Seeded-random heterogeneous profile                                 *)

(* Every directed link owns an independent deterministic stream derived
   from (seed, i, j), so link parameters do not depend on the order in
   which links are queried and two profiles with the same seed agree
   link for link. *)
let link_rng ~seed i j = Rng.create ((((seed * 31) + i) * 1_000_003) + j)

let random ?(name = "random") ?(outage = 0.) ~loss ~jitter ~seed () =
  make name (fun i j ->
      let r = link_rng ~seed i j in
      (* Uniform in [0, 2 * base): mean equals the base rate, so sweeps
         against the uniform profile compare equal average severity.
         Zero bases draw nothing and stay exactly zero. *)
      let draw base = if base > 0. then Rng.float r (2. *. base) else 0. in
      let loss = Float.min 0.95 (draw loss) in
      let jitter = Float.min 0.9 (draw jitter) in
      let down = outage > 0. && Rng.float r 1. < outage in
      { clean with loss; jitter; outage = (if down then 1. else 0.) })

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let validate_link ctx ~id l =
  let bad field what v =
    invalid_arg (Printf.sprintf "%s: link %s: %s %s (got %g)" ctx id field what v)
  in
  if Float.is_nan l.loss || l.loss < 0. || l.loss > 1. then
    bad "loss" "must be in [0, 1]" l.loss;
  if Float.is_nan l.jitter || l.jitter < 0. || l.jitter >= 1. then
    bad "jitter" "must be in [0, 1)" l.jitter;
  if Float.is_nan l.outage || l.outage < 0. || l.outage > 1. then
    bad "outage" "must be in [0, 1]" l.outage;
  if Float.is_nan l.extra_delay || l.extra_delay < 0. then
    bad "extra_delay" "must be >= 0 ms" l.extra_delay

let validate ctx ~n t =
  match t.kind with
  | Uniform l -> validate_link ctx ~id:(t.name ^ " (all links)") l
  | Fn f ->
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          validate_link ctx ~id:(Printf.sprintf "%d->%d" i j) (f i j)
      done
    done
