type config = {
  node_capacity : float;
  node_rate : float;
  global_capacity : float;
  global_rate : float;
}

let unlimited =
  {
    node_capacity = infinity;
    node_rate = infinity;
    global_capacity = infinity;
    global_rate = infinity;
  }

let per_node ~capacity ~rate =
  { unlimited with node_capacity = capacity; node_rate = rate }

type bucket = { mutable tokens : float; mutable refilled : float }

type t = {
  config : config;
  nodes : bucket array;
  global : bucket;
}

(* A capacity below one token can never admit a probe: the bucket is a
   deny-all in disguise, which is always a config mistake. *)
let validate_config ctx config =
  let check_capacity name v =
    if Float.is_nan v || v < 1. then
      invalid_arg
        (Printf.sprintf "%s: %s must be >= 1 token (got %g)" ctx name v)
  in
  let check_rate name v =
    if Float.is_nan v || v < 0. then
      invalid_arg (Printf.sprintf "%s: %s must be >= 0 (got %g)" ctx name v)
  in
  check_capacity "node_capacity" config.node_capacity;
  check_capacity "global_capacity" config.global_capacity;
  check_rate "node_rate" config.node_rate;
  check_rate "global_rate" config.global_rate

let create config ~n =
  if n < 0 then invalid_arg "Budget.create: negative node count";
  validate_config "Budget.create" config;
  {
    config;
    nodes =
      Array.init n (fun _ -> { tokens = config.node_capacity; refilled = 0. });
    global = { tokens = config.global_capacity; refilled = 0. };
  }

let config t = t.config

let refill bucket ~capacity ~rate ~now =
  if now > bucket.refilled then begin
    if Float.is_finite capacity && Float.is_finite rate then
      bucket.tokens <-
        Float.min capacity (bucket.tokens +. (rate *. (now -. bucket.refilled)));
    bucket.refilled <- now
  end

let node_bucket t ~now i =
  let b = t.nodes.(i) in
  refill b ~capacity:t.config.node_capacity ~rate:t.config.node_rate ~now;
  b

let global_bucket t ~now =
  refill t.global ~capacity:t.config.global_capacity
    ~rate:t.config.global_rate ~now;
  t.global

let try_take t ~now i =
  let nb = node_bucket t ~now i in
  let gb = global_bucket t ~now in
  if nb.tokens >= 1. && gb.tokens >= 1. then begin
    if Float.is_finite nb.tokens then nb.tokens <- nb.tokens -. 1.;
    if Float.is_finite gb.tokens then gb.tokens <- gb.tokens -. 1.;
    true
  end
  else false

let tokens t ~now i = (node_bucket t ~now i).tokens
let global_tokens t ~now = (global_bucket t ~now).tokens
