module Rng = Tivaware_util.Rng

type config = {
  fault : Fault.config;
  budget : Budget.config option;
  cache_ttl : float option;
  seed : int;
}

let default_config =
  { fault = Fault.default; budget = None; cache_ttl = None; seed = 0 }

type t = {
  config : config;
  oracle : Oracle.t;
  fault : Fault.t;
  budget : Budget.t option;
  cache : Cache.t option;
  stats : Probe_stats.t;
  mutable clock : float;
}

let create ?(config = default_config) oracle =
  let n = Oracle.size oracle in
  {
    config;
    oracle;
    fault = Fault.create ~config:config.fault (Rng.create config.seed) ~n;
    budget = Option.map (fun b -> Budget.create b ~n) config.budget;
    cache = Option.map (fun ttl -> Cache.create ~ttl) config.cache_ttl;
    stats = Probe_stats.create ();
    clock = 0.;
  }

let of_matrix ?config m = create ?config (Oracle.of_matrix m)

let config t = t.config
let oracle t = t.oracle
let size t = Oracle.size t.oracle
let matrix_exn t = Oracle.matrix_exn t.oracle
let fault t = t.fault

let now t = t.clock

let advance t dt =
  if dt < 0. then invalid_arg "Engine.advance: negative step";
  t.clock <- t.clock +. dt

let advance_to t time = if time > t.clock then t.clock <- time

type outcome =
  | Rtt of float
  | Cached of float
  | Denied
  | Down
  | Lost
  | Unmeasured

(* One probe after the cache has missed: budget, then the attempt
   loop.  Every wire attempt is charged and counted, including the
   attempts burned against a node in outage (the prober cannot know the
   peer is down until nothing comes back). *)
let probe_uncached t label i j =
  let st = t.stats in
  let admitted =
    match t.budget with
    | None -> true
    | Some b -> Budget.try_take b ~now:t.clock i
  in
  if not admitted then begin
    st.Probe_stats.denied <- st.Probe_stats.denied + 1;
    Denied
  end
  else begin
    let endpoint_down = Fault.node_down t.fault i || Fault.node_down t.fault j in
    let retries = (Fault.config t.fault).Fault.retries in
    let rec attempt k =
      if k > 0 then st.Probe_stats.retried <- st.Probe_stats.retried + 1;
      (* Re-admission for retransmissions; the first attempt was charged
         by the [admitted] check above. *)
      let admitted =
        k = 0
        ||
        match t.budget with
        | None -> true
        | Some b -> Budget.try_take b ~now:t.clock i
      in
      if not admitted then begin
        st.Probe_stats.denied <- st.Probe_stats.denied + 1;
        Denied
      end
      else begin
        Probe_stats.record_issue st label;
        if endpoint_down then begin
          st.Probe_stats.lost <- st.Probe_stats.lost + 1;
          if k < retries then attempt (k + 1)
          else begin
            st.Probe_stats.down <- st.Probe_stats.down + 1;
            Down
          end
        end
        else begin
          let true_rtt = Oracle.query t.oracle i j in
          if Float.is_nan true_rtt then begin
            st.Probe_stats.unmeasured <- st.Probe_stats.unmeasured + 1;
            Unmeasured
          end
          else begin
            match Fault.attempt t.fault ~rtt:true_rtt with
            | Fault.Delivered sample ->
              Option.iter
                (fun c -> Cache.store c ~now:t.clock i j sample)
                t.cache;
              Rtt sample
            | Fault.Dropped ->
              st.Probe_stats.lost <- st.Probe_stats.lost + 1;
              if k < retries then attempt (k + 1)
              else begin
                st.Probe_stats.failed <- st.Probe_stats.failed + 1;
                Lost
              end
          end
        end
      end
    in
    attempt 0
  end

let probe ?label t i j =
  let st = t.stats in
  st.Probe_stats.requests <- st.Probe_stats.requests + 1;
  match t.cache with
  | None -> probe_uncached t label i j
  | Some c -> (
    match Cache.find c ~now:t.clock i j with
    | Cache.Hit v ->
      st.Probe_stats.hits <- st.Probe_stats.hits + 1;
      Cached v
    | Cache.Stale ->
      st.Probe_stats.stale <- st.Probe_stats.stale + 1;
      probe_uncached t label i j
    | Cache.Miss ->
      st.Probe_stats.misses <- st.Probe_stats.misses + 1;
      probe_uncached t label i j)

let rtt ?label t i j =
  match probe ?label t i j with
  | Rtt v | Cached v -> v
  | Denied | Down | Lost | Unmeasured -> nan

let stats t = t.stats
let reset_stats t = Probe_stats.reset t.stats
