module Rng = Tivaware_util.Rng
module Obs = Tivaware_obs

type config = {
  fault : Fault.config;
  profile : Profile.t option;
  churn : Churn.config option;
  dynamics : Dynamics.config option;
  budget : Budget.config option;
  cache_ttl : float option;
  cache_capacity : int option;
  charge_time : bool;
  seed : int;
}

let default_config =
  {
    fault = Fault.default;
    profile = None;
    churn = None;
    dynamics = None;
    budget = None;
    cache_ttl = None;
    cache_capacity = None;
    charge_time = false;
    seed = 0;
  }

(* Probe costs are in the oracle's RTT unit (ms); the engine clock is
   in logical seconds. *)
let ms_per_second = 1000.

(* Observability instruments, resolved once at engine creation so the
   probe hot path pays plain field accesses, not registry lookups.
   Per-plane series ([{plane=...}] labels) are resolved lazily and
   memoized, mirroring what Probe_stats already does for its label
   table. *)
type instruments = {
  i_requests : Obs.Counter.t;
  i_sent : Obs.Counter.t;
  i_lost : Obs.Counter.t;
  i_retried : Obs.Counter.t;
  i_failed : Obs.Counter.t;
  i_denied : Obs.Counter.t;
  i_down : Obs.Counter.t;
  i_unmeasured : Obs.Counter.t;
  i_hits : Obs.Counter.t;
  i_stale : Obs.Counter.t;
  i_misses : Obs.Counter.t;
  i_evicted : Obs.Counter.t;
  i_probe_ms : Obs.Counter.t;
  i_rtt_ms : Obs.Histogram.t;
  i_cost_ms : Obs.Histogram.t;
  i_per_plane : (string, Obs.Counter.t * Obs.Counter.t) Hashtbl.t;
      (* plane -> (probes sent, probe_ms) *)
}

type t = {
  config : config;
  oracle : Oracle.t;
  fault : Fault.t;
  churn : Churn.t option;
  dynamics : Dynamics.t option;
  budget : Budget.t option;
  cache : Cache.t option;
  stats : Probe_stats.t;
  obs : Obs.Registry.t;
  inst : instruments;
  (* Hot-path scratch: slot 0 the last probe's value, slot 1 its
     accumulated cost.  A float array, not mutable record fields,
     because float-array stores are unboxed without flambda; probes
     never nest, so one scratch per engine is safe. *)
  scratch : float array;
  mutable clock : float;
}

let rtt_edges = [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]
let cost_edges = [| 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000.; 10000. |]

(* Register the whole metric schema up front — including the repair and
   alert families other planes fill in later — so every run summary
   carries the same series and a zero really means "nothing happened",
   not "never wired". *)
let make_instruments obs =
  let counter ?labels name = Obs.Registry.counter obs ?labels name in
  let gauge ?labels name = ignore (Obs.Registry.gauge obs ?labels name) in
  List.iter
    (fun (name, plane) -> ignore (counter ~labels:[ ("plane", plane) ] name))
    [
      ("repair.evicted", "vivaldi");
      ("repair.resampled", "vivaldi");
      ("repair.checked", "chord");
      ("repair.rerouted", "chord");
      ("repair.marked_dead", "chord");
      ("repair.revived", "chord");
      ("repair.evicted", "meridian");
      ("repair.reentered", "meridian");
      ("repair.detached", "multicast");
      ("repair.reattached", "multicast");
      ("repair.rejoined", "multicast");
    ];
  ignore (Obs.Registry.gauge obs ~labels:[ ("plane", "meridian") ] "repair.pending");
  gauge "alert.precision";
  gauge "alert.recall";
  gauge "alert.f1";
  ignore (counter "meridian.query_failures");
  {
    i_requests = counter "measure.requests";
    i_sent = counter "measure.probes.sent";
    i_lost = counter "measure.probes.lost";
    i_retried = counter "measure.probes.retried";
    i_failed = counter "measure.probes.failed";
    i_denied = counter "measure.probes.denied";
    i_down = counter "measure.probes.down";
    i_unmeasured = counter "measure.probes.unmeasured";
    i_hits = counter "measure.cache.hits";
    i_stale = counter "measure.cache.stale";
    i_misses = counter "measure.cache.misses";
    i_evicted = counter "measure.cache.evicted";
    i_probe_ms = counter "measure.probe_ms";
    i_rtt_ms = Obs.Registry.histogram obs ~edges:rtt_edges "measure.rtt_ms";
    i_cost_ms = Obs.Registry.histogram obs ~edges:cost_edges "measure.cost_ms";
    i_per_plane = Hashtbl.create 8;
  }

let plane_counters t plane =
  match Hashtbl.find t.inst.i_per_plane plane with
  | pair -> pair
  | exception Not_found ->
    let labels = [ ("plane", plane) ] in
    let pair =
      ( Obs.Registry.counter t.obs ~labels "measure.probes.sent",
        Obs.Registry.counter t.obs ~labels "measure.probe_ms" )
    in
    Hashtbl.replace t.inst.i_per_plane plane pair;
    pair

let validate_config (config : config) =
  Fault.validate_config "Engine.create" config.fault;
  Option.iter (Churn.validate_config "Engine.create") config.churn;
  Option.iter (Dynamics.validate_config "Engine.create") config.dynamics;
  Option.iter (Budget.validate_config "Engine.create") config.budget;
  (match config.cache_ttl with
  | Some ttl when Float.is_nan ttl || ttl <= 0. ->
    invalid_arg
      (Printf.sprintf
         "Engine.create: cache_ttl must be positive (got %g; omit the cache \
          instead of disabling it with a non-positive TTL)"
         ttl)
  | _ -> ());
  match (config.cache_capacity, config.cache_ttl) with
  | Some c, _ when c < 1 ->
    invalid_arg
      (Printf.sprintf "Engine.create: cache_capacity must be >= 1 (got %d)" c)
  | Some _, None ->
    invalid_arg
      "Engine.create: cache_capacity requires cache_ttl (there is no cache to \
       bound)"
  | _ -> ()

let create ?(config = default_config) oracle =
  validate_config config;
  let n = Oracle.size oracle in
  (* Dynamics wrap the configured profile — or, like the injector's own
     back-compat path, a uniform profile built from the global fault
     rates, which reproduces the global model probe for probe. *)
  let dynamics =
    Option.map
      (fun d ->
        let base =
          match config.profile with
          | Some p -> p
          | None ->
            Profile.of_rates ~loss:config.fault.Fault.loss
              ~jitter:config.fault.Fault.jitter
        in
        Dynamics.create ~config:d base)
      config.dynamics
  in
  let fault =
    match dynamics with
    | Some d ->
      Fault.create ~config:config.fault ~profile:(Dynamics.profile d)
        (Rng.create config.seed) ~n
    | None ->
      Fault.create ~config:config.fault ?profile:config.profile
        (Rng.create config.seed) ~n
  in
  let churn = Option.map (fun c -> Churn.create ~config:c ~n ()) config.churn in
  (* Churn owns the up/down state of its churning nodes from time 0 on
     (everyone starts up); non-churning nodes keep whatever the
     config.outage draw decided. *)
  Option.iter (fun c -> Churn.sync c fault) churn;
  let obs = Obs.Registry.create () in
  {
    config;
    oracle;
    fault;
    churn;
    dynamics;
    budget = Option.map (fun b -> Budget.create b ~n) config.budget;
    cache =
      Option.map
        (fun ttl -> Cache.create ?capacity:config.cache_capacity ~ttl ())
        config.cache_ttl;
    stats = Probe_stats.create ();
    obs;
    inst = make_instruments obs;
    scratch = Array.make 2 nan;
    clock = 0.;
  }

let of_matrix ?config m = create ?config (Oracle.of_matrix m)

let config t = t.config
let oracle t = t.oracle
let size t = Oracle.size t.oracle
let matrix_exn t = Oracle.matrix_exn t.oracle
let fault t = t.fault
let churn t = t.churn
let dynamics t = t.dynamics
let obs t = t.obs

let now t = t.clock

(* Every clock movement drives both time-dependent planes: network
   conditions (dynamics) and membership (churn). *)
let sync_churn t =
  Option.iter (fun d -> Dynamics.advance_to d t.clock) t.dynamics;
  match t.churn with
  | None -> ()
  | Some c -> Churn.drive c t.fault ~time:t.clock

let advance t dt =
  if dt < 0. then invalid_arg "Engine.advance: negative step";
  t.clock <- t.clock +. dt;
  sync_churn t

let advance_to t time =
  if time > t.clock then begin
    t.clock <- time;
    sync_churn t
  end

type outcome =
  | Rtt of float
  | Cached of float
  | Denied
  | Down
  | Lost
  | Unmeasured

type timed = {
  outcome : outcome;
  cost : float;
}

(* The hot path below works in outcome *codes*, with the probe's value
   and accumulated cost living in [t.scratch] — no [outcome] variant,
   [timed] record, closure or ref cell is built per probe.  The
   variant-returning API ([probe_timed]/[probe]) wraps the code path,
   so both report identical results; golden fixtures hold either way
   because the logic, draw order and instrument updates are
   unchanged. *)
let code_rtt = 0
let code_cached = 1
let code_denied = 2
let code_down = 3
let code_lost = 4
let code_unmeasured = 5

(* One probe after the cache has missed: budget, then the attempt
   loop.  Every wire attempt is charged and counted, including the
   attempts burned against a node in outage (the prober cannot know the
   peer is down until nothing comes back).  [scratch.(1)] accumulates
   what the issuing node waits for: delivered RTTs, timeouts of
   unanswered attempts, and backoff delays between retries.  A
   top-level recursive function, not a local closure, so the loop
   captures nothing. *)
let rec probe_attempt t label i j ~endpoint_down ~retries ~timeout k =
  let st = t.stats in
  let inst = t.inst in
  let s = t.scratch in
  if k > 0 then begin
    st.Probe_stats.retried <- st.Probe_stats.retried + 1;
    Obs.Counter.incr inst.i_retried;
    s.(1) <- s.(1) +. Fault.backoff_delay t.fault ~attempt:k
  end;
  (* Re-admission for retransmissions; the first attempt was charged
     by the caller's admission check. *)
  let admitted =
    k = 0
    ||
    match t.budget with
    | None -> true
    | Some b -> Budget.try_take b ~now:t.clock i
  in
  if not admitted then begin
    st.Probe_stats.denied <- st.Probe_stats.denied + 1;
    Obs.Counter.incr inst.i_denied;
    code_denied
  end
  else begin
    Probe_stats.record_issue st label;
    Obs.Counter.incr inst.i_sent;
    (match label with
    | None -> ()
    | Some plane -> Obs.Counter.incr (fst (plane_counters t plane)));
    if endpoint_down then begin
      st.Probe_stats.lost <- st.Probe_stats.lost + 1;
      Obs.Counter.incr inst.i_lost;
      Fault.record_outcome t.fault i j ~lost:true;
      s.(1) <- s.(1) +. timeout;
      if k < retries then
        probe_attempt t label i j ~endpoint_down ~retries ~timeout (k + 1)
      else begin
        st.Probe_stats.down <- st.Probe_stats.down + 1;
        Obs.Counter.incr inst.i_down;
        code_down
      end
    end
    else begin
      let true_rtt = Oracle.query t.oracle i j in
      if Float.is_nan true_rtt then begin
        st.Probe_stats.unmeasured <- st.Probe_stats.unmeasured + 1;
        Obs.Counter.incr inst.i_unmeasured;
        (* Indistinguishable from loss at the prober: it waits the
           timeout and its loss estimate takes the hit. *)
        Fault.record_outcome t.fault i j ~lost:true;
        s.(1) <- s.(1) +. timeout;
        code_unmeasured
      end
      else if Fault.attempt_into t.fault i j ~rtt:true_rtt ~into:s then begin
        let sample = s.(0) in
        Fault.record_outcome t.fault i j ~lost:false;
        s.(1) <- s.(1) +. sample;
        Obs.Histogram.observe inst.i_rtt_ms sample;
        (match t.cache with
        | None -> ()
        | Some c ->
          let evicted = Cache.store c ~now:t.clock i j sample in
          st.Probe_stats.evicted <- st.Probe_stats.evicted + evicted;
          Obs.Counter.add inst.i_evicted (float_of_int evicted));
        code_rtt
      end
      else begin
        st.Probe_stats.lost <- st.Probe_stats.lost + 1;
        Obs.Counter.incr inst.i_lost;
        Fault.record_outcome t.fault i j ~lost:true;
        s.(1) <- s.(1) +. timeout;
        if k < retries then
          probe_attempt t label i j ~endpoint_down ~retries ~timeout (k + 1)
        else begin
          st.Probe_stats.failed <- st.Probe_stats.failed + 1;
          Obs.Counter.incr inst.i_failed;
          code_lost
        end
      end
    end
  end

let probe_uncached_code t label i j =
  let st = t.stats in
  let inst = t.inst in
  t.scratch.(1) <- 0.;
  let admitted =
    match t.budget with
    | None -> true
    | Some b -> Budget.try_take b ~now:t.clock i
  in
  if not admitted then begin
    st.Probe_stats.denied <- st.Probe_stats.denied + 1;
    Obs.Counter.incr inst.i_denied;
    code_denied
  end
  else begin
    let endpoint_down =
      Fault.node_down t.fault i || Fault.node_down t.fault j
      || Fault.link_down t.fault i j
    in
    (* The retry budget is sized once per request, from the issuer's
       estimate of this link's loss as it stood before this request. *)
    let retries = Fault.retry_budget t.fault i j in
    let timeout = (Fault.config t.fault).Fault.timeout in
    probe_attempt t label i j ~endpoint_down ~retries ~timeout 0
  end

let probe_code t label i j =
  let st = t.stats in
  let inst = t.inst in
  st.Probe_stats.requests <- st.Probe_stats.requests + 1;
  Obs.Counter.incr inst.i_requests;
  let code =
    match t.cache with
    | None -> probe_uncached_code t label i j
    | Some c ->
      let lc = Cache.find_code c ~now:t.clock ~into:t.scratch i j in
      if lc = Cache.code_hit then begin
        st.Probe_stats.hits <- st.Probe_stats.hits + 1;
        Obs.Counter.incr inst.i_hits;
        t.scratch.(1) <- 0.;
        code_cached
      end
      else begin
        if lc = Cache.code_stale then begin
          st.Probe_stats.stale <- st.Probe_stats.stale + 1;
          Obs.Counter.incr inst.i_stale
        end
        else begin
          st.Probe_stats.misses <- st.Probe_stats.misses + 1;
          Obs.Counter.incr inst.i_misses
        end;
        probe_uncached_code t label i j
      end
  in
  let cost = t.scratch.(1) in
  st.Probe_stats.probe_ms <- st.Probe_stats.probe_ms +. cost;
  Obs.Histogram.observe inst.i_cost_ms cost;
  if cost > 0. then begin
    Obs.Counter.add inst.i_probe_ms cost;
    match label with
    | None -> ()
    | Some plane -> Obs.Counter.add (snd (plane_counters t plane)) cost
  end;
  if t.config.charge_time && cost > 0. then begin
    t.clock <- t.clock +. (cost /. ms_per_second);
    sync_churn t
  end;
  code

let probe_timed ?label t i j =
  let code = probe_code t label i j in
  let outcome =
    if code = code_rtt then Rtt t.scratch.(0)
    else if code = code_cached then Cached t.scratch.(0)
    else if code = code_denied then Denied
    else if code = code_down then Down
    else if code = code_lost then Lost
    else Unmeasured
  in
  { outcome; cost = t.scratch.(1) }

let probe ?label t i j = (probe_timed ?label t i j).outcome

let rtt ?label t i j =
  let code = probe_code t label i j in
  if code <= code_cached then t.scratch.(0) else nan

let rtt_timed ?label t i j =
  let code = probe_code t label i j in
  let v = if code <= code_cached then t.scratch.(0) else nan in
  (v, t.scratch.(1))

let stats t = t.stats
let reset_stats t = Probe_stats.reset t.stats

let register_plane t plane = ignore (plane_counters t plane : Obs.Counter.t * Obs.Counter.t)
