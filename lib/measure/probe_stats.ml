type t = {
  mutable requests : int;
  mutable issued : int;
  mutable lost : int;
  mutable retried : int;
  mutable failed : int;
  mutable denied : int;
  mutable down : int;
  mutable unmeasured : int;
  mutable hits : int;
  mutable stale : int;
  mutable misses : int;
  mutable evicted : int;
  mutable probe_ms : float;
  per_label : (string, int) Hashtbl.t;
}

let create () =
  {
    requests = 0;
    issued = 0;
    lost = 0;
    retried = 0;
    failed = 0;
    denied = 0;
    down = 0;
    unmeasured = 0;
    hits = 0;
    stale = 0;
    misses = 0;
    evicted = 0;
    probe_ms = 0.;
    per_label = Hashtbl.create 8;
  }

let reset t =
  t.requests <- 0;
  t.issued <- 0;
  t.lost <- 0;
  t.retried <- 0;
  t.failed <- 0;
  t.denied <- 0;
  t.down <- 0;
  t.unmeasured <- 0;
  t.hits <- 0;
  t.stale <- 0;
  t.misses <- 0;
  t.evicted <- 0;
  t.probe_ms <- 0.;
  Hashtbl.reset t.per_label

let snapshot t =
  let s = create () in
  s.requests <- t.requests;
  s.issued <- t.issued;
  s.lost <- t.lost;
  s.retried <- t.retried;
  s.failed <- t.failed;
  s.denied <- t.denied;
  s.down <- t.down;
  s.unmeasured <- t.unmeasured;
  s.hits <- t.hits;
  s.stale <- t.stale;
  s.misses <- t.misses;
  s.evicted <- t.evicted;
  s.probe_ms <- t.probe_ms;
  Hashtbl.iter (fun k v -> Hashtbl.replace s.per_label k v) t.per_label;
  s

let label_count t label =
  Option.value ~default:0 (Hashtbl.find_opt t.per_label label)

let labels t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.per_label []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let record_issue t label =
  t.issued <- t.issued + 1;
  match label with
  | None -> ()
  | Some l -> Hashtbl.replace t.per_label l (label_count t l + 1)

let pp fmt t =
  Format.fprintf fmt
    "requests=%d issued=%d lost=%d retried=%d failed=%d denied=%d down=%d \
     unmeasured=%d cache hit/stale/miss=%d/%d/%d evicted=%d probe_ms=%.0f"
    t.requests t.issued t.lost t.retried t.failed t.denied t.down t.unmeasured
    t.hits t.stale t.misses t.evicted t.probe_ms;
  match labels t with
  | [] -> ()
  | ls ->
    Format.fprintf fmt " |";
    List.iter (fun (l, c) -> Format.fprintf fmt " %s=%d" l c) ls
