(** Token-bucket probe budgets.

    Real measurement infrastructure cannot probe for free: per-node
    budgets bound the rate any one participant injects traffic, and an
    engine-wide bucket bounds the aggregate.  Buckets refill
    continuously against the engine's logical clock (tokens per
    second), lazily materialized at each check.  A capacity or rate of
    [infinity] disables that bound. *)

type config = {
  node_capacity : float;  (** burst size of every per-node bucket *)
  node_rate : float;  (** tokens per logical second, per node *)
  global_capacity : float;  (** engine-wide burst size *)
  global_rate : float;  (** engine-wide tokens per logical second *)
}

val unlimited : config
(** All bounds [infinity] — every probe admitted. *)

val per_node : capacity:float -> rate:float -> config
(** Per-node bound only; the engine-wide bucket stays unlimited. *)

val validate_config : string -> config -> unit
(** [validate_config ctx c] raises [Invalid_argument] with a
    [ctx]-prefixed descriptive message when a capacity is below one
    token (a deny-all budget) or a rate is negative or NaN. *)

type t

val create : config -> n:int -> t
(** [n] nodes; every bucket starts full.  Raises [Invalid_argument] on
    an invalid config (see {!validate_config}). *)

val config : t -> config

val try_take : t -> now:float -> int -> bool
(** [try_take t ~now node] refills both buckets up to [now] (logical
    seconds) and withdraws one token from the node's bucket and the
    global bucket.  [false] (and no withdrawal) when either is empty. *)

val tokens : t -> now:float -> int -> float
(** Current per-node token count after refill, for introspection. *)

val global_tokens : t -> now:float -> float
