(** TTL'd RTT cache (the IDMS-style "delay service" mode).

    A delay {e service} amortizes probes by answering repeat lookups
    from a cache at the price of staleness; on-demand probing pays for
    every lookup but is never stale.  Entries are keyed on the
    unordered pair and carry the logical time they were measured; a
    lookup at [now] past the TTL evicts the entry and reports it
    {!Stale} so the caller re-probes. *)

type t

val create : ttl:float -> t
(** [ttl] in logical seconds; must be positive. *)

val ttl : t -> float

type lookup =
  | Hit of float  (** fresh entry *)
  | Stale  (** entry existed but expired; evicted *)
  | Miss  (** no entry *)

val find : t -> now:float -> int -> int -> lookup

val store : t -> now:float -> int -> int -> float -> unit
(** Records a measurement at [now].  [nan] values are not cached (a
    failed probe is not an answer a service would retain). *)

val length : t -> int
(** Live entries, expired ones included until touched. *)

val clear : t -> unit
