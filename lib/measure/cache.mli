(** TTL'd RTT cache (the IDMS-style "delay service" mode), with
    optional capacity-bounded LRU eviction.

    A delay {e service} amortizes probes by answering repeat lookups
    from a cache at the price of staleness; on-demand probing pays for
    every lookup but is never stale.  Entries are keyed on the
    unordered pair and carry the logical time they were measured; a
    lookup at [now] past the TTL evicts the entry and reports it
    {!Stale} so the caller re-probes.

    With a [capacity], the cache additionally models a bounded service:
    storing a new pair beyond capacity evicts the least-recently-used
    entry (hits and refreshes both count as use).  All operations are
    O(1) — the recency order is an intrusive doubly-linked list. *)

type t

val create : ?capacity:int -> ttl:float -> unit -> t
(** [ttl] in logical seconds; must be positive.  [capacity] (entries)
    must be >= 1 when given; [None] = unbounded.  Raises
    [Invalid_argument] with a descriptive message otherwise. *)

val ttl : t -> float

val capacity : t -> int option

type lookup =
  | Hit of float  (** fresh entry (refreshes its recency) *)
  | Stale  (** entry existed but expired; evicted *)
  | Miss  (** no entry *)

val find : t -> now:float -> int -> int -> lookup

val code_hit : int
val code_stale : int
val code_miss : int

val find_code : t -> now:float -> into:float array -> int -> int -> int
(** Non-allocating {!find} for the probe hot path: returns
    {!code_hit}, {!code_stale} or {!code_miss}; on a hit the cached
    value is stored (unboxed) in [into.(0)] ([into] must have length
    >= 1, and is untouched otherwise).  Side effects match {!find}
    exactly — a hit refreshes recency, a stale entry is evicted. *)

val store : t -> now:float -> int -> int -> float -> int
(** Records a measurement at [now]; returns the number of entries
    evicted to respect the capacity bound (0 or 1).  [nan] values are
    not cached (a failed probe is not an answer a service would
    retain).  Re-storing a cached pair refreshes it in place and never
    evicts. *)

val evictions : t -> int
(** Cumulative capacity (LRU) evictions; TTL expiries are not counted
    here (the engine reports those as [stale]). *)

val length : t -> int
(** Live entries, expired ones included until touched. *)

val clear : t -> unit
