module Matrix = Tivaware_delay_space.Matrix

type ext = ..

type t = {
  size : int;
  lookup : int -> int -> float;
  backing : Matrix.t option;
  ext : ext option;
}

let of_matrix m =
  { size = Matrix.size m; lookup = Matrix.get m; backing = Some m; ext = None }

let of_fn ?ext ~size f = { size; lookup = f; backing = None; ext }

let size t = t.size
let query t i j = t.lookup i j
let matrix t = t.backing
let ext t = t.ext

let matrix_exn t =
  match t.backing with
  | Some m -> m
  | None -> invalid_arg "Oracle.matrix_exn: function-backed oracle"
