module Matrix = Tivaware_delay_space.Matrix

type t = {
  size : int;
  lookup : int -> int -> float;
  backing : Matrix.t option;
}

let of_matrix m =
  { size = Matrix.size m; lookup = Matrix.get m; backing = Some m }

let of_fn ~size f = { size; lookup = f; backing = None }

let size t = t.size
let query t i j = t.lookup i j
let matrix t = t.backing

let matrix_exn t =
  match t.backing with
  | Some m -> m
  | None -> invalid_arg "Oracle.matrix_exn: function-backed oracle"
