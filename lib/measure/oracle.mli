(** The ground-truth delay source behind the measurement plane.

    Every probe ultimately resolves against an oracle: a total function
    from a node pair to the true round-trip delay in milliseconds
    ([nan] when the pair is unmeasurable).  The standard oracle is a
    {!Tivaware_delay_space.Matrix.t}; a function-backed oracle supports
    synthetic or streamed delay sources without materializing a matrix.

    The oracle itself is free, instantaneous and lossless — cost,
    budgets, noise and failures are the {!Engine}'s job.  Code that
    wants the idealized model of the original reproduction can keep
    calling [Matrix.get]; code routed through the engine pays for every
    lookup. *)

type t

type ext = ..
(** Open extension point for richer delay sources.  A library layered
    above the measurement plane (e.g. [Tivaware_backend]) adds its own
    constructor, attaches it via {!of_fn}'s [?ext], and recovers the
    full source from an engine's oracle with {!ext} — without this
    module depending on it. *)

val of_matrix : Tivaware_delay_space.Matrix.t -> t
(** Oracle over a delay matrix.  {!matrix} recovers it. *)

val of_fn : ?ext:ext -> size:int -> (int -> int -> float) -> t
(** [of_fn ~size f] wraps an arbitrary symmetric delay function.  [f]
    must return [0.] on the diagonal and [nan] for unmeasurable
    pairs.  [?ext] optionally tags the oracle with the richer source it
    was derived from (see {!type:ext}). *)

val size : t -> int
(** Number of nodes the oracle answers for. *)

val query : t -> int -> int -> float
(** True delay between two nodes; [nan] when unmeasurable. *)

val matrix : t -> Tivaware_delay_space.Matrix.t option
(** The backing matrix, when the oracle is matrix-backed. *)

val ext : t -> ext option
(** The extension tag attached at construction, if any. *)

val matrix_exn : t -> Tivaware_delay_space.Matrix.t
(** Raises [Invalid_argument] on a function-backed oracle. *)
