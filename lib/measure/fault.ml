module Rng = Tivaware_util.Rng

type backoff = {
  base : float;
  factor : float;
  delay_jitter : float;
}

let default_backoff = { base = 100.; factor = 2.; delay_jitter = 0. }

type retry_policy =
  | Fixed
  | Backoff of backoff
  | Adaptive of { backoff : backoff; target_failure : float }

type config = {
  loss : float;
  jitter : float;
  outage : float;
  retries : int;
  policy : retry_policy;
  timeout : float;
}

let default =
  {
    loss = 0.;
    jitter = 0.;
    outage = 0.;
    retries = 0;
    policy = Fixed;
    timeout = 3000.;
  }

let adaptive ?(backoff = default_backoff) ?(target_failure = 0.01) () =
  Adaptive { backoff; target_failure }

(* EWMA weight for the per-node loss estimator.  Small enough to smooth
   attempt-level noise, large enough that ~20 observed attempts move the
   estimate near the true rate. *)
let loss_est_alpha = 0.1

type t = {
  config : config;
  rng : Rng.t;
  down : (int, unit) Hashtbl.t;
  loss_est : float array;
}

let validate_backoff ctx b =
  if Float.is_nan b.base || b.base < 0. then
    invalid_arg
      (Printf.sprintf "%s: backoff base must be >= 0 ms (got %g)" ctx b.base);
  if Float.is_nan b.factor || b.factor < 1. then
    invalid_arg
      (Printf.sprintf "%s: backoff factor must be >= 1 (got %g)" ctx b.factor);
  if Float.is_nan b.delay_jitter || b.delay_jitter < 0. || b.delay_jitter >= 1.
  then
    invalid_arg
      (Printf.sprintf "%s: backoff delay_jitter must be in [0, 1) (got %g)" ctx
         b.delay_jitter)

let validate_config ctx config =
  if config.loss < 0. || config.loss >= 1. then
    invalid_arg (Printf.sprintf "%s: loss must be in [0, 1)" ctx);
  if config.jitter < 0. || config.jitter >= 1. then
    invalid_arg (Printf.sprintf "%s: jitter must be in [0, 1)" ctx);
  if config.outage < 0. || config.outage > 1. then
    invalid_arg (Printf.sprintf "%s: outage must be in [0, 1]" ctx);
  if config.retries < 0 then
    invalid_arg (Printf.sprintf "%s: negative retries" ctx);
  if Float.is_nan config.timeout || config.timeout < 0. then
    invalid_arg
      (Printf.sprintf "%s: timeout must be >= 0 ms (got %g)" ctx config.timeout);
  match config.policy with
  | Fixed -> ()
  | Backoff b -> validate_backoff ctx b
  | Adaptive { backoff; target_failure } ->
    validate_backoff ctx backoff;
    if
      Float.is_nan target_failure || target_failure <= 0. || target_failure >= 1.
    then
      invalid_arg
        (Printf.sprintf "%s: target_failure must be in (0, 1) (got %g)" ctx
           target_failure)

let create ?(config = default) rng ~n =
  validate_config "Fault.create" config;
  let down = Hashtbl.create 16 in
  let k = int_of_float (config.outage *. float_of_int n) in
  if k > 0 then
    Array.iter
      (fun i -> Hashtbl.replace down i ())
      (Rng.sample_indices rng ~n ~k);
  { config; rng; down; loss_est = Array.make (max n 1) 0. }

let config t = t.config
let node_down t i = Hashtbl.mem t.down i

let set_down t i down =
  if down then Hashtbl.replace t.down i () else Hashtbl.remove t.down i

type attempt = Delivered of float | Dropped

let attempt t ~rtt =
  let c = t.config in
  if c.loss > 0. && Rng.bernoulli t.rng c.loss then Dropped
  else begin
    let sample =
      if c.jitter > 0. then
        rtt *. Rng.uniform t.rng (1. -. c.jitter) (1. +. c.jitter)
      else rtt
    in
    Delivered sample
  end

let record_outcome t i ~lost =
  if i >= 0 && i < Array.length t.loss_est then begin
    let sample = if lost then 1. else 0. in
    t.loss_est.(i) <-
      (loss_est_alpha *. sample) +. ((1. -. loss_est_alpha) *. t.loss_est.(i))
  end

let estimated_loss t i =
  if i >= 0 && i < Array.length t.loss_est then t.loss_est.(i) else 0.

(* Smallest r such that p^(r+1) <= eps: retrying past that point buys
   residual failure probability the policy already considers acceptable. *)
let needed_retries ~loss ~target_failure =
  if loss <= target_failure then 0
  else if loss >= 1. then max_int
  else begin
    let r = ceil (log target_failure /. log loss) -. 1. in
    if Float.is_nan r || r > 1e9 then max_int else max 0 (int_of_float r)
  end

let retry_budget t i =
  match t.config.policy with
  | Fixed | Backoff _ -> t.config.retries
  | Adaptive { target_failure; _ } ->
    min t.config.retries
      (needed_retries ~loss:(estimated_loss t i) ~target_failure)

let policy_backoff = function
  | Fixed -> None
  | Backoff b | Adaptive { backoff = b; _ } -> Some b

let backoff_delay t ~attempt =
  if attempt <= 0 then 0.
  else begin
    match policy_backoff t.config.policy with
    | None -> 0.
    | Some b ->
      let d = b.base *. (b.factor ** float_of_int (attempt - 1)) in
      if b.delay_jitter > 0. && d > 0. then
        d *. Rng.uniform t.rng (1. -. b.delay_jitter) (1. +. b.delay_jitter)
      else d
  end
