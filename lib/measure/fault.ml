module Rng = Tivaware_util.Rng

type backoff = {
  base : float;
  factor : float;
  delay_jitter : float;
}

let default_backoff = { base = 100.; factor = 2.; delay_jitter = 0. }

type retry_policy =
  | Fixed
  | Backoff of backoff
  | Adaptive of { backoff : backoff; target_failure : float }

type config = {
  loss : float;
  jitter : float;
  outage : float;
  retries : int;
  policy : retry_policy;
  timeout : float;
}

let default =
  {
    loss = 0.;
    jitter = 0.;
    outage = 0.;
    retries = 0;
    policy = Fixed;
    timeout = 3000.;
  }

let adaptive ?(backoff = default_backoff) ?(target_failure = 0.01) () =
  Adaptive { backoff; target_failure }

(* EWMA weight for the loss estimators.  Small enough to smooth
   attempt-level noise, large enough that ~20 observed attempts move the
   estimate near the true rate. *)
let loss_est_alpha = 0.1

(* Shrinkage prior strength for the per-link estimate: a link with [c]
   observed attempts is trusted with weight [c / (c + k)], the rest
   coming from its source node's aggregate.  With k = 5, five samples
   already split the estimate evenly. *)
let loss_est_prior = 5.

type t = {
  config : config;
  profile : Profile.t;
  n : int;
  rng : Rng.t;
  down : (int, unit) Hashtbl.t;
  (* Directed-link state, keyed by [i * n + j].  Hashtables, not n^2
     arrays: only probed links ever materialize.  Each cell is a
     2-slot float array — [|ewma; attempt count|] — mutated in place,
     so the per-attempt estimate update allocates only on a link's
     first observation (float-array stores are unboxed; a tuple or
     mixed record here would box every write). *)
  loss_est : (int, float array) Hashtbl.t;
  (* Source-node aggregate estimate: the fallback prior for links with
     few observations of their own (a prober that has seen 20% loss
     across its links expects roughly that on a fresh link too). *)
  node_loss_est : float array;
  link_outage : (int, bool) Hashtbl.t;
  link_salt : int;
}

let validate_backoff ctx b =
  if Float.is_nan b.base || b.base < 0. then
    invalid_arg
      (Printf.sprintf "%s: backoff base must be >= 0 ms (got %g)" ctx b.base);
  if Float.is_nan b.factor || b.factor < 1. then
    invalid_arg
      (Printf.sprintf "%s: backoff factor must be >= 1 (got %g)" ctx b.factor);
  if Float.is_nan b.delay_jitter || b.delay_jitter < 0. || b.delay_jitter >= 1.
  then
    invalid_arg
      (Printf.sprintf "%s: backoff delay_jitter must be in [0, 1) (got %g)" ctx
         b.delay_jitter)

let validate_config ctx config =
  if config.loss < 0. || config.loss >= 1. then
    invalid_arg (Printf.sprintf "%s: loss must be in [0, 1)" ctx);
  if config.jitter < 0. || config.jitter >= 1. then
    invalid_arg (Printf.sprintf "%s: jitter must be in [0, 1)" ctx);
  if config.outage < 0. || config.outage > 1. then
    invalid_arg (Printf.sprintf "%s: outage must be in [0, 1]" ctx);
  if config.retries < 0 then
    invalid_arg (Printf.sprintf "%s: negative retries" ctx);
  if Float.is_nan config.timeout || config.timeout < 0. then
    invalid_arg
      (Printf.sprintf "%s: timeout must be >= 0 ms (got %g)" ctx config.timeout);
  match config.policy with
  | Fixed -> ()
  | Backoff b -> validate_backoff ctx b
  | Adaptive { backoff; target_failure } ->
    validate_backoff ctx backoff;
    if
      Float.is_nan target_failure || target_failure <= 0. || target_failure >= 1.
    then
      invalid_arg
        (Printf.sprintf "%s: target_failure must be in (0, 1) (got %g)" ctx
           target_failure)

let create ?(config = default) ?profile rng ~n =
  validate_config "Fault.create" config;
  let profile =
    match profile with
    | Some p ->
      Profile.validate "Fault.create" ~n p;
      p
    | None ->
      (* Back-compat: the global config as a uniform profile.  Built
         after config validation, so its fields are already in range. *)
      Profile.of_rates ~loss:config.loss ~jitter:config.jitter
  in
  (* The per-link outage stream is salted from a copy of the generator
     so drawing it never advances the main fault stream (a profile
     without link outages stays probe-for-probe identical to the global
     model). *)
  let link_salt = Int64.to_int (Rng.int64 (Rng.copy rng)) land 0x3FFFFFFF in
  let down = Hashtbl.create 16 in
  let k = int_of_float (config.outage *. float_of_int n) in
  if k > 0 then
    Array.iter
      (fun i -> Hashtbl.replace down i ())
      (Rng.sample_indices rng ~n ~k);
  {
    config;
    profile;
    n;
    rng;
    down;
    loss_est = Hashtbl.create 64;
    node_loss_est = Array.make n 0.;
    link_outage = Hashtbl.create 16;
    link_salt;
  }

let config t = t.config
let profile t = t.profile
let node_down t i = Hashtbl.mem t.down i

let set_down t i down =
  if down then Hashtbl.replace t.down i () else Hashtbl.remove t.down i

let link t i j = Profile.link t.profile i j

(* Whether the directed link is in outage for the injector's lifetime.
   The draw is deterministic in (salt, i, j) and memoized, so it does
   not depend on probe order and never consumes the main stream. *)
let link_down t i j =
  let p = (link t i j).Profile.outage in
  if p <= 0. then false
  else if p >= 1. then true
  else begin
    let key = (i * t.n) + j in
    match Hashtbl.find_opt t.link_outage key with
    | Some v -> v
    | None ->
      let r = Rng.create ((t.link_salt * 31) lxor (((i * 1_000_003) + j) * 7919)) in
      let v = Rng.float r 1. < p in
      Hashtbl.add t.link_outage key v;
      v
  end

type attempt = Delivered of float | Dropped

(* The non-allocating attempt used by the probe hot path: the sample
   lands in [into.(0)] instead of a [Delivered] block.  Draw order
   (loss, then jitter) matches [attempt] exactly — both are the same
   stream. *)
let attempt_into t i j ~rtt ~into =
  let lk = link t i j in
  if lk.Profile.loss > 0. && Rng.bernoulli t.rng lk.Profile.loss then false
  else begin
    let rtt = rtt +. lk.Profile.extra_delay in
    let sample =
      if lk.Profile.jitter > 0. then
        rtt *. Rng.uniform t.rng (1. -. lk.Profile.jitter) (1. +. lk.Profile.jitter)
      else rtt
    in
    into.(0) <- sample;
    true
  end

let attempt t i j ~rtt =
  let buf = [| nan |] in
  if attempt_into t i j ~rtt ~into:buf then Delivered buf.(0) else Dropped

let link_key t i j = (i * t.n) + j

let ewma prev sample = (loss_est_alpha *. sample) +. ((1. -. loss_est_alpha) *. prev)

let record_outcome t i j ~lost =
  if i >= 0 && i < t.n && j >= 0 && j < t.n then begin
    let key = link_key t i j in
    let cell =
      match Hashtbl.find t.loss_est key with
      | cell -> cell
      | exception Not_found ->
        let cell = [| 0.; 0. |] in
        Hashtbl.add t.loss_est key cell;
        cell
    in
    let sample = if lost then 1. else 0. in
    cell.(0) <- ewma cell.(0) sample;
    cell.(1) <- cell.(1) +. 1.;
    t.node_loss_est.(i) <- ewma t.node_loss_est.(i) sample
  end

(* Per-link EWMA shrunk toward the source node's aggregate: the link's
   own observations dominate once it has a handful of samples, while a
   cold link inherits what its prober has seen elsewhere — so sparse
   workloads still warm the adaptive retry budget, and a hot lossy link
   is still distinguished from its clean siblings. *)
let estimated_loss t i j =
  if i >= 0 && i < t.n && j >= 0 && j < t.n then begin
    match Hashtbl.find t.loss_est (link_key t i j) with
    | cell ->
      let count = cell.(1) in
      let w = count /. (count +. loss_est_prior) in
      (w *. cell.(0)) +. ((1. -. w) *. t.node_loss_est.(i))
    | exception Not_found -> t.node_loss_est.(i)
  end
  else 0.

(* Smallest r such that p^(r+1) <= eps: retrying past that point buys
   residual failure probability the policy already considers acceptable. *)
let needed_retries ~loss ~target_failure =
  if loss <= target_failure then 0
  else if loss >= 1. then max_int
  else begin
    let r = ceil (log target_failure /. log loss) -. 1. in
    if Float.is_nan r || r > 1e9 then max_int else max 0 (int_of_float r)
  end

let retry_budget t i j =
  match t.config.policy with
  | Fixed | Backoff _ -> t.config.retries
  | Adaptive { target_failure; _ } ->
    min t.config.retries
      (needed_retries ~loss:(estimated_loss t i j) ~target_failure)

let policy_backoff = function
  | Fixed -> None
  | Backoff b | Adaptive { backoff = b; _ } -> Some b

let backoff_delay t ~attempt =
  if attempt <= 0 then 0.
  else begin
    match policy_backoff t.config.policy with
    | None -> 0.
    | Some b ->
      let d = b.base *. (b.factor ** float_of_int (attempt - 1)) in
      if b.delay_jitter > 0. && d > 0. then
        d *. Rng.uniform t.rng (1. -. b.delay_jitter) (1. +. b.delay_jitter)
      else d
  end
