module Rng = Tivaware_util.Rng

type config = {
  loss : float;
  jitter : float;
  outage : float;
  retries : int;
}

let default = { loss = 0.; jitter = 0.; outage = 0.; retries = 0 }

type t = {
  config : config;
  rng : Rng.t;
  down : (int, unit) Hashtbl.t;
}

let create ?(config = default) rng ~n =
  if config.loss < 0. || config.loss >= 1. then
    invalid_arg "Fault.create: loss must be in [0, 1)";
  if config.jitter < 0. || config.jitter >= 1. then
    invalid_arg "Fault.create: jitter must be in [0, 1)";
  if config.outage < 0. || config.outage > 1. then
    invalid_arg "Fault.create: outage must be in [0, 1]";
  if config.retries < 0 then invalid_arg "Fault.create: negative retries";
  let down = Hashtbl.create 16 in
  let k = int_of_float (config.outage *. float_of_int n) in
  if k > 0 then
    Array.iter
      (fun i -> Hashtbl.replace down i ())
      (Rng.sample_indices rng ~n ~k);
  { config; rng; down }

let config t = t.config
let node_down t i = Hashtbl.mem t.down i

let set_down t i down =
  if down then Hashtbl.replace t.down i () else Hashtbl.remove t.down i

type attempt = Delivered of float | Dropped

let attempt t ~rtt =
  let c = t.config in
  if c.loss > 0. && Rng.bernoulli t.rng c.loss then Dropped
  else begin
    let sample =
      if c.jitter > 0. then
        rtt *. Rng.uniform t.rng (1. -. c.jitter) (1. +. c.jitter)
      else rtt
    in
    Delivered sample
  end
