type config = {
  capacity : float;
  rate : float;
  shares : (string * float) list;
}

let config ~capacity ~rate ~shares = { capacity; rate; shares }

let validate_config ctx c =
  let fail fmt = Printf.ksprintf (fun m -> invalid_arg (ctx ^ ": " ^ m)) fmt in
  let bad v = Float.is_nan v || v < 0. in
  if bad c.capacity then fail "capacity must be non-negative, got %g" c.capacity;
  if bad c.rate then fail "rate must be non-negative, got %g" c.rate;
  if c.shares = [] then fail "at least one plane share is required";
  let seen = Hashtbl.create 8 in
  let total =
    List.fold_left
      (fun acc (plane, w) ->
        if Hashtbl.mem seen plane then fail "plane %s listed twice" plane;
        Hashtbl.replace seen plane ();
        if Float.is_nan w || w <= 0. then
          fail "share of plane %s must be positive, got %g" plane w;
        acc +. w)
      0. c.shares
  in
  List.iter
    (fun (plane, w) ->
      let carved = c.capacity *. w /. total in
      if carved < 1. then
        fail "plane %s is carved %.3f tokens of capacity — a deny-all share"
          plane carved)
    c.shares

type carve = {
  cap : float;
  refill : float;  (* tokens per logical second *)
  mutable tokens : float;
  mutable stamp : float;  (* last refill time *)
}

type t = {
  carves : (string, carve) Hashtbl.t;
  granted : (string, int ref) Hashtbl.t;
  denied : (string, int ref) Hashtbl.t;
}

let create c =
  validate_config "Arbiter.create" c;
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. c.shares in
  let carves = Hashtbl.create 8 in
  List.iter
    (fun (plane, w) ->
      let cap = c.capacity *. w /. total in
      Hashtbl.replace carves plane
        { cap; refill = c.rate *. w /. total; tokens = cap; stamp = 0. })
    c.shares;
  { carves; granted = Hashtbl.create 8; denied = Hashtbl.create 8 }

let bump table plane =
  match Hashtbl.find_opt table plane with
  | Some r -> incr r
  | None -> Hashtbl.replace table plane (ref 1)

let count table plane =
  match Hashtbl.find_opt table plane with Some r -> !r | None -> 0

let refill_to carve now =
  if now > carve.stamp then begin
    carve.tokens <- Float.min carve.cap (carve.tokens +. ((now -. carve.stamp) *. carve.refill));
    carve.stamp <- now
  end

let admit t ~now plane =
  match Hashtbl.find_opt t.carves plane with
  | None ->
    bump t.granted plane;
    true
  | Some carve ->
    refill_to carve now;
    if carve.tokens >= 1. then begin
      carve.tokens <- carve.tokens -. 1.;
      bump t.granted plane;
      true
    end
    else begin
      bump t.denied plane;
      false
    end

let tokens t ~now plane =
  match Hashtbl.find_opt t.carves plane with
  | None -> infinity
  | Some carve ->
    refill_to carve now;
    carve.tokens

let granted t plane = count t.granted plane
let denied t plane = count t.denied plane
