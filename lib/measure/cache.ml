(* TTL'd RTT cache with optional capacity-bounded LRU eviction.
   Recency is an intrusive doubly-linked list over the entries (head =
   most recently used), so every operation is O(1). *)

type entry = {
  key : int * int;
  mutable value : float;
  mutable measured : float;
  mutable prev : entry option;  (* toward the head (more recent) *)
  mutable next : entry option;  (* toward the tail (least recent) *)
}

type t = {
  ttl : float;
  capacity : int option;
  entries : (int * int, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable evictions : int;
}

let create ?capacity ~ttl () =
  if Float.is_nan ttl || not (ttl > 0.) then
    invalid_arg (Printf.sprintf "Cache.create: ttl must be positive (got %g)" ttl);
  (match capacity with
  | Some c when c < 1 ->
    invalid_arg
      (Printf.sprintf "Cache.create: capacity must be >= 1 (got %d)" c)
  | _ -> ());
  {
    ttl;
    capacity;
    entries = Hashtbl.create 256;
    head = None;
    tail = None;
    evictions = 0;
  }

let ttl t = t.ttl
let capacity t = t.capacity
let evictions t = t.evictions

let unlink t e =
  (match e.prev with
  | Some p -> p.next <- e.next
  | None -> t.head <- e.next);
  (match e.next with
  | Some n -> n.prev <- e.prev
  | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  match t.head with
  | Some h when h == e -> ()
  | _ ->
    unlink t e;
    push_front t e

let drop t e =
  unlink t e;
  Hashtbl.remove t.entries e.key

type lookup = Hit of float | Stale | Miss

let key i j = if i < j then (i, j) else (j, i)

let find t ~now i j =
  match Hashtbl.find_opt t.entries (key i j) with
  | None -> Miss
  | Some e ->
    if now -. e.measured <= t.ttl then begin
      touch t e;
      Hit e.value
    end
    else begin
      drop t e;
      Stale
    end

let store t ~now i j value =
  if Float.is_nan value then 0
  else begin
    let k = key i j in
    match Hashtbl.find_opt t.entries k with
    | Some e ->
      e.value <- value;
      e.measured <- now;
      touch t e;
      0
    | None ->
      let e = { key = k; value; measured = now; prev = None; next = None } in
      Hashtbl.replace t.entries k e;
      push_front t e;
      (match t.capacity with
      | Some cap when Hashtbl.length t.entries > cap -> (
        match t.tail with
        | Some lru ->
          drop t lru;
          t.evictions <- t.evictions + 1;
          1
        | None -> 0)
      | _ -> 0)
  end

let length t = Hashtbl.length t.entries

let clear t =
  Hashtbl.reset t.entries;
  t.head <- None;
  t.tail <- None
