type entry = { value : float; measured : float }

type t = {
  ttl : float;
  entries : (int * int, entry) Hashtbl.t;
}

let create ~ttl =
  if not (ttl > 0.) then invalid_arg "Cache.create: ttl must be positive";
  { ttl; entries = Hashtbl.create 256 }

let ttl t = t.ttl

type lookup = Hit of float | Stale | Miss

let key i j = if i < j then (i, j) else (j, i)

let find t ~now i j =
  match Hashtbl.find_opt t.entries (key i j) with
  | None -> Miss
  | Some e ->
    if now -. e.measured <= t.ttl then Hit e.value
    else begin
      Hashtbl.remove t.entries (key i j);
      Stale
    end

let store t ~now i j value =
  if not (Float.is_nan value) then
    Hashtbl.replace t.entries (key i j) { value; measured = now }

let length t = Hashtbl.length t.entries
let clear t = Hashtbl.reset t.entries
