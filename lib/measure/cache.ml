(* TTL'd RTT cache with optional capacity-bounded LRU eviction.
   Recency is an intrusive circular doubly-linked list over the entries
   threaded through a sentinel (sentinel.next = most recently used,
   sentinel.prev = least recently used), so every operation is O(1) and
   — unlike option-linked lists — relinking an entry on a hit allocates
   nothing.  Pairs are packed into one int key ([min lsl 31 lor max]),
   so lookups build no tuple. *)

type entry = {
  key : int;
  mutable value : float;
  mutable measured : float;
  mutable prev : entry;  (* toward the head (more recent) *)
  mutable next : entry;  (* toward the tail (least recent) *)
}

type t = {
  ttl : float;
  capacity : int option;
  entries : (int, entry) Hashtbl.t;
  sentinel : entry;
  mutable evictions : int;
}

let make_sentinel () =
  let rec s = { key = min_int; value = nan; measured = nan; prev = s; next = s } in
  s

let create ?capacity ~ttl () =
  if Float.is_nan ttl || not (ttl > 0.) then
    invalid_arg (Printf.sprintf "Cache.create: ttl must be positive (got %g)" ttl);
  (match capacity with
  | Some c when c < 1 ->
    invalid_arg
      (Printf.sprintf "Cache.create: capacity must be >= 1 (got %d)" c)
  | _ -> ());
  {
    ttl;
    capacity;
    entries = Hashtbl.create 256;
    sentinel = make_sentinel ();
    evictions = 0;
  }

let ttl t = t.ttl
let capacity t = t.capacity
let evictions t = t.evictions

let unlink e =
  e.prev.next <- e.next;
  e.next.prev <- e.prev

let push_front t e =
  let s = t.sentinel in
  e.prev <- s;
  e.next <- s.next;
  s.next.prev <- e;
  s.next <- e

let touch t e =
  if t.sentinel.next != e then begin
    unlink e;
    push_front t e
  end

let drop t e =
  unlink e;
  Hashtbl.remove t.entries e.key

type lookup = Hit of float | Stale | Miss

(* Unordered pair packed into one int; node indices are array indices,
   well under the 2^31 this is unique up to. *)
let key i j = if i < j then (i lsl 31) lor j else (j lsl 31) lor i

let code_hit = 0
let code_stale = 1
let code_miss = 2

let find_code t ~now ~into i j =
  match Hashtbl.find t.entries (key i j) with
  | e ->
    if now -. e.measured <= t.ttl then begin
      touch t e;
      into.(0) <- e.value;
      code_hit
    end
    else begin
      drop t e;
      code_stale
    end
  | exception Not_found -> code_miss

let find t ~now i j =
  let buf = [| nan |] in
  let c = find_code t ~now ~into:buf i j in
  if c = code_hit then Hit buf.(0) else if c = code_stale then Stale else Miss

let store t ~now i j value =
  if Float.is_nan value then 0
  else begin
    let k = key i j in
    match Hashtbl.find t.entries k with
    | e ->
      e.value <- value;
      e.measured <- now;
      touch t e;
      0
    | exception Not_found ->
      let s = t.sentinel in
      let e = { key = k; value; measured = now; prev = s; next = s } in
      Hashtbl.replace t.entries k e;
      push_front t e;
      (match t.capacity with
      | Some cap when Hashtbl.length t.entries > cap ->
        let lru = s.prev in
        if lru != s then begin
          drop t lru;
          t.evictions <- t.evictions + 1;
          1
        end
        else 0
      | _ -> 0)
  end

let length t = Hashtbl.length t.entries

let clear t =
  Hashtbl.reset t.entries;
  let s = t.sentinel in
  s.next <- s;
  s.prev <- s
