(** Per-plane probe-token arbitration.

    {!Budget} bounds how many probes a node (and the engine as a
    whole) may inject, but it is blind to {e who} is asking: a
    background maintenance plane (Chord stabilization, ring repair)
    and foreground traffic (lookups, queries) drain the same buckets,
    so a chatty background protocol can starve the traffic it exists
    to serve — or vice versa.  An arbiter carves one probe allowance
    into weighted per-plane token buckets, checked {e before} a caller
    issues its probe through the engine.  Reservations are strict (no
    borrowing across planes), so the probe volume each plane can
    generate is a deterministic function of [(capacity, rate, shares)]
    and the admission times — which is what makes interval/budget
    sweeps replayable.

    The arbiter is advisory: callers ask {!admit} and skip the probe
    on refusal.  It deliberately lives outside the {!Engine} hot path;
    an engine-level {!Budget} can still cap the aggregate underneath
    it. *)

type config = {
  capacity : float;  (** total burst size, split across planes *)
  rate : float;  (** total tokens per logical second, split likewise *)
  shares : (string * float) list;
      (** [(plane, weight)]: each plane's carve is its weight over the
          weight sum.  Planes not listed are never refused. *)
}

val config : capacity:float -> rate:float -> shares:(string * float) list -> config

val validate_config : string -> config -> unit
(** Raises [Invalid_argument] with a [ctx]-prefixed message when the
    capacity or rate is negative or NaN, a weight is non-positive or
    NaN, a plane is listed twice, no plane is listed, or a plane's
    carved capacity is below one token (a deny-all carve). *)

type t

val create : config -> t
(** Every carve starts full.  Raises [Invalid_argument] on an invalid
    config ({!validate_config}). *)

val admit : t -> now:float -> string -> bool
(** [admit t ~now plane] refills the plane's carve up to [now]
    (logical seconds, monotonic per plane) and withdraws one token.
    [false] (and no withdrawal) when the carve is empty.  A plane
    without a share is always admitted — arbitration only governs the
    planes the config names. *)

val tokens : t -> now:float -> string -> float
(** Current token count of a plane's carve after refill; [infinity]
    for unlisted planes. *)

val granted : t -> string -> int
val denied : t -> string -> int
(** Cumulative admission outcomes per plane (unlisted planes count
    under {!granted} too). *)
