module Rng = Tivaware_util.Rng

type diurnal = {
  period : float;
  loss_amplitude : float;
  jitter_amplitude : float;
  phase : float;
}

let default_diurnal =
  { period = 240.; loss_amplitude = 0.8; jitter_amplitude = 0.8; phase = 0. }

type route_flap = {
  rate : float;
  max_extra : float;
}

let default_route_flap = { rate = 0.01; max_extra = 50. }

type config = {
  diurnal : diurnal option;
  route_flap : route_flap option;
  seed : int;
}

let default = { diurnal = None; route_flap = None; seed = 0 }

let validate_config ctx c =
  (match c.diurnal with
  | None -> ()
  | Some d ->
    if Float.is_nan d.period || d.period <= 0. then
      invalid_arg
        (Printf.sprintf "%s: diurnal period must be > 0 s (got %g)" ctx d.period);
    let amp name v =
      if Float.is_nan v || v < 0. || v > 1. then
        invalid_arg
          (Printf.sprintf "%s: diurnal %s must be in [0, 1] (got %g)" ctx name v)
    in
    amp "loss_amplitude" d.loss_amplitude;
    amp "jitter_amplitude" d.jitter_amplitude;
    if Float.is_nan d.phase then
      invalid_arg (Printf.sprintf "%s: diurnal phase must not be NaN" ctx));
  match c.route_flap with
  | None -> ()
  | Some rf ->
    if Float.is_nan rf.rate || rf.rate < 0. then
      invalid_arg
        (Printf.sprintf "%s: route_flap rate must be >= 0 /s (got %g)" ctx
           rf.rate);
    if Float.is_nan rf.max_extra || rf.max_extra < 0. then
      invalid_arg
        (Printf.sprintf "%s: route_flap max_extra must be >= 0 ms (got %g)" ctx
           rf.max_extra)

(* A link's whole route-change schedule flows from its own generator,
   so the extra delay in force at time T is a pure function of
   (seed, i, j, T) no matter when the link was first probed or how the
   clock stepped to T. *)
type flap_state = {
  rng : Rng.t;
  mutable extra : float;  (* current route detour, ms *)
  mutable next : float;  (* absolute time of the next route change *)
}

type t = {
  config : config;
  base : Profile.t;
  mutable time : float;
  flaps : (int * int, flap_state) Hashtbl.t;
  mutable route_changes : int;
}

let create ?(config = default) base =
  validate_config "Dynamics.create" config;
  { config; base; time = 0.; flaps = Hashtbl.create 64; route_changes = 0 }

let config t = t.config
let base t = t.base
let now t = t.time

let advance_to t time = if time > t.time then t.time <- time

let route_changes t = t.route_changes

let tau = 2. *. Float.pi

(* Multiplicative sinusoid; no randomness, so zero amplitude leaves the
   base parameter bit-identical (the [amp <= 0.] branch never touches
   it) and two engines sharing a clock see the same conditions. *)
let scaled d ~amp ~cap v time =
  if amp <= 0. || v <= 0. then v
  else begin
    let f = 1. +. (amp *. sin (tau *. ((time +. d.phase) /. d.period))) in
    Float.max 0. (Float.min cap (v *. f))
  end

let flap_state t rf i j =
  match Hashtbl.find_opt t.flaps (i, j) with
  | Some st -> st
  | None ->
    let rng = Rng.create ((((t.config.seed * 37) + i) * 1_000_003) + j) in
    let st = { rng; extra = 0.; next = Rng.exponential rng ~rate:rf.rate } in
    Hashtbl.add t.flaps (i, j) st;
    st

let step_flap t rf st =
  while st.next <= t.time do
    st.extra <- Rng.float st.rng rf.max_extra;
    t.route_changes <- t.route_changes + 1;
    st.next <- st.next +. Rng.exponential st.rng ~rate:rf.rate
  done

let link t i j =
  let l = Profile.link t.base i j in
  let l =
    match t.config.diurnal with
    | None -> l
    | Some d ->
      {
        l with
        Profile.loss =
          scaled d ~amp:d.loss_amplitude ~cap:1. l.Profile.loss t.time;
        jitter =
          scaled d ~amp:d.jitter_amplitude ~cap:0.95 l.Profile.jitter t.time;
      }
  in
  match t.config.route_flap with
  (* Before the clock first moves no route event can have fired (event
     times are strictly positive almost surely), so skipping the state
     machine keeps profile validation at engine creation from
     materializing n^2 link streams. *)
  | None -> l
  | Some rf when rf.rate <= 0. || rf.max_extra <= 0. || t.time <= 0. -> l
  | Some rf ->
    let st = flap_state t rf i j in
    step_flap t rf st;
    if st.extra > 0. then
      { l with Profile.extra_delay = l.Profile.extra_delay +. st.extra }
    else l

let profile t = Profile.make (Profile.name t.base ^ "+dynamics") (link t)
