(** Time-varying network conditions layered over a {!Profile}.

    A static per-link profile cannot reproduce the two dynamics the
    paper's measurement studies observe on real paths: loss and jitter
    swing with the diurnal traffic cycle, and routes change mid-run,
    stepping a path's propagation delay to a new plateau.  A dynamics
    model wraps a base profile and re-derives every link's parameters
    from the current engine clock:

    - {e diurnal modulation}: loss and jitter are scaled by
      [1 + amplitude * sin(2 pi (t + phase) / period)] (clamped into
      valid ranges).  The modulation is deterministic and touches no
      random stream, so zero amplitude replays the base profile
      probe-for-probe.
    - {e route flaps}: each directed link carries an independent seeded
      Poisson schedule of route-change events; every event re-draws the
      link's additional [extra_delay] uniformly in [[0, max_extra]].
      The detour in force at time T is a pure function of
      (seed, link, T) — schedules are path-independent, exactly like
      {!Churn}.

    The {!Engine} owns the clock: it calls {!advance_to} on every clock
    movement and installs {!profile} as the {!Fault} injector's
    profile, so every wire attempt sees the conditions of the instant
    it happens.  Outage is {e not} modulated (the injector memoizes
    per-link outage draws for its lifetime); time-varying reachability
    belongs to {!Churn}. *)

type diurnal = {
  period : float;  (** cycle length in logical seconds (> 0) *)
  loss_amplitude : float;  (** relative loss swing, in [0, 1] *)
  jitter_amplitude : float;  (** relative jitter swing, in [0, 1] *)
  phase : float;  (** cycle offset in logical seconds *)
}

val default_diurnal : diurnal
(** 240 s cycle, 0.8 loss and jitter amplitude, zero phase — a
    simulation-scaled day. *)

type route_flap = {
  rate : float;  (** mean route changes per link per second (>= 0) *)
  max_extra : float;  (** detour re-draw bound in ms (>= 0) *)
}

val default_route_flap : route_flap
(** One route change per link per 100 s on average, detours up to
    50 ms. *)

type config = {
  diurnal : diurnal option;
  route_flap : route_flap option;
  seed : int;  (** route-flap schedule seed, independent of fault/churn *)
}

val default : config
(** No diurnal cycle, no route flaps, seed 0 — wrapping with the
    default config replays the base profile bit-for-bit. *)

val validate_config : string -> config -> unit
(** Raises [Invalid_argument] with a [ctx]-prefixed message on NaN or
    out-of-range fields. *)

type t

val create : ?config:config -> Profile.t -> t
(** Wrap a base profile; the clock starts at 0.  Raises
    [Invalid_argument] on an invalid config. *)

val config : t -> config
val base : t -> Profile.t

val advance_to : t -> float -> unit
(** Advance the dynamics clock (monotonic; earlier times are ignored).
    Route-change schedules catch up lazily, per link, on the next
    parameter lookup. *)

val now : t -> float

val link : t -> int -> int -> Profile.link
(** The link's parameters under the conditions at the current clock. *)

val profile : t -> Profile.t
(** The wrapped profile the {!Fault} injector consults — a live view:
    lookups read the dynamics clock at call time. *)

val route_changes : t -> int
(** Route-change events applied so far on probed links (lazily
    materialized schedules only count once a link is looked up). *)
