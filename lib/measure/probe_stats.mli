(** Probe accounting.

    One mutable record per {!Engine}; every counter is monotone so
    callers can diff snapshots around a phase.  [requests] counts calls
    into the engine; [issued] counts attempts actually sent to the
    oracle (retransmissions included), so [issued - requests] bounds the
    retry overhead and [hits / requests] is the service-mode cache
    efficiency (IDMS-style).  Per-label counters attribute issued
    probes to protocols ([vivaldi], [meridian], [alert], ...). *)

type t = {
  mutable requests : int;  (** calls to {!Engine.probe} / {!Engine.rtt} *)
  mutable issued : int;  (** attempts sent to the oracle, retries included *)
  mutable lost : int;  (** attempts dropped by injected loss *)
  mutable retried : int;  (** extra attempts after a loss *)
  mutable failed : int;  (** requests that exhausted every retry *)
  mutable denied : int;  (** requests refused by the probe budget *)
  mutable down : int;  (** requests to/from a node in outage *)
  mutable unmeasured : int;  (** oracle had no measurement for the pair *)
  mutable hits : int;  (** fresh cache hits (no probe issued) *)
  mutable stale : int;  (** cache entries found expired (re-probed) *)
  mutable misses : int;  (** cache lookups with no entry *)
  mutable evicted : int;  (** cache entries evicted by the LRU capacity bound *)
  mutable probe_ms : float;
      (** total measurement time charged on the issuing path (RTTs of
          delivered attempts, timeouts of lost ones, backoff delays) *)
  per_label : (string, int) Hashtbl.t;  (** issued probes per protocol *)
}

val create : unit -> t
val reset : t -> unit

val snapshot : t -> t
(** An independent copy (for diffing around a phase). *)

val label_count : t -> string -> int
(** Issued probes attributed to a label; 0 when never seen. *)

val labels : t -> (string * int) list
(** All per-label counters, sorted by label. *)

val record_issue : t -> string option -> unit
(** One attempt sent to the oracle, attributed to the label. *)

val pp : Format.formatter -> t -> unit
(** One-line summary, e.g.
    [requests=900 issued=842 lost=80 retried=60 failed=20 denied=12
     down=0 unmeasured=4 cache hit/stale/miss=42/3/858 evicted=12
     probe_ms=61520 | meridian=842]. *)
