(** Discrete-event simulation engine.

    A simulator owns a virtual clock and a pending-event heap.  Events
    are closures scheduled at absolute or relative virtual times; running
    the simulator pops events in timestamp order (FIFO among equal
    timestamps) and executes them, which may schedule further events.

    The engine is deliberately minimal: Meridian's online recursive query
    only needs message-at-a-delay semantics, and keeping the core small
    makes its behaviour easy to audit in tests. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time (seconds by convention; milliseconds also work,
    the engine is unit-agnostic). *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** [schedule_after t delay f] = [schedule_at t (now t +. delay)]. *)

val schedule_every : t -> ?start:float -> every:float -> (unit -> bool) -> unit
(** [schedule_every t ~every f] runs [f] at [now + every], then again
    [every] later for as long as [f] returns [true] — the recurring
    helper background protocols (e.g. Chord stabilization) build their
    maintenance schedule from.  [start] overrides the delay before the
    {e first} firing only (staggering many periodic tasks keeps them
    from all landing on the same timestamp).  Raises [Invalid_argument]
    on a non-positive period or a negative start. *)

val pending : t -> int
(** Number of events not yet executed. *)

val on_advance : t -> (float -> unit) -> unit
(** [on_advance t f] registers [f] to be called with the new virtual
    time whenever the clock moves (before the due event runs).
    Observers fire in registration order and must not schedule or run
    events themselves.  Used to slave external clocks — e.g. a
    measurement engine's budget/cache clock — to the simulator. *)

val run : ?until:float -> t -> unit
(** Executes events in order until the queue drains or the next event's
    timestamp exceeds [until].  The clock ends at the last executed
    event's time (or [until] if given and reached). *)

val step : t -> bool
(** Executes exactly one event; [false] when the queue is empty. *)

val reset : t -> unit
(** Clears the queue and rewinds the clock to 0. *)
