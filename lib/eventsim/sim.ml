module Pqueue = Tivaware_util.Pqueue

type t = {
  mutable clock : float;
  queue : (unit -> unit) Pqueue.t;
  mutable observers : (float -> unit) list;
}

let create () = { clock = 0.; queue = Pqueue.create (); observers = [] }

let now t = t.clock

let on_advance t f = t.observers <- t.observers @ [ f ]

let set_clock t time =
  t.clock <- time;
  List.iter (fun f -> f time) t.observers

let schedule_at t time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  Pqueue.push t.queue time f

let schedule_after t delay f =
  if delay < 0. then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (t.clock +. delay) f

let schedule_every t ?start ~every f =
  if not (every > 0.) then
    invalid_arg "Sim.schedule_every: period must be positive";
  let first = match start with None -> every | Some s -> s in
  if first < 0. then invalid_arg "Sim.schedule_every: negative start";
  let rec fire () = if f () then schedule_after t every fire in
  schedule_after t first fire

let pending t = Pqueue.length t.queue

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    set_clock t time;
    f ();
    true

let run ?until t =
  let continue () =
    match (Pqueue.peek t.queue, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some (time, _), Some limit -> time <= limit
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when t.clock < limit -> set_clock t limit
  | _ -> ()

let reset t =
  Pqueue.clear t.queue;
  t.clock <- 0.
