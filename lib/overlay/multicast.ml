module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix

type config = {
  max_degree : int;
  refresh_sample : int;
}

let default_config = { max_degree = 6; refresh_sample = 16 }

type t = {
  config : config;
  root : int;
  parent : int array;  (* -1 = root or not joined *)
  joined : bool array;
  degree : int array;  (* children count *)
  wants : bool array;
  (* group membership intent: everyone from the join order; a detached
     node with [wants] set rejoins when repair finds it up again *)
}

let root t = t.root

let parent t node =
  if t.joined.(node) && node <> t.root then Some t.parent.(node) else None

let members t =
  let out = ref [] in
  Array.iteri (fun node j -> if j then out := node :: !out) t.joined;
  List.rev !out

let children_count t node = t.degree.(node)

let children t node =
  let out = ref [] in
  Array.iteri
    (fun c p -> if p = node && t.joined.(c) && c <> t.root then out := c :: !out)
    t.parent;
  List.rev !out

(* [known] abstracts [Matrix.known]: whether the pair can carry a tree
   edge at all.  Backends answer it as "query is not nan", matrices as
   membership — identical for a matrix-wrapping backend. *)
let known_of_matrix m node cand = Matrix.known m node cand

let known_of_backend b node cand =
  node <> cand
  && not (Float.is_nan (Tivaware_backend.Delay_backend.query b node cand))

(* Predicted-nearest joined member with spare degree among candidates. *)
let best_attachment t ~known ~predict node candidates =
  List.fold_left
    (fun acc cand ->
      if
        cand <> node && t.joined.(cand)
        && t.degree.(cand) < t.config.max_degree
        && known node cand
      then begin
        let p = predict node cand in
        if Float.is_nan p then acc
        else begin
          match acc with
          | Some (_, bp) when bp <= p -> acc
          | _ -> Some (cand, p)
        end
      end
      else acc)
    None candidates

let build_general ?(config = default_config) ~n ~known ~join_order ~predict () =
  assert (Array.length join_order > 0);
  let t =
    {
      config;
      root = join_order.(0);
      parent = Array.make n (-1);
      joined = Array.make n false;
      degree = Array.make n 0;
      wants = Array.make n false;
    }
  in
  Array.iter (fun node -> t.wants.(node) <- true) join_order;
  t.joined.(t.root) <- true;
  let member_list = ref [ t.root ] in
  Array.iteri
    (fun idx node ->
      if idx > 0 then begin
        match best_attachment t ~known ~predict node !member_list with
        | Some (chosen, _) ->
          t.parent.(node) <- chosen;
          t.joined.(node) <- true;
          t.degree.(chosen) <- t.degree.(chosen) + 1;
          member_list := node :: !member_list
        | None -> ()
      end)
    join_order;
  t

let build ?config m ~join_order ~predict =
  build_general ?config ~n:(Matrix.size m) ~known:(known_of_matrix m)
    ~join_order ~predict ()

let build_backend ?config ?predict backend ~join_order =
  let module B = Tivaware_backend.Delay_backend in
  let predict =
    match predict with Some p -> p | None -> B.query backend
  in
  build_general ?config ~n:(B.size backend) ~known:(known_of_backend backend)
    ~join_order ~predict ()

(* Is [candidate] in the subtree rooted at [node]?  Switching to a
   descendant would create a cycle. *)
let in_subtree t node candidate =
  let rec ascend cur steps =
    if steps < 0 then false (* defensive: corrupted tree *)
    else if cur = node then true
    else if cur = t.root || cur < 0 then false
    else ascend t.parent.(cur) (steps - 1)
  in
  ascend candidate (Array.length t.parent)

(* Predicted delay from every member to the root along the current tree
   edges: the quantity a member advertises to prospective children. *)
let predicted_root_delays t ~predict =
  let n = Array.length t.parent in
  let out = Array.make n nan in
  out.(t.root) <- 0.;
  let rec resolve node =
    if not (Float.is_nan out.(node)) then out.(node)
    else begin
      let p = t.parent.(node) in
      let d = resolve p +. predict node p in
      out.(node) <- d;
      d
    end
  in
  List.iter (fun node -> ignore (resolve node)) (members t);
  out

let refresh_general t rng ~known ~predict =
  let all_members = Array.of_list (members t) in
  let order = Array.copy all_members in
  Rng.shuffle rng order;
  let switches = ref 0 in
  (* Root delays are recomputed once per pass; switches within the pass
     use slightly stale values, as a real periodically-advertised
     protocol would. *)
  let root_delay = predicted_root_delays t ~predict in
  let via candidate p = root_delay.(candidate) +. p in
  Array.iter
    (fun node ->
      if node <> t.root && t.joined.(node) then begin
        let current = t.parent.(node) in
        let current_cost = via current (predict node current) in
        (* Sample refresh candidates from the membership; optimize the
           predicted end-to-end delay from the root, not just the parent
           edge, so refreshes cannot degenerate into long chains. *)
        let sample =
          List.init t.config.refresh_sample (fun _ -> Rng.choice rng all_members)
        in
        let eligible =
          List.filter (fun c -> not (in_subtree t node c)) sample
        in
        let best =
          List.fold_left
            (fun acc cand ->
              if
                cand <> node && cand <> current && t.joined.(cand)
                && t.degree.(cand) < t.config.max_degree
                && known node cand
              then begin
                let p = predict node cand in
                if Float.is_nan p || Float.is_nan root_delay.(cand) then acc
                else begin
                  let cost = via cand p in
                  match acc with
                  | Some (_, bc) when bc <= cost -> acc
                  | _ -> Some (cand, cost)
                end
              end
              else acc)
            None eligible
        in
        match best with
        | Some (better, cost) when Float.is_nan current_cost || cost < current_cost ->
          t.degree.(current) <- t.degree.(current) - 1;
          t.parent.(node) <- better;
          t.degree.(better) <- t.degree.(better) + 1;
          incr switches
        | _ -> ()
      end)
    order;
  !switches

let refresh t rng m ~predict =
  refresh_general t rng ~known:(known_of_matrix m) ~predict

let refresh_backend ?predict t rng backend =
  let module B = Tivaware_backend.Delay_backend in
  let predict =
    match predict with Some p -> p | None -> B.query backend
  in
  refresh_general t rng ~known:(known_of_backend backend) ~predict

type metrics = {
  members : int;
  mean_edge_ms : float;
  median_stretch : float;
  p90_stretch : float;
  max_depth : int;
  max_fanout : int;
}

let evaluate_fn ?(on_missing = fun () -> ()) t delay =
  let n = Array.length t.parent in
  (* Root-to-node tree delay and depth by memoized ascent. *)
  let tree_delay = Array.make n nan in
  let depth = Array.make n (-1) in
  tree_delay.(t.root) <- 0.;
  depth.(t.root) <- 0;
  let rec resolve node =
    if depth.(node) >= 0 then (tree_delay.(node), depth.(node))
    else begin
      let p = t.parent.(node) in
      let pd, pdepth = resolve p in
      let edge = delay node p in
      (* A missing edge contributes zero to the path — a silent nan
         exit; [on_missing] lets engine-backed callers count it. *)
      if Float.is_nan edge then on_missing ();
      let d = pd +. (if Float.is_nan edge then 0. else edge) in
      tree_delay.(node) <- d;
      depth.(node) <- pdepth + 1;
      (d, pdepth + 1)
    end
  in
  let edges = ref [] and stretches = ref [] and max_depth = ref 0 in
  List.iter
    (fun node ->
      if node <> t.root then begin
        let _, d = resolve node in
        if d > !max_depth then max_depth := d;
        let edge = delay node t.parent.(node) in
        if not (Float.is_nan edge) then edges := edge :: !edges;
        let direct = delay node t.root in
        if (not (Float.is_nan direct)) && direct > 0. then
          stretches := (tree_delay.(node) /. direct) :: !stretches
        else
          (* No measurable direct root delay: the member drops out of
             the stretch percentiles without a trace. *)
          on_missing ()
      end)
    (members t);
  let edges = Array.of_list !edges and stretches = Array.of_list !stretches in
  {
    members = List.length (members t);
    mean_edge_ms = Stats.mean edges;
    median_stretch = (if Array.length stretches = 0 then 0. else Stats.median stretches);
    p90_stretch =
      (if Array.length stretches = 0 then 0. else Stats.percentile stretches 90.);
    max_depth = !max_depth;
    max_fanout = Array.fold_left max 0 t.degree;
  }

let evaluate t m = evaluate_fn t (Matrix.get m)

let evaluate_backend t backend =
  evaluate_fn t (Tivaware_backend.Delay_backend.query backend)

(* Evaluation against the engine's ground truth, with the nan audit:
   every silent fallback (missing tree edge, unmeasurable direct root
   delay) increments [multicast.evaluate_failures] instead of
   disappearing into the percentiles — the multicast counterpart of
   [meridian.query_failures]. *)
let evaluate_failures_counter reg =
  Tivaware_obs.Registry.counter reg "multicast.evaluate_failures"

let evaluate_engine t engine =
  let module Engine = Tivaware_measure.Engine in
  let module Oracle = Tivaware_measure.Oracle in
  let module Obs = Tivaware_obs in
  let reg = Engine.obs engine in
  let failures = evaluate_failures_counter reg in
  let missing = ref 0 in
  let on_missing () =
    incr missing;
    Obs.Counter.incr failures
  in
  let m =
    evaluate_fn ~on_missing t (Oracle.query (Engine.oracle engine))
  in
  if !missing > 0 then
    Obs.Registry.trace_event reg ~time:(Engine.now engine) ~label:"multicast"
      (Printf.sprintf "evaluate dropped %d unmeasurable edges" !missing);
  m

(* ------------------------------------------------------------------ *)
(* Churn-aware tree repair                                             *)

type repair = {
  detached : int;
  reattached : int;
  rejoined : int;
}

let recompute_degrees t =
  Array.fill t.degree 0 (Array.length t.degree) 0;
  Array.iteri
    (fun node p ->
      if t.joined.(node) && node <> t.root && p >= 0 then
        t.degree.(p) <- t.degree.(p) + 1)
    t.parent

let repair_general t rng ~known ~predict ~up =
  let detached = ref 0 and reattached = ref 0 and rejoined = ref 0 in
  (* 1. Down members leave the tree; their children become orphans
     (still joined, parent no longer a member). *)
  List.iter
    (fun node ->
      if node <> t.root && not (up node) then begin
        t.joined.(node) <- false;
        t.parent.(node) <- -1;
        incr detached
      end)
    (members t);
  (* Detached members no longer occupy their parents' degree slots —
     without this, a root whose children all died in one burst keeps a
     phantom full degree and cannot adopt the orphans, breaking the
     "root is always a candidate" guarantee below. *)
  recompute_degrees t;
  (* 2. Orphans re-attach: a member whose parent is gone (or down) asks
     the predictor — real probes, when driven by an engine — for the
     best live member with spare degree.  Deterministic ascending order
     keeps repair reproducible under a fixed seed. *)
  let live_members () =
    List.filter (fun c -> up c) (members t)
  in
  List.iter
    (fun node ->
      if node <> t.root && t.joined.(node) then begin
        let p = t.parent.(node) in
        let orphaned = p < 0 || (not t.joined.(p)) || not (up p) in
        if orphaned then begin
          let pool = Array.of_list (live_members ()) in
          let sample =
            if Array.length pool = 0 then []
            else
              List.init t.config.refresh_sample (fun _ -> Rng.choice rng pool)
          in
          let eligible =
            List.filter (fun c -> not (in_subtree t node c)) (t.root :: sample)
          in
          match best_attachment t ~known ~predict node eligible with
          | Some (chosen, _) when up chosen ->
            t.parent.(node) <- chosen;
            t.degree.(chosen) <- t.degree.(chosen) + 1;
            incr reattached
          | _ ->
            (* No live attachment point this pass: the node leaves the
               tree and rejoins later like any revived member. *)
            t.joined.(node) <- false;
            t.parent.(node) <- -1
        end
      end)
    (members t);
  recompute_degrees t;
  (* 3. Revived members rejoin the group they still want. *)
  Array.iteri
    (fun node wants ->
      if wants && (not t.joined.(node)) && up node && node <> t.root then begin
        let pool = Array.of_list (live_members ()) in
        let sample =
          if Array.length pool = 0 then []
          else List.init t.config.refresh_sample (fun _ -> Rng.choice rng pool)
        in
        match best_attachment t ~known ~predict node (t.root :: sample) with
        | Some (chosen, _) when up chosen ->
          t.parent.(node) <- chosen;
          t.joined.(node) <- true;
          t.degree.(chosen) <- t.degree.(chosen) + 1;
          incr rejoined
        | _ -> ()
      end)
    t.wants;
  { detached = !detached; reattached = !reattached; rejoined = !rejoined }

let repair t rng m ~predict ~up =
  repair_general t rng ~known:(known_of_matrix m) ~predict ~up

(* Edge existence against the engine's ground truth, whatever backs
   it: a matrix pair is known iff its oracle query is non-nan, so this
   matches [Matrix.known] exactly on matrix engines and extends to
   lazy backend engines. *)
let known_of_engine engine i j =
  let module Engine = Tivaware_measure.Engine in
  let module Oracle = Tivaware_measure.Oracle in
  i <> j && not (Float.is_nan (Oracle.query (Engine.oracle engine) i j))

let repair_engine ?(label = "multicast-repair") ?predict t rng engine =
  let module Engine = Tivaware_measure.Engine in
  let module Churn = Tivaware_measure.Churn in
  let module Obs = Tivaware_obs in
  let up i =
    match Engine.churn engine with
    | None -> true
    | Some c -> Churn.is_up c i
  in
  let predict =
    match predict with Some p -> p | None -> Engine.rtt ~label engine
  in
  let result =
    repair_general t rng ~known:(known_of_engine engine) ~predict ~up
  in
  let reg = Engine.obs engine in
  let labels = [ ("plane", "multicast") ] in
  List.iter
    (fun (name, v) ->
      Obs.Counter.add (Obs.Registry.counter reg ~labels name) (float_of_int v))
    [
      ("repair.detached", result.detached);
      ("repair.reattached", result.reattached);
      ("repair.rejoined", result.rejoined);
    ];
  Obs.Registry.trace_event reg ~time:(Engine.now engine)
    ~label:"repair.multicast"
    (Printf.sprintf "detached=%d reattached=%d rejoined=%d" result.detached
       result.reattached result.rejoined);
  result

(* Measurement-plane neighbor selection: joins and refreshes predict
   edge delays by probing through the engine; edge existence consults
   the engine's ground truth directly (matrix or lazy backend alike).
   Oracle-mode default over a matrix reproduces
   [build ~predict:(Matrix.get m)] bit-for-bit. *)
let build_engine ?config ?(label = "multicast") ?predict engine ~join_order =
  let module Engine = Tivaware_measure.Engine in
  let predict =
    match predict with Some p -> p | None -> Engine.rtt ~label engine
  in
  build_general ?config ~n:(Engine.size engine)
    ~known:(known_of_engine engine) ~join_order ~predict ()

let refresh_engine ?(label = "multicast") ?predict t rng engine =
  let module Engine = Tivaware_measure.Engine in
  let predict =
    match predict with Some p -> p | None -> Engine.rtt ~label engine
  in
  refresh_general t rng ~known:(known_of_engine engine) ~predict
