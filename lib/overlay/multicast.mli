(** Tree-based overlay multicast — the paper's opening example of a
    system that lives or dies by neighbor selection.

    A group grows by sequential joins: each joining node asks a neighbor
    selection mechanism for the nearest existing member and attaches to
    it, subject to a per-node degree cap (as real systems impose on
    fan-out).  The resulting tree is judged by:

    - {e edge cost}: the delay of each parent link;
    - {e stretch}: each member's root-to-member delay along the tree,
      divided by its direct unicast delay to the root (RMD / unicast);
    - {e fan-out} distribution.

    The module also implements a {e parent-refresh} pass in the spirit
    of the paper's dynamic-neighbor Vivaldi: periodically each node
    re-evaluates a sample of members under the current predictor and
    switches to a better parent if one exists (cycle-safe). *)

type config = {
  max_degree : int;  (** children cap per node (default 6) *)
  refresh_sample : int;  (** candidate members sampled per refresh (default 16) *)
}

val default_config : config

type t

val root : t -> int
val parent : t -> int -> int option
(** [None] for the root and for nodes that failed to join. *)

val members : t -> int list
(** Joined nodes, root included. *)

val children_count : t -> int -> int

val children : t -> int -> int list
(** Current children of a member, in ascending node order — the set a
    chunk-forwarding overlay pushes to.  Empty for leaves, for the
    un-joined, and for nodes whose children all left. *)

val build :
  ?config:config ->
  Tivaware_delay_space.Matrix.t ->
  join_order:int array ->
  predict:(int -> int -> float) ->
  t
(** [build m ~join_order ~predict] grows the tree: [join_order.(0)]
    is the root; every other node attaches to the predicted-nearest
    member with spare degree.  Nodes with no measurable candidate are
    left out (reported by {!members}). *)

val refresh :
  t ->
  Tivaware_util.Rng.t ->
  Tivaware_delay_space.Matrix.t ->
  predict:(int -> int -> float) ->
  int
(** One refresh pass over all non-root members in random order: sample
    candidates and switch parents when a member offers a strictly
    smaller {e predicted root delay} (its tree delay to the root plus
    the predicted edge to it) and has spare degree.  Descendants are
    excluded to keep the tree acyclic.  Optimizing end-to-end delay
    rather than the parent edge alone prevents refresh from collapsing
    the tree into long low-latency chains.  Returns the number of
    parent switches. *)

val build_backend :
  ?config:config ->
  ?predict:(int -> int -> float) ->
  Tivaware_backend.Delay_backend.t ->
  join_order:int array ->
  t
(** {!build} over any delay backend: edge existence is "the backend's
    query is not [nan]" (identical to [Matrix.known] for a
    matrix-wrapping backend), and the predictor defaults to the
    backend's own delays.  Two backends that agree on every queried
    pair grow identical trees. *)

val refresh_backend :
  ?predict:(int -> int -> float) ->
  t ->
  Tivaware_util.Rng.t ->
  Tivaware_backend.Delay_backend.t ->
  int
(** {!refresh} over a delay backend, with the same edge-existence and
    default-predictor conventions as {!build_backend}. *)

(** {2 Churn-aware tree repair} *)

type repair = {
  detached : int;  (** down members torn out of the tree *)
  reattached : int;  (** orphaned children re-parented to a live member *)
  rejoined : int;  (** revived members re-admitted to the group *)
}

val repair :
  t ->
  Tivaware_util.Rng.t ->
  Tivaware_delay_space.Matrix.t ->
  predict:(int -> int -> float) ->
  up:(int -> bool) ->
  repair
(** One repair pass against a liveness oracle [up]: down members are
    detached (their children orphaned), every orphan re-attaches to the
    best live member with spare degree among a sampled candidate set
    (the root is always a candidate, so the tree cannot fragment while
    the root is up), and revived members that still want the group
    rejoin the same way.  Orphans with no live attachment point leave
    the tree and rejoin on a later pass.  Degrees are recomputed from
    the repaired parent relation.  The root never detaches; while it is
    down, repair keeps the surviving members attached among themselves
    and re-hangs them once it returns. *)

val repair_engine :
  ?label:string ->
  ?predict:(int -> int -> float) ->
  t ->
  Tivaware_util.Rng.t ->
  Tivaware_measure.Engine.t ->
  repair
(** {!repair} with liveness taken from the engine's churn model (no
    churn = everyone up) and predictions probing through the engine,
    charged and accounted under [label] (default ["multicast-repair"]).
    [predict] overrides the per-probe predictor — the hook policy-driven
    overlays (e.g. {!Tivaware_stream}) use to re-graft orphans by
    coordinate rank or TIV-alert-verified rank instead of a raw probe. *)

val build_engine :
  ?config:config ->
  ?label:string ->
  ?predict:(int -> int -> float) ->
  Tivaware_measure.Engine.t ->
  join_order:int array ->
  t
(** {!build} with the predictor probing through the measurement plane
    ([label] defaults to ["multicast"]); joins consult the engine's
    ground truth for edge existence — matrix-backed and lazy backend
    engines both work.  [predict] overrides the attachment predictor
    (policy-ranked joins); any probes it issues are its own business.
    Oracle-mode default config over a matrix reproduces
    [build ~predict:(Matrix.get m)] bit-for-bit. *)

val refresh_engine :
  ?label:string ->
  ?predict:(int -> int -> float) ->
  t ->
  Tivaware_util.Rng.t ->
  Tivaware_measure.Engine.t ->
  int
(** {!refresh} with engine-mediated predictions; same label,
    ground-truth and [predict]-override conventions as
    {!build_engine}. *)

type metrics = {
  members : int;
  mean_edge_ms : float;
  median_stretch : float;
  p90_stretch : float;
  max_depth : int;
  max_fanout : int;
}

val evaluate : t -> Tivaware_delay_space.Matrix.t -> metrics
(** Tree quality under {e measured} delays.  Stretch is computed for
    members with a measured direct delay to the root. *)

val evaluate_fn :
  ?on_missing:(unit -> unit) -> t -> (int -> int -> float) -> metrics
(** {!evaluate} generalized over any delay function ([nan] = missing
    measurement, as with a matrix).  [on_missing] is invoked once per
    silent [nan] fallback — a missing parent edge (contributes zero to
    the tree path) or a member with no measurable direct root delay
    (drops out of the stretch percentiles); default: ignore, the
    historical behaviour. *)

val evaluate_backend : t -> Tivaware_backend.Delay_backend.t -> metrics
(** {!evaluate} judged by a delay backend's answers. *)

val evaluate_engine : t -> Tivaware_measure.Engine.t -> metrics
(** {!evaluate_fn} against the engine's ground-truth oracle, with the
    nan-sentinel audit: every silent fallback increments the engine
    registry's [multicast.evaluate_failures] counter (and a trace event
    summarizes the drop count), mirroring [meridian.query_failures] —
    no unmeasurable edge vanishes into the percentiles unrecorded. *)
