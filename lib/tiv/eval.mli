(** Accuracy/recall evaluation of the TIV alert mechanism
    (Figures 20 and 21).

    Ground truth is the set of the worst [q] fraction of edges by TIV
    severity; the alert set is every edge whose prediction ratio falls
    at or below a threshold.  Accuracy is the fraction of alerted edges
    that are truly in the worst set; recall is the fraction of the worst
    set that gets alerted. *)

type point = {
  threshold : float;
  alerts : int;  (** size of the alert set *)
  accuracy : float;  (** 1.0 when no alert is raised (vacuous) *)
  recall : float;
}

val evaluate :
  ratios:Tivaware_delay_space.Matrix.t ->
  severity:Tivaware_delay_space.Matrix.t ->
  worst_fraction:float ->
  thresholds:float list ->
  point list

val evaluate_engine :
  engine:Tivaware_measure.Engine.t ->
  predicted:(int -> int -> float) ->
  severity:Tivaware_delay_space.Matrix.t ->
  worst_fraction:float ->
  thresholds:float list ->
  point list
(** As {!evaluate}, but the prediction-ratio matrix is measured through
    the probe engine ({!Alert.ratio_matrix_engine}), so alert precision
    reflects measurement loss and jitter rather than oracle delays.
    Severity stays ground truth.  Alert quality is also recorded on the
    engine's metric registry: per-threshold
    [alert.{precision,recall,f1,alerts}{threshold=...}] gauges plus
    headline unlabelled gauges from the best-F1 point. *)

val evaluate_sampled :
  engine:Tivaware_measure.Engine.t ->
  predicted:(int -> int -> float) ->
  pairs:int ->
  legs:int ->
  worst_fraction:float ->
  thresholds:float list ->
  Tivaware_util.Rng.t ->
  point list
(** Sampled alert evaluation for delay spaces too large to enumerate
    (ground truth read through the engine's delay backend, so lazy
    100k-node spaces work).  [pairs] off-diagonal pairs are sampled
    uniformly without replacement (pairs with no measurement are
    skipped); each one's TIV severity is estimated over [legs] sampled
    intermediates — the mean violating detour ratio, the same
    statistic the dense sweep computes exactly — and the worst
    [worst_fraction] of the {e sample} by that estimate is the ground
    truth the alert rule is scored against.  Measured ratios probe
    through the engine under the ["alert"] label, exactly like
    {!evaluate_engine}, and the same [alert.*] gauges are recorded.
    Raises [Invalid_argument] on a non-positive [pairs]/[legs] or
    fewer than 3 nodes. *)

val f1 : point -> float
(** Harmonic mean of accuracy (precision) and recall; 0 when both
    vanish. *)

val default_thresholds : float list
(** 0.1, 0.2, ..., 1.0 as swept in the paper's figures. *)
