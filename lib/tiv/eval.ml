module Matrix = Tivaware_delay_space.Matrix

type point = {
  threshold : float;
  alerts : int;
  accuracy : float;
  recall : float;
}

let default_thresholds = List.init 10 (fun i -> 0.1 *. float_of_int (i + 1))

let evaluate ~ratios ~severity ~worst_fraction ~thresholds =
  let worst = Severity.worst_edges severity ~fraction:worst_fraction in
  let worst_set = Hashtbl.create (Array.length worst) in
  Array.iter (fun (i, j) -> Hashtbl.replace worst_set (i, j) ()) worst;
  let worst_count = Array.length worst in
  List.map
    (fun threshold ->
      let alerts = Alert.alerted ~ratios ~threshold in
      let hits =
        Array.fold_left
          (fun acc e -> if Hashtbl.mem worst_set e then acc + 1 else acc)
          0 alerts
      in
      let n_alerts = Array.length alerts in
      {
        threshold;
        alerts = n_alerts;
        accuracy =
          (if n_alerts = 0 then 1.
           else float_of_int hits /. float_of_int n_alerts);
        recall =
          (if worst_count = 0 then 1.
           else float_of_int hits /. float_of_int worst_count);
      })
    thresholds

let evaluate_engine ~engine ~predicted ~severity ~worst_fraction ~thresholds =
  let ratios = Alert.ratio_matrix_engine ~engine ~predicted in
  evaluate ~ratios ~severity ~worst_fraction ~thresholds
