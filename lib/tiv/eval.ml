module Matrix = Tivaware_delay_space.Matrix

type point = {
  threshold : float;
  alerts : int;
  accuracy : float;
  recall : float;
}

let default_thresholds = List.init 10 (fun i -> 0.1 *. float_of_int (i + 1))

let evaluate ~ratios ~severity ~worst_fraction ~thresholds =
  let worst = Severity.worst_edges severity ~fraction:worst_fraction in
  let worst_set = Hashtbl.create (Array.length worst) in
  Array.iter (fun (i, j) -> Hashtbl.replace worst_set (i, j) ()) worst;
  let worst_count = Array.length worst in
  List.map
    (fun threshold ->
      let alerts = Alert.alerted ~ratios ~threshold in
      let hits =
        Array.fold_left
          (fun acc e -> if Hashtbl.mem worst_set e then acc + 1 else acc)
          0 alerts
      in
      let n_alerts = Array.length alerts in
      {
        threshold;
        alerts = n_alerts;
        accuracy =
          (if n_alerts = 0 then 1.
           else float_of_int hits /. float_of_int n_alerts);
        recall =
          (if worst_count = 0 then 1.
           else float_of_int hits /. float_of_int worst_count);
      })
    thresholds

let f1 p =
  if p.accuracy +. p.recall <= 0. then 0.
  else 2. *. p.accuracy *. p.recall /. (p.accuracy +. p.recall)

(* Alert quality as gauges on the engine's registry: one labelled
   series per swept threshold, plus headline [alert.precision/recall/
   f1] gauges taken from the best-F1 point (deterministic: first wins
   ties in sweep order). *)
let record_obs engine points =
  let module Obs = Tivaware_obs in
  let module Engine = Tivaware_measure.Engine in
  let reg = Engine.obs engine in
  List.iter
    (fun p ->
      let labels = [ ("threshold", Printf.sprintf "%.1f" p.threshold) ] in
      Obs.Gauge.set (Obs.Registry.gauge reg ~labels "alert.precision") p.accuracy;
      Obs.Gauge.set (Obs.Registry.gauge reg ~labels "alert.recall") p.recall;
      Obs.Gauge.set (Obs.Registry.gauge reg ~labels "alert.f1") (f1 p);
      Obs.Gauge.set
        (Obs.Registry.gauge reg ~labels "alert.alerts")
        (float_of_int p.alerts))
    points;
  match points with
  | [] -> ()
  | first :: _ ->
    let best =
      List.fold_left (fun acc p -> if f1 p > f1 acc then p else acc) first points
    in
    Obs.Gauge.set (Obs.Registry.gauge reg "alert.precision") best.accuracy;
    Obs.Gauge.set (Obs.Registry.gauge reg "alert.recall") best.recall;
    Obs.Gauge.set (Obs.Registry.gauge reg "alert.f1") (f1 best);
    Obs.Registry.trace_event reg ~time:(Engine.now engine) ~label:"alert"
      (Printf.sprintf "best threshold=%.1f precision=%.3f recall=%.3f f1=%.3f"
         best.threshold best.accuracy best.recall (f1 best))

let evaluate_engine ~engine ~predicted ~severity ~worst_fraction ~thresholds =
  let ratios = Alert.ratio_matrix_engine ~engine ~predicted in
  let points = evaluate ~ratios ~severity ~worst_fraction ~thresholds in
  record_obs engine points;
  points
