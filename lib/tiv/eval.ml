module Matrix = Tivaware_delay_space.Matrix

type point = {
  threshold : float;
  alerts : int;
  accuracy : float;
  recall : float;
}

let default_thresholds = List.init 10 (fun i -> 0.1 *. float_of_int (i + 1))

let evaluate ~ratios ~severity ~worst_fraction ~thresholds =
  let worst = Severity.worst_edges severity ~fraction:worst_fraction in
  let worst_set = Hashtbl.create (Array.length worst) in
  Array.iter (fun (i, j) -> Hashtbl.replace worst_set (i, j) ()) worst;
  let worst_count = Array.length worst in
  List.map
    (fun threshold ->
      let alerts = Alert.alerted ~ratios ~threshold in
      let hits =
        Array.fold_left
          (fun acc e -> if Hashtbl.mem worst_set e then acc + 1 else acc)
          0 alerts
      in
      let n_alerts = Array.length alerts in
      {
        threshold;
        alerts = n_alerts;
        accuracy =
          (if n_alerts = 0 then 1.
           else float_of_int hits /. float_of_int n_alerts);
        recall =
          (if worst_count = 0 then 1.
           else float_of_int hits /. float_of_int worst_count);
      })
    thresholds

let f1 p =
  if p.accuracy +. p.recall <= 0. then 0.
  else 2. *. p.accuracy *. p.recall /. (p.accuracy +. p.recall)

(* Alert quality as gauges on the engine's registry: one labelled
   series per swept threshold, plus headline [alert.precision/recall/
   f1] gauges taken from the best-F1 point (deterministic: first wins
   ties in sweep order). *)
let record_obs engine points =
  let module Obs = Tivaware_obs in
  let module Engine = Tivaware_measure.Engine in
  let reg = Engine.obs engine in
  List.iter
    (fun p ->
      let labels = [ ("threshold", Printf.sprintf "%.1f" p.threshold) ] in
      Obs.Gauge.set (Obs.Registry.gauge reg ~labels "alert.precision") p.accuracy;
      Obs.Gauge.set (Obs.Registry.gauge reg ~labels "alert.recall") p.recall;
      Obs.Gauge.set (Obs.Registry.gauge reg ~labels "alert.f1") (f1 p);
      Obs.Gauge.set
        (Obs.Registry.gauge reg ~labels "alert.alerts")
        (float_of_int p.alerts))
    points;
  match points with
  | [] -> ()
  | first :: _ ->
    let best =
      List.fold_left (fun acc p -> if f1 p > f1 acc then p else acc) first points
    in
    Obs.Gauge.set (Obs.Registry.gauge reg "alert.precision") best.accuracy;
    Obs.Gauge.set (Obs.Registry.gauge reg "alert.recall") best.recall;
    Obs.Gauge.set (Obs.Registry.gauge reg "alert.f1") (f1 best);
    Obs.Registry.trace_event reg ~time:(Engine.now engine) ~label:"alert"
      (Printf.sprintf "best threshold=%.1f precision=%.3f recall=%.3f f1=%.3f"
         best.threshold best.accuracy best.recall (f1 best))

let evaluate_engine ~engine ~predicted ~severity ~worst_fraction ~thresholds =
  let ratios = Alert.ratio_matrix_engine ~engine ~predicted in
  let points = evaluate ~ratios ~severity ~worst_fraction ~thresholds in
  record_obs engine points;
  points

(* Sampled alert evaluation for spaces too large to enumerate: ground
   truth is estimated on a uniform pair sample, and each sampled pair's
   severity on a uniform intermediate sample.  Ranking by the estimate
   replaces ranking by the exact severity; the alert rule itself is
   unchanged (measured ratio at or below the threshold). *)
let evaluate_sampled ~engine ~predicted ~pairs ~legs ~worst_fraction
    ~thresholds rng =
  let module Backend = Tivaware_backend.Delay_backend in
  let module Rng = Tivaware_util.Rng in
  let module Engine = Tivaware_measure.Engine in
  if pairs < 1 then invalid_arg "Eval.evaluate_sampled: pairs must be >= 1";
  if legs < 1 then invalid_arg "Eval.evaluate_sampled: legs must be >= 1";
  let backend = Backend.of_engine engine in
  let n = Backend.size backend in
  if n < 3 then invalid_arg "Eval.evaluate_sampled: need at least 3 nodes";
  let seen = Hashtbl.create pairs in
  let samples = ref [] and sampled = ref 0 in
  (* Cap the draw loop so a space of mostly-missing edges terminates. *)
  let attempts = ref 0 in
  let max_attempts = 20 * pairs in
  while !sampled < pairs && !attempts < max_attempts do
    incr attempts;
    let i = Rng.int rng n in
    let j =
      let p = Rng.int rng (n - 1) in
      if p >= i then p + 1 else p
    in
    let key = if i < j then (i, j) else (j, i) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      let dij = Backend.query backend i j in
      if not (Float.is_nan dij) then begin
        (* Severity estimate: mean over sampled intermediates of the
           violating detour ratio — the same statistic the dense sweep
           normalizes by n, so rankings agree in expectation. *)
        let sum = ref 0. in
        for _ = 1 to legs do
          let b = Rng.int rng n in
          if b <> i && b <> j then begin
            let leg =
              Backend.query backend i b +. Backend.query backend j b
            in
            if dij > leg then sum := !sum +. (dij /. leg)
          end
        done;
        let severity = !sum /. float_of_int legs in
        let ratio =
          let d = Engine.rtt ~label:"alert" engine i j in
          if Float.is_nan d || d < 1e-9 then nan else predicted i j /. d
        in
        samples := (severity, ratio) :: !samples;
        incr sampled
      end
    end
  done;
  let samples = Array.of_list (List.rev !samples) in
  let count = Array.length samples in
  let order = Array.init count Fun.id in
  Array.sort
    (fun a b -> compare (fst samples.(b)) (fst samples.(a)))
    order;
  let worst_count =
    min count
      (int_of_float (Float.round (worst_fraction *. float_of_int count)))
  in
  let worst = Array.make count false in
  for r = 0 to worst_count - 1 do
    worst.(order.(r)) <- true
  done;
  let points =
    List.map
      (fun threshold ->
        let alerts = ref 0 and hits = ref 0 in
        Array.iteri
          (fun k (_, ratio) ->
            if (not (Float.is_nan ratio)) && ratio <= threshold then begin
              incr alerts;
              if worst.(k) then incr hits
            end)
          samples;
        {
          threshold;
          alerts = !alerts;
          accuracy =
            (if !alerts = 0 then 1.
             else float_of_int !hits /. float_of_int !alerts);
          recall =
            (if worst_count = 0 then 1.
             else float_of_int !hits /. float_of_int worst_count);
        })
      thresholds
  in
  record_obs engine points;
  points
