(** The TIV alert mechanism (Section 5.1).

    When a delay space with TIVs is embedded into a metric space, edges
    causing severe TIVs tend to be {e shrunk}: many short alternative
    paths pull their endpoints together, so the embedding sacrifices
    them to preserve the majority of edges.  The {e prediction ratio}

    [ratio(i, j) = predicted_distance(i, j) / measured_delay(i, j)]

    is therefore a cheap indicator: a small ratio flags a likely-severe
    edge.  The mechanism does not predict severity — it raises alerts. *)

val ratio_matrix :
  measured:Tivaware_delay_space.Matrix.t ->
  predicted:(int -> int -> float) ->
  Tivaware_delay_space.Matrix.t
(** Prediction ratio for every present edge.  Edges with measured delay
    below 1e-9 ms are left missing to avoid division blowup. *)

val ratio_matrix_engine :
  engine:Tivaware_measure.Engine.t ->
  predicted:(int -> int -> float) ->
  Tivaware_delay_space.Matrix.t
(** As {!ratio_matrix}, but each edge's measured delay is obtained by a
    probe through the measurement plane (label ["alert"]): a lost or
    denied probe leaves the edge's ratio missing (no alert possible),
    and jitter perturbs the ratio.  The engine must be matrix-backed. *)

val ratio_severity_pairs :
  ratios:Tivaware_delay_space.Matrix.t ->
  severity:Tivaware_delay_space.Matrix.t ->
  (float * float) array
(** [(prediction_ratio, severity)] per edge present in both matrices —
    the raw data behind Figure 19. *)

val alerted :
  ratios:Tivaware_delay_space.Matrix.t -> threshold:float -> (int * int) array
(** Edges whose prediction ratio is [<= threshold] (shrunk edges). *)

val is_alert :
  ratios:Tivaware_delay_space.Matrix.t -> threshold:float -> int -> int -> bool
(** [false] when the edge or its ratio is missing. *)

val alert_pair :
  ?label:string ->
  engine:Tivaware_measure.Engine.t ->
  predicted:(int -> int -> float) ->
  threshold:float ->
  int ->
  int ->
  [ `Clean of float | `Flagged of float | `Unmeasurable ]
(** One verification probe for one pair (default plane label
    ["alert"]): [`Unmeasurable] when the probe fails, otherwise the
    measured delay tagged [`Flagged] when the prediction ratio
    [predicted /. measured] is [<= threshold] (a likely-severe shrunk
    edge) and [`Clean] otherwise.  A missing prediction ([nan]) cannot
    raise an alert.  Works over any backend — the per-pair counterpart
    of {!ratio_matrix_engine} for selection loops. *)
