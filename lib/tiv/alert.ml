module Matrix = Tivaware_delay_space.Matrix
module Engine = Tivaware_measure.Engine

let ratio_matrix ~measured ~predicted =
  Matrix.map
    (fun i j d -> if d < 1e-9 then nan else predicted i j /. d)
    measured

(* Measurement-plane ratio matrix: the measured delay of every known
   edge is re-probed through the engine, so lost probes leave the edge
   unalertable and jitter perturbs the ratio. *)
let ratio_matrix_engine ~engine ~predicted =
  let truth = Engine.matrix_exn engine in
  Matrix.map
    (fun i j _ ->
      let d = Engine.rtt ~label:"alert" engine i j in
      if Float.is_nan d || d < 1e-9 then nan else predicted i j /. d)
    truth

let ratio_severity_pairs ~ratios ~severity =
  let out = ref [] in
  Matrix.iter_edges ratios (fun i j r ->
      if Matrix.known severity i j then
        out := (r, Matrix.get severity i j) :: !out);
  Array.of_list (List.rev !out)

let alerted ~ratios ~threshold =
  let out = ref [] in
  Matrix.iter_edges ratios (fun i j r ->
      if r <= threshold then out := (i, j) :: !out);
  Array.of_list (List.rev !out)

let is_alert ~ratios ~threshold i j =
  Matrix.known ratios i j && Matrix.get ratios i j <= threshold

(* Per-pair alert check: the replica-selection building block.  Unlike
   [ratio_matrix_engine] it needs no dense matrix — one verification
   probe per call, so it works over lazy delay backends too. *)
let alert_pair ?(label = "alert") ~engine ~predicted ~threshold i j =
  let d = Engine.rtt ~label engine i j in
  if Float.is_nan d then `Unmeasurable
  else if d < 1e-9 then `Clean d
  else
    let p = predicted i j in
    if Float.is_nan p then `Clean d
    else if p /. d <= threshold then `Flagged d
    else `Clean d
