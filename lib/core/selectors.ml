module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module System = Tivaware_vivaldi.System
module Ides = Tivaware_embedding.Ides
module Lat = Tivaware_embedding.Lat
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Tiv_aware = Tivaware_meridian.Tiv_aware
module Engine = Tivaware_measure.Engine

let default_rounds = 200

let embed_vivaldi ?config ?(rounds = default_rounds) rng m =
  let system = System.create ?config rng m in
  System.run system ~rounds;
  system

let embed_vivaldi_engine ?config ?(rounds = default_rounds) rng engine =
  let system = System.create_with_engine ?config rng engine in
  System.run system ~rounds;
  system

let normalize (i, j) = if i < j then (i, j) else (j, i)

let embed_vivaldi_filtered ?config ?(rounds = default_rounds) ~banned rng m =
  let system = System.create ?config rng m in
  let n = System.size system in
  let sys_rng = System.rng system in
  (* Rebuild each node's probing set, rejecting banned edges. *)
  for i = 0 to n - 1 do
    let want = Array.length (System.neighbors system i) in
    let chosen = ref [] and count = ref 0 and attempts = ref 0 in
    let seen = Hashtbl.create (2 * want) in
    while !count < want && !attempts < 50 * want do
      incr attempts;
      let j = Rng.int sys_rng n in
      if j <> i && (not (Hashtbl.mem seen j)) && not (banned (normalize (i, j)))
      then begin
        Hashtbl.replace seen j ();
        chosen := j :: !chosen;
        incr count
      end
    done;
    if !count > 0 then System.set_neighbors system i (Array.of_list !chosen)
  done;
  System.run system ~rounds;
  system

let vivaldi_predict system i j = System.predicted system i j

let ides_predict ides i j = Ides.predicted ides i j

let lat_predict lat i j = Lat.predicted lat i j

let banned_set pairs =
  let table = Hashtbl.create (Array.length pairs) in
  Array.iter (fun e -> Hashtbl.replace table (normalize e) ()) pairs;
  fun e -> Hashtbl.mem table (normalize e)

let meridian_build m cfg rng nodes =
  Overlay.build rng m cfg ~meridian_nodes:nodes

let meridian_build_filtered m cfg ~banned rng nodes =
  let edge_filter a b = not (banned (normalize (a, b))) in
  Overlay.build ~edge_filter rng m cfg ~meridian_nodes:nodes

let meridian_build_tiv_aware m cfg ~predicted ?ts ?tl rng nodes =
  let placement = Tiv_aware.placement cfg ~predicted ~measured:m ?ts ?tl () in
  Overlay.build ~placement rng m cfg ~meridian_nodes:nodes

let meridian_build_tiv_aware_engine engine cfg ~predicted ?ts ?tl rng nodes =
  let m = Engine.matrix_exn engine in
  let placement = Tiv_aware.placement_engine cfg ~predicted ~engine ?ts ?tl () in
  Overlay.build ~placement rng m cfg ~meridian_nodes:nodes

let meridian_fallback_tiv_aware m ~predicted ?ts () overlay =
  Tiv_aware.fallback overlay ~predicted ~measured:m ?ts ()

let meridian_fallback_tiv_aware_engine engine ~predicted ?ts () overlay =
  Tiv_aware.fallback_engine overlay ~predicted ~engine ?ts ()
