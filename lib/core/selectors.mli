(** Ready-made neighbor-selection mechanisms for the experiments.

    Each function wires one mechanism variant from the paper into the
    shapes {!Experiment} expects: a [predict : int -> int -> float]
    function for coordinate-based mechanisms, or an overlay [build]
    function for Meridian variants. *)

val embed_vivaldi :
  ?config:Tivaware_vivaldi.System.config ->
  ?rounds:int ->
  Tivaware_util.Rng.t ->
  Tivaware_delay_space.Matrix.t ->
  Tivaware_vivaldi.System.t
(** Creates a Vivaldi system and runs it to (approximate) convergence;
    default 200 rounds. *)

val embed_vivaldi_engine :
  ?config:Tivaware_vivaldi.System.config ->
  ?rounds:int ->
  Tivaware_util.Rng.t ->
  Tivaware_measure.Engine.t ->
  Tivaware_vivaldi.System.t
(** As {!embed_vivaldi}, but probing through a measurement-plane
    engine (loss/jitter/budget-aware embedding). *)

val embed_vivaldi_filtered :
  ?config:Tivaware_vivaldi.System.config ->
  ?rounds:int ->
  banned:((int * int) -> bool) ->
  Tivaware_util.Rng.t ->
  Tivaware_delay_space.Matrix.t ->
  Tivaware_vivaldi.System.t
(** As {!embed_vivaldi} but probing-neighbor edges for which [banned
    (min i j, max i j)] holds are never used (Section 4.3's global
    TIV-severity filter). *)

val vivaldi_predict : Tivaware_vivaldi.System.t -> int -> int -> float

val ides_predict : Tivaware_embedding.Ides.t -> int -> int -> float

val lat_predict : Tivaware_embedding.Lat.t -> int -> int -> float

val banned_set : (int * int) array -> (int * int) -> bool
(** Membership test over normalized [(min, max)] pairs. *)

val meridian_build :
  Tivaware_delay_space.Matrix.t ->
  Tivaware_meridian.Ring.config ->
  Tivaware_util.Rng.t ->
  int array ->
  Tivaware_meridian.Overlay.t
(** Plain Meridian overlay builder for {!Experiment.run_meridian}. *)

val meridian_build_filtered :
  Tivaware_delay_space.Matrix.t ->
  Tivaware_meridian.Ring.config ->
  banned:((int * int) -> bool) ->
  Tivaware_util.Rng.t ->
  int array ->
  Tivaware_meridian.Overlay.t
(** Overlay builder that excludes banned edges from ring construction. *)

val meridian_build_tiv_aware :
  Tivaware_delay_space.Matrix.t ->
  Tivaware_meridian.Ring.config ->
  predicted:(int -> int -> float) ->
  ?ts:float ->
  ?tl:float ->
  Tivaware_util.Rng.t ->
  int array ->
  Tivaware_meridian.Overlay.t
(** Overlay builder with TIV-aware dual ring placement. *)

val meridian_build_tiv_aware_engine :
  Tivaware_measure.Engine.t ->
  Tivaware_meridian.Ring.config ->
  predicted:(int -> int -> float) ->
  ?ts:float ->
  ?tl:float ->
  Tivaware_util.Rng.t ->
  int array ->
  Tivaware_meridian.Overlay.t
(** TIV-aware overlay builder whose alert ratios are probed through the
    measurement plane (engine must be matrix-backed). *)

val meridian_fallback_tiv_aware :
  Tivaware_delay_space.Matrix.t ->
  predicted:(int -> int -> float) ->
  ?ts:float ->
  unit ->
  Tivaware_meridian.Overlay.t ->
  Tivaware_meridian.Query.fallback
(** Query-restart fallback, shaped for {!Experiment.run_meridian}'s
    [?fallback]. *)

val meridian_fallback_tiv_aware_engine :
  Tivaware_measure.Engine.t ->
  predicted:(int -> int -> float) ->
  ?ts:float ->
  unit ->
  Tivaware_meridian.Overlay.t ->
  Tivaware_meridian.Query.fallback
(** Measurement-plane variant of {!meridian_fallback_tiv_aware}. *)
