(** The neighbor-selection experiment methodology (Section 4.1).

    {b Predictor-based mechanisms} (Vivaldi, IDES, LAT, and their
    variants): a random subset of nodes are candidates, the rest are
    clients; each client picks the candidate its predictor claims is
    nearest and pays the percentage penalty relative to the measured
    optimum.  The experiment repeats over several candidate subsets and
    reports cumulative penalties.

    {b Meridian}: a random subset participates as Meridian nodes; every
    remaining node is a client that sends one closest-neighbor query to
    a random Meridian node.  Penalties are measured against the closest
    Meridian node; probe counts are accumulated to compare overheads. *)

type result = {
  penalties : float array;  (** one entry per successful client test *)
  failures : int;  (** clients skipped (missing measurements) *)
}

val run_predictor :
  Tivaware_util.Rng.t ->
  Tivaware_delay_space.Matrix.t ->
  ?runs:int ->
  candidate_count:int ->
  predict:(int -> int -> float) ->
  unit ->
  result
(** [run_predictor rng m ~candidate_count ~predict ()] with [runs]
    (default 5) different random candidate subsets.  [predict client
    candidate] may return [nan] to abstain from a candidate. *)

type meridian_result = {
  base : result;
  probes : int;  (** total online probes over all queries *)
  queries : int;
  hops_mean : float;
  restarts : int;
}

val run_meridian :
  Tivaware_util.Rng.t ->
  Tivaware_delay_space.Matrix.t ->
  ?runs:int ->
  ?termination:Tivaware_meridian.Query.termination ->
  ?fallback:(Tivaware_meridian.Overlay.t -> Tivaware_meridian.Query.fallback) ->
  ?engine:Tivaware_measure.Engine.t ->
  meridian_count:int ->
  build:
    (Tivaware_util.Rng.t -> int array -> Tivaware_meridian.Overlay.t) ->
  unit ->
  meridian_result
(** [run_meridian rng m ~meridian_count ~build ()]: per run, samples the
    Meridian subset, calls [build] to construct the overlay (hooks for
    filtered / TIV-aware construction), then queries once per client
    from a random start node.

    With [?engine], every query probes through the measurement plane
    ({!Tivaware_meridian.Query.closest_engine}); the engine clock
    advances one logical second per query, queries whose start probe
    fails count as failures, and probe/penalty degradation under
    loss/jitter shows up in the result.  [m] stays the ground truth:
    noisy measurements steer the choice, but the penalty charges the
    chosen node's true delay against the true optimum. *)
