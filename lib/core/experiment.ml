module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Query = Tivaware_meridian.Query
module Overlay = Tivaware_meridian.Overlay
module Engine = Tivaware_measure.Engine

type result = {
  penalties : float array;
  failures : int;
}

let split_population rng n subset_count =
  let ids = Rng.permutation rng n in
  let subset = Array.sub ids 0 subset_count in
  let rest = Array.sub ids subset_count (n - subset_count) in
  (subset, rest)

(* Measured optimum among candidates; None when the client has no
   measured candidate edge. *)
let optimal_candidate m client candidates =
  Array.fold_left
    (fun acc c ->
      if c = client then acc
      else begin
        let d = Matrix.get m client c in
        if Float.is_nan d then acc
        else begin
          match acc with
          | Some (_, bd) when bd <= d -> acc
          | _ -> Some (c, d)
        end
      end)
    None candidates

let run_predictor rng m ?(runs = 5) ~candidate_count ~predict () =
  let n = Matrix.size m in
  assert (candidate_count > 0 && candidate_count < n);
  let penalties = ref [] and failures = ref 0 in
  for _ = 1 to runs do
    let candidates, clients = split_population rng n candidate_count in
    Array.iter
      (fun client ->
        (* The client trusts its predictor to rank candidates. *)
        let selected =
          Array.fold_left
            (fun acc c ->
              let p = predict client c in
              if Float.is_nan p then acc
              else begin
                match acc with
                | Some (_, bp) when bp <= p -> acc
                | _ -> Some (c, p)
              end)
            None candidates
        in
        match (selected, optimal_candidate m client candidates) with
        | Some (sel, _), Some (_, opt_d) ->
          let sel_d = Matrix.get m client sel in
          if Float.is_nan sel_d || opt_d <= 0. then incr failures
          else penalties := Penalty.percentage ~selected:sel_d ~optimal:opt_d :: !penalties
        | _ -> incr failures)
      clients
  done;
  { penalties = Array.of_list !penalties; failures = !failures }

type meridian_result = {
  base : result;
  probes : int;
  queries : int;
  hops_mean : float;
  restarts : int;
}

let run_meridian rng m ?(runs = 5) ?termination ?fallback ?engine
    ~meridian_count ~build () =
  let n = Matrix.size m in
  assert (meridian_count > 1 && meridian_count < n);
  let penalties = ref [] and failures = ref 0 in
  let probes = ref 0 and queries = ref 0 and hops = ref 0 and restarts = ref 0 in
  for _ = 1 to runs do
    let meridian_nodes, clients = split_population rng n meridian_count in
    let overlay = build rng meridian_nodes in
    let fb = Option.map (fun f -> f overlay) fallback in
    Array.iter
      (fun client ->
        let start = meridian_nodes.(Rng.int rng meridian_count) in
        match Query.optimal overlay m ~target:client with
        | None -> incr failures
        | Some (_, opt_d) -> (
          if Float.is_nan (Matrix.get m start client) then incr failures
          else begin
            let outcome =
              match engine with
              | None ->
                Query.closest ?termination ?fallback:fb overlay m ~start
                  ~target:client
              | Some e ->
                (* Service mode: one logical second per query, so cache
                   TTLs and budget refills span queries. *)
                Engine.advance e 1.;
                Query.closest_engine ?termination ?fallback:fb overlay e
                  ~start ~target:client
            in
            incr queries;
            probes := !probes + outcome.Query.probes;
            hops := !hops + outcome.Query.hops;
            restarts := !restarts + outcome.Query.restarts;
            (* Noisy measurements may steer the choice, but the client
               pays the true delay of whoever was chosen. *)
            let paid =
              if Float.is_nan outcome.Query.chosen_delay then nan
              else Matrix.get m outcome.Query.chosen client
            in
            if Float.is_nan paid || opt_d <= 0. then incr failures
            else
              penalties :=
                Penalty.percentage ~selected:paid ~optimal:opt_d :: !penalties
          end))
      clients
  done;
  {
    base = { penalties = Array.of_list !penalties; failures = !failures };
    probes = !probes;
    queries = !queries;
    hops_mean =
      (if !queries = 0 then 0. else float_of_int !hops /. float_of_int !queries);
    restarts = !restarts;
  }
