module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix

type cluster_spec = {
  fraction : float;
  routers : int;
  intra_weight_lo : float;
  intra_weight_hi : float;
  access_mu : float;
  access_sigma : float;
}

type params = {
  nodes : int;
  clusters : cluster_spec list;
  noise_fraction : float;
  noise_access_shape : float;
  noise_access_scale : float;
  noise_access_cap : float;
  inter_base_lo : float;
  inter_base_hi : float;
  gateways_per_pair : int;
  extra_intra_edges : int;
  inflate_prob_intra : float;
  inflate_prob_inter : float;
  inflation_shape : float;
  inflation_scale : float;
  inflation_max : float;
  detour_cap_ms : float;
  jitter : float;
  missing_fraction : float;
}

let default_cluster fraction =
  {
    fraction;
    routers = 12;
    intra_weight_lo = 2.;
    intra_weight_hi = 18.;
    access_mu = 1.6;
    (* exp(1.6) ~ 5 ms median access *)
    access_sigma = 0.7;
  }

let default =
  {
    nodes = 800;
    clusters =
      [ default_cluster 0.48; default_cluster 0.34; default_cluster 0.18 ];
    noise_fraction = 0.05;
    noise_access_shape = 1.3;
    noise_access_scale = 25.;
    noise_access_cap = 400.;
    inter_base_lo = 60.;
    inter_base_hi = 160.;
    gateways_per_pair = 3;
    extra_intra_edges = 10;
    inflate_prob_intra = 0.05;
    inflate_prob_inter = 0.13;
    inflation_shape = 1.3;
    inflation_scale = 0.35;
    inflation_max = 12.;
    detour_cap_ms = 450.;
    jitter = 0.03;
    missing_fraction = 0.01;
  }

type t = {
  matrix : Matrix.t;
  base : Matrix.t;
  cluster_of : int array;
  params : params;
}

type link_class = Access | Intra_cluster | Inter_cluster

(* End-to-end paths fall into the three structural classes the model is
   built from: anything touching a noise host is dominated by its poor
   access link; otherwise the path either stays inside one cluster or
   crosses the inter-cluster backbone. *)
let link_class t i j =
  let ci = t.cluster_of.(i) and cj = t.cluster_of.(j) in
  if ci < 0 || cj < 0 then Access
  else if ci = cj then Intra_cluster
  else Inter_cluster

let validate p =
  let err msg = Error msg in
  let total_fraction =
    List.fold_left (fun acc c -> acc +. c.fraction) 0. p.clusters
  in
  if p.nodes < 4 then err "nodes must be >= 4"
  else if p.clusters = [] then err "at least one cluster required"
  else if abs_float (total_fraction -. 1.) > 0.01 then
    err "cluster fractions must sum to 1"
  else if List.exists (fun c -> c.routers < 1) p.clusters then
    err "each cluster needs at least one router"
  else if List.exists (fun c -> c.intra_weight_lo <= 0. || c.intra_weight_hi < c.intra_weight_lo) p.clusters
  then err "bad intra-cluster weight range"
  else if p.noise_fraction < 0. || p.noise_fraction >= 1. then
    err "noise_fraction must be in [0, 1)"
  else if p.inter_base_lo <= 0. || p.inter_base_hi < p.inter_base_lo then
    err "bad inter-cluster base range"
  else if p.gateways_per_pair < 1 then err "gateways_per_pair must be >= 1"
  else if p.inflation_max < 1. then err "inflation_max must be >= 1"
  else if p.jitter < 0. || p.jitter >= 1. then err "jitter must be in [0, 1)"
  else if p.missing_fraction < 0. || p.missing_fraction >= 1. then
    err "missing_fraction must be in [0, 1)"
  else Ok ()

(* Per-cluster random backbone subgraphs linked by gateway edges. *)
let build_backbone rng p =
  let clusters = Array.of_list p.clusters in
  let k = Array.length clusters in
  let offsets = Array.make k 0 in
  let total = ref 0 in
  Array.iteri
    (fun c spec ->
      offsets.(c) <- !total;
      total := !total + spec.routers)
    clusters;
  let g = Router_graph.create !total in
  (* Intra-cluster connectivity. *)
  Array.iteri
    (fun c spec ->
      let weight () = Rng.uniform rng spec.intra_weight_lo spec.intra_weight_hi in
      let sub =
        Router_graph.random_connected rng ~n:spec.routers
          ~extra_edges:p.extra_intra_edges ~weight
      in
      for r = 0 to spec.routers - 1 do
        List.iter
          (fun (peer, w) ->
            (* Each undirected edge appears in both adjacency lists; add
               it once. *)
            if peer > r then Router_graph.add_edge g (offsets.(c) + r) (offsets.(c) + peer) w)
          (Router_graph.neighbors sub r)
      done)
    clusters;
  (* Inter-cluster gateways: several parallel links per cluster pair with
     distinct weights, giving genuine alternative intercontinental
     routes. *)
  for a = 0 to k - 1 do
    for b = a + 1 to k - 1 do
      for _ = 1 to p.gateways_per_pair do
        let ra = offsets.(a) + Rng.int rng clusters.(a).routers in
        let rb = offsets.(b) + Rng.int rng clusters.(b).routers in
        let w = Rng.uniform rng p.inter_base_lo p.inter_base_hi in
        Router_graph.add_edge g ra rb w
      done
    done
  done;
  (g, offsets)

let generate rng p =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.generate: " ^ msg));
  let clusters = Array.of_list p.clusters in
  let k = Array.length clusters in
  let backbone, offsets = build_backbone rng p in
  let router_sp = Router_graph.shortest_paths backbone in
  (* Node population: noise first sizing, then cluster shares. *)
  let noise_count = int_of_float (Float.round (float_of_int p.nodes *. p.noise_fraction)) in
  let regular = p.nodes - noise_count in
  let counts =
    Array.map (fun c -> int_of_float (floor (c.fraction *. float_of_int regular))) clusters
  in
  (* Distribute rounding remainder to the largest clusters. *)
  let assigned = Array.fold_left ( + ) 0 counts in
  let remainder = regular - assigned in
  for i = 0 to remainder - 1 do
    counts.(i mod k) <- counts.(i mod k) + 1
  done;
  let cluster_of = Array.make p.nodes (-1) in
  let attach_router = Array.make p.nodes 0 in
  let access = Array.make p.nodes 0. in
  let node = ref 0 in
  Array.iteri
    (fun c count ->
      for _ = 1 to count do
        cluster_of.(!node) <- c;
        attach_router.(!node) <- offsets.(c) + Rng.int rng clusters.(c).routers;
        access.(!node) <-
          Rng.lognormal rng ~mu:clusters.(c).access_mu ~sigma:clusters.(c).access_sigma;
        incr node
      done)
    counts;
  for _ = 1 to noise_count do
    let c = Rng.int rng k in
    cluster_of.(!node) <- -1;
    attach_router.(!node) <- offsets.(c) + Rng.int rng clusters.(c).routers;
    access.(!node) <-
      Float.min p.noise_access_cap
        (Rng.pareto rng ~shape:p.noise_access_shape ~scale:p.noise_access_scale);
    incr node
  done;
  assert (!node = p.nodes);
  (* Shuffle node identities so indices carry no structure. *)
  let perm = Rng.permutation rng p.nodes in
  let cluster_of = Array.map (fun i -> cluster_of.(perm.(i))) (Array.init p.nodes Fun.id) in
  let attach_router = Array.map (fun i -> attach_router.(perm.(i))) (Array.init p.nodes Fun.id) in
  let access = Array.map (fun i -> access.(perm.(i))) (Array.init p.nodes Fun.id) in
  let base =
    Matrix.init p.nodes (fun i j ->
        access.(i) +. router_sp.(attach_router.(i)).(attach_router.(j)) +. access.(j))
  in
  let measured =
    Matrix.init p.nodes (fun i j ->
        if Rng.bernoulli rng p.missing_fraction then nan
        else begin
          let same =
            cluster_of.(i) >= 0 && cluster_of.(i) = cluster_of.(j)
          in
          let inflate_prob =
            if same then p.inflate_prob_intra else p.inflate_prob_inter
          in
          let b = Matrix.get base i j in
          let multiplier =
            if Rng.bernoulli rng inflate_prob then begin
              let drawn =
                1.
                +. Rng.pareto rng ~shape:p.inflation_shape ~scale:p.inflation_scale
                -. p.inflation_scale
              in
              let detour_bound = 1. +. (p.detour_cap_ms /. Float.max 1. b) in
              Float.min (Float.min p.inflation_max drawn) detour_bound
            end
            else 1.
          in
          let jitter = Rng.uniform rng (1. -. p.jitter) (1. +. p.jitter) in
          b *. multiplier *. jitter
        end)
  in
  { matrix = measured; base; cluster_of; params = p }
