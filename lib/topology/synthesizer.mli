(** Delay-space synthesis from a measured matrix, after Zhang et al.'s
    DS² framework (IMC 2006) — the tool that produced the paper's
    4000-node data set from smaller measurements.

    {!analyze} builds a statistical model of an input delay space:
    its major-cluster structure and, for every cluster-pair bucket
    (including the noise pseudo-cluster), the empirical distribution of
    measured delays plus the fraction of missing measurements.
    {!synthesize} then emits a delay matrix of {e any} size whose nodes
    follow the same cluster proportions and whose delays are drawn from
    the matching bucket distributions (with small smoothing jitter).

    Because inflated (TIV-causing) delays are part of the empirical
    bucket distributions, the synthesized space reproduces the source's
    delay and TIV-severity profiles at the distribution level.  What it
    does {e not} preserve is per-edge correlation structure — e.g. that
    one specific node pair's inflation is consistent with a particular
    routing detour — which is the same simplification DS² itself makes
    and documents. *)

type model

val analyze :
  ?clusters:int -> ?radius_ms:float -> Tivaware_delay_space.Matrix.t -> model
(** Builds the model ({!Tivaware_delay_space.Clustering} with [clusters]
    major clusters, default 3, radius default 50 ms).  Raises
    [Invalid_argument] if some cluster-pair bucket has no measured edge
    (degenerate inputs). *)

val source_size : model -> int

val cluster_fractions : model -> float array
(** Node share of each major cluster; the last entry is the noise
    share.  Sums to 1. *)

val missing_fraction : model -> float

val assign_buckets : Tivaware_util.Rng.t -> model -> size:int -> int array
(** [assign_buckets rng model ~size] deals [size] nodes into the model's
    cluster buckets by largest-remainder rounding of the source
    proportions, then shuffles the assignment with [rng].  The returned
    array maps node id to bucket index (the last bucket is the noise
    pseudo-cluster).  This is the first — and only size-dependent — RNG
    consumption of a synthesis run, so a lazy backend that fixes the
    assignment up front stays aligned with {!synthesize_with_clusters}. *)

val bucket_labels : model -> int array -> int array
(** Maps a bucket assignment to user-facing cluster labels: the noise
    pseudo-cluster becomes [-1], every other bucket keeps its index. *)

val draw_delay :
  ?jitter:float -> Tivaware_util.Rng.t -> model -> a:int -> b:int -> float
(** [draw_delay rng model ~a ~b] draws one delay between a node in
    bucket [a] and one in bucket [b]: first a Bernoulli missing-entry
    trial at the model's missing fraction, then an empirical bucket
    sample scaled by a uniform factor in [1 ± jitter] (default 0.05).
    Returns [nan] for missing entries and empty buckets (the latter
    consumes no further RNG).  {!synthesize_with_clusters} is exactly
    one such draw per upper-triangular pair in row-major order. *)

val synthesize :
  ?jitter:float ->
  Tivaware_util.Rng.t ->
  model ->
  size:int ->
  Tivaware_delay_space.Matrix.t
(** [synthesize rng model ~size] draws a [size]-node delay space from
    the model.  Each delay is an empirical bucket sample scaled by a
    uniform factor in [1 ± jitter] (default 0.05); entries go missing
    at the source's missing rate. *)

val synthesize_with_clusters :
  ?jitter:float ->
  Tivaware_util.Rng.t ->
  model ->
  size:int ->
  Tivaware_delay_space.Matrix.t * int array
(** As {!synthesize}, also returning the synthetic cluster label of
    each node ([-1] = noise). *)
