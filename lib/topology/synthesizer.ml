module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Clustering = Tivaware_delay_space.Clustering

type model = {
  source_size : int;
  fractions : float array;  (* per cluster, noise last *)
  buckets : float array array array;  (* buckets.(a).(b) = delay samples, a <= b *)
  missing_fraction : float;
}

let source_size m = m.source_size
let cluster_fractions m = Array.copy m.fractions
let missing_fraction m = m.missing_fraction

let analyze ?(clusters = 3) ?(radius_ms = 50.) matrix =
  let n = Matrix.size matrix in
  let assignment = Clustering.cluster ~k:clusters ~radius_ms matrix in
  let k = Array.length assignment.Clustering.clusters in
  (* Bucket index: cluster id, or k for the noise pseudo-cluster. *)
  let bucket_of node =
    let l = assignment.Clustering.label.(node) in
    if l < 0 then k else l
  in
  let nbuckets = k + 1 in
  let samples = Array.init nbuckets (fun _ -> Array.make nbuckets []) in
  Matrix.iter_edges matrix (fun i j d ->
      let a = bucket_of i and b = bucket_of j in
      let a, b = if a <= b then (a, b) else (b, a) in
      samples.(a).(b) <- d :: samples.(a).(b));
  let buckets =
    Array.map (Array.map (fun l -> Array.of_list l)) samples
  in
  (* Every bucket that can be drawn from must have data.  Empty clusters
     never get drawn (fraction 0), so only check populated pairs. *)
  let counts =
    Array.init nbuckets (fun c ->
        if c = k then Array.length assignment.Clustering.noise
        else Array.length assignment.Clustering.clusters.(c))
  in
  for a = 0 to nbuckets - 1 do
    for b = a to nbuckets - 1 do
      let pair_possible =
        if a = b then counts.(a) >= 2 else counts.(a) >= 1 && counts.(b) >= 1
      in
      if pair_possible && Array.length buckets.(a).(b) = 0 then
        invalid_arg
          (Printf.sprintf "Synthesizer.analyze: bucket (%d, %d) has no measured edge" a b)
    done
  done;
  let pairs = n * (n - 1) / 2 in
  {
    source_size = n;
    fractions =
      Array.init nbuckets (fun c -> float_of_int counts.(c) /. float_of_int n);
    buckets;
    missing_fraction =
      (if pairs = 0 then 0.
       else float_of_int (pairs - Matrix.edge_count matrix) /. float_of_int pairs);
  }

let assign_buckets rng model ~size =
  assert (size >= 2);
  let nbuckets = Array.length model.fractions in
  (* Assign nodes to buckets by the source proportions (largest-remainder
     rounding keeps totals exact). *)
  let counts =
    Array.map (fun f -> int_of_float (floor (f *. float_of_int size))) model.fractions
  in
  let assigned = Array.fold_left ( + ) 0 counts in
  let order = Array.init nbuckets Fun.id in
  Array.sort
    (fun a b ->
      compare
        (model.fractions.(b) -. floor (model.fractions.(b) *. float_of_int size) /. float_of_int size)
        (model.fractions.(a) -. floor (model.fractions.(a) *. float_of_int size) /. float_of_int size))
    order;
  for r = 0 to size - assigned - 1 do
    let c = order.(r mod nbuckets) in
    counts.(c) <- counts.(c) + 1
  done;
  let bucket_of = Array.make size 0 in
  let node = ref 0 in
  Array.iteri
    (fun c count ->
      for _ = 1 to count do
        bucket_of.(!node) <- c;
        incr node
      done)
    counts;
  Rng.shuffle rng bucket_of;
  bucket_of

let bucket_labels model bucket_of =
  let noise_bucket = Array.length model.fractions - 1 in
  Array.map (fun b -> if b = noise_bucket then -1 else b) bucket_of

let draw_delay ?(jitter = 0.05) rng model ~a ~b =
  assert (jitter >= 0. && jitter < 1.);
  if Rng.bernoulli rng model.missing_fraction then nan
  else begin
    let a, b = if a <= b then (a, b) else (b, a) in
    let samples = model.buckets.(a).(b) in
    if Array.length samples = 0 then nan
    else begin
      let v = Rng.choice rng samples in
      v *. Rng.uniform rng (1. -. jitter) (1. +. jitter)
    end
  end

let synthesize_with_clusters ?(jitter = 0.05) rng model ~size =
  assert (jitter >= 0. && jitter < 1.);
  let bucket_of = assign_buckets rng model ~size in
  let labels = bucket_labels model bucket_of in
  let matrix =
    Matrix.init size (fun i j ->
        draw_delay ~jitter rng model ~a:bucket_of.(i) ~b:bucket_of.(j))
  in
  (matrix, labels)

let synthesize ?jitter rng model ~size =
  fst (synthesize_with_clusters ?jitter rng model ~size)
