(** Synthetic Internet delay-space generator.

    Substitute for the measured data sets of the paper (DS², Meridian,
    p2psim, PlanetLab), which are not redistributable.  The model follows
    the structural findings of Zhang et al. (IMC 2006):

    - end hosts live in a few {e major clusters} (continents) plus a
      heavy-tailed {e noise} population of poorly-connected hosts;
    - a small router backbone carries traffic; base end-to-end delay is
      access + shortest backbone path + access, which is a metric
      (no TIV by construction);
    - real routes are {e inflated} relative to the best path by routing
      policy; inflation is per-destination-pair, heavy-tailed, and more
      common across clusters.  Inflation is the sole source of severe
      TIVs, exactly as argued in Section 1 of the paper;
    - small multiplicative measurement jitter produces the ubiquitous
      slight violations seen in every data set.

    All randomness flows from the given {!Tivaware_util.Rng.t}. *)

type cluster_spec = {
  fraction : float;  (** share of non-noise end nodes *)
  routers : int;  (** backbone routers inside the cluster *)
  intra_weight_lo : float;  (** min intra-cluster router-link RTT, ms *)
  intra_weight_hi : float;
  access_mu : float;  (** lognormal access RTT parameters *)
  access_sigma : float;
}

type params = {
  nodes : int;
  clusters : cluster_spec list;
  noise_fraction : float;  (** share of nodes that are noise hosts *)
  noise_access_shape : float;  (** Pareto access RTT for noise hosts *)
  noise_access_scale : float;
  noise_access_cap : float;  (** clamp on noise access RTT, ms *)
  inter_base_lo : float;  (** cross-cluster gateway RTT range, ms *)
  inter_base_hi : float;
  gateways_per_pair : int;  (** parallel gateway links per cluster pair *)
  extra_intra_edges : int;  (** intra-cluster links beyond the tree *)
  inflate_prob_intra : float;  (** P(inflated route), same cluster *)
  inflate_prob_inter : float;  (** P(inflated route), across clusters *)
  inflation_shape : float;  (** Pareto shape of (multiplier - 1) *)
  inflation_scale : float;  (** Pareto scale of (multiplier - 1) *)
  inflation_max : float;  (** multiplier cap *)
  detour_cap_ms : float;
      (** cap on the {e absolute} extra delay inflation may add: the
          effective multiplier is further bounded by
          [1 + detour_cap_ms / base].  Models the fact that a policy
          detour adds a bounded amount of path, so already-long routes
          cannot be inflated many-fold — this produces the paper's
          dip in TIV severity at the longest delays (Figures 4–8). *)
  jitter : float;  (** measurement jitter: uniform in [1-j, 1+j] *)
  missing_fraction : float;  (** fraction of pairs left unmeasured *)
}

val default : params
(** A DS²-like parameterization at 800 nodes. *)

type t = {
  matrix : Tivaware_delay_space.Matrix.t;  (** measured delays *)
  base : Tivaware_delay_space.Matrix.t;  (** metric base delays *)
  cluster_of : int array;  (** ground-truth cluster id, [-1] = noise *)
  params : params;
}

val generate : Tivaware_util.Rng.t -> params -> t
(** Raises [Invalid_argument] on inconsistent parameters (fractions not
    summing to ~1, too few nodes for the requested clusters, ...). *)

type link_class =
  | Access  (** at least one endpoint is a noise host: the path is
                dominated by its heavy-tailed access link *)
  | Intra_cluster  (** both endpoints in the same major cluster *)
  | Inter_cluster  (** the path crosses the inter-cluster backbone *)

val link_class : t -> int -> int -> link_class
(** Structural class of the end-to-end path between two nodes, from the
    ground-truth cluster assignment.  Feeds topology-derived per-link
    fault profiles ([Tivaware_measure.Profile.topology]). *)

val validate : params -> (unit, string) result
