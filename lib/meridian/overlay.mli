(** Meridian overlay construction.

    A subset of nodes participate as Meridian nodes; each one samples
    the other participants in random order and files them into its rings
    by measured delay, keeping at most [k] primary members per ring
    (we keep the first [k] sampled, a simplification of Meridian's
    hypervolume-based replacement that preserves the properties the
    paper studies).

    Hooks cover the paper's experiments: [edge_filter] drops candidate
    edges entirely (the Section 4.3 TIV-severity filter) and [placement]
    overrides ring assignment (the Section 5.3 TIV-aware dual
    placement). *)

type member = {
  id : int;
  delay : float;
      (** the delay this ring {e entry} represents: the measured delay
          for a regular placement, the predicted delay for a TIV-aware
          dual placement.  Queries select entries whose represented
          delay falls in the acceptance window. *)
}

type t

type selection =
  | First_come
      (** keep the first [k] members sampled — the simplification used
          by default *)
  | Diverse
      (** ring-membership replacement approximating Meridian's
          hypervolume rule: when a ring is full, a new candidate
          replaces an existing primary member if doing so increases the
          minimum pairwise delay among the ring's members (greater
          geographic diversity) *)

val build :
  ?edge_filter:(int -> int -> bool) ->
  ?placement:(int -> int -> float -> (int * float) list) ->
  ?selection:selection ->
  ?candidates:(int -> int array) ->
  Tivaware_util.Rng.t ->
  Tivaware_delay_space.Matrix.t ->
  Ring.config ->
  meridian_nodes:int array ->
  t
(** [build rng matrix cfg ~meridian_nodes] constructs rings for every
    participant.  [edge_filter a b] (default: always [true]) must hold
    for [b] to be considered by [a].  [placement a b delay] (default:
    [[(Ring.ring_of cfg delay, delay)]]) returns the ring entries [b]
    occupies in [a]'s structure as [(ring index, represented delay)]
    pairs; the first entry consumes a primary slot (up to [k] per ring),
    every further entry only a secondary slot (up to [l] per ring) so
    that TIV-aware dual placement adds entries without displacing
    regular members.

    [candidates node] (default: all other participants in random order)
    restricts which peers [node] may file into its rings — e.g. the
    members it discovered through {!Gossip}. *)

val build_delay :
  ?edge_filter:(int -> int -> bool) ->
  ?placement:(int -> int -> float -> (int * float) list) ->
  ?selection:selection ->
  ?candidates:(int -> int array) ->
  Tivaware_util.Rng.t ->
  delay:(int -> int -> float) ->
  Ring.config ->
  meridian_nodes:int array ->
  t
(** The core of {!build} over an arbitrary delay function ([nan] =
    unmeasurable).  [build rng matrix ...] is exactly
    [build_delay rng ~delay:(Matrix.get matrix) ...]. *)

val build_backend :
  ?edge_filter:(int -> int -> bool) ->
  ?placement:(int -> int -> float -> (int * float) list) ->
  ?selection:selection ->
  ?candidate_budget:int ->
  Tivaware_util.Rng.t ->
  Tivaware_backend.Delay_backend.t ->
  Ring.config ->
  meridian_nodes:int array ->
  t
(** {!build_delay} over a delay backend.  [candidate_budget] bounds
    each node's discovery to that many uniformly sampled peers (instead
    of a shuffle of {e all} participants), so ring construction over an
    N-node lazy space costs O(meridian · budget) queries rather than
    O(meridian²) — the sampled replacement for the full row scan.  A
    budget of at least the participant count keeps the historical
    shuffle.  Raises [Invalid_argument] when the budget is < 1. *)

val config : t -> Ring.config
val meridian_nodes : t -> int array
val is_meridian : t -> int -> bool

val ring_members : t -> int -> int -> member list
(** [ring_members t node i]: members of [node]'s [i]-th ring. *)

val all_members : t -> int -> member list
(** Every distinct member over all of [node]'s rings (a member placed in
    two rings appears once, with its first entry's delay). *)

val all_entries : t -> int -> member list
(** Every ring entry of [node], including both entries of a dual-placed
    member. *)

val ring_population : t -> int -> int array
(** Member count per ring (1-based index shifted to 0). *)

(** {2 Churn-aware ring maintenance} *)

type repair = {
  evicted : int;  (** ring entries dropped because they answered no probe *)
  reentered : int;  (** rejoined members filed back into a ring *)
}

val repair_engine : ?label:string -> t -> Tivaware_measure.Engine.t -> repair
(** One ring-maintenance pass against the engine's current churn state.
    Every live Meridian node re-probes its ring entries and evicts the
    ones that answer nothing; evictions are gossiped, and on a later
    pass — once the member is back up and re-announces itself — the
    host re-probes it and files it into the ring matching its fresh
    delay, if that ring has a free primary slot.  All probes go through
    the engine (charged, budgeted) under [label] (default
    ["meridian-repair"]).  Under an oracle-mode engine the pass evicts
    nothing (and still pays its maintenance probes).  Returns eviction
    and re-entry counts for this pass. *)

val pending_reentries : t -> int
(** (host, member) evictions gossiped but not yet re-entered. *)

val mean_ring_population : t -> float array
(** Average population of each ring over all Meridian nodes. *)
