module Matrix = Tivaware_delay_space.Matrix
module Engine = Tivaware_measure.Engine

let default_ts = 0.6
let default_tl = 2.0

let ratio_engine engine predicted a b =
  let d = Engine.rtt ~label:"tiv-aware" engine a b in
  if Float.is_nan d || d < 1e-9 then nan else predicted a b /. d

let placement_engine cfg ~predicted ~engine ?(ts = default_ts)
    ?(tl = default_tl) () =
  fun node peer delay ->
    let measured_entry = (Ring.ring_of cfg delay, delay) in
    let r = ratio_engine engine predicted node peer in
    if Float.is_nan r || (r >= ts && r <= tl) then [ measured_entry ]
    else begin
      let p = predicted node peer in
      let predicted_ring = Ring.ring_of cfg p in
      if predicted_ring = fst measured_entry then [ measured_entry ]
      else [ measured_entry; (predicted_ring, p) ]
    end

let placement cfg ~predicted ~measured ?ts ?tl () =
  placement_engine cfg ~predicted ~engine:(Engine.of_matrix measured) ?ts ?tl ()

let fallback_engine overlay ~predicted ~engine ?(ts = default_ts) () :
    Query.fallback =
 fun ~current ~target ~measured:d ->
  ignore d;
  let r = ratio_engine engine predicted current target in
  if Float.is_nan r || r >= ts then []
  else begin
    (* The measured edge to the target looks TIV-inflated: re-select
       ring members around the predicted delay instead. *)
    let beta = (Overlay.config overlay).Ring.beta in
    let dp = predicted current target in
    let lo = (1. -. beta) *. dp and hi = (1. +. beta) *. dp in
    List.filter
      (fun m -> m.Overlay.delay >= lo && m.Overlay.delay <= hi)
      (Overlay.all_members overlay current)
  end

let fallback overlay ~predicted ~measured ?ts () =
  fallback_engine overlay ~predicted ~engine:(Engine.of_matrix measured) ?ts ()
