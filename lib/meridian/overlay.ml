module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix

type member = { id : int; delay : float }

type t = {
  config : Ring.config;
  meridian_nodes : int array;
  meridian_set : (int, unit) Hashtbl.t;
  (* rings.(node_slot).(ring-1) = members; node_slot indexes
     meridian_nodes. *)
  rings : member list array array;
  slot_of : (int, int) Hashtbl.t;
  (* Failure gossip: (slot, member id) pairs evicted by repair and not
     yet re-entered.  Bounds re-entry probing to members known to have
     left, instead of re-probing every absent pair forever. *)
  pending_reentry : (int * int, unit) Hashtbl.t;
}

let config t = t.config
let meridian_nodes t = Array.copy t.meridian_nodes
let is_meridian t id = Hashtbl.mem t.meridian_set id

let slot t id =
  match Hashtbl.find_opt t.slot_of id with
  | Some s -> s
  | None -> invalid_arg "Overlay: not a Meridian node"

type selection = First_come | Diverse

(* Minimum pairwise measured delay within a prospective member set; the
   diversity score Meridian's hypervolume rule approximates. *)
let min_pairwise_delay delay ids =
  let rec scan acc = function
    | [] -> acc
    | id :: rest ->
      let acc =
        List.fold_left
          (fun acc other ->
            let d = delay id other in
            if Float.is_nan d then acc else Float.min acc d)
          acc rest
      in
      scan acc rest
  in
  scan infinity ids

(* Try to improve ring diversity by swapping one primary member for the
   candidate; returns the new member list or None when no swap helps. *)
let diversity_swap delay members candidate =
  let ids = List.map (fun m -> m.id) members in
  let current = min_pairwise_delay delay ids in
  let best = ref None in
  List.iteri
    (fun drop _ ->
      let remaining = List.filteri (fun k _ -> k <> drop) members in
      let score =
        min_pairwise_delay delay (candidate.id :: List.map (fun m -> m.id) remaining)
      in
      match !best with
      | Some (_, bs) when bs >= score -> ()
      | _ -> best := Some (candidate :: remaining, score))
    members;
  match !best with
  | Some (swapped, score) when score > current -> Some swapped
  | _ -> None

let build_delay ?(edge_filter = fun _ _ -> true) ?placement
    ?(selection = First_come) ?candidates rng ~delay cfg ~meridian_nodes =
  let placement =
    match placement with
    | Some f -> f
    | None -> fun _ _ delay -> [ (Ring.ring_of cfg delay, delay) ]
  in
  let count = Array.length meridian_nodes in
  let meridian_set = Hashtbl.create count in
  let slot_of = Hashtbl.create count in
  Array.iteri
    (fun s id ->
      Hashtbl.replace meridian_set id ();
      Hashtbl.replace slot_of id s)
    meridian_nodes;
  let rings = Array.init count (fun _ -> Array.make cfg.Ring.rings []) in
  let primary = Array.init count (fun _ -> Array.make cfg.Ring.rings 0) in
  let secondary = Array.init count (fun _ -> Array.make cfg.Ring.rings 0) in
  Array.iteri
    (fun s node ->
      (* Default: every other participant in random order (models an
         idealized discovery); a [candidates] hook supplies the actual
         discovered membership instead. *)
      let candidates =
        match candidates with
        | Some f -> f node
        | None ->
          let all = Array.copy meridian_nodes in
          Rng.shuffle rng all;
          all
      in
      Array.iter
        (fun peer ->
          if peer <> node && edge_filter node peer then begin
            let d = delay node peer in
            if not (Float.is_nan d) then
              List.iteri
                (fun pos (ring_idx, represented) ->
                  let r = ring_idx - 1 in
                  if r >= 0 && r < cfg.Ring.rings then begin
                    (* The first ring a member lands in uses a primary
                       slot; any additional placement (TIV-aware dual
                       placement) may only consume the ring's secondary
                       slots, so awareness adds entries without
                       displacing regular members. *)
                    if pos = 0 && primary.(s).(r) < cfg.Ring.k then begin
                      rings.(s).(r) <- { id = peer; delay = represented } :: rings.(s).(r);
                      primary.(s).(r) <- primary.(s).(r) + 1
                    end
                    else if
                      pos = 0 && selection = Diverse
                      && secondary.(s).(r) = 0 (* dual entries keep their slots *)
                    then begin
                      (* Ring full: replace a member if that increases
                         the ring's pairwise-delay diversity. *)
                      match
                        diversity_swap delay rings.(s).(r)
                          { id = peer; delay = represented }
                      with
                      | Some swapped -> rings.(s).(r) <- swapped
                      | None -> ()
                    end
                    else if secondary.(s).(r) < cfg.Ring.l then begin
                      rings.(s).(r) <- { id = peer; delay = represented } :: rings.(s).(r);
                      secondary.(s).(r) <- secondary.(s).(r) + 1
                    end
                  end)
                (placement node peer d)
          end)
        candidates)
    meridian_nodes;
  {
    config = cfg;
    meridian_nodes = Array.copy meridian_nodes;
    meridian_set;
    rings;
    slot_of;
    pending_reentry = Hashtbl.create 16;
  }

let build ?edge_filter ?placement ?selection ?candidates rng matrix cfg
    ~meridian_nodes =
  build_delay ?edge_filter ?placement ?selection ?candidates rng
    ~delay:(Matrix.get matrix) cfg ~meridian_nodes

let build_backend ?edge_filter ?placement ?selection ?candidate_budget rng
    backend cfg ~meridian_nodes =
  let module Backend = Tivaware_backend.Delay_backend in
  let count = Array.length meridian_nodes in
  let candidates =
    match candidate_budget with
    | Some b when b < 1 ->
      invalid_arg "Overlay.build_backend: candidate_budget must be >= 1"
    | Some b when b < count - 1 ->
      (* Bounded discovery: each node samples [b] distinct peers instead
         of scanning every participant — O(b) backend queries per node,
         so a lazy space materializes only the sampled pairs. *)
      let slot_of = Hashtbl.create count in
      Array.iteri (fun s id -> Hashtbl.replace slot_of id s) meridian_nodes;
      Some
        (fun node ->
          let self = Hashtbl.find slot_of node in
          let picks = Rng.sample_indices rng ~n:(count - 1) ~k:b in
          Array.map
            (fun p -> meridian_nodes.(if p >= self then p + 1 else p))
            picks)
    | _ -> None
  in
  build_delay ?edge_filter ?placement ?selection ?candidates rng
    ~delay:(Backend.query backend) cfg ~meridian_nodes

let ring_members t node i =
  assert (i >= 1 && i <= t.config.Ring.rings);
  t.rings.(slot t node).(i - 1)

let all_entries t node =
  Array.fold_left (fun acc members -> members @ acc) [] t.rings.(slot t node)

let all_members t node =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun m ->
      if Hashtbl.mem seen m.id then false
      else begin
        Hashtbl.replace seen m.id ();
        true
      end)
    (all_entries t node)

(* ------------------------------------------------------------------ *)
(* Churn-aware ring maintenance                                        *)

type repair = {
  evicted : int;
  reentered : int;
}

(* One maintenance pass through the measurement plane.

   Eviction: every live Meridian node re-probes each of its ring
   entries; entries that answer nothing are dropped from the ring and
   remembered as pending re-entry (the failure is gossiped).

   Re-entry: for every pending (host, member) pair where both ends are
   back up, the rejoining member has announced itself (gossip), so the
   host re-probes it and files it into the ring its fresh delay
   belongs to — provided that ring has a free primary slot.  A pair
   whose probe still fails stays pending for the next pass.

   All probes are charged through the engine and accounted under
   [label], so repair traffic is as honest as query traffic. *)
let repair_engine ?(label = "meridian-repair") t engine =
  let module Engine = Tivaware_measure.Engine in
  let module Churn = Tivaware_measure.Churn in
  let up i =
    match Engine.churn engine with
    | None -> true
    | Some c -> Churn.is_up c i
  in
  let evicted = ref 0 and reentered = ref 0 in
  Array.iteri
    (fun s node ->
      if up node then
        Array.iteri
          (fun r members ->
            let keep, dead =
              List.partition
                (fun m ->
                  not (Float.is_nan (Engine.rtt ~label engine node m.id)))
                members
            in
            if dead <> [] then begin
              t.rings.(s).(r) <- keep;
              evicted := !evicted + List.length dead;
              List.iter
                (fun m -> Hashtbl.replace t.pending_reentry (s, m.id) ())
                dead
            end)
          t.rings.(s))
    t.meridian_nodes;
  let pending =
    Hashtbl.fold (fun k () acc -> k :: acc) t.pending_reentry []
  in
  List.iter
    (fun ((s, id) as key) ->
      let node = t.meridian_nodes.(s) in
      if up node && up id then begin
        let d = Engine.rtt ~label engine node id in
        if not (Float.is_nan d) then begin
          let r = Ring.ring_of t.config d - 1 in
          if r >= 0 && r < t.config.Ring.rings then begin
            if List.length t.rings.(s).(r) < t.config.Ring.k then begin
              t.rings.(s).(r) <- { id; delay = d } :: t.rings.(s).(r);
              incr reentered
            end;
            (* Full ring: the member is back but there is no room; drop
               the gossip entry rather than probing it forever. *)
            Hashtbl.remove t.pending_reentry key
          end
          else Hashtbl.remove t.pending_reentry key
        end
      end)
    (List.sort compare pending);
  let module Obs = Tivaware_obs in
  let reg = Engine.obs engine in
  let labels = [ ("plane", "meridian") ] in
  Obs.Counter.add (Obs.Registry.counter reg ~labels "repair.evicted")
    (float_of_int !evicted);
  Obs.Counter.add (Obs.Registry.counter reg ~labels "repair.reentered")
    (float_of_int !reentered);
  Obs.Gauge.set (Obs.Registry.gauge reg ~labels "repair.pending")
    (float_of_int (Hashtbl.length t.pending_reentry));
  Obs.Registry.trace_event reg ~time:(Engine.now engine) ~label:"repair.meridian"
    (Printf.sprintf "evicted=%d reentered=%d pending=%d" !evicted !reentered
       (Hashtbl.length t.pending_reentry));
  { evicted = !evicted; reentered = !reentered }

let pending_reentries t = Hashtbl.length t.pending_reentry

let ring_population t node =
  Array.map List.length t.rings.(slot t node)

let mean_ring_population t =
  let count = Array.length t.meridian_nodes in
  let sums = Array.make t.config.Ring.rings 0. in
  Array.iter
    (fun node ->
      Array.iteri
        (fun r members ->
          sums.(r) <- sums.(r) +. float_of_int (List.length members))
        t.rings.(slot t node))
    t.meridian_nodes;
  Array.map (fun s -> s /. float_of_int (max 1 count)) sums
