module Sim = Tivaware_eventsim.Sim
module Matrix = Tivaware_delay_space.Matrix
module Engine = Tivaware_measure.Engine
module Obs = Tivaware_obs

let latency_edges = [| 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. |]

(* Event-driven query accounting: same [meridian.*] series as the
   synchronous {!Query} driver, plus the end-to-end client latency the
   simulator observed.  A failed query ([chosen_delay = nan]) increments
   the failure counter instead of silently vanishing into the mean. *)
let record_online engine outcome =
  let reg = Engine.obs engine in
  if Float.is_nan outcome.Query.chosen_delay then begin
    Obs.Counter.incr (Obs.Registry.counter reg "meridian.query_failures");
    Obs.Registry.trace_event reg ~time:(Engine.now engine) ~label:"meridian"
      (Printf.sprintf "online query failed at start=%d after %d probes"
         outcome.Query.chosen outcome.Query.probes)
  end
  else
    Obs.Histogram.observe
      (Obs.Registry.histogram reg ~edges:Query.hop_edges "meridian.query_hops")
      (float_of_int outcome.Query.hops)

type outcome = {
  query : Query.outcome;
  latency : float;
}

(* Engine clocks run in logical seconds; the Online simulator runs in
   ms (the RTT unit). *)
let attach sim engine =
  Sim.on_advance sim (fun t_ms -> Engine.advance_to engine (t_ms /. 1000.))

(* The protocol is a sequential chain of timed phases; we model it with
   events that each schedule the next phase.  All delays are RTT-derived:
   a request/response exchange costs one full RTT, a one-way hand-off
   costs RTT / 2. *)
let closest ?(termination = Query.Threshold) sim overlay matrix ~client ~start
    ~target =
  if not (Overlay.is_meridian overlay start) then
    invalid_arg "Online.closest: start is not a Meridian node";
  let rtt a b = Matrix.get matrix a b in
  if Float.is_nan (rtt client start) then
    invalid_arg "Online.closest: no measurement between client and start";
  if Float.is_nan (rtt start target) then
    invalid_arg "Online.closest: no measurement between start and target";
  let beta = (Overlay.config overlay).Ring.beta in
  let st = Query.make_probe_state matrix ~target in
  let visited = Hashtbl.create 16 in
  let send_time = Sim.now sim in
  let finished = ref None in
  let path = ref [] and hops = ref 0 in
  let finish () =
    let best, best_delay = Query.best_seen st in
    (* Answer travels back to the client. *)
    let back = rtt client best in
    let back = if Float.is_nan back then 0. else back /. 2. in
    Sim.schedule_after sim back (fun () ->
        finished :=
          Some
            {
              query =
                {
                  Query.chosen = best;
                  chosen_delay = best_delay;
                  probes = Query.probe_count st;
                  hops = !hops;
                  restarts = 0;
                  path = List.rev !path;
                };
              latency = Sim.now sim -. send_time;
            })
  in
  (* One hop: the current node probes the target, fans out to eligible
     members, waits for every report, then forwards or finishes. *)
  let rec arrive_at node =
    Hashtbl.replace visited node ();
    path := node :: !path;
    let probe_cost = if Query.probe_cached st node then 0. else rtt node target in
    let d = Query.probe st node in
    if Float.is_nan d then finish ()
    else begin
      let probe_cost = if Float.is_nan probe_cost then 0. else probe_cost in
      Sim.schedule_after sim probe_cost (fun () -> fan_out node d)
    end
  and fan_out node d =
    let members = Query.eligible_members overlay node d in
    let pending = ref 0 in
    let reports = ref [] in
    let conclude () =
      let candidate =
        List.fold_left
          (fun acc (id, delay) ->
            if Float.is_nan delay || Hashtbl.mem visited id then acc
            else begin
              match acc with
              | Some (_, bd) when bd <= delay -> acc
              | _ -> Some (id, delay)
            end)
          None !reports
      in
      match candidate with
      | Some (next, cd)
        when Query.accepts termination ~beta ~d ~candidate_delay:cd ->
        incr hops;
        (* Hand the query off to the next node. *)
        Sim.schedule_after sim (rtt node next /. 2.) (fun () -> arrive_at next)
      | _ -> finish ()
    in
    if members = [] then conclude ()
    else begin
      List.iter
        (fun m ->
          let id = m.Overlay.id in
          incr pending;
          (* Request to the member and its report back: one RTT to the
             member, plus the member's own probe of the target when not
             already cached. *)
          let member_probe = if Query.probe_cached st id then 0. else rtt id target in
          let member_probe = if Float.is_nan member_probe then 0. else member_probe in
          let total = rtt node id +. member_probe in
          let total = if Float.is_nan total then 0. else total in
          Sim.schedule_after sim total (fun () ->
              let delay = Query.probe st id in
              reports := (id, delay) :: !reports;
              decr pending;
              if !pending = 0 then conclude ()))
        members
    end
  in
  Sim.schedule_after sim (rtt client start /. 2.) (fun () -> arrive_at start);
  Sim.run sim;
  match !finished with
  | Some outcome -> outcome
  | None -> assert false

(* Measurement-plane replay of the same protocol: message transit still
   rides the ground-truth matrix (the network does not care what the
   measurement plane charges), but every *probe* goes through the
   engine and its cost — delivered RTT, timeouts, backoff delays —
   is charged on the simulator clock at the point the probing node
   issues it.  Under the default (exact-oracle) engine config the
   schedule reduces to {!closest}'s arithmetic exactly. *)
let closest_engine ?(termination = Query.Threshold) sim overlay engine ~client
    ~start ~target =
  if not (Overlay.is_meridian overlay start) then
    invalid_arg "Online.closest_engine: start is not a Meridian node";
  let backend = Tivaware_backend.Delay_backend.of_engine engine in
  if Float.is_nan (Tivaware_backend.Delay_backend.query backend client start)
  then
    invalid_arg "Online.closest_engine: no measurement between client and start";
  (* One-way transit on the ground-truth path; missing edges transit
     instantaneously, as in {!closest}. *)
  let transit a b =
    let r = Tivaware_backend.Delay_backend.query backend a b in
    if Float.is_nan r then 0. else r
  in
  let beta = (Overlay.config overlay).Ring.beta in
  let st = Query.make_probe_state_engine engine ~target in
  let visited = Hashtbl.create 16 in
  let send_time = Sim.now sim in
  let finished = ref None in
  let path = ref [] and hops = ref 0 in
  let finish () =
    let best, best_delay = Query.best_seen st in
    (* Under loss every probe of a hop can fail, leaving no best node;
       the failure answer returns to the client instantaneously and
       reads [chosen_delay = nan], exactly like {!Query.closest_engine}
       (not the probe state's untouched [infinity]). *)
    let back = if best < 0 then 0. else transit client best /. 2. in
    Sim.schedule_after sim back (fun () ->
        finished :=
          Some
            {
              query =
                {
                  Query.chosen = (if best < 0 then start else best);
                  chosen_delay = (if best < 0 then nan else best_delay);
                  probes = Query.probe_count st;
                  hops = !hops;
                  restarts = 0;
                  path = List.rev !path;
                };
              latency = Sim.now sim -. send_time;
            })
  in
  let rec arrive_at node =
    Hashtbl.replace visited node ();
    path := node :: !path;
    (* The node probes the target on arrival; the query only proceeds
       once the probe resolves — including the timeouts and backoff a
       lost probe burns before failing. *)
    let d, cost = Query.probe_timed st node in
    if Float.is_nan d then Sim.schedule_after sim cost finish
    else Sim.schedule_after sim cost (fun () -> fan_out node d)
  and fan_out node d =
    let members = Query.eligible_members overlay node d in
    let pending = ref 0 in
    let reports = ref [] in
    let conclude () =
      let candidate =
        List.fold_left
          (fun acc (id, delay) ->
            if Float.is_nan delay || Hashtbl.mem visited id then acc
            else begin
              match acc with
              | Some (_, bd) when bd <= delay -> acc
              | _ -> Some (id, delay)
            end)
          None !reports
      in
      match candidate with
      | Some (next, cd)
        when Query.accepts termination ~beta ~d ~candidate_delay:cd ->
        incr hops;
        Sim.schedule_after sim (transit node next /. 2.) (fun () ->
            arrive_at next)
      | _ -> finish ()
    in
    if members = [] then conclude ()
    else begin
      List.iter
        (fun m ->
          let id = m.Overlay.id in
          incr pending;
          (* Request reaches the member after half an RTT; the member
             probes the target on arrival and reports back half an RTT
             after its probe resolves. *)
          Sim.schedule_after sim
            (transit node id /. 2.)
            (fun () ->
              let delay, cost = Query.probe_timed st id in
              Sim.schedule_after sim
                (cost +. (transit node id /. 2.))
                (fun () ->
                  reports := (id, delay) :: !reports;
                  decr pending;
                  if !pending = 0 then conclude ())))
        members
    end
  in
  Sim.schedule_after sim (transit client start /. 2.) (fun () -> arrive_at start);
  Sim.run sim;
  match !finished with
  | Some outcome ->
    record_online engine outcome.query;
    Obs.Histogram.observe
      (Obs.Registry.histogram (Engine.obs engine) ~edges:latency_edges
         "meridian.query_latency_ms")
      outcome.latency;
    outcome
  | None -> assert false
