(** Meridian's recursive closest-neighbor query (Section 3.1).

    A client asks a starting Meridian node for the participant closest
    to a target.  The current node [M] measures its delay [d] to the
    target, asks every ring member whose delay to [M] lies within
    [[(1-β)d, (1+β)d]] to probe the target, and forwards the query to
    the member reporting the smallest delay.  With [Threshold]
    termination the query stops when no member improves by at least the
    factor [β]; with [Any_improvement] it continues while any strict
    improvement exists (the idealized "no termination condition" mode
    of Section 3.2.2).

    Probes are delay-matrix lookups; each distinct (node, target)
    measurement within a query is counted once (values are cached, as a
    real implementation would within one query).  The answer returned
    to the client is the best node observed among all probed
    participants, as in the paper's Figure 12 narrative. *)

type termination =
  | Threshold  (** stop unless the best member is within [beta * d] *)
  | Any_improvement  (** stop only when nothing strictly improves *)

type outcome = {
  chosen : int;  (** best Meridian node found for the target *)
  chosen_delay : float;  (** its measured delay to the target *)
  probes : int;  (** distinct online probes consumed *)
  hops : int;  (** query forwarding steps *)
  restarts : int;  (** fallback activations (TIV-aware mode) *)
  path : int list;  (** visited Meridian nodes, start first *)
}

type fallback =
  current:int -> target:int -> measured:float -> Overlay.member list
(** Invoked when the termination rule is about to stop the query at
    [current]; returns extra members to probe before the rule is
    re-evaluated once.  Used by {!Tiv_aware}. *)

val closest :
  ?termination:termination ->
  ?fallback:fallback ->
  Overlay.t ->
  Tivaware_delay_space.Matrix.t ->
  start:int ->
  target:int ->
  outcome
(** [closest overlay matrix ~start ~target].  [start] must be a Meridian
    node and [target] must have a measured delay to it; otherwise
    [Invalid_argument].  Default termination is [Threshold] with the
    overlay's [beta].  Oracle mode: probes are free matrix lookups
    (a throwaway default {!Tivaware_measure.Engine} under the hood). *)

val closest_engine :
  ?termination:termination ->
  ?fallback:fallback ->
  Overlay.t ->
  Tivaware_measure.Engine.t ->
  start:int ->
  target:int ->
  outcome
(** As {!closest}, but every probe pays the measurement plane: loss,
    jitter, outages and budget denials make nodes unmeasurable for the
    rest of the query.  When the start node's own probe of the target
    fails the query returns immediately with [chosen_delay = nan]
    (instead of raising) so drivers under injected faults degrade
    gracefully. *)

val optimal :
  Overlay.t -> Tivaware_delay_space.Matrix.t -> target:int -> (int * float) option
(** Ground truth: the Meridian node with the smallest measured delay to
    the target ([None] if the target has no measured Meridian edge). *)

(** {2 Multi-target queries}

    The original Meridian system also solves {e central leader
    election}: find the participant minimizing the {e maximum} delay to
    a set of targets.  The recursion is the same with the max-norm in
    place of the single delay; TIVs disturb it the same way. *)

val closest_multi :
  ?termination:termination ->
  Overlay.t ->
  Tivaware_delay_space.Matrix.t ->
  start:int ->
  targets:int list ->
  outcome
(** [closest_multi overlay m ~start ~targets]: [chosen_delay] is the
    max-norm delay of the chosen node to the target set.  A node with a
    missing measurement to any target is skipped as a candidate.
    Raises [Invalid_argument] on an empty target list, a non-Meridian
    start, or when [start] cannot measure every target. *)

val closest_multi_engine :
  ?termination:termination ->
  Overlay.t ->
  Tivaware_measure.Engine.t ->
  start:int ->
  targets:int list ->
  outcome
(** Measurement-plane variant of {!closest_multi}; a failed probe to
    any target makes the probing node ineligible, and a failed start
    measurement returns [chosen_delay = nan] instead of raising. *)

val optimal_multi :
  Overlay.t -> Tivaware_delay_space.Matrix.t -> targets:int list -> (int * float) option
(** Brute-force best max-norm participant. *)

(** {2 Protocol building blocks}

    Shared with {!Online}, which replays the same protocol over the
    event simulator.  Not intended for general use. *)

type probe_state

val make_probe_state : Tivaware_delay_space.Matrix.t -> target:int -> probe_state
(** Oracle mode (wraps the matrix in a default engine). *)

val make_probe_state_engine :
  Tivaware_measure.Engine.t -> target:int -> probe_state

val probe : probe_state -> int -> float
(** One online probe from a node to the target: counted once per query,
    cached, tracks the best node seen.  [nan] = unmeasurable. *)

val probe_timed : probe_state -> int -> float * float
(** As {!probe}, plus the measurement cost in ms charged on the issuing
    path ({!Tivaware_measure.Engine.rtt_timed}); 0 when the query-local
    cache already holds the value. *)

val probe_cached : probe_state -> int -> bool
(** Whether a probe result is already cached (a cached probe costs no
    simulated time). *)

val probe_count : probe_state -> int
val best_seen : probe_state -> int * float

val eligible_members : Overlay.t -> int -> float -> Overlay.member list
(** Ring members of a node whose delay lies within the acceptance
    window [[(1-beta) d, (1+beta) d]]. *)

val accepts : termination -> beta:float -> d:float -> candidate_delay:float -> bool
(** The forwarding rule: whether a candidate at [candidate_delay] from
    the target justifies continuing from a node at distance [d]. *)

val hop_edges : float array
(** Bucket edges of the [meridian.query_hops] histogram (shared with
    the event-driven {!Online} driver so both record into the same
    series). *)

val closest_among :
  ?label:string ->
  Tivaware_measure.Engine.t ->
  target:int ->
  candidates:int array ->
  (int * float) option
(** One-hop closest-search over an explicit candidate set (replica
    selection): each candidate probes the target once through the
    engine, and the measurably-closest candidate wins (first in array
    order on ties).  [None] when every probe fails. *)
