(** TIV-aware Meridian (Section 5.3).

    Both extensions consume TIV alerts from an independent embedding
    (e.g. Vivaldi) supplied as a [predicted] delay function.

    {b Ring construction}: when the prediction ratio of the edge to a
    candidate member falls outside the safe band [[ts, tl]], the member
    is placed both by its measured delay and by its predicted delay —
    in the worst case occupying two rings — so that a severely
    TIV-distorted measurement cannot hide a genuinely nearby member.

    {b Query restart}: when the recursive query is about to terminate
    at node [M], and the prediction ratio of the edge [M → target] is
    below [ts] (the measured delay looks TIV-inflated), [M] probes an
    extra batch of ring members selected around the {e predicted} delay
    to the target, possibly resuming the query.

    Paper thresholds: [ts = 0.6], [tl = 2.0]. *)

val default_ts : float
val default_tl : float

val placement :
  Ring.config ->
  predicted:(int -> int -> float) ->
  measured:Tivaware_delay_space.Matrix.t ->
  ?ts:float ->
  ?tl:float ->
  unit ->
  int -> int -> float -> (int * float) list
(** Dual-placement hook for {!Overlay.build}'s [?placement]: the first
    entry represents the measured delay, the second (when the edge is
    alerted and the rings differ) the predicted delay.  Oracle mode:
    the ratio's measured delay is a free matrix lookup. *)

val placement_engine :
  Ring.config ->
  predicted:(int -> int -> float) ->
  engine:Tivaware_measure.Engine.t ->
  ?ts:float ->
  ?tl:float ->
  unit ->
  int -> int -> float -> (int * float) list
(** As {!placement}, but the alert ratio's measured delay is probed
    through the measurement plane (label ["tiv-aware"]): a failed probe
    suppresses the alert and the member is placed by its measured delay
    only. *)

val fallback :
  Overlay.t ->
  predicted:(int -> int -> float) ->
  measured:Tivaware_delay_space.Matrix.t ->
  ?ts:float ->
  unit ->
  Query.fallback
(** Query-restart hook for {!Query.closest}'s [?fallback]. *)

val fallback_engine :
  Overlay.t ->
  predicted:(int -> int -> float) ->
  engine:Tivaware_measure.Engine.t ->
  ?ts:float ->
  unit ->
  Query.fallback
(** As {!fallback}, probing the alert ratio through the measurement
    plane; a failed probe means no restart. *)
