(** Online Meridian queries over the discrete-event simulator.

    {!Query.closest} evaluates a query instantaneously; this module
    replays the same recursive protocol as timed message exchanges on a
    {!Tivaware_eventsim.Sim.t}, yielding wall-clock (virtual time) query
    latency in addition to probe counts:

    - the client's request reaches the start node after half its RTT to
      it (we only have RTTs, so one-way = RTT / 2);
    - at each hop the current node probes the target (one RTT), then
      fans out to its eligible ring members in parallel; each member
      costs (RTT to member) + (member's probe RTT to target) before its
      report is back;
    - the hop completes when the slowest eligible member reports
      (Meridian waits for all acceptable members);
    - forwarding to the next node costs half the RTT between them, and
      the final answer returns to the client after half the client-to-
      chosen RTT.

    The recursion, acceptance window, termination rule and answer are
    identical to {!Query.closest} — property tests assert this — so the
    module adds {e timing}, not different semantics. *)

type outcome = {
  query : Query.outcome;  (** the logical result (same as offline) *)
  latency : float;  (** virtual ms from client send to answer received *)
}

val closest :
  ?termination:Query.termination ->
  Tivaware_eventsim.Sim.t ->
  Overlay.t ->
  Tivaware_delay_space.Matrix.t ->
  client:int ->
  start:int ->
  target:int ->
  outcome
(** Runs the simulator until the query completes.  The simulator's
    clock keeps advancing across calls, so one [Sim.t] can serve many
    sequential queries.  Raises like {!Query.closest}; additionally the
    client must have a measured delay to the start node. *)

val attach : Tivaware_eventsim.Sim.t -> Tivaware_measure.Engine.t -> unit
(** Slaves the engine's logical clock (seconds) to the simulator's
    virtual clock (ms) via {!Tivaware_eventsim.Sim.on_advance}, so
    probe budgets refill and cache entries age in simulator time.  Call
    once per (sim, engine) pair, before querying. *)

val closest_engine :
  ?termination:Query.termination ->
  Tivaware_eventsim.Sim.t ->
  Overlay.t ->
  Tivaware_measure.Engine.t ->
  client:int ->
  start:int ->
  target:int ->
  outcome
(** Measurement-cost-aware replay: message transit (client hand-off,
    fan-out request/report halves, forwarding, the answer's return)
    still rides the engine's ground-truth delay backend, but every probe is
    issued through the engine at the moment the protocol reaches it and
    its cost — the delivered RTT, or the timeouts and backoff delays a
    lost probe burns — advances the simulator clock on the issuing
    path.  Failed probes degrade the query exactly as in
    {!Query.closest_engine} (a node that cannot measure the target
    becomes ineligible; a failed start probe ends the query with
    [chosen_delay = nan], same convention as the offline path), and
    [latency] now includes what measurement actually cost.  Under
    {!Tivaware_measure.Engine.default_config} the outcome and latency
    are identical to {!closest} on the same (complete) matrix.  The
    engine should be created with [charge_time = false] here — the
    simulator owns time; pair with {!attach} to keep the engine clock
    in sync.  Ground truth is recovered with
    {!Tivaware_backend.Delay_backend.of_engine}, so any engine works —
    matrix-backed or lazy. *)
