module Matrix = Tivaware_delay_space.Matrix
module Engine = Tivaware_measure.Engine
module Obs = Tivaware_obs

type termination = Threshold | Any_improvement

type outcome = {
  chosen : int;
  chosen_delay : float;
  probes : int;
  hops : int;
  restarts : int;
  path : int list;
}

type fallback =
  current:int -> target:int -> measured:float -> Overlay.member list

type probe_state = {
  engine : Engine.t;
  target : int;
  probe_cache : (int, float) Hashtbl.t;
  mutable probes : int;
  mutable best : int;
  mutable best_delay : float;
}

let make_probe_state_engine engine ~target =
  {
    engine;
    target;
    probe_cache = Hashtbl.create 64;
    probes = 0;
    best = -1;
    best_delay = infinity;
  }

let make_probe_state matrix ~target =
  make_probe_state_engine (Engine.of_matrix matrix) ~target

let probe_cached st node = Hashtbl.mem st.probe_cache node
let probe_count st = st.probes
let best_seen st = (st.best, st.best_delay)

(* One online probe: node measures its delay to the target through the
   measurement plane.  Cached per query; [nan] marks a pair that is
   unmeasurable — or whose probe was lost, denied or timed out, in
   which case the node stays unusable for the rest of this query. *)
let probe_timed st node =
  match Hashtbl.find_opt st.probe_cache node with
  | Some d -> (d, 0.)
  | None ->
    let d, cost = Engine.rtt_timed ~label:"meridian" st.engine node st.target in
    st.probes <- st.probes + 1;
    Hashtbl.replace st.probe_cache node d;
    if (not (Float.is_nan d)) && d < st.best_delay then begin
      st.best <- node;
      st.best_delay <- d
    end;
    (d, cost)

let probe st node = fst (probe_timed st node)

let hop_edges = [| 0.; 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16. |]
let probe_count_edges = [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200. |]

(* Query-level accounting on the engine's registry.  A query that ends
   with [chosen_delay = nan] (first-hop probe failure: loss, outage,
   denial or a missing pair) used to be invisible outside the caller's
   own bookkeeping — count it, so failed queries show up in every run
   summary next to the probe counters. *)
let record_query engine outcome =
  let reg = Engine.obs engine in
  if Float.is_nan outcome.chosen_delay then begin
    Obs.Counter.incr (Obs.Registry.counter reg "meridian.query_failures");
    Obs.Registry.trace_event reg ~time:(Engine.now engine) ~label:"meridian"
      (Printf.sprintf "query failed at start=%d after %d probes" outcome.chosen
         outcome.probes)
  end
  else begin
    Obs.Histogram.observe
      (Obs.Registry.histogram reg ~edges:hop_edges "meridian.query_hops")
      (float_of_int outcome.hops);
    Obs.Histogram.observe
      (Obs.Registry.histogram reg ~edges:probe_count_edges
         "meridian.query_probes")
      (float_of_int outcome.probes)
  end;
  outcome

let eligible_members overlay current d =
  let beta = (Overlay.config overlay).Ring.beta in
  let lo = (1. -. beta) *. d and hi = (1. +. beta) *. d in
  (* Filter ring *entries* so a dual-placed member qualifies when either
     its measured or its predicted delay falls in the window, then
     deduplicate member ids. *)
  let seen = Hashtbl.create 32 in
  List.filter
    (fun m ->
      m.Overlay.delay >= lo && m.Overlay.delay <= hi
      &&
      if Hashtbl.mem seen m.Overlay.id then false
      else begin
        Hashtbl.replace seen m.Overlay.id ();
        true
      end)
    (Overlay.all_entries overlay current)

(* Best (member, delay-to-target) among a member list, probing each. *)
let best_probed st members ~exclude =
  List.fold_left
    (fun acc m ->
      let id = m.Overlay.id in
      if Hashtbl.mem exclude id then acc
      else begin
        let d = probe st id in
        if Float.is_nan d then acc
        else begin
          match acc with
          | Some (_, bd) when bd <= d -> acc
          | _ -> Some (id, d)
        end
      end)
    None members

let accepts termination ~beta ~d ~candidate_delay =
  match termination with
  | Threshold -> candidate_delay <= beta *. d
  | Any_improvement -> candidate_delay < d

let closest_engine ?(termination = Threshold) ?fallback overlay engine ~start
    ~target =
  if not (Overlay.is_meridian overlay start) then
    invalid_arg "Query.closest: start is not a Meridian node";
  let beta = (Overlay.config overlay).Ring.beta in
  let st = make_probe_state_engine engine ~target in
  st.best <- start;
  let d0 = probe st start in
  if Float.is_nan d0 then
    (* The start node could not measure the target (missing pair, lost
       probe, outage or budget denial): the query dies at the first
       hop.  Callers detect the [nan] delay and fall back. *)
    record_query engine
      {
        chosen = start;
        chosen_delay = nan;
        probes = st.probes;
        hops = 0;
        restarts = 0;
        path = [ start ];
      }
  else begin
  let visited = Hashtbl.create 16 in
  let restarts = ref 0 in
  let rec loop current d path hops =
    Hashtbl.replace visited current ();
    let members = eligible_members overlay current d in
    let continue_to candidate =
      match candidate with
      | None -> None
      | Some (id, cd) ->
        if accepts termination ~beta ~d ~candidate_delay:cd then Some (id, cd)
        else None
    in
    let candidate = best_probed st members ~exclude:visited in
    let next =
      match continue_to candidate with
      | Some _ as n -> n
      | None -> (
        (* About to stop: give the fallback hook one chance to widen the
           probed set (TIV-aware query restart). *)
        match fallback with
        | None -> None
        | Some f ->
          let extra = f ~current ~target ~measured:d in
          if extra = [] then None
          else begin
            incr restarts;
            let widened = best_probed st extra ~exclude:visited in
            let merged =
              match (candidate, widened) with
              | None, w -> w
              | c, None -> c
              | Some (_, cd), Some (_, wd) -> if wd < cd then widened else candidate
            in
            continue_to merged
          end)
    in
    match next with
    | Some (id, cd) -> loop id cd (id :: path) (hops + 1)
    | None -> (path, hops)
  in
  let path, hops = loop start d0 [ start ] 0 in
  record_query engine
    {
      chosen = st.best;
      chosen_delay = st.best_delay;
      probes = st.probes;
      hops;
      restarts = !restarts;
      path = List.rev path;
    }
  end

let closest ?termination ?fallback overlay matrix ~start ~target =
  if not (Overlay.is_meridian overlay start) then
    invalid_arg "Query.closest: start is not a Meridian node";
  if Float.is_nan (Matrix.get matrix start target) then
    invalid_arg "Query.closest: no measurement between start and target";
  (* Oracle mode: a throwaway default engine is a plain matrix view. *)
  closest_engine ?termination ?fallback overlay (Engine.of_matrix matrix)
    ~start ~target

(* Max-norm delay of [node] to the target set; [nan] if any measurement
   is missing. *)
let max_norm matrix node targets =
  List.fold_left
    (fun acc t ->
      if node = t then acc
      else begin
        let d = Matrix.get matrix node t in
        if Float.is_nan d || Float.is_nan acc then nan else Float.max acc d
      end)
    0. targets

let closest_multi_engine ?(termination = Threshold) overlay engine ~start
    ~targets =
  if targets = [] then invalid_arg "Query.closest_multi: no targets";
  if not (Overlay.is_meridian overlay start) then
    invalid_arg "Query.closest_multi: start is not a Meridian node";
  let beta = (Overlay.config overlay).Ring.beta in
  let probes = ref 0 in
  let cache = Hashtbl.create 64 in
  (* One "probe" per (node, target) measurement, cached as in the
     single-target query; each goes through the measurement plane. *)
  let measure node =
    match Hashtbl.find_opt cache node with
    | Some d -> d
    | None ->
      let d =
        List.fold_left
          (fun acc t ->
            if node = t then acc
            else begin
              incr probes;
              let d = Engine.rtt ~label:"meridian" engine node t in
              if Float.is_nan d || Float.is_nan acc then nan
              else Float.max acc d
            end)
          0. targets
      in
      Hashtbl.replace cache node d;
      d
  in
  let d0 = measure start in
  if Float.is_nan d0 then
    record_query engine
      {
        chosen = start;
        chosen_delay = nan;
        probes = !probes;
        hops = 0;
        restarts = 0;
        path = [ start ];
      }
  else begin
  let best = ref start and best_delay = ref d0 in
  let consider node d =
    if (not (Float.is_nan d)) && d < !best_delay then begin
      best := node;
      best_delay := d
    end
  in
  let visited = Hashtbl.create 16 in
  let rec loop current d path hops =
    Hashtbl.replace visited current ();
    let members = eligible_members overlay current d in
    let candidate =
      List.fold_left
        (fun acc m ->
          let id = m.Overlay.id in
          if Hashtbl.mem visited id then acc
          else begin
            let md = measure id in
            consider id md;
            if Float.is_nan md then acc
            else begin
              match acc with
              | Some (_, bd) when bd <= md -> acc
              | _ -> Some (id, md)
            end
          end)
        None members
    in
    match candidate with
    | Some (id, cd) when accepts termination ~beta ~d ~candidate_delay:cd ->
      loop id cd (id :: path) (hops + 1)
    | _ -> (path, hops)
  in
  let path, hops = loop start d0 [ start ] 0 in
  record_query engine
    {
      chosen = !best;
      chosen_delay = !best_delay;
      probes = !probes;
      hops;
      restarts = 0;
      path = List.rev path;
    }
  end

let closest_multi ?termination overlay matrix ~start ~targets =
  if targets = [] then invalid_arg "Query.closest_multi: no targets";
  if not (Overlay.is_meridian overlay start) then
    invalid_arg "Query.closest_multi: start is not a Meridian node";
  if Float.is_nan (max_norm matrix start targets) then
    invalid_arg "Query.closest_multi: start cannot measure every target";
  closest_multi_engine ?termination overlay (Engine.of_matrix matrix) ~start
    ~targets

let optimal_multi overlay matrix ~targets =
  if targets = [] then invalid_arg "Query.optimal_multi: no targets";
  Array.fold_left
    (fun acc node ->
      if List.mem node targets then acc
      else begin
        let d = max_norm matrix node targets in
        if Float.is_nan d then acc
        else begin
          match acc with
          | Some (_, bd) when bd <= d -> acc
          | _ -> Some (node, d)
        end
      end)
    None (Overlay.meridian_nodes overlay)

let optimal overlay matrix ~target =
  Array.fold_left
    (fun acc node ->
      if node = target then acc
      else begin
        let d = Matrix.get matrix node target in
        if Float.is_nan d then acc
        else begin
          match acc with
          | Some (_, bd) when bd <= d -> acc
          | _ -> Some (node, d)
        end
      end)
    None (Overlay.meridian_nodes overlay)

(* Degenerate one-hop closest-search over an explicit candidate set:
   what a Meridian-style proxy does when the candidates are known up
   front (replica selection) rather than discovered by recursion.
   Every candidate probes the target once; unmeasurable candidates
   drop out; ties keep the first candidate in array order. *)
let closest_among ?label engine ~target ~candidates =
  let best = ref None in
  Array.iter
    (fun node ->
      let d = Engine.rtt ?label engine node target in
      if not (Float.is_nan d) then
        match !best with
        | Some (_, bd) when bd <= d -> ()
        | _ -> best := Some (node, d))
    candidates;
  !best
