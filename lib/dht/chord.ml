module Matrix = Tivaware_delay_space.Matrix

type t = {
  ids : int array;  (* ids.(node) = identifier *)
  sorted : (int * int) array;  (* (id, node), ascending by id *)
  successors : int array;  (* successors.(node) = current successor belief *)
  successor_lists : int array array;
  (* next [r] nodes clockwise in id space — the healing candidates a
     node falls back on when its successor dies; the stabilizer
     replaces a node's list wholesale when it learns a fresher one *)
  finger_tables : int array array;  (* deduplicated finger node indices *)
  finger_at : int array array;
  (* finger_at.(node).(k) = raw finger for power offset 2^k, -1 = none;
     the per-slot view fix-fingers refreshes, from which the dedup
     routing table above is derived *)
  predecessors : int array;
  (* current predecessor belief, -1 = unknown; structural at build,
     maintained by the stabilizer's notify/check-predecessor *)
  dead : bool array;
  (* healing's shared failure belief (gossiped); all-false until a heal
     pass marks nodes, so un-healed overlays behave exactly as before *)
}

type chord = t

let size t = Array.length t.ids
let node_id t node = t.ids.(node)
let successor t node = t.successors.(node)
let successor_list t node = Array.copy t.successor_lists.(node)
let fingers t node = Array.copy t.finger_tables.(node)
let predecessor t node = t.predecessors.(node)
let believed_dead t node = t.dead.(node)

(* First (id, node) whose id is >= key, wrapping to the smallest. *)
let owner_entry sorted key =
  let n = Array.length sorted in
  let rec search lo hi =
    (* invariant: fst sorted.(i) < key for i < lo; >= key for i >= hi *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if fst sorted.(mid) < key then search (mid + 1) hi else search lo mid
    end
  in
  let pos = search 0 n in
  sorted.(if pos = n then 0 else pos)

let owner_of t key = snd (owner_entry t.sorted key)

(* First node at or after [key] not believed dead: the node that
   answers for the key once healing has routed responsibility past the
   failures.  With an all-false belief (no healing) this is [owner_of]. *)
let live_owner_of t key =
  let n = Array.length t.sorted in
  let start =
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if fst t.sorted.(mid) < key then search (mid + 1) hi else search lo mid
      end
    in
    let pos = search 0 n in
    if pos = n then 0 else pos
  in
  let rec walk pos steps =
    let node = snd t.sorted.(pos) in
    if steps >= n || not t.dead.(node) then node
    else walk ((pos + 1) mod n) (steps + 1)
  in
  walk start 0

(* Nodes whose ids fall in the clockwise arc [lo, hi), in arc order,
   at most [limit] of them. *)
let arc_candidates sorted lo hi limit =
  let n = Array.length sorted in
  let start =
    let rec search l h =
      if l >= h then l
      else begin
        let mid = (l + h) / 2 in
        if fst sorted.(mid) < lo then search (mid + 1) h else search l mid
      end
    in
    let pos = search 0 n in
    if pos = n then 0 else pos
  in
  let span = Id_space.distance_cw lo hi in
  let out = ref [] and count = ref 0 and k = ref start in
  let continue_ = ref (span > 0) in
  while !continue_ && !count < limit do
    let id, node = sorted.(!k mod n) in
    if Id_space.distance_cw lo id < span then begin
      out := node :: !out;
      incr count;
      k := !k + 1;
      if !k - start >= n then continue_ := false
    end
    else continue_ := false
  done;
  List.rev !out

(* Routing's deduplicated finger table, derived from the raw per-slot
   entries in k-ascending first-occurrence order — the same order the
   original build loop produced, which keeps refreshed tables
   byte-comparable to built ones. *)
let dedup_fingers raw =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun f ->
      if f >= 0 && not (Hashtbl.mem seen f) then begin
        Hashtbl.replace seen f ();
        out := f :: !out
      end)
    raw;
  Array.of_list !out

let build_sized ?(candidates = 8) ?(successor_list = 4) ?predict n =
  assert (n >= 2);
  if successor_list < 1 then
    invalid_arg "Chord.build: successor_list must be >= 1";
  let ids = Array.init n Id_space.of_node in
  let sorted = Array.init n (fun node -> (ids.(node), node)) in
  Array.sort compare sorted;
  let position = Array.make n 0 in
  Array.iteri (fun pos (_, node) -> position.(node) <- pos) sorted;
  let successors =
    Array.init n (fun node -> snd sorted.((position.(node) + 1) mod n))
  in
  let successor_lists =
    let r = min successor_list (n - 1) in
    Array.init n (fun node ->
        Array.init r (fun k -> snd sorted.((position.(node) + 1 + k) mod n)))
  in
  let finger_of node k =
    let lo = Id_space.add ids.(node) (Id_space.power_offset k) in
    let hi =
      if k + 1 >= Id_space.bits then lo (* empty arc: full wrap handled below *)
      else Id_space.add ids.(node) (Id_space.power_offset (k + 1))
    in
    match arc_candidates sorted lo hi candidates with
    | [] ->
      (* Classical Chord fallback: successor of (id + 2^k). *)
      let owner = snd (owner_entry sorted lo) in
      if owner = node then None else Some owner
    | first :: _ as cands -> (
      match predict with
      | None -> if first = node then None else Some first
      | Some predict ->
        let best =
          List.fold_left
            (fun acc c ->
              if c = node then acc
              else begin
                let p = predict node c in
                if Float.is_nan p then acc
                else begin
                  match acc with
                  | Some (_, bp) when bp <= p -> acc
                  | _ -> Some (c, p)
                end
              end)
            None cands
        in
        (match best with
        | Some (c, _) -> Some c
        | None -> if first = node then None else Some first))
  in
  (* Fill the raw per-slot view in the exact node-major, k-ascending
     order the dedup loop used to call [finger_of] in, so an engine
     predictor sees the same probe sequence (bit-identical builds). *)
  let finger_at = Array.make_matrix n Id_space.bits (-1) in
  for node = 0 to n - 1 do
    for k = 0 to Id_space.bits - 1 do
      match finger_of node k with
      | Some f -> finger_at.(node).(k) <- f
      | None -> ()
    done
  done;
  let finger_tables = Array.map dedup_fingers finger_at in
  let predecessors =
    Array.init n (fun node -> snd sorted.((position.(node) + n - 1) mod n))
  in
  {
    ids;
    sorted;
    successors;
    successor_lists;
    finger_tables;
    finger_at;
    predecessors;
    dead = Array.make n false;
  }

let build ?candidates ?successor_list ?predict m =
  build_sized ?candidates ?successor_list ?predict (Matrix.size m)

(* The id-space structure needs only a node count, so a backend-built
   overlay is identical to a matrix-built one whenever the backends
   agree on delays — which the dense==lazy-densified equivalence tests
   lean on. *)
let build_backend ?candidates ?successor_list ?predict backend =
  let module B = Tivaware_backend.Delay_backend in
  let predict =
    match predict with Some p -> p | None -> B.query backend
  in
  build_sized ?candidates ?successor_list ~predict (B.size backend)

type lookup = {
  hops : int;
  latency : float;
  route : int list;
  owner : int;
}

let lookup_fn t delay ~source ~key =
  let n = size t in
  if source < 0 || source >= n then invalid_arg "Chord.lookup: bad source";
  let owner = live_owner_of t key in
  let hop_cost a b =
    let d = delay a b in
    if Float.is_nan d then 0. else d
  in
  let rec route_from cur latency hops acc =
    if cur = owner then
      { hops; latency; route = List.rev acc; owner }
    else begin
      let cur_id = t.ids.(cur) in
      let succ = t.successors.(cur) in
      let succ_id = t.ids.(succ) in
      (* Owner reached next hop when the key lies in (cur, successor].
         The healed successor can sit past the owner (healing also
         skips candidates it cannot probe, e.g. unmeasurable links);
         the final handoff goes to the live owner the node knows from
         its successor list, never past it — otherwise the route would
         orbit the ring. *)
      if Id_space.between_cw cur_id key succ_id || key = succ_id then begin
        let last = if succ = owner then succ else owner in
        route_from last (latency +. hop_cost cur last) (hops + 1) (last :: acc)
      end
      else begin
        (* Closest preceding node among fingers, else the successor. *)
        let next =
          Array.fold_left
            (fun acc f ->
              let fid = t.ids.(f) in
              if (not t.dead.(f)) && Id_space.between_cw cur_id fid key then begin
                match acc with
                | Some (_, bd) when bd >= Id_space.distance_cw cur_id fid -> acc
                | _ -> Some (f, Id_space.distance_cw cur_id fid)
              end
              else acc)
            None t.finger_tables.(cur)
        in
        let next = match next with Some (f, _) -> f | None -> succ in
        route_from next (latency +. hop_cost cur next) (hops + 1) (next :: acc)
      end
    end
  in
  route_from source 0. 0 [ source ]

let lookup t m ~source ~key = lookup_fn t (Matrix.get m) ~source ~key

let lookup_backend t backend ~source ~key =
  lookup_fn t (Tivaware_backend.Delay_backend.query backend) ~source ~key

(* Measurement-plane PNS: the proximity predictor probes through the
   engine (budgets, faults, cache all apply), while id-space structure
   needs only the engine's node count — so matrix-backed and lazy
   backend engines both work.  Under the default (exact-oracle) config
   this is bit-for-bit [build ~predict:(Matrix.get m) m]. *)
let build_engine ?candidates ?successor_list ?(label = "dht") engine =
  let module Engine = Tivaware_measure.Engine in
  build_sized ?candidates ?successor_list
    ~predict:(Engine.rtt ~label engine)
    (Engine.size engine)

(* ------------------------------------------------------------------ *)
(* Successor-list healing                                              *)

type heal = {
  checked : int;
  rerouted : int;
  marked_dead : int;
  revived : int;
}

(* One healing pass: every node that is itself up probes down its
   successor list, in clockwise order, until a candidate answers; the
   first live candidate becomes its successor pointer, and every probe
   outcome updates the shared failure belief the router consults.

   Convergence: a node's immediate structural successor is always the
   first entry of its list, so a revived node is re-probed by its
   predecessor on the very next pass — belief cleared, pointer
   restored.  A dead node is discovered by its predecessor the same
   way; chains of up to [successor_list] consecutive failures are
   walked past.  All probes are charged under [label]. *)
let heal_engine ?(label = "dht-repair") t engine =
  let module Engine = Tivaware_measure.Engine in
  let module Churn = Tivaware_measure.Churn in
  let self_up i =
    match Engine.churn engine with
    | None -> true
    | Some c -> Churn.is_up c i
  in
  let checked = ref 0 and rerouted = ref 0 in
  let marked = ref 0 and revived = ref 0 in
  Array.iteri
    (fun node _ ->
      if self_up node then begin
        let chosen = ref None in
        Array.iter
          (fun c ->
            if !chosen = None then begin
              incr checked;
              match Engine.probe ~label engine node c with
              | Engine.Rtt _ | Engine.Cached _ ->
                if t.dead.(c) then begin
                  t.dead.(c) <- false;
                  incr revived
                end;
                chosen := Some c
              | Engine.Down | Engine.Lost ->
                (* A timed-out probe is failure detection: the belief
                   is gossiped, so only conclusive silence may set it. *)
                if not t.dead.(c) then begin
                  t.dead.(c) <- true;
                  incr marked
                end
              | Engine.Unmeasured | Engine.Denied ->
                (* This link cannot carry a probe (missing pair) or the
                   budget refused it — says nothing about [c]'s
                   liveness; skip the candidate without accusing it. *)
                ()
            end)
          t.successor_lists.(node);
        match !chosen with
        | Some c when t.successors.(node) <> c ->
          t.successors.(node) <- c;
          incr rerouted
        | _ -> ()
      end)
    t.ids;
  let module Obs = Tivaware_obs in
  let reg = Engine.obs engine in
  let labels = [ ("plane", "chord") ] in
  List.iter
    (fun (name, v) ->
      Obs.Counter.add (Obs.Registry.counter reg ~labels name) (float_of_int v))
    [
      ("repair.checked", !checked);
      ("repair.rerouted", !rerouted);
      ("repair.marked_dead", !marked);
      ("repair.revived", !revived);
    ];
  Obs.Registry.trace_event reg ~time:(Engine.now engine) ~label:"repair.chord"
    (Printf.sprintf "checked=%d rerouted=%d marked_dead=%d revived=%d" !checked
       !rerouted !marked !revived);
  { checked = !checked; rerouted = !rerouted; marked_dead = !marked; revived = !revived }

(* ------------------------------------------------------------------ *)
(* Key ownership and replica placement                                 *)

module Store = struct
  type t = {
    chord : chord;
    keys : int array;
    replicas : int;
    index : (int, int) Hashtbl.t;  (* key id -> key index *)
    holders : int array array;  (* per key: primary first, then replicas *)
    mutable migrated : int;
    mutable rehomes : int;
  }

  (* Where a key lives right now: the live owner holds the primary
     copy, and the first [replicas] believed-live distinct entries of
     the owner's successor list hold the replicas — Chord's classical
     successor-list replication, filtered through the shared failure
     belief (a believed-dead node cannot accept a copy). *)
  let placement chord ~replicas key =
    let primary = live_owner_of chord key in
    let reps = ref [] and count = ref 0 in
    Array.iter
      (fun c ->
        if
          !count < replicas
          && c <> primary
          && (not chord.dead.(c))
          && not (List.mem c !reps)
        then begin
          reps := c :: !reps;
          incr count
        end)
      chord.successor_lists.(primary);
    Array.of_list (primary :: List.rev !reps)

  let create ?(replicas = 2) chord ~keys =
    if replicas < 0 then invalid_arg "Chord.Store.create: negative replicas";
    if Array.length keys = 0 then
      invalid_arg "Chord.Store.create: empty keyspace";
    let index = Hashtbl.create (2 * Array.length keys) in
    Array.iteri
      (fun i key ->
        if Hashtbl.mem index key then
          invalid_arg (Printf.sprintf "Chord.Store.create: duplicate key %d" key);
        Hashtbl.replace index key i)
      keys;
    let keys = Array.copy keys in
    let holders = Array.map (placement chord ~replicas) keys in
    { chord; keys; replicas; index; holders; migrated = 0; rehomes = 0 }

  let key_count t = Array.length t.keys
  let key t i = t.keys.(i)
  let replicas t = t.replicas
  let primary_of t i = t.holders.(i).(0)
  let holders t i = Array.copy t.holders.(i)

  let holds t ~key ~node =
    match Hashtbl.find_opt t.index key with
    | None -> false
    | Some i -> Array.mem node t.holders.(i)

  (* Diff every key's placement against where its copies sit and move
     what changed.  Migrated volume counts copies a node newly receives
     (a dropped replica costs no transfer).  The data path is free —
     only the stabilization probes that changed the structure were
     charged — which matches the paper-world convention that we meter
     measurement, not payload. *)
  let rehome t =
    t.rehomes <- t.rehomes + 1;
    let moved = ref 0 in
    Array.iteri
      (fun i key ->
        let next = placement t.chord ~replicas:t.replicas key in
        let prev = t.holders.(i) in
        if next <> prev then begin
          Array.iter
            (fun h -> if not (Array.mem h prev) then incr moved)
            next;
          t.holders.(i) <- next
        end)
      t.keys;
    t.migrated <- t.migrated + !moved;
    !moved

  let migrated t = t.migrated
  let rehomes t = t.rehomes
end

(* ------------------------------------------------------------------ *)
(* Continuous stabilization                                            *)

module Stabilizer = struct
  module Engine = Tivaware_measure.Engine
  module Churn = Tivaware_measure.Churn
  module Arbiter = Tivaware_measure.Arbiter
  module Obs = Tivaware_obs
  module Sim = Tivaware_eventsim.Sim

  type config = {
    interval : float;
    fingers_per_round : int;
    candidates : int;
    label : string;
    plane : string;
  }

  let default_config =
    {
      interval = 2.;
      fingers_per_round = 1;
      candidates = 8;
      label = "chord-stabilize";
      plane = "chord_stabilize";
    }

  type totals = {
    rounds : int;
    checked : int;  (** stabilization probes issued *)
    rerouted : int;
    marked_dead : int;
    revived : int;
    denied : int;  (** probes the arbiter refused a token *)
  }

  type t = {
    chord : chord;
    engine : Engine.t;
    config : config;
    arbiter : Arbiter.t option;
    store : Store.t option;
    position : int array;  (* node -> rank in [chord.sorted] *)
    next_finger : int array;  (* per-node fix-fingers cursor *)
    mutable rounds : int;
    mutable checked : int;
    mutable rerouted : int;
    mutable marked_dead : int;
    mutable revived : int;
    mutable denied : int;
    mutable dry : bool;
    (* set when the arbiter refuses a token mid-round: nothing refills
       while the clock stands still, so the rest of the round's probes
       are suppressed instead of being refused one by one *)
    mutable changed : bool;
    (* did the current round change any ring state — successor,
       predecessor, list, finger, or failure belief?  Key placement
       depends on all of them, so this is the re-homing trigger. *)
    (* pre-resolved instruments: chord.* driver series plus the
       repair.* family under this stabilizer's plane label *)
    c_rounds : Obs.Counter.t;
    c_migrated : Obs.Counter.t;
    c_checked : Obs.Counter.t;
    c_rerouted : Obs.Counter.t;
    c_marked : Obs.Counter.t;
    c_revived : Obs.Counter.t;
    c_denied : Obs.Counter.t;
  }

  let create ?(config = default_config) ?arbiter ?store chord engine =
    if Float.is_nan config.interval || config.interval <= 0. then
      invalid_arg "Chord.Stabilizer.create: interval must be positive";
    if config.fingers_per_round < 0 then
      invalid_arg "Chord.Stabilizer.create: negative fingers_per_round";
    if config.candidates < 1 then
      invalid_arg "Chord.Stabilizer.create: candidates must be >= 1";
    (match store with
    | Some s when s.Store.chord != chord ->
      invalid_arg "Chord.Stabilizer.create: store built over a different ring"
    | _ -> ());
    let n = Array.length chord.ids in
    let position = Array.make n 0 in
    Array.iteri (fun pos (_, node) -> position.(node) <- pos) chord.sorted;
    let reg = Engine.obs engine in
    let labels = [ ("plane", config.plane) ] in
    (* Register the full schema at zero up front so a stabilized run's
       summary always carries these series, probes or not. *)
    let counter ?labels name = Obs.Registry.counter reg ?labels name in
    {
      chord;
      engine;
      config;
      arbiter;
      store;
      position;
      next_finger = Array.make n 0;
      rounds = 0;
      checked = 0;
      rerouted = 0;
      marked_dead = 0;
      revived = 0;
      denied = 0;
      dry = false;
      changed = false;
      c_rounds = counter "chord.stabilize_rounds";
      c_migrated = counter "chord.keys_migrated";
      c_checked = counter ~labels "repair.checked";
      c_rerouted = counter ~labels "repair.rerouted";
      c_marked = counter ~labels "repair.marked_dead";
      c_revived = counter ~labels "repair.revived";
      c_denied = counter ~labels "repair.denied";
    }

  let config t = t.config
  let store t = t.store

  let totals t =
    {
      rounds = t.rounds;
      checked = t.checked;
      rerouted = t.rerouted;
      marked_dead = t.marked_dead;
      revived = t.revived;
      denied = t.denied;
    }

  let self_up t i =
    match Engine.churn t.engine with
    | None -> true
    | Some c -> Churn.is_up c i

  (* One arbitrated liveness/RTT probe with the heal-pass belief rules:
     an answer revives, conclusive silence accuses, an unmeasurable
     link or a budget refusal says nothing.  [`Skipped] means the
     arbiter refused the token and the probe was never issued; the
     first refusal marks the round dry (one denial counted, the rest
     of the round suppressed — a carve cannot refill mid-round). *)
  let probe t u v =
    let admitted =
      (not t.dry)
      &&
      match t.arbiter with
      | None -> true
      | Some a -> Arbiter.admit a ~now:(Engine.now t.engine) t.config.plane
    in
    if not admitted then begin
      if not t.dry then begin
        t.dry <- true;
        t.denied <- t.denied + 1;
        Obs.Counter.add t.c_denied 1.
      end;
      `Skipped
    end
    else begin
      t.checked <- t.checked + 1;
      Obs.Counter.add t.c_checked 1.;
      match Engine.probe ~label:t.config.label t.engine u v with
      | Engine.Rtt d | Engine.Cached d ->
        if t.chord.dead.(v) then begin
          t.chord.dead.(v) <- false;
          t.changed <- true;
          t.revived <- t.revived + 1;
          Obs.Counter.add t.c_revived 1.
        end;
        `Alive d
      | Engine.Down | Engine.Lost ->
        if not t.chord.dead.(v) then begin
          t.chord.dead.(v) <- true;
          t.changed <- true;
          t.marked_dead <- t.marked_dead + 1;
          Obs.Counter.add t.c_marked 1.
        end;
        `Dead
      | Engine.Unmeasured | Engine.Denied -> `Unknown
    end

  (* Refresh finger slot [k] of node [u]: probe the same arc candidates
     the build selected from, with the same proximity fold and
     tie-break, so on a fault-free engine a refresh reproduces the
     built entry exactly (structural inertness without churn). *)
  let refresh_finger t u k =
    let chord = t.chord in
    let lo = Id_space.add chord.ids.(u) (Id_space.power_offset k) in
    let hi =
      if k + 1 >= Id_space.bits then lo
      else Id_space.add chord.ids.(u) (Id_space.power_offset (k + 1))
    in
    let entry =
      match arc_candidates chord.sorted lo hi t.config.candidates with
      | [] ->
        let owner = snd (owner_entry chord.sorted lo) in
        if owner = u then -1 else owner
      | first :: _ as cands ->
        let best =
          List.fold_left
            (fun acc c ->
              if c = u then acc
              else begin
                match probe t u c with
                | `Alive p -> (
                  match acc with
                  | Some (_, bp) when bp <= p -> acc
                  | _ -> Some (c, p))
                | `Dead | `Unknown | `Skipped -> acc
              end)
            None cands
        in
        (match best with
        | Some (c, _) -> c
        | None -> if first = u then -1 else first)
    in
    if chord.finger_at.(u).(k) <> entry then begin
      chord.finger_at.(u).(k) <- entry;
      chord.finger_tables.(u) <- dedup_fingers chord.finger_at.(u);
      t.changed <- true
    end

  (* One stabilization round of node [u]: check-predecessor, stabilize
     (first live successor, with the pred-of-successor improvement and
     a structural ring walk as last resort), successor-list refresh
     riding on the stabilize exchange, notify, fix-fingers, and key
     re-homing when anything moved. *)
  let round t u =
    if self_up t u then begin
      let chord = t.chord in
      let n = Array.length chord.ids in
      t.dry <- false;
      t.changed <- false;
      t.rounds <- t.rounds + 1;
      Obs.Counter.add t.c_rounds 1.;
      (* 1. check-predecessor: a silent predecessor is forgotten so a
         later notify can fill the slot. *)
      let p = chord.predecessors.(u) in
      if p >= 0 && p <> u then begin
        match probe t u p with
        | `Dead ->
          chord.predecessors.(u) <- -1;
          t.changed <- true
        | `Alive _ | `Unknown | `Skipped -> ()
      end;
      (* 2. stabilize: first candidate that answers, walking the
         current successor list, then (all silent) the ring itself. *)
      let chosen = ref None in
      Array.iter
        (fun c ->
          if !chosen = None && c <> u then
            match probe t u c with `Alive _ -> chosen := Some c | _ -> ())
        chord.successor_lists.(u);
      if !chosen = None then begin
        let steps = ref 1 in
        while !chosen = None && !steps < n do
          let c = snd chord.sorted.((t.position.(u) + !steps) mod n) in
          if c <> u then begin
            match probe t u c with `Alive _ -> chosen := Some c | _ -> ()
          end;
          incr steps
        done
      end;
      (match !chosen with
      | None -> ()  (* nobody answered; keep the structure as is *)
      | Some first_live ->
        (* Ask the successor for its predecessor: a live node strictly
           between us is the fresher successor (Chord's stabilize). *)
        let s = ref first_live in
        let sp = chord.predecessors.(!s) in
        if
          sp >= 0 && sp <> u && sp <> !s
          && Id_space.between_cw chord.ids.(u) chord.ids.(sp) chord.ids.(!s)
        then begin
          match probe t u sp with `Alive _ -> s := sp | _ -> ()
        end;
        let s = !s in
        if chord.successors.(u) <> s then begin
          chord.successors.(u) <- s;
          t.changed <- true;
          t.rerouted <- t.rerouted + 1;
          Obs.Counter.add t.c_rerouted 1.
        end;
        (* Successor-list refresh rides on the stabilize exchange (no
           extra probe): our list becomes s followed by s's list. *)
        let r = Array.length chord.successor_lists.(u) in
        if r > 0 then begin
          let out = ref [ s ] and count = ref 1 in
          let absorb c =
            if !count < r && c <> u && not (List.mem c !out) then begin
              out := c :: !out;
              incr count
            end
          in
          Array.iter absorb chord.successor_lists.(s);
          (* pad from the old list so knowledge never shrinks *)
          Array.iter absorb chord.successor_lists.(u);
          let fresh = Array.of_list (List.rev !out) in
          if fresh <> chord.successor_lists.(u) then begin
            chord.successor_lists.(u) <- fresh;
            t.changed <- true
          end
        end;
        (* 3. notify: we believe we are s's predecessor; s adopts us
           when its slot is empty, stale-dead, or we sit closer. *)
        let sp = chord.predecessors.(s) in
        if
          sp <> u
          && (sp < 0 || chord.dead.(sp)
             || Id_space.between_cw chord.ids.(sp) chord.ids.(u) chord.ids.(s))
        then begin
          chord.predecessors.(s) <- u;
          t.changed <- true
        end);
      (* 4. fix-fingers: refresh the next slots of the cursor. *)
      for _ = 1 to min t.config.fingers_per_round Id_space.bits do
        let k = t.next_finger.(u) in
        t.next_finger.(u) <- (k + 1) mod Id_space.bits;
        refresh_finger t u k
      done;
      (* 5. key re-homing, only when this round moved anything — an
         unchanged ring migrates nothing. *)
      if t.changed then begin
        match t.store with
        | None -> ()
        | Some store ->
          let moved = Store.rehome store in
          if moved > 0 then Obs.Counter.add t.c_migrated (float_of_int moved)
      end
    end

  let sweep t =
    for u = 0 to Array.length t.chord.ids - 1 do
      round t u
    done

  (* Recurring schedule: node u's first round fires at
     interval * (u+1) / n, then every interval — the stagger spreads
     maintenance over the period instead of bursting all n rounds on
     one timestamp, and is deterministic in (n, interval). *)
  let schedule ?(slave_clock = true) t sim =
    if slave_clock then
      Sim.on_advance sim (fun time -> Engine.advance_to t.engine time);
    let n = Array.length t.chord.ids in
    let interval = t.config.interval in
    for u = 0 to n - 1 do
      let start = interval *. float_of_int (u + 1) /. float_of_int n in
      Sim.schedule_every sim ~start ~every:interval (fun () ->
          round t u;
          true)
    done
end
