module Matrix = Tivaware_delay_space.Matrix

type t = {
  ids : int array;  (* ids.(node) = identifier *)
  sorted : (int * int) array;  (* (id, node), ascending by id *)
  successors : int array;  (* successors.(node) = current successor belief *)
  successor_lists : int array array;
  (* next [r] nodes clockwise in id space — the healing candidates a
     node falls back on when its successor dies *)
  finger_tables : int array array;  (* deduplicated finger node indices *)
  dead : bool array;
  (* healing's shared failure belief (gossiped); all-false until a heal
     pass marks nodes, so un-healed overlays behave exactly as before *)
}

let size t = Array.length t.ids
let node_id t node = t.ids.(node)
let successor t node = t.successors.(node)
let successor_list t node = Array.copy t.successor_lists.(node)
let fingers t node = Array.copy t.finger_tables.(node)
let believed_dead t node = t.dead.(node)

(* First (id, node) whose id is >= key, wrapping to the smallest. *)
let owner_entry sorted key =
  let n = Array.length sorted in
  let rec search lo hi =
    (* invariant: fst sorted.(i) < key for i < lo; >= key for i >= hi *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if fst sorted.(mid) < key then search (mid + 1) hi else search lo mid
    end
  in
  let pos = search 0 n in
  sorted.(if pos = n then 0 else pos)

let owner_of t key = snd (owner_entry t.sorted key)

(* First node at or after [key] not believed dead: the node that
   answers for the key once healing has routed responsibility past the
   failures.  With an all-false belief (no healing) this is [owner_of]. *)
let live_owner_of t key =
  let n = Array.length t.sorted in
  let start =
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if fst t.sorted.(mid) < key then search (mid + 1) hi else search lo mid
      end
    in
    let pos = search 0 n in
    if pos = n then 0 else pos
  in
  let rec walk pos steps =
    let node = snd t.sorted.(pos) in
    if steps >= n || not t.dead.(node) then node
    else walk ((pos + 1) mod n) (steps + 1)
  in
  walk start 0

(* Nodes whose ids fall in the clockwise arc [lo, hi), in arc order,
   at most [limit] of them. *)
let arc_candidates sorted lo hi limit =
  let n = Array.length sorted in
  let start =
    let rec search l h =
      if l >= h then l
      else begin
        let mid = (l + h) / 2 in
        if fst sorted.(mid) < lo then search (mid + 1) h else search l mid
      end
    in
    let pos = search 0 n in
    if pos = n then 0 else pos
  in
  let span = Id_space.distance_cw lo hi in
  let out = ref [] and count = ref 0 and k = ref start in
  let continue_ = ref (span > 0) in
  while !continue_ && !count < limit do
    let id, node = sorted.(!k mod n) in
    if Id_space.distance_cw lo id < span then begin
      out := node :: !out;
      incr count;
      k := !k + 1;
      if !k - start >= n then continue_ := false
    end
    else continue_ := false
  done;
  List.rev !out

let build_sized ?(candidates = 8) ?(successor_list = 4) ?predict n =
  assert (n >= 2);
  if successor_list < 1 then
    invalid_arg "Chord.build: successor_list must be >= 1";
  let ids = Array.init n Id_space.of_node in
  let sorted = Array.init n (fun node -> (ids.(node), node)) in
  Array.sort compare sorted;
  let position = Array.make n 0 in
  Array.iteri (fun pos (_, node) -> position.(node) <- pos) sorted;
  let successors =
    Array.init n (fun node -> snd sorted.((position.(node) + 1) mod n))
  in
  let successor_lists =
    let r = min successor_list (n - 1) in
    Array.init n (fun node ->
        Array.init r (fun k -> snd sorted.((position.(node) + 1 + k) mod n)))
  in
  let finger_of node k =
    let lo = Id_space.add ids.(node) (Id_space.power_offset k) in
    let hi =
      if k + 1 >= Id_space.bits then lo (* empty arc: full wrap handled below *)
      else Id_space.add ids.(node) (Id_space.power_offset (k + 1))
    in
    match arc_candidates sorted lo hi candidates with
    | [] ->
      (* Classical Chord fallback: successor of (id + 2^k). *)
      let owner = snd (owner_entry sorted lo) in
      if owner = node then None else Some owner
    | first :: _ as cands -> (
      match predict with
      | None -> if first = node then None else Some first
      | Some predict ->
        let best =
          List.fold_left
            (fun acc c ->
              if c = node then acc
              else begin
                let p = predict node c in
                if Float.is_nan p then acc
                else begin
                  match acc with
                  | Some (_, bp) when bp <= p -> acc
                  | _ -> Some (c, p)
                end
              end)
            None cands
        in
        (match best with
        | Some (c, _) -> Some c
        | None -> if first = node then None else Some first))
  in
  let finger_tables =
    Array.init n (fun node ->
        let seen = Hashtbl.create 16 in
        let out = ref [] in
        for k = 0 to Id_space.bits - 1 do
          match finger_of node k with
          | Some f when not (Hashtbl.mem seen f) ->
            Hashtbl.replace seen f ();
            out := f :: !out
          | _ -> ()
        done;
        Array.of_list !out)
  in
  { ids; sorted; successors; successor_lists; finger_tables; dead = Array.make n false }

let build ?candidates ?successor_list ?predict m =
  build_sized ?candidates ?successor_list ?predict (Matrix.size m)

(* The id-space structure needs only a node count, so a backend-built
   overlay is identical to a matrix-built one whenever the backends
   agree on delays — which the dense==lazy-densified equivalence tests
   lean on. *)
let build_backend ?candidates ?successor_list ?predict backend =
  let module B = Tivaware_backend.Delay_backend in
  let predict =
    match predict with Some p -> p | None -> B.query backend
  in
  build_sized ?candidates ?successor_list ~predict (B.size backend)

type lookup = {
  hops : int;
  latency : float;
  route : int list;
  owner : int;
}

let lookup_fn t delay ~source ~key =
  let n = size t in
  if source < 0 || source >= n then invalid_arg "Chord.lookup: bad source";
  let owner = live_owner_of t key in
  let hop_cost a b =
    let d = delay a b in
    if Float.is_nan d then 0. else d
  in
  let rec route_from cur latency hops acc =
    if cur = owner then
      { hops; latency; route = List.rev acc; owner }
    else begin
      let cur_id = t.ids.(cur) in
      let succ = t.successors.(cur) in
      let succ_id = t.ids.(succ) in
      (* Owner reached next hop when the key lies in (cur, successor].
         The healed successor can sit past the owner (healing also
         skips candidates it cannot probe, e.g. unmeasurable links);
         the final handoff goes to the live owner the node knows from
         its successor list, never past it — otherwise the route would
         orbit the ring. *)
      if Id_space.between_cw cur_id key succ_id || key = succ_id then begin
        let last = if succ = owner then succ else owner in
        route_from last (latency +. hop_cost cur last) (hops + 1) (last :: acc)
      end
      else begin
        (* Closest preceding node among fingers, else the successor. *)
        let next =
          Array.fold_left
            (fun acc f ->
              let fid = t.ids.(f) in
              if (not t.dead.(f)) && Id_space.between_cw cur_id fid key then begin
                match acc with
                | Some (_, bd) when bd >= Id_space.distance_cw cur_id fid -> acc
                | _ -> Some (f, Id_space.distance_cw cur_id fid)
              end
              else acc)
            None t.finger_tables.(cur)
        in
        let next = match next with Some (f, _) -> f | None -> succ in
        route_from next (latency +. hop_cost cur next) (hops + 1) (next :: acc)
      end
    end
  in
  route_from source 0. 0 [ source ]

let lookup t m ~source ~key = lookup_fn t (Matrix.get m) ~source ~key

let lookup_backend t backend ~source ~key =
  lookup_fn t (Tivaware_backend.Delay_backend.query backend) ~source ~key

(* Measurement-plane PNS: the proximity predictor probes through the
   engine (budgets, faults, cache all apply), while id-space structure
   needs only the engine's node count — so matrix-backed and lazy
   backend engines both work.  Under the default (exact-oracle) config
   this is bit-for-bit [build ~predict:(Matrix.get m) m]. *)
let build_engine ?candidates ?successor_list ?(label = "dht") engine =
  let module Engine = Tivaware_measure.Engine in
  build_sized ?candidates ?successor_list
    ~predict:(Engine.rtt ~label engine)
    (Engine.size engine)

(* ------------------------------------------------------------------ *)
(* Successor-list healing                                              *)

type heal = {
  checked : int;
  rerouted : int;
  marked_dead : int;
  revived : int;
}

(* One healing pass: every node that is itself up probes down its
   successor list, in clockwise order, until a candidate answers; the
   first live candidate becomes its successor pointer, and every probe
   outcome updates the shared failure belief the router consults.

   Convergence: a node's immediate structural successor is always the
   first entry of its list, so a revived node is re-probed by its
   predecessor on the very next pass — belief cleared, pointer
   restored.  A dead node is discovered by its predecessor the same
   way; chains of up to [successor_list] consecutive failures are
   walked past.  All probes are charged under [label]. *)
let heal_engine ?(label = "dht-repair") t engine =
  let module Engine = Tivaware_measure.Engine in
  let module Churn = Tivaware_measure.Churn in
  let self_up i =
    match Engine.churn engine with
    | None -> true
    | Some c -> Churn.is_up c i
  in
  let checked = ref 0 and rerouted = ref 0 in
  let marked = ref 0 and revived = ref 0 in
  Array.iteri
    (fun node _ ->
      if self_up node then begin
        let chosen = ref None in
        Array.iter
          (fun c ->
            if !chosen = None then begin
              incr checked;
              match Engine.probe ~label engine node c with
              | Engine.Rtt _ | Engine.Cached _ ->
                if t.dead.(c) then begin
                  t.dead.(c) <- false;
                  incr revived
                end;
                chosen := Some c
              | Engine.Down | Engine.Lost ->
                (* A timed-out probe is failure detection: the belief
                   is gossiped, so only conclusive silence may set it. *)
                if not t.dead.(c) then begin
                  t.dead.(c) <- true;
                  incr marked
                end
              | Engine.Unmeasured | Engine.Denied ->
                (* This link cannot carry a probe (missing pair) or the
                   budget refused it — says nothing about [c]'s
                   liveness; skip the candidate without accusing it. *)
                ()
            end)
          t.successor_lists.(node);
        match !chosen with
        | Some c when t.successors.(node) <> c ->
          t.successors.(node) <- c;
          incr rerouted
        | _ -> ()
      end)
    t.ids;
  let module Obs = Tivaware_obs in
  let reg = Engine.obs engine in
  let labels = [ ("plane", "chord") ] in
  List.iter
    (fun (name, v) ->
      Obs.Counter.add (Obs.Registry.counter reg ~labels name) (float_of_int v))
    [
      ("repair.checked", !checked);
      ("repair.rerouted", !rerouted);
      ("repair.marked_dead", !marked);
      ("repair.revived", !revived);
    ];
  Obs.Registry.trace_event reg ~time:(Engine.now engine) ~label:"repair.chord"
    (Printf.sprintf "checked=%d rerouted=%d marked_dead=%d revived=%d" !checked
       !rerouted !marked !revived);
  { checked = !checked; rerouted = !rerouted; marked_dead = !marked; revived = !revived }
