module Matrix = Tivaware_delay_space.Matrix

type t = {
  ids : int array;  (* ids.(node) = identifier *)
  sorted : (int * int) array;  (* (id, node), ascending by id *)
  successors : int array;  (* successors.(node) = node index *)
  finger_tables : int array array;  (* deduplicated finger node indices *)
}

let size t = Array.length t.ids
let node_id t node = t.ids.(node)
let successor t node = t.successors.(node)
let fingers t node = Array.copy t.finger_tables.(node)

(* First (id, node) whose id is >= key, wrapping to the smallest. *)
let owner_entry sorted key =
  let n = Array.length sorted in
  let rec search lo hi =
    (* invariant: fst sorted.(i) < key for i < lo; >= key for i >= hi *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if fst sorted.(mid) < key then search (mid + 1) hi else search lo mid
    end
  in
  let pos = search 0 n in
  sorted.(if pos = n then 0 else pos)

let owner_of t key = snd (owner_entry t.sorted key)

(* Nodes whose ids fall in the clockwise arc [lo, hi), in arc order,
   at most [limit] of them. *)
let arc_candidates sorted lo hi limit =
  let n = Array.length sorted in
  let start =
    let rec search l h =
      if l >= h then l
      else begin
        let mid = (l + h) / 2 in
        if fst sorted.(mid) < lo then search (mid + 1) h else search l mid
      end
    in
    let pos = search 0 n in
    if pos = n then 0 else pos
  in
  let span = Id_space.distance_cw lo hi in
  let out = ref [] and count = ref 0 and k = ref start in
  let continue_ = ref (span > 0) in
  while !continue_ && !count < limit do
    let id, node = sorted.(!k mod n) in
    if Id_space.distance_cw lo id < span then begin
      out := node :: !out;
      incr count;
      k := !k + 1;
      if !k - start >= n then continue_ := false
    end
    else continue_ := false
  done;
  List.rev !out

let build ?(candidates = 8) ?predict m =
  let n = Matrix.size m in
  assert (n >= 2);
  let ids = Array.init n Id_space.of_node in
  let sorted = Array.init n (fun node -> (ids.(node), node)) in
  Array.sort compare sorted;
  let position = Array.make n 0 in
  Array.iteri (fun pos (_, node) -> position.(node) <- pos) sorted;
  let successors =
    Array.init n (fun node -> snd sorted.((position.(node) + 1) mod n))
  in
  let finger_of node k =
    let lo = Id_space.add ids.(node) (Id_space.power_offset k) in
    let hi =
      if k + 1 >= Id_space.bits then lo (* empty arc: full wrap handled below *)
      else Id_space.add ids.(node) (Id_space.power_offset (k + 1))
    in
    match arc_candidates sorted lo hi candidates with
    | [] ->
      (* Classical Chord fallback: successor of (id + 2^k). *)
      let owner = snd (owner_entry sorted lo) in
      if owner = node then None else Some owner
    | first :: _ as cands -> (
      match predict with
      | None -> if first = node then None else Some first
      | Some predict ->
        let best =
          List.fold_left
            (fun acc c ->
              if c = node then acc
              else begin
                let p = predict node c in
                if Float.is_nan p then acc
                else begin
                  match acc with
                  | Some (_, bp) when bp <= p -> acc
                  | _ -> Some (c, p)
                end
              end)
            None cands
        in
        (match best with
        | Some (c, _) -> Some c
        | None -> if first = node then None else Some first))
  in
  let finger_tables =
    Array.init n (fun node ->
        let seen = Hashtbl.create 16 in
        let out = ref [] in
        for k = 0 to Id_space.bits - 1 do
          match finger_of node k with
          | Some f when not (Hashtbl.mem seen f) ->
            Hashtbl.replace seen f ();
            out := f :: !out
          | _ -> ()
        done;
        Array.of_list !out)
  in
  { ids; sorted; successors; finger_tables }

type lookup = {
  hops : int;
  latency : float;
  route : int list;
  owner : int;
}

let lookup t m ~source ~key =
  let n = size t in
  if source < 0 || source >= n then invalid_arg "Chord.lookup: bad source";
  let owner = owner_of t key in
  let hop_cost a b =
    let d = Matrix.get m a b in
    if Float.is_nan d then 0. else d
  in
  let rec route_from cur latency hops acc =
    if cur = owner then
      { hops; latency; route = List.rev acc; owner }
    else begin
      let cur_id = t.ids.(cur) in
      let succ = t.successors.(cur) in
      let succ_id = t.ids.(succ) in
      (* Owner reached next hop when the key lies in (cur, successor]. *)
      if Id_space.between_cw cur_id key succ_id || key = succ_id then
        route_from succ (latency +. hop_cost cur succ) (hops + 1) (succ :: acc)
      else begin
        (* Closest preceding node among fingers, else the successor. *)
        let next =
          Array.fold_left
            (fun acc f ->
              let fid = t.ids.(f) in
              if Id_space.between_cw cur_id fid key then begin
                match acc with
                | Some (_, bd) when bd >= Id_space.distance_cw cur_id fid -> acc
                | _ -> Some (f, Id_space.distance_cw cur_id fid)
              end
              else acc)
            None t.finger_tables.(cur)
        in
        let next = match next with Some (f, _) -> f | None -> succ in
        route_from next (latency +. hop_cost cur next) (hops + 1) (next :: acc)
      end
    end
  in
  route_from source 0. 0 [ source ]

(* Measurement-plane PNS: the proximity predictor probes through the
   engine (budgets, faults, cache all apply), while id-space structure
   still comes from the engine's ground-truth matrix.  Under the
   default (exact-oracle) config this is bit-for-bit [build ~predict:(Matrix.get m) m]. *)
let build_engine ?candidates ?(label = "dht") engine =
  let module Engine = Tivaware_measure.Engine in
  build ?candidates
    ~predict:(Engine.rtt ~label engine)
    (Engine.matrix_exn engine)
