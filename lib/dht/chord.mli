(** A Chord-like structured overlay with pluggable proximity neighbor
    selection (PNS).

    The paper's introduction motivates TIV awareness with exactly this
    workload: structured overlays pick finger-table entries among
    id-space candidates by network proximity, and a TIV-confused
    proximity estimate inflates every lookup.

    The overlay is built statically over a delay matrix (no churn — the
    paper's experiments are delay-space simulations).  Each node gets:

    - a successor pointer (next node clockwise in id space);
    - one finger per power-of-two offset [2^k].  With plain Chord the
      finger is the first node at or after [id + 2^k]; with PNS it is
      the {e proximity-best} node, under a caller-supplied delay
      predictor, among the first [candidates] nodes of the arc
      [[id + 2^k, id + 2^(k+1))] (Gummadi et al.'s PNS(k)).

    Lookups use greedy clockwise routing and report both hop count and
    accumulated measured network latency. *)

type t

val build :
  ?candidates:int ->
  ?predict:(int -> int -> float) ->
  Tivaware_delay_space.Matrix.t ->
  t
(** [build m] constructs the overlay over all nodes of [m].  Without
    [predict], plain Chord fingers.  With [predict], PNS fingers chosen
    among [candidates] (default 8) arc candidates by smallest predicted
    delay; candidates whose prediction is [nan] are skipped (falling
    back to the first candidate). *)

val build_engine :
  ?candidates:int -> ?label:string -> Tivaware_measure.Engine.t -> t
(** PNS through the measurement plane: finger candidates are compared
    by probing the engine ([label] defaults to ["dht"] in its
    {!Tivaware_measure.Probe_stats}); probes that fail (loss, outage,
    budget denial) read as [nan] and the candidate is skipped.  The
    engine must be matrix-backed — id-space structure and {!lookup}
    latencies use its ground-truth matrix.  Under
    {!Tivaware_measure.Engine.default_config} the overlay is identical
    to [build ~predict:(Matrix.get m) m]. *)

val size : t -> int
val node_id : t -> int -> int
(** Identifier of a node index. *)

val successor : t -> int -> int
(** Node index of the successor on the ring. *)

val fingers : t -> int -> int array
(** Finger node indices (deduplicated, unordered). *)

type lookup = {
  hops : int;
  latency : float;  (** sum of measured delays along the route, ms *)
  route : int list;  (** node indices, source first *)
  owner : int;  (** node responsible for the key *)
}

val lookup : t -> Tivaware_delay_space.Matrix.t -> source:int -> key:int -> lookup
(** Greedy clockwise routing from [source] to the node owning [key].
    Hops with missing measurements contribute 0 latency (the overlay
    link exists regardless).  Raises [Invalid_argument] on a bad
    source. *)

val owner_of : t -> int -> int
(** The node index whose id is the first at or after [key]. *)
