(** A Chord-like structured overlay with pluggable proximity neighbor
    selection (PNS).

    The paper's introduction motivates TIV awareness with exactly this
    workload: structured overlays pick finger-table entries among
    id-space candidates by network proximity, and a TIV-confused
    proximity estimate inflates every lookup.

    The overlay is built statically over a delay matrix (no churn — the
    paper's experiments are delay-space simulations).  Each node gets:

    - a successor pointer (next node clockwise in id space);
    - one finger per power-of-two offset [2^k].  With plain Chord the
      finger is the first node at or after [id + 2^k]; with PNS it is
      the {e proximity-best} node, under a caller-supplied delay
      predictor, among the first [candidates] nodes of the arc
      [[id + 2^k, id + 2^(k+1))] (Gummadi et al.'s PNS(k)).

    Lookups use greedy clockwise routing and report both hop count and
    accumulated measured network latency. *)

type t

val build :
  ?candidates:int ->
  ?successor_list:int ->
  ?predict:(int -> int -> float) ->
  Tivaware_delay_space.Matrix.t ->
  t
(** [build m] constructs the overlay over all nodes of [m].  Without
    [predict], plain Chord fingers.  With [predict], PNS fingers chosen
    among [candidates] (default 8) arc candidates by smallest predicted
    delay; candidates whose prediction is [nan] are skipped (falling
    back to the first candidate).  Every node also records its
    [successor_list] (default 4, capped at [n - 1]) next nodes
    clockwise — the healing candidates {!heal_engine} falls back on
    when a successor dies.  Raises [Invalid_argument] when
    [successor_list < 1]. *)

val build_sized :
  ?candidates:int ->
  ?successor_list:int ->
  ?predict:(int -> int -> float) ->
  int ->
  t
(** [build_sized n] is {!build} over [n] nodes without a delay source —
    id-space structure needs none.  Plain Chord fingers unless
    [predict] is given. *)

val build_backend :
  ?candidates:int ->
  ?successor_list:int ->
  ?predict:(int -> int -> float) ->
  Tivaware_backend.Delay_backend.t ->
  t
(** [build_backend b] constructs the overlay over all nodes of any
    delay backend — a dense matrix, a lazily synthesized model, a
    sparse overlay — with PNS fingers predicted by the backend's own
    delays ([Delay_backend.query b]) unless a [predict] override is
    given.  Two backends that agree on every queried pair build
    identical overlays; with a matrix-wrapping backend this is exactly
    [build ~predict:(Matrix.get m) m]. *)

val build_engine :
  ?candidates:int ->
  ?successor_list:int ->
  ?label:string ->
  Tivaware_measure.Engine.t ->
  t
(** PNS through the measurement plane: finger candidates are compared
    by probing the engine ([label] defaults to ["dht"] in its
    {!Tivaware_measure.Probe_stats}); probes that fail (loss, outage,
    budget denial) read as [nan] and the candidate is skipped.  Works
    with any engine — id-space structure needs only the node count —
    so lazily synthesized backend engines serve as well as
    matrix-backed ones.  Under
    {!Tivaware_measure.Engine.default_config} over a matrix the
    overlay is identical to [build ~predict:(Matrix.get m) m]. *)

val size : t -> int
val node_id : t -> int -> int
(** Identifier of a node index. *)

val successor : t -> int -> int
(** Node index of the current successor on the ring (the structural
    next node clockwise, until {!heal_engine} reroutes it past a
    failure). *)

val successor_list : t -> int -> int array
(** The node's healing candidates: its next nodes clockwise in id
    space, nearest first. *)

val fingers : t -> int -> int array
(** Finger node indices (deduplicated, unordered). *)

val believed_dead : t -> int -> bool
(** Healing's current belief about the node.  Always [false] until a
    {!heal_engine} pass marks it; routing skips believed-dead fingers
    and owners. *)

type lookup = {
  hops : int;
  latency : float;  (** sum of measured delays along the route, ms *)
  route : int list;  (** node indices, source first *)
  owner : int;  (** node responsible for the key *)
}

val lookup : t -> Tivaware_delay_space.Matrix.t -> source:int -> key:int -> lookup
(** Greedy clockwise routing from [source] to the node owning [key] —
    the first node at or after [key] {e not believed dead}, so once
    healing has converged a lookup never terminates at a failed node.
    Believed-dead fingers are skipped en route.  Hops with missing
    measurements contribute 0 latency (the overlay link exists
    regardless).  Raises [Invalid_argument] on a bad source. *)

val lookup_fn : t -> (int -> int -> float) -> source:int -> key:int -> lookup
(** {!lookup} generalized over any delay function: hops whose delay
    reads [nan] contribute 0 latency, as with a missing matrix pair. *)

val lookup_backend :
  t -> Tivaware_backend.Delay_backend.t -> source:int -> key:int -> lookup
(** {!lookup} with hop latencies charged from a delay backend. *)

val owner_of : t -> int -> int
(** The node index whose id is the first at or after [key], ignoring
    liveness (the structural owner). *)

val live_owner_of : t -> int -> int
(** The first node at or after [key] not believed dead — what {!lookup}
    routes to.  Equal to {!owner_of} until healing marks failures. *)

(** {2 Successor-list healing} *)

type heal = {
  checked : int;  (** liveness probes issued by the pass *)
  rerouted : int;  (** successor pointers moved to a live candidate *)
  marked_dead : int;  (** nodes newly believed dead *)
  revived : int;  (** nodes whose death belief was cleared *)
}

val heal_engine : ?label:string -> t -> Tivaware_measure.Engine.t -> heal
(** One healing pass against the engine's current churn state: every
    node that is itself up walks its successor list in clockwise order,
    probing each candidate through the engine until one answers; the
    first live candidate becomes its successor, and the shared failure
    belief ({!believed_dead}) the router consults is updated from the
    probe outcomes.  Only timed-out probes ([Down]/[Lost]) accuse a
    node — an unmeasurable pair or a budget denial says nothing about
    the candidate's liveness and merely skips it, so the gossiped
    belief never marks a node that is up (false suspicion is possible
    under loss, as in any real failure detector).  A revived node is
    re-probed — and its belief cleared — by its predecessor on the next
    pass, because it is always the first entry of that predecessor's
    list.  Probes are charged and accounted under [label] (default
    ["dht-repair"]). *)
