(** A Chord-like structured overlay with pluggable proximity neighbor
    selection (PNS).

    The paper's introduction motivates TIV awareness with exactly this
    workload: structured overlays pick finger-table entries among
    id-space candidates by network proximity, and a TIV-confused
    proximity estimate inflates every lookup.

    The overlay is built statically over a delay matrix (no churn — the
    paper's experiments are delay-space simulations).  Each node gets:

    - a successor pointer (next node clockwise in id space);
    - one finger per power-of-two offset [2^k].  With plain Chord the
      finger is the first node at or after [id + 2^k]; with PNS it is
      the {e proximity-best} node, under a caller-supplied delay
      predictor, among the first [candidates] nodes of the arc
      [[id + 2^k, id + 2^(k+1))] (Gummadi et al.'s PNS(k)).

    Lookups use greedy clockwise routing and report both hop count and
    accumulated measured network latency. *)

type t

val build :
  ?candidates:int ->
  ?successor_list:int ->
  ?predict:(int -> int -> float) ->
  Tivaware_delay_space.Matrix.t ->
  t
(** [build m] constructs the overlay over all nodes of [m].  Without
    [predict], plain Chord fingers.  With [predict], PNS fingers chosen
    among [candidates] (default 8) arc candidates by smallest predicted
    delay; candidates whose prediction is [nan] are skipped (falling
    back to the first candidate).  Every node also records its
    [successor_list] (default 4, capped at [n - 1]) next nodes
    clockwise — the healing candidates {!heal_engine} falls back on
    when a successor dies.  Raises [Invalid_argument] when
    [successor_list < 1]. *)

val build_sized :
  ?candidates:int ->
  ?successor_list:int ->
  ?predict:(int -> int -> float) ->
  int ->
  t
(** [build_sized n] is {!build} over [n] nodes without a delay source —
    id-space structure needs none.  Plain Chord fingers unless
    [predict] is given. *)

val build_backend :
  ?candidates:int ->
  ?successor_list:int ->
  ?predict:(int -> int -> float) ->
  Tivaware_backend.Delay_backend.t ->
  t
(** [build_backend b] constructs the overlay over all nodes of any
    delay backend — a dense matrix, a lazily synthesized model, a
    sparse overlay — with PNS fingers predicted by the backend's own
    delays ([Delay_backend.query b]) unless a [predict] override is
    given.  Two backends that agree on every queried pair build
    identical overlays; with a matrix-wrapping backend this is exactly
    [build ~predict:(Matrix.get m) m]. *)

val build_engine :
  ?candidates:int ->
  ?successor_list:int ->
  ?label:string ->
  Tivaware_measure.Engine.t ->
  t
(** PNS through the measurement plane: finger candidates are compared
    by probing the engine ([label] defaults to ["dht"] in its
    {!Tivaware_measure.Probe_stats}); probes that fail (loss, outage,
    budget denial) read as [nan] and the candidate is skipped.  Works
    with any engine — id-space structure needs only the node count —
    so lazily synthesized backend engines serve as well as
    matrix-backed ones.  Under
    {!Tivaware_measure.Engine.default_config} over a matrix the
    overlay is identical to [build ~predict:(Matrix.get m) m]. *)

val size : t -> int
val node_id : t -> int -> int
(** Identifier of a node index. *)

val successor : t -> int -> int
(** Node index of the current successor on the ring (the structural
    next node clockwise, until {!heal_engine} reroutes it past a
    failure). *)

val successor_list : t -> int -> int array
(** The node's healing candidates: its next nodes clockwise in id
    space, nearest first. *)

val fingers : t -> int -> int array
(** Finger node indices (deduplicated, unordered). *)

val believed_dead : t -> int -> bool
(** Healing's current belief about the node.  Always [false] until a
    {!heal_engine} pass marks it; routing skips believed-dead fingers
    and owners. *)

val predecessor : t -> int -> int
(** Node index of the current predecessor belief, [-1] when unknown.
    Structural (the previous node clockwise) at build; maintained by
    the stabilizer's notify / check-predecessor exchanges. *)

type lookup = {
  hops : int;
  latency : float;  (** sum of measured delays along the route, ms *)
  route : int list;  (** node indices, source first *)
  owner : int;  (** node responsible for the key *)
}

val lookup : t -> Tivaware_delay_space.Matrix.t -> source:int -> key:int -> lookup
(** Greedy clockwise routing from [source] to the node owning [key] —
    the first node at or after [key] {e not believed dead}, so once
    healing has converged a lookup never terminates at a failed node.
    Believed-dead fingers are skipped en route.  Hops with missing
    measurements contribute 0 latency (the overlay link exists
    regardless).  Raises [Invalid_argument] on a bad source. *)

val lookup_fn : t -> (int -> int -> float) -> source:int -> key:int -> lookup
(** {!lookup} generalized over any delay function: hops whose delay
    reads [nan] contribute 0 latency, as with a missing matrix pair. *)

val lookup_backend :
  t -> Tivaware_backend.Delay_backend.t -> source:int -> key:int -> lookup
(** {!lookup} with hop latencies charged from a delay backend. *)

val owner_of : t -> int -> int
(** The node index whose id is the first at or after [key], ignoring
    liveness (the structural owner). *)

val live_owner_of : t -> int -> int
(** The first node at or after [key] not believed dead — what {!lookup}
    routes to.  Equal to {!owner_of} until healing marks failures. *)

(** {2 Successor-list healing} *)

type heal = {
  checked : int;  (** liveness probes issued by the pass *)
  rerouted : int;  (** successor pointers moved to a live candidate *)
  marked_dead : int;  (** nodes newly believed dead *)
  revived : int;  (** nodes whose death belief was cleared *)
}

val heal_engine : ?label:string -> t -> Tivaware_measure.Engine.t -> heal
(** One healing pass against the engine's current churn state: every
    node that is itself up walks its successor list in clockwise order,
    probing each candidate through the engine until one answers; the
    first live candidate becomes its successor, and the shared failure
    belief ({!believed_dead}) the router consults is updated from the
    probe outcomes.  Only timed-out probes ([Down]/[Lost]) accuse a
    node — an unmeasurable pair or a budget denial says nothing about
    the candidate's liveness and merely skips it, so the gossiped
    belief never marks a node that is up (false suspicion is possible
    under loss, as in any real failure detector).  A revived node is
    re-probed — and its belief cleared — by its predecessor on the next
    pass, because it is always the first entry of that predecessor's
    list.  Probes are charged and accounted under [label] (default
    ["dht-repair"]). *)

type chord := t

(** {2 Key ownership} *)

(** A keyspace placed on the ring: each key has a primary copy on its
    live owner and replicas on the owner's first believed-live
    successor-list entries (classical Chord successor-list
    replication).  {!Store.rehome} re-computes every key's placement
    against the ring's current beliefs and counts the copies that
    moved — the data-migration cost of a churn event. *)
module Store : sig
  type t

  val create : ?replicas:int -> chord -> keys:int array -> t
  (** [create chord ~keys] places each key id on the ring with
      [replicas] (default 2) additional copies.  Raises
      [Invalid_argument] on a negative replica count, an empty
      keyspace, or a duplicate key. *)

  val key_count : t -> int
  val key : t -> int -> int
  (** Key id at a key index. *)

  val replicas : t -> int

  val primary_of : t -> int -> int
  (** Node currently holding the primary copy of a key index. *)

  val holders : t -> int -> int array
  (** All nodes holding a key index, primary first. *)

  val holds : t -> key:int -> node:int -> bool
  (** Whether [node] currently holds a copy of key id [key] ([false]
      for unknown keys). *)

  val rehome : t -> int
  (** Re-place every key against the ring's current successor
      structure and failure beliefs; returns the number of copies that
      moved to a new holder this sweep (dropped copies are free).
      Key payload movement is not charged to the probe budget — only
      the stabilization probes that changed the structure were. *)

  val migrated : t -> int
  (** Cumulative copies moved across all {!rehome} sweeps. *)

  val rehomes : t -> int
  (** Number of {!rehome} sweeps performed. *)
end

(** {2 Continuous stabilization} *)

(** The periodic counterpart of {!heal_engine}: Chord's
    stabilize / notify / fix-fingers / check-predecessor protocol run
    as recurring {!Tivaware_eventsim.Sim} events, every probe charged
    through the engine under its own label and (optionally) admitted
    by a {!Tivaware_measure.Arbiter} plane — the first scenario where
    a background protocol competes with foreground traffic for probe
    tokens.  On a fault-free engine with no churn, rounds verify the
    built structure without changing it: the only trace is the probes
    on the stabilizer's own label. *)
module Stabilizer : sig
  type config = {
    interval : float;  (** seconds between a node's rounds *)
    fingers_per_round : int;  (** finger slots refreshed per round *)
    candidates : int;  (** PNS arc candidates per finger refresh *)
    label : string;  (** probe-accounting label *)
    plane : string;  (** arbiter plane and obs [plane] label *)
  }

  val default_config : config
  (** [interval = 2.], [fingers_per_round = 1], [candidates = 8],
      [label = "chord-stabilize"], [plane = "chord_stabilize"]. *)

  type totals = {
    rounds : int;
    checked : int;  (** stabilization probes issued *)
    rerouted : int;
    marked_dead : int;
    revived : int;
    denied : int;
        (** rounds curtailed by an arbiter refusal: the first refused
            token counts here and suppresses the round's remaining
            probes (the carve cannot refill while the clock stands
            still, so retrying within the round is pointless) *)
  }

  type t

  val create :
    ?config:config ->
    ?arbiter:Tivaware_measure.Arbiter.t ->
    ?store:Store.t ->
    chord ->
    Tivaware_measure.Engine.t ->
    t
  (** Registers the [chord.stabilize_rounds] / [chord.keys_migrated]
      counters and the [repair.*] family under [plane] in the engine's
      registry at zero, so a stabilized run's metrics summary always
      carries the schema.  With [arbiter], every probe first asks
      [admit ~now plane] and is skipped (never issued, counted under
      [repair.denied] and {!totals}[.denied]) on refusal.  With
      [store], a round that changed the ring re-homes the keys.
      Raises [Invalid_argument] on a non-positive interval, negative
      [fingers_per_round], [candidates < 1], or a store built over a
      different ring. *)

  val config : t -> config
  val store : t -> Store.t option
  val totals : t -> totals

  val round : t -> int -> unit
  (** One stabilization round of one node, skipped entirely (not even
      counted) while the node is down under the engine's churn: check
      the predecessor, find the first live successor candidate (the
      successor list, then — all silent — the ring itself), adopt the
      successor's predecessor when it sits strictly between and
      answers, refresh the successor list from the successor's,
      notify, and refresh [fingers_per_round] finger slots from the
      per-node cursor.  When the round changed any belief and a store
      is attached, the keys are re-homed. *)

  val sweep : t -> unit
  (** {!round} for every node in index order — the direct-driven
      (simulator-free) way to run stabilization in tests. *)

  val schedule : ?slave_clock:bool -> t -> Tivaware_eventsim.Sim.t -> unit
  (** Schedule every node's rounds as recurring simulator events: node
      [u] of [n] first fires at [interval * (u+1) / n], then every
      [interval] — a deterministic stagger that spreads maintenance
      over the period instead of bursting all rounds on one timestamp.
      Unless [slave_clock] is [false], the engine clock is slaved to
      the simulator ([Engine.advance_to] on every advance, simulator
      time in engine seconds) so churn and token refill move with
      simulated time. *)
end
