(* Property layer for continuous Chord self-stabilization.

   The contracts under test (see DESIGN.md, "Continuous
   stabilization"):

   - Convergence: after any seeded sequence of churn transitions
     followed by enough stabilization rounds at a frozen instant, the
     ring converges — every live node's successor is the next live
     node clockwise, predecessor beliefs match, the shared failure
     belief equals ground truth, fingers the router would use are
     live, and every key has exactly one live primary owner (the
     ground-truth owner), with lookups terminating there.
   - Heal equivalence: when churn stops, {!Chord.heal_engine} iterated
     to a fixed point and the periodic stabilizer reach the same
     successor structure (provided no dead run exceeds the successor
     list, the only regime healing can cross at all).
   - Inertness: with zero churn and no faults, stabilization verifies
     the built structure without changing it — no reroutes, no
     migration, and no probe accounting beyond its own label.
   - Determinism: the whole scheduled scenario is a function of
     (seed, interval, budget).

   The suite uses a complete synthetic matrix (no missing pairs): the
   strict structural invariants require that silence always means
   death, never an unmeasurable link.  Like test_measure_properties it
   reads TIVAWARE_PROP_SEED so the CI matrix re-runs it under distinct
   seeds. *)

module Rng = Tivaware_util.Rng
module Euclidean = Tivaware_topology.Euclidean
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Arbiter = Tivaware_measure.Arbiter
module Probe_stats = Tivaware_measure.Probe_stats
module Sim = Tivaware_eventsim.Sim
module Chord = Tivaware_dht.Chord
module Id_space = Tivaware_dht.Id_space

let prop_seed =
  match Sys.getenv_opt "TIVAWARE_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

let rng salt = Rng.create ((prop_seed * 1_000_003) + salt)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let qcheck ~count ~name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let n = 48
let successor_list = 8

(* Complete matrix: every pair measurable, so probe silence is always
   a real outage. *)
let matrix = lazy (Euclidean.uniform_box (Rng.create 4007) ~n ~dim:3 ~side_ms:300.)

let burst_churn seed =
  { Churn.fraction = 0.5; mean_up = 60.; mean_down = 120.; seed }

let engine ?churn ~seed () =
  Engine.of_matrix
    ~config:
      {
        Engine.fault = Fault.default;
        profile = None;
        churn;
        dynamics = None;
        budget = None;
        cache_ttl = None;
        cache_capacity = None;
        charge_time = false;
        seed;
      }
    (Lazy.force matrix)

let is_up churn i =
  match churn with None -> true | Some c -> Churn.is_up c i

(* Distinct key ids spread over the whole space (low bits carry the
   index, so distinctness is structural). *)
let make_keys salt count =
  let g = rng salt in
  Array.init count (fun i -> (Rng.int g (Id_space.modulus lsr 8) lsl 8) lor i)

(* ------------------------------------------------------------------ *)
(* Ground truth from ids and the churn schedule                        *)

let ring chord =
  let a = Array.init n (fun i -> (Chord.node_id chord i, i)) in
  Array.sort compare a;
  a

let position_of sorted u =
  let p = ref (-1) in
  Array.iteri (fun i (_, v) -> if v = u then p := i) sorted;
  !p

let walk_up sorted churn ~from ~dir =
  let rec go k =
    if k >= n then Alcotest.fail "no live node on the ring"
    else
      let v = snd sorted.(((from + (dir * k)) mod n + n) mod n) in
      if is_up churn v then v else go (k + 1)
  in
  go 1

let next_up sorted churn u = walk_up sorted churn ~from:(position_of sorted u) ~dir:1
let prev_up sorted churn u = walk_up sorted churn ~from:(position_of sorted u) ~dir:(-1)

(* First live node whose id is at or after the key, wrapping. *)
let true_owner sorted churn key =
  let first = ref (-1) and wrapped = ref (-1) in
  Array.iter
    (fun (id, v) ->
      if is_up churn v then begin
        if !wrapped < 0 then wrapped := v;
        if !first < 0 && id >= key then first := v
      end)
    sorted;
  if !first >= 0 then !first else !wrapped

(* Longest run of consecutive dead nodes in ring order. *)
let max_dead_run sorted churn =
  let best = ref 0 and cur = ref 0 in
  for k = 0 to (2 * n) - 1 do
    let v = snd sorted.(k mod n) in
    if is_up churn v then cur := 0
    else begin
      incr cur;
      if !cur > !best then best := !cur
    end
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Fixed-point driving                                                 *)

let snapshot chord =
  ( Array.init n (Chord.successor chord),
    Array.init n (Chord.predecessor chord),
    Array.init n (Chord.successor_list chord),
    Array.init n (Chord.fingers chord),
    Array.init n (Chord.believed_dead chord) )

(* Sweep until a whole sweep changes nothing (beliefs, pointers, lists
   and fingers all stable).  The engine clock is frozen between
   sweeps, so a fixed point exists and the cap is generous. *)
let converge stab chord =
  let rec go i prev =
    if i > 100 then Alcotest.fail "stabilization failed to converge";
    Chord.Stabilizer.sweep stab;
    let cur = snapshot chord in
    if cur <> prev then go (i + 1) cur
  in
  go 0 (snapshot chord)

let all_fingers_config =
  {
    Chord.Stabilizer.default_config with
    Chord.Stabilizer.fingers_per_round = Id_space.bits;
  }

(* ------------------------------------------------------------------ *)
(* Convergence invariants under arbitrary churn histories              *)

let prop_ring_converges (churn_salt, epochs) =
  let churn = burst_churn ((prop_seed * 31) + churn_salt) in
  let e = engine ~churn ~seed:5 () in
  let chord = Chord.build_engine ~successor_list e in
  let store = Chord.Store.create ~replicas:2 chord ~keys:(make_keys 17 96) in
  let stab =
    Chord.Stabilizer.create ~config:all_fingers_config ~store chord e
  in
  let c = Engine.churn e in
  let sorted = ring chord in
  for epoch = 1 to epochs do
    Engine.advance_to e (float_of_int (epoch * 150));
    converge stab chord
  done;
  let fail fmt = QCheck2.Test.fail_reportf fmt in
  (* Beliefs equal ground truth: every probe answer is conclusive on a
     complete zero-loss matrix, and a fixed point leaves no stale
     belief (a wrong death would be revived via notify/pred-adoption,
     a missed death would still be getting marked). *)
  for i = 0 to n - 1 do
    if Chord.believed_dead chord i = is_up c i then
      fail "belief about node %d is wrong (up=%b)" i (is_up c i)
  done;
  for u = 0 to n - 1 do
    if is_up c u then begin
      (* The ring converged: successor and predecessor beliefs of live
         nodes point at the structurally adjacent live nodes. *)
      let s = Chord.successor chord u and s' = next_up sorted c u in
      if s <> s' then fail "node %d: successor %d, next live is %d" u s s';
      let p = Chord.predecessor chord u and p' = prev_up sorted c u in
      if p <> p' then fail "node %d: predecessor %d, prev live is %d" u p p';
      (* Fingers the router would use are actually live. *)
      Array.iter
        (fun f ->
          if (not (Chord.believed_dead chord f)) && not (is_up c f) then
            fail "node %d keeps a routable dead finger %d" u f)
        (Chord.fingers chord u)
    end
  done;
  (* Key ownership: exactly one live primary per key — the ground
     truth owner — and all replica holders are live. *)
  for i = 0 to Chord.Store.key_count store - 1 do
    let key = Chord.Store.key store i in
    let primary = Chord.Store.primary_of store i in
    let owner = true_owner sorted c key in
    if primary <> owner then
      fail "key %d homed at %d, live owner is %d" key primary owner;
    if not (Chord.Store.holds store ~key ~node:primary) then
      fail "primary %d does not hold key %d" primary key;
    Array.iter
      (fun h ->
        if not (is_up c h) then fail "key %d has a dead holder %d" key h)
      (Chord.Store.holders store i)
  done;
  (* Lookups from live sources terminate at the owner holding the key. *)
  let g = rng 23 in
  let m = Lazy.force matrix in
  let looked = ref 0 in
  while !looked < 40 do
    let source = Rng.int g n in
    if is_up c source then begin
      incr looked;
      let key = Chord.Store.key store (Rng.int g (Chord.Store.key_count store)) in
      let o = Chord.lookup chord m ~source ~key in
      if not (Chord.Store.holds store ~key ~node:o.Chord.owner) then
        fail "lookup of key %d ended at %d, which does not hold it" key
          o.Chord.owner
    end
  done;
  true

(* ------------------------------------------------------------------ *)
(* Heal / stabilizer equivalence when churn stops                      *)

let test_heal_equivalence () =
  let churn_seed = (prop_seed * 37) + 5 in
  let e_heal = engine ~churn:(burst_churn churn_seed) ~seed:6 () in
  let e_stab = engine ~churn:(burst_churn churn_seed) ~seed:6 () in
  let a = Chord.build_engine ~successor_list e_heal in
  let b = Chord.build_engine ~successor_list e_stab in
  let sorted = ring a in
  (* Freeze at an instant where no dead run exceeds the successor
     list: past that, healing (which can only walk its list) and
     stabilization (which can walk the ring) legitimately diverge. *)
  let c = Engine.churn e_heal in
  let t = ref 200. in
  Engine.advance_to e_heal !t;
  while max_dead_run sorted c >= successor_list do
    t := !t +. 25.;
    if !t > 10_000. then Alcotest.fail "no suitable freeze instant found";
    Engine.advance_to e_heal !t
  done;
  Engine.advance_to e_stab !t;
  (* Heal to a fixed point. *)
  let rec heal_until_fixed i =
    if i > 20 then Alcotest.fail "healing failed to converge";
    let h = Chord.heal_engine a e_heal in
    if h.Chord.marked_dead + h.Chord.rerouted + h.Chord.revived > 0 then
      heal_until_fixed (i + 1)
  in
  heal_until_fixed 0;
  (* Stabilize to a fixed point. *)
  let stab = Chord.Stabilizer.create ~config:all_fingers_config b e_stab in
  converge stab b;
  (* Same successor structure for every live node, and both equal the
     ground truth ring. *)
  for u = 0 to n - 1 do
    if is_up c u then begin
      let expect = next_up sorted c u in
      checki
        (Printf.sprintf "healed successor of %d" u)
        expect (Chord.successor a u);
      checki
        (Printf.sprintf "stabilized successor of %d" u)
        expect (Chord.successor b u)
    end
  done

(* ------------------------------------------------------------------ *)
(* Zero churn: stabilization is inert beyond its own schedule          *)

let test_zero_churn_inert () =
  let e = engine ~seed:7 () in
  let chord = Chord.build_engine ~successor_list e in
  let store = Chord.Store.create ~replicas:2 chord ~keys:(make_keys 19 64) in
  let stab =
    Chord.Stabilizer.create ~config:all_fingers_config ~store chord e
  in
  let before = snapshot chord in
  let issued_before = (Engine.stats e).Probe_stats.issued in
  let dht_before = Probe_stats.label_count (Engine.stats e) "dht" in
  for _ = 1 to 3 do
    Chord.Stabilizer.sweep stab
  done;
  checkb "structure untouched" true (snapshot chord = before);
  let t = Chord.Stabilizer.totals stab in
  checki "no reroutes" 0 t.Chord.Stabilizer.rerouted;
  checki "no deaths" 0 t.Chord.Stabilizer.marked_dead;
  checki "no revivals" 0 t.Chord.Stabilizer.revived;
  checki "no denials" 0 t.Chord.Stabilizer.denied;
  checki "no migration" 0 (Chord.Store.migrated store);
  checki "no rehomes" 0 (Chord.Store.rehomes store);
  checki "rounds ran" (3 * n) t.Chord.Stabilizer.rounds;
  (* Probe accounting: every probe the sweeps issued is on the
     stabilizer's own label; nothing else moved. *)
  let st = Engine.stats e in
  checki "all new probes on the stabilize label"
    (st.Probe_stats.issued - issued_before)
    (Probe_stats.label_count st "chord-stabilize");
  checki "foreground label untouched" dht_before
    (Probe_stats.label_count st "dht");
  checkb "stabilize probes actually flowed" true
    (t.Chord.Stabilizer.checked > 0)

(* ------------------------------------------------------------------ *)
(* Scheduled scenario determinism in (seed, interval, budget)          *)

let scheduled_run () =
  let churn = burst_churn ((prop_seed * 41) + 3) in
  let e = engine ~churn ~seed:9 () in
  let chord = Chord.build_engine ~successor_list e in
  let store = Chord.Store.create ~replicas:2 chord ~keys:(make_keys 29 64) in
  let arbiter =
    Arbiter.create
      (Arbiter.config ~capacity:300. ~rate:150.
         ~shares:[ ("chord_stabilize", 1.); ("dht", 3.) ])
  in
  let config =
    {
      Chord.Stabilizer.default_config with
      Chord.Stabilizer.interval = 3.;
      fingers_per_round = 4;
    }
  in
  let stab = Chord.Stabilizer.create ~config ~arbiter ~store chord e in
  let sim = Sim.create () in
  Chord.Stabilizer.schedule stab sim;
  Sim.run sim ~until:90.;
  ( Chord.Stabilizer.totals stab,
    Chord.Store.migrated store,
    Array.init n (Chord.successor chord),
    Probe_stats.label_count (Engine.stats e) "chord-stabilize" )

let test_scheduled_determinism () =
  let t1, m1, s1, l1 = scheduled_run () in
  let t2, m2, s2, l2 = scheduled_run () in
  checkb "identical totals" true (t1 = t2);
  checki "identical migration" m1 m2;
  checkb "identical successor structure" true (s1 = s2);
  checki "identical probe accounting" l1 l2;
  checkb "the run did work" true (t1.Chord.Stabilizer.rounds > 0)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

let test_validation () =
  let e = engine ~seed:11 () in
  let chord = Chord.build_engine e in
  checkb "duplicate key rejected" true
    (raises_invalid (fun () ->
         Chord.Store.create chord ~keys:[| 1; 2; 1 |]));
  checkb "empty keyspace rejected" true
    (raises_invalid (fun () -> Chord.Store.create chord ~keys:[||]));
  checkb "negative replicas rejected" true
    (raises_invalid (fun () ->
         Chord.Store.create ~replicas:(-1) chord ~keys:[| 1 |]));
  let bad c = raises_invalid (fun () -> Chord.Stabilizer.create ~config:c chord e) in
  checkb "zero interval rejected" true
    (bad { Chord.Stabilizer.default_config with Chord.Stabilizer.interval = 0. });
  checkb "negative fingers rejected" true
    (bad
       {
         Chord.Stabilizer.default_config with
         Chord.Stabilizer.fingers_per_round = -1;
       });
  checkb "zero candidates rejected" true
    (bad { Chord.Stabilizer.default_config with Chord.Stabilizer.candidates = 0 });
  let other = Chord.build_engine e in
  let store = Chord.Store.create other ~keys:[| 1 |] in
  checkb "store over a different ring rejected" true
    (raises_invalid (fun () -> Chord.Stabilizer.create ~store chord e));
  (* Store accessor sanity on a fresh ring. *)
  let store = Chord.Store.create ~replicas:3 chord ~keys:(make_keys 31 16) in
  checki "replicas recorded" 3 (Chord.Store.replicas store);
  checki "key count recorded" 16 (Chord.Store.key_count store);
  for i = 0 to 15 do
    let h = Chord.Store.holders store i in
    checki "primary leads the holder list" (Chord.Store.primary_of store i) h.(0);
    let distinct = List.sort_uniq compare (Array.to_list h) in
    checki "holders are distinct" (Array.length h) (List.length distinct);
    checkb "holds every holder" true
      (Array.for_all
         (fun node -> Chord.Store.holds store ~key:(Chord.Store.key store i) ~node)
         h)
  done;
  checkb "unknown key not held" false
    (Chord.Store.holds store ~key:12345 ~node:0);
  (* An unchanged ring re-homes nothing. *)
  checki "rehome on a quiet ring moves nothing" 0 (Chord.Store.rehome store)

let () =
  Alcotest.run "dht_properties"
    [
      ( "convergence",
        [
          qcheck ~count:5 ~name:"ring converges after churn"
            QCheck2.Gen.(pair (int_range 0 9999) (int_range 1 3))
            prop_ring_converges;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "heal = stabilizer when churn stops" `Quick
            test_heal_equivalence;
        ] );
      ( "inertness",
        [
          Alcotest.test_case "zero churn leaves no trace" `Quick
            test_zero_churn_inert;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "scheduled run is reproducible" `Quick
            test_scheduled_determinism;
        ] );
      ( "validation",
        [ Alcotest.test_case "config and store guards" `Quick test_validation ] );
    ]
