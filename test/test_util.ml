(* Unit and property tests for tivaware.util. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Cdf = Tivaware_util.Cdf
module Binned = Tivaware_util.Binned
module Vec = Tivaware_util.Vec
module Linalg = Tivaware_util.Linalg
module Pqueue = Tivaware_util.Pqueue
module Union_find = Tivaware_util.Union_find
module Welford = Tivaware_util.Welford
module Table = Tivaware_util.Table
module Ascii_plot = Tivaware_util.Ascii_plot

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkf_loose eps = Alcotest.check (Alcotest.float eps)

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_split () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr matches
  done;
  Alcotest.(check bool) "split stream independent" true (!matches < 4)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 3 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.)
  done;
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)
  done

let test_rng_gauss_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.gauss rng ~mean:5. ~stddev:2.) in
  checkf_loose 0.1 "gauss mean" 5. (Stats.mean samples);
  checkf_loose 0.1 "gauss stddev" 2. (Stats.stddev samples)

let test_rng_exponential_mean () =
  let rng = Rng.create 12 in
  let samples = Array.init 20_000 (fun _ -> Rng.exponential rng ~rate:0.5) in
  checkf_loose 0.1 "exp mean 1/rate" 2. (Stats.mean samples)

let test_rng_pareto_min () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Rng.pareto rng ~shape:1.5 ~scale:3. in
    Alcotest.(check bool) "pareto >= scale" true (v >= 3.)
  done

let test_rng_uniform_bounds () =
  let rng = Rng.create 21 in
  for _ = 1 to 500 do
    let v = Rng.uniform rng (-3.) 7. in
    Alcotest.(check bool) "uniform in [lo, hi)" true (v >= -3. && v < 7.)
  done

let test_rng_lognormal_positive () =
  let rng = Rng.create 22 in
  let samples = Array.init 5000 (fun _ -> Rng.lognormal rng ~mu:1. ~sigma:0.5) in
  Array.iter
    (fun v -> Alcotest.(check bool) "lognormal positive" true (v > 0.))
    samples;
  (* Median of a lognormal is exp(mu). *)
  checkf_loose 0.2 "lognormal median" (exp 1.) (Stats.median samples)

let test_rng_choice () =
  let rng = Rng.create 14 in
  let arr = [| 1; 5; 9 |] in
  for _ = 1 to 100 do
    let v = Rng.choice rng arr in
    Alcotest.(check bool) "choice member" true (Array.exists (( = ) v) arr)
  done

let prop_rng_int_bounds =
  qcheck "rng int in [0, bound)"
    QCheck2.Gen.(pair (int_range 1 1_000_000) int)
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  qcheck "rng float in [0, bound)"
    QCheck2.Gen.(pair (float_range 0.001 1e6) int)
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let v = Rng.float rng bound in
      v >= 0. && v < bound)

let prop_shuffle_multiset =
  qcheck "shuffle preserves elements"
    QCheck2.Gen.(pair (list int) int)
    (fun (l, seed) ->
      let rng = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let prop_permutation =
  qcheck "permutation is a bijection"
    QCheck2.Gen.(pair (int_range 1 200) int)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let p = Rng.permutation rng n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.length p = n && Array.for_all Fun.id seen)

let prop_sample_indices =
  qcheck "sample_indices distinct and in range"
    QCheck2.Gen.(pair (int_range 1 300) int)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      (* Exercise both the dense and sparse sampling regimes. *)
      List.for_all
        (fun k ->
          let s = Rng.sample_indices rng ~n ~k in
          let tbl = Hashtbl.create k in
          Array.iter (fun i -> Hashtbl.replace tbl i ()) s;
          Array.length s = k
          && Hashtbl.length tbl = k
          && Array.for_all (fun i -> i >= 0 && i < n) s)
        [ 0; min 1 n; n / 7; n / 2; n ])

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_known () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  checkf "mean" 5. (Stats.mean xs);
  checkf_loose 1e-6 "variance" (32. /. 7.) (Stats.variance xs);
  checkf "median" 4.5 (Stats.median xs)

let test_stats_percentile_interpolation () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  checkf "p0" 10. (Stats.percentile xs 0.);
  checkf "p100" 40. (Stats.percentile xs 100.);
  checkf "p50 interpolated" 25. (Stats.percentile xs 50.);
  checkf_loose 1e-9 "p25" 17.5 (Stats.percentile xs 25.)

let test_stats_single () =
  checkf "single element" 3. (Stats.percentile [| 3. |] 77.);
  checkf "single median" 3. (Stats.median [| 3. |])

let test_stats_empty () =
  checkf "mean empty" 0. (Stats.mean [||]);
  checkf "variance empty" 0. (Stats.variance [||]);
  Alcotest.check_raises "summarize empty"
    (Invalid_argument "Stats.summarize: empty array") (fun () ->
      ignore (Stats.summarize [||]))

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 2. |] in
  checkf "min" (-1.) lo;
  checkf "max" 7. hi

let float_list_gen = QCheck2.Gen.(list_size (int_range 1 100) (float_range (-1e3) 1e3))

let prop_percentile_monotone =
  qcheck "percentile monotone in p" float_list_gen (fun l ->
      let xs = Array.of_list l in
      let sorted = Stats.sorted_copy xs in
      let prev = ref neg_infinity in
      List.for_all
        (fun p ->
          let v = Stats.percentile_sorted sorted p in
          let ok = v >= !prev in
          prev := v;
          ok)
        [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ])

let prop_mean_bounded =
  qcheck "mean within [min, max]" float_list_gen (fun l ->
      let xs = Array.of_list l in
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Cdf                                                                 *)

let test_cdf_count_and_mean () =
  let c = Cdf.of_samples [| 3.; 1.; 2. |] in
  Alcotest.(check int) "count" 3 (Cdf.count c);
  checkf "mean_of" 2. (Cdf.mean_of c)

let test_sorted_copy_pure () =
  let xs = [| 3.; 1.; 2. |] in
  let sorted = Stats.sorted_copy xs in
  Alcotest.(check (array (float 0.))) "input untouched" [| 3.; 1.; 2. |] xs;
  Alcotest.(check (array (float 0.))) "copy sorted" [| 1.; 2.; 3. |] sorted

let test_vec_add_inplace () =
  let dst = [| 1.; 2. |] in
  Vec.add_inplace dst [| 10.; 20. |];
  Alcotest.(check (array (float 1e-9))) "accumulated" [| 11.; 22. |] dst

let test_cdf_basics () =
  let c = Cdf.of_samples [| 1.; 2.; 3.; 4. |] in
  checkf "below min" 0. (Cdf.eval c 0.5);
  checkf "at min" 0.25 (Cdf.eval c 1.);
  checkf "mid" 0.5 (Cdf.eval c 2.5);
  checkf "at max" 1. (Cdf.eval c 4.);
  checkf "above max" 1. (Cdf.eval c 100.)

let test_cdf_quantile () =
  let c = Cdf.of_samples [| 10.; 20.; 30.; 40.; 50. |] in
  checkf "q0.2" 10. (Cdf.quantile c 0.2);
  checkf "q0.5" 30. (Cdf.quantile c 0.5);
  checkf "q1" 50. (Cdf.quantile c 1.)

let test_cdf_points () =
  let c = Cdf.of_samples (Array.init 1000 float_of_int) in
  let pts = Cdf.points ~max_points:10 c in
  Alcotest.(check int) "downsampled" 10 (List.length pts);
  let fractions = List.map snd pts in
  checkf "last fraction is 1" 1. (List.nth fractions 9)

let prop_cdf_monotone =
  qcheck "cdf eval monotone" float_list_gen (fun l ->
      let c = Cdf.of_samples (Array.of_list l) in
      let lo, hi = Stats.min_max (Array.of_list l) in
      let step = (hi -. lo +. 1.) /. 20. in
      let prev = ref (-1.) in
      List.for_all
        (fun k ->
          let v = Cdf.eval c (lo +. (float_of_int k *. step)) in
          let ok = v >= !prev in
          prev := v;
          ok)
        (List.init 22 Fun.id))

(* ------------------------------------------------------------------ *)
(* Binned                                                              *)

let test_binned_basics () =
  let obs = [ (5., 1.); (15., 2.); (17., 4.); (25., 8.) ] in
  let b = Binned.make ~width:10. (List.to_seq obs) in
  Alcotest.(check int) "three bins" 3 (List.length b);
  let second = List.nth b 1 in
  checkf "bin center" 15. second.Binned.x_mid;
  Alcotest.(check int) "bin count" 2 second.Binned.count;
  checkf "bin median" 3. second.Binned.p50

let test_binned_filters () =
  let obs = [ (-5., 1.); (5., 2.); (105., 3.) ] in
  let b = Binned.make ~width:10. ~x_max:100. (List.to_seq obs) in
  Alcotest.(check int) "negative and beyond-max dropped" 1 (List.length b)

let prop_binned_ordered =
  qcheck "bins ordered and percentiles sorted"
    QCheck2.Gen.(list_size (int_range 1 200) (pair (float_range 0. 1000.) (float_range (-10.) 10.)))
    (fun obs ->
      let b = Binned.make ~width:50. (List.to_seq obs) in
      let xs = List.map (fun r -> r.Binned.x_mid) b in
      List.sort compare xs = xs
      && List.for_all
           (fun r -> r.Binned.p10 <= r.Binned.p50 && r.Binned.p50 <= r.Binned.p90)
           b)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let test_vec_arith () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-9))) "add" [| 5.; 7.; 9. |] (Vec.add a b);
  Alcotest.(check (array (float 1e-9))) "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  Alcotest.(check (array (float 1e-9))) "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  checkf "dot" 32. (Vec.dot a b);
  checkf "norm" (sqrt 14.) (Vec.norm a)

let test_vec_unit_direction () =
  let a = [| 3.; 0. |] and b = [| 0.; 0. |] in
  (match Vec.unit_direction a b with
  | Some u -> Alcotest.(check (array (float 1e-9))) "direction" [| 1.; 0. |] u
  | None -> Alcotest.fail "expected direction");
  Alcotest.(check bool) "coincident -> None" true (Vec.unit_direction b b = None)

let test_vec_random_unit () =
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    checkf_loose 1e-9 "unit norm" 1. (Vec.norm (Vec.random_unit rng 5))
  done

let vec_pair_gen =
  QCheck2.Gen.(
    let v = array_size (return 4) (float_range (-100.) 100.) in
    triple v v v)

let prop_vec_triangle =
  qcheck "euclidean distance satisfies triangle inequality" vec_pair_gen
    (fun (a, b, c) ->
      Vec.dist a c <= Vec.dist a b +. Vec.dist b c +. 1e-6)

let prop_vec_dist_symmetric =
  qcheck "distance symmetric" vec_pair_gen (fun (a, b, _) ->
      abs_float (Vec.dist a b -. Vec.dist b a) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)

let test_linalg_solve_known () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 5.; 10. |] in
  let x = Linalg.solve a b in
  checkf_loose 1e-9 "x0" 1. x.(0);
  checkf_loose 1e-9 "x1" 3. x.(1)

let test_linalg_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Linalg.Singular (fun () ->
      ignore (Linalg.solve a [| 1.; 1. |]))

let test_linalg_transpose () =
  let a = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Linalg.transpose a in
  Alcotest.(check int) "rows" 3 (Array.length t);
  checkf "t(0)(1)" 4. t.(0).(1)

let test_linalg_matmul_identity () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let id = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let p = Linalg.mat_mul a id in
  Alcotest.(check (array (array (float 1e-9)))) "a * I = a" a p

let test_linalg_frobenius () =
  checkf "frobenius" 5. (Linalg.frobenius [| [| 3.; 4. |] |])

let prop_linalg_solve_roundtrip =
  qcheck ~count:100 "solve recovers planted solution"
    QCheck2.Gen.(pair int (int_range 2 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      (* Diagonally dominant matrices are always solvable. *)
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if i = j then 10. +. Rng.float rng 5. else Rng.uniform rng (-1.) 1.))
      in
      let x = Array.init n (fun _ -> Rng.uniform rng (-10.) 10.) in
      let b = Linalg.mat_vec a x in
      let x' = Linalg.solve a b in
      Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-6) x x')

let test_linalg_eigen_known () =
  (* diag(3, 1) has eigenpairs (3, e1) and (1, e2). *)
  let c = [| [| 3.; 0. |]; [| 0.; 1. |] |] in
  match Linalg.symmetric_top_eigenpairs c ~k:2 with
  | [ (l1, v1); (l2, v2) ] ->
    checkf_loose 1e-6 "first eigenvalue" 3. l1;
    checkf_loose 1e-6 "second eigenvalue" 1. l2;
    checkf_loose 1e-6 "v1 along e1" 1. (abs_float v1.(0));
    checkf_loose 1e-6 "v2 along e2" 1. (abs_float v2.(1))
  | other -> Alcotest.failf "expected 2 eigenpairs, got %d" (List.length other)

let test_linalg_eigen_rank_deficient () =
  (* Rank-1 matrix: only one non-zero eigenpair should come back. *)
  let c = [| [| 2.; 2. |]; [| 2.; 2. |] |] in
  match Linalg.symmetric_top_eigenpairs c ~k:2 with
  | [ (l1, v1) ] ->
    checkf_loose 1e-6 "eigenvalue 4" 4. l1;
    checkf_loose 1e-6 "direction" (abs_float v1.(0)) (abs_float v1.(1))
  | other -> Alcotest.failf "expected 1 eigenpair, got %d" (List.length other)

let prop_linalg_eigen_residual =
  qcheck ~count:50 "eigenpairs satisfy C v = lambda v"
    QCheck2.Gen.(pair int (int_range 2 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      (* Random PSD matrix: A Aᵀ. *)
      let a =
        Array.init n (fun _ -> Array.init n (fun _ -> Rng.uniform rng (-2.) 2.))
      in
      let c = Linalg.mat_mul a (Linalg.transpose a) in
      let pairs = Linalg.symmetric_top_eigenpairs ~iterations:1000 c ~k:2 in
      (* Near-degenerate spectra converge slowly, so judge the residual
         relative to the spectral scale. *)
      let scale =
        List.fold_left (fun acc (l, _) -> Float.max acc (abs_float l)) 1. pairs
      in
      List.for_all
        (fun (lambda, v) ->
          let cv = Linalg.mat_vec c v in
          Array.for_all2
            (fun x y -> abs_float (x -. (lambda *. y)) < 1e-2 *. scale)
            cv v)
        pairs)

let prop_linalg_lstsq_exact =
  qcheck ~count:100 "lstsq recovers exact solution of consistent system"
    QCheck2.Gen.(pair int (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let m = n + 3 in
      let a =
        Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng (-5.) 5.))
      in
      let x = Array.init n (fun _ -> Rng.uniform rng (-2.) 2.) in
      let b = Linalg.mat_vec a x in
      match Linalg.lstsq a b with
      | x' -> Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-3) x x'
      | exception Linalg.Singular -> true (* degenerate random draw *))

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q 3. "c";
  Pqueue.push q 1. "a";
  Pqueue.push q 2. "b";
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1., "a")) (Pqueue.peek q);
  Alcotest.(check (option (pair (float 0.) string))) "pop a" (Some (1., "a")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.) string))) "pop b" (Some (2., "b")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.) string))) "pop c" (Some (3., "c")) (Pqueue.pop q);
  Alcotest.(check bool) "empty" true (Pqueue.pop q = None)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1. "first";
  Pqueue.push q 1. "second";
  Pqueue.push q 1. "third";
  Alcotest.(check (option (pair (float 0.) string))) "tie 1" (Some (1., "first")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.) string))) "tie 2" (Some (1., "second")) (Pqueue.pop q)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.push q 1. 1;
  Pqueue.clear q;
  Alcotest.(check int) "cleared" 0 (Pqueue.length q)

let prop_pqueue_sorted =
  qcheck "pops come out sorted"
    QCheck2.Gen.(list (float_range (-1e3) 1e3))
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p p) prios;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

(* ------------------------------------------------------------------ *)
(* Union_find                                                          *)

let test_union_find_basics () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count_sets uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union existing" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "four sets" 4 (Union_find.count_sets uf)

let prop_union_find_transitive =
  qcheck "union transitivity"
    QCheck2.Gen.(list_size (int_range 0 50) (pair (int_range 0 19) (int_range 0 19)))
    (fun unions ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) unions;
      (* same is an equivalence: check transitivity over a sample. *)
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              List.for_all
                (fun c ->
                  if Union_find.same uf a b && Union_find.same uf b c then
                    Union_find.same uf a c
                  else true)
                [ 0; 5; 10 ])
            [ 1; 7; 19 ])
        [ 2; 3; 15 ])

(* ------------------------------------------------------------------ *)
(* Welford                                                             *)

let prop_welford_matches_stats =
  qcheck "welford mean/variance match batch stats" float_list_gen (fun l ->
      let w = Welford.create () in
      List.iter (Welford.add w) l;
      let xs = Array.of_list l in
      abs_float (Welford.mean w -. Stats.mean xs) < 1e-6
      && abs_float (Welford.variance w -. Stats.variance xs) < 1e-4)

let prop_welford_merge =
  qcheck "welford merge equals combined stream"
    QCheck2.Gen.(pair float_list_gen float_list_gen)
    (fun (l1, l2) ->
      let a = Welford.create () and b = Welford.create () in
      List.iter (Welford.add a) l1;
      List.iter (Welford.add b) l2;
      let m = Welford.merge a b in
      let all = Welford.create () in
      List.iter (Welford.add all) (l1 @ l2);
      Welford.count m = Welford.count all
      && abs_float (Welford.mean m -. Welford.mean all) < 1e-6
      && abs_float (Welford.variance m -. Welford.variance all) < 1e-4)

let test_welford_min_max () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 3.; -1.; 7. ];
  checkf "min" (-1.) (Welford.min w);
  checkf "max" 7. (Welford.max w)

let test_welford_empty () =
  let w = Welford.create () in
  Alcotest.(check int) "count" 0 (Welford.count w);
  Alcotest.check_raises "min empty" (Invalid_argument "Welford.min: no samples")
    (fun () -> ignore (Welford.min w))

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)

module Zipf = Tivaware_util.Zipf

let test_zipf_uniform () =
  (* s = 0 is the uniform distribution. *)
  let z = Zipf.create ~n:4 ~s:0. in
  for k = 0 to 3 do
    checkf_loose 1e-9 "uniform probability" 0.25 (Zipf.probability z k)
  done

let test_zipf_known_probabilities () =
  (* n = 3, s = 1: weights 1, 1/2, 1/3 — harmonic normalization 11/6. *)
  let z = Zipf.create ~n:3 ~s:1. in
  checkf_loose 1e-9 "rank 0" (6. /. 11.) (Zipf.probability z 0);
  checkf_loose 1e-9 "rank 1" (3. /. 11.) (Zipf.probability z 1);
  checkf_loose 1e-9 "rank 2" (2. /. 11.) (Zipf.probability z 2);
  Alcotest.(check int) "n recorded" 3 (Zipf.n z);
  checkf "s recorded" 1. (Zipf.s z)

let test_zipf_empirical () =
  let z = Zipf.create ~n:8 ~s:0.9 in
  let rng = Rng.create 99 in
  let counts = Array.make 8 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 7 do
    checkf_loose 0.01 "empirical frequency matches probability"
      (Zipf.probability z k)
      (float_of_int counts.(k) /. float_of_int draws)
  done;
  (* Rank popularity is monotone for s > 0. *)
  for k = 0 to 6 do
    Alcotest.(check bool) "lower rank more popular" true
      (counts.(k) >= counts.(k + 1))
  done

let test_zipf_one_draw_per_sample () =
  (* Replayability contract: exactly one generator draw per sample, so
     a Zipf workload interleaved with other seeded draws stays aligned. *)
  let z = Zipf.create ~n:16 ~s:0.9 in
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    ignore (Zipf.sample z a);
    ignore (Rng.float b 1.)
  done;
  check Alcotest.int64 "streams advanced identically" (Rng.int64 a) (Rng.int64 b)

let test_zipf_validation () =
  let bad f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "n = 0 rejected" true
    (bad (fun () -> Zipf.create ~n:0 ~s:1.));
  Alcotest.(check bool) "negative s rejected" true
    (bad (fun () -> Zipf.create ~n:4 ~s:(-0.1)));
  Alcotest.(check bool) "NaN s rejected" true
    (bad (fun () -> Zipf.create ~n:4 ~s:nan))

let prop_zipf_in_range =
  qcheck "samples in [0, n)"
    QCheck2.Gen.(triple (int_range 1 64) (float_range 0. 3.) int)
    (fun (n, s, seed) ->
      let z = Zipf.create ~n ~s in
      let rng = Rng.create seed in
      List.for_all
        (fun _ ->
          let k = Zipf.sample z rng in
          k >= 0 && k < n)
        (List.init 50 Fun.id))

let prop_zipf_probabilities_sum =
  qcheck ~count:100 "probabilities sum to one"
    QCheck2.Gen.(pair (int_range 1 128) (float_range 0. 3.))
    (fun (n, s) ->
      let z = Zipf.create ~n ~s in
      let sum = ref 0. in
      for k = 0 to n - 1 do
        sum := !sum +. Zipf.probability z k
      done;
      abs_float (!sum -. 1.) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Nelder_mead                                                         *)

module Nelder_mead = Tivaware_util.Nelder_mead

let test_nm_quadratic () =
  (* Minimize (x-3)^2 + (y+1)^2. *)
  let f v = ((v.(0) -. 3.) ** 2.) +. ((v.(1) +. 1.) ** 2.) in
  let x, value = Nelder_mead.minimize ~f [| 0.; 0. |] in
  checkf_loose 1e-3 "x" 3. x.(0);
  checkf_loose 1e-3 "y" (-1.) x.(1);
  checkf_loose 1e-5 "min value" 0. value

let test_nm_rosenbrock () =
  (* The classic banana function; minimum at (1, 1). *)
  let f v =
    let a = 1. -. v.(0) and b = v.(1) -. (v.(0) *. v.(0)) in
    (a *. a) +. (100. *. b *. b)
  in
  let options =
    { Nelder_mead.default_options with Nelder_mead.max_iterations = 5000 }
  in
  let x, _ = Nelder_mead.minimize ~options ~f [| -1.; 1. |] in
  checkf_loose 0.05 "rosenbrock x" 1. x.(0);
  checkf_loose 0.05 "rosenbrock y" 1. x.(1)

let test_nm_1d () =
  let f v = abs_float (v.(0) -. 7.) in
  let x, _ = Nelder_mead.minimize ~f [| 0. |] in
  checkf_loose 1e-3 "1d minimum" 7. x.(0)

let test_nm_input_not_mutated () =
  let x0 = [| 5.; 5. |] in
  let f v = (v.(0) *. v.(0)) +. (v.(1) *. v.(1)) in
  ignore (Nelder_mead.minimize ~f x0);
  Alcotest.(check (array (float 0.))) "x0 intact" [| 5.; 5. |] x0

let prop_nm_improves =
  qcheck ~count:50 "result never worse than the starting point"
    QCheck2.Gen.(pair int (int_range 1 4))
    (fun (seed, dim) ->
      let rng = Rng.create seed in
      let center = Array.init dim (fun _ -> Rng.uniform rng (-10.) 10.) in
      let f v =
        let acc = ref 0. in
        Array.iteri (fun i x -> acc := !acc +. ((x -. center.(i)) ** 2.)) v;
        !acc
      in
      let x0 = Array.init dim (fun _ -> Rng.uniform rng (-10.) 10.) in
      let _, value = Nelder_mead.minimize ~f x0 in
      value <= f x0 +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Table / Ascii_plot                                                  *)

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_table_render () =
  let t = Table.create ~header:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "contains row cell" true (contains_substring s "alpha");
  Alcotest.(check bool) "contains header cell" true (contains_substring s "value")

let test_table_padding () =
  let t = Table.create ~header:[ "a"; "b"; "c" ] in
  Table.add_row t [ "only-one" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "renders despite short row" true (String.length s > 0)

let test_ascii_plot () =
  let out = Ascii_plot.plot [ ('x', [ (0., 0.); (1., 1.) ]) ] in
  Alcotest.(check bool) "non-empty" true (String.length out > 0);
  let empty = Ascii_plot.plot [] in
  Alcotest.(check string) "empty plot" "(empty plot)\n" empty

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "gauss moments" `Quick test_rng_gauss_moments;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto minimum" `Quick test_rng_pareto_min;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "lognormal" `Quick test_rng_lognormal_positive;
          Alcotest.test_case "choice membership" `Quick test_rng_choice;
          prop_rng_int_bounds;
          prop_rng_float_bounds;
          prop_shuffle_multiset;
          prop_permutation;
          prop_sample_indices;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "percentile interpolation" `Quick test_stats_percentile_interpolation;
          Alcotest.test_case "single element" `Quick test_stats_single;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "min max" `Quick test_stats_min_max;
          Alcotest.test_case "sorted_copy pure" `Quick test_sorted_copy_pure;
          prop_percentile_monotone;
          prop_mean_bounded;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "eval basics" `Quick test_cdf_basics;
          Alcotest.test_case "count and mean" `Quick test_cdf_count_and_mean;
          Alcotest.test_case "quantile" `Quick test_cdf_quantile;
          Alcotest.test_case "points downsampling" `Quick test_cdf_points;
          prop_cdf_monotone;
        ] );
      ( "binned",
        [
          Alcotest.test_case "basics" `Quick test_binned_basics;
          Alcotest.test_case "filters" `Quick test_binned_filters;
          prop_binned_ordered;
        ] );
      ( "vec",
        [
          Alcotest.test_case "arithmetic" `Quick test_vec_arith;
          Alcotest.test_case "add_inplace" `Quick test_vec_add_inplace;
          Alcotest.test_case "unit direction" `Quick test_vec_unit_direction;
          Alcotest.test_case "random unit" `Quick test_vec_random_unit;
          prop_vec_triangle;
          prop_vec_dist_symmetric;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "solve 2x2" `Quick test_linalg_solve_known;
          Alcotest.test_case "singular detection" `Quick test_linalg_singular;
          Alcotest.test_case "transpose" `Quick test_linalg_transpose;
          Alcotest.test_case "matmul identity" `Quick test_linalg_matmul_identity;
          Alcotest.test_case "frobenius" `Quick test_linalg_frobenius;
          prop_linalg_solve_roundtrip;
          prop_linalg_lstsq_exact;
          Alcotest.test_case "eigen known" `Quick test_linalg_eigen_known;
          Alcotest.test_case "eigen rank deficient" `Quick test_linalg_eigen_rank_deficient;
          prop_linalg_eigen_residual;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          prop_pqueue_sorted;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basics" `Quick test_union_find_basics;
          prop_union_find_transitive;
        ] );
      ( "welford",
        [
          prop_welford_matches_stats;
          prop_welford_merge;
          Alcotest.test_case "min max" `Quick test_welford_min_max;
          Alcotest.test_case "empty" `Quick test_welford_empty;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "uniform at s=0" `Quick test_zipf_uniform;
          Alcotest.test_case "known probabilities" `Quick
            test_zipf_known_probabilities;
          Alcotest.test_case "empirical frequencies" `Quick test_zipf_empirical;
          Alcotest.test_case "one draw per sample" `Quick
            test_zipf_one_draw_per_sample;
          Alcotest.test_case "validation" `Quick test_zipf_validation;
          prop_zipf_in_range;
          prop_zipf_probabilities_sum;
        ] );
      ( "nelder_mead",
        [
          Alcotest.test_case "quadratic" `Quick test_nm_quadratic;
          Alcotest.test_case "rosenbrock" `Quick test_nm_rosenbrock;
          Alcotest.test_case "one-dimensional" `Quick test_nm_1d;
          Alcotest.test_case "input not mutated" `Quick test_nm_input_not_mutated;
          prop_nm_improves;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "table padding" `Quick test_table_padding;
          Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
        ] );
    ]
